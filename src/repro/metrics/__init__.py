"""Analysis helpers over collected metrics.

NumPy-vectorized aggregation (CDFs, percentile summaries, per-node
bandwidth rates) plus structure-level invariant checks.  The hot path of
the simulation records into plain dicts (:mod:`repro.sim.monitor`); this
package converts once into arrays at analysis time — the profile-first,
vectorize-the-hot-aggregation workflow of the HPC guides.
"""

from repro.metrics.bandwidth import bandwidth_kbps, phase_bandwidth_summary
from repro.metrics.stats import (
    CDF,
    cdf_of,
    percentile_summary,
    rate_per_minute,
)
from repro.metrics.structure_analysis import (
    degree_distribution,
    depth_distribution,
    verify_structure,
)

__all__ = [
    "CDF",
    "bandwidth_kbps",
    "cdf_of",
    "degree_distribution",
    "depth_distribution",
    "percentile_summary",
    "phase_bandwidth_summary",
    "rate_per_minute",
    "verify_structure",
]
