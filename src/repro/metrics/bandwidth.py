"""Per-node bandwidth aggregation (Figs. 10–12).

Rates are bytes accounted in a phase divided by that phase's duration —
exactly what the paper's per-node KB/s measurements over the
dissemination window report.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

import numpy as np

from repro.ids import NodeId
from repro.metrics.stats import PAPER_PERCENTILES, percentile_summary
from repro.sim.monitor import DISSEMINATION, STABILIZATION, Metrics


def bandwidth_kbps(
    metrics: Metrics,
    nodes: Iterable[NodeId],
    phase: str = DISSEMINATION,
    direction: str = "received",
    duration: Optional[float] = None,
) -> list[float]:
    """Per-node KB/s over a phase (direction 'sent' = upload,
    'received' = download)."""
    window = duration if duration is not None else metrics.phase_duration(phase)
    if window <= 0:
        return [0.0 for _ in nodes]
    book = metrics.bytes_sent if direction == "sent" else metrics.bytes_received
    return [book.get(n, {}).get(phase, 0) / window / 1024.0 for n in nodes]


def phase_bandwidth_summary(
    metrics: Metrics,
    nodes: Sequence[NodeId],
    phase: str = DISSEMINATION,
    direction: str = "received",
    percentiles: Sequence[int] = PAPER_PERCENTILES,
) -> dict[int, float]:
    """The Figs. 10–11 stacked-bar percentiles for one configuration."""
    return percentile_summary(bandwidth_kbps(metrics, nodes, phase, direction), percentiles)


def total_transmitted_mb(
    metrics: Metrics, nodes: Sequence[NodeId], phase: str
) -> float:
    """Mean data transmitted per node in MB over a phase (Fig. 12's
    stacked stabilization/dissemination bars, averaged over all nodes)."""
    if not nodes:
        return 0.0
    total = sum(metrics.bytes_sent.get(n, {}).get(phase, 0) for n in nodes)
    return total / len(nodes) / (1024.0 * 1024.0)


def stacked_phases_mb(metrics: Metrics, nodes: Sequence[NodeId]) -> dict[str, float]:
    """Fig. 12 bar for one protocol: stabilization + dissemination MB."""
    return {
        STABILIZATION: total_transmitted_mb(metrics, nodes, STABILIZATION),
        DISSEMINATION: total_transmitted_mb(metrics, nodes, DISSEMINATION),
    }
