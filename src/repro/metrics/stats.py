"""Distribution utilities: CDFs and percentile summaries.

Every figure in the paper is either a CDF (Figs. 2, 6, 7, 9, 13, 14) or a
percentile stack (Figs. 10, 11); :class:`CDF` and
:func:`percentile_summary` are their direct counterparts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

#: The percentile set of the Figs. 10–11 stacked bars.
PAPER_PERCENTILES = (5, 25, 50, 75, 90)


@dataclass(frozen=True)
class CDF:
    """Empirical cumulative distribution of a sample."""

    values: tuple[float, ...]  # sorted sample

    @classmethod
    def of(cls, sample: Iterable[float]) -> "CDF":
        arr = np.sort(np.asarray(list(sample), dtype=float))
        return cls(tuple(arr.tolist()))

    def __len__(self) -> int:
        return len(self.values)

    @property
    def empty(self) -> bool:
        return not self.values

    def fraction_at_most(self, x: float) -> float:
        """P(X <= x): the y-value of the CDF plot at x."""
        if self.empty:
            return 0.0
        arr = np.asarray(self.values)
        return float(np.searchsorted(arr, x, side="right")) / len(arr)

    def percentile(self, q: float) -> float:
        """The q-th percentile (q in [0, 100])."""
        if self.empty:
            raise ValueError("percentile of an empty CDF")
        return float(np.percentile(np.asarray(self.values), q))

    @property
    def median(self) -> float:
        return self.percentile(50)

    @property
    def mean(self) -> float:
        if self.empty:
            raise ValueError("mean of an empty CDF")
        return float(np.mean(np.asarray(self.values)))

    @property
    def min(self) -> float:
        return self.values[0]

    @property
    def max(self) -> float:
        return self.values[-1]

    def series(self, points: Sequence[float]) -> list[tuple[float, float]]:
        """(x, P(X<=x)) pairs — the rows a CDF plot would consume."""
        return [(float(x), self.fraction_at_most(x)) for x in points]

    def summary(self) -> dict[str, float]:
        if self.empty:
            return {"n": 0}
        return {
            "n": len(self),
            "min": self.min,
            "p25": self.percentile(25),
            "median": self.median,
            "p75": self.percentile(75),
            "p90": self.percentile(90),
            "max": self.max,
            "mean": self.mean,
        }


def cdf_of(sample: Iterable[float]) -> CDF:
    """Shorthand constructor."""
    return CDF.of(sample)


def percentile_summary(
    sample: Iterable[float], percentiles: Sequence[int] = PAPER_PERCENTILES
) -> dict[int, float]:
    """The Figs. 10–11 stacked-bar values: one number per percentile."""
    arr = np.asarray(list(sample), dtype=float)
    if arr.size == 0:
        return {p: 0.0 for p in percentiles}
    values = np.percentile(arr, percentiles)
    return {p: float(v) for p, v in zip(percentiles, values)}


def rate_per_minute(event_times: Iterable[float], window: tuple[float, float]) -> float:
    """Events per minute inside a time window (Table I's rates).

    The window is **half-open**, ``[start, end)``: an event exactly at
    ``end`` belongs to the *next* window, so adjacent windows partition a
    timeline without double-counting boundary events.
    """
    start, end = window
    if end <= start:
        return 0.0
    arr = np.asarray(list(event_times), dtype=float)
    inside = int(np.count_nonzero((arr >= start) & (arr < end))) if arr.size else 0
    return inside / ((end - start) / 60.0)
