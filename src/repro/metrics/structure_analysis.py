"""Structure-level distributions and invariants (Figs. 6–8)."""

from __future__ import annotations

from typing import Iterable

import networkx as nx

from repro.core.structure import (
    depths,
    extract_structure,
    is_complete_structure,
    out_degrees,
)
from repro.ids import NodeId, StreamId
from repro.metrics.stats import CDF


def depth_distribution(
    nodes: Iterable, source: NodeId, mode: str = "tree", stream: StreamId = 0
) -> CDF:
    """Depth CDF over all reached nodes (Fig. 6).  Tree depth is the
    (unique) path length; DAG depth the longest path from the source."""
    g = extract_structure(nodes, stream)
    d = depths(g, source, mode)
    return CDF.of(float(v) for v in d.values())


def degree_distribution(nodes: Iterable, stream: StreamId = 0) -> CDF:
    """Out-degree CDF (Fig. 7): relays per node; zero = leaf."""
    g = extract_structure(nodes, stream)
    return CDF.of(float(v) for v in out_degrees(g).values())


def verify_structure(
    nodes: Iterable, source: NodeId, stream: StreamId = 0
) -> tuple[bool, str]:
    """§II-B completeness invariant over live node state."""
    node_list = list(nodes)
    g = extract_structure(node_list, stream)
    expected = {n.node_id for n in node_list if getattr(n, "alive", True)}
    return is_complete_structure(g, source, expected)
