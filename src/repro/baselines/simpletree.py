"""SimpleTree: centralized random tree with push dissemination (§III-D).

"We consider a tree created randomly with the help of a centralized node.
The only criteria for a node joining the tree is to connect to a parent
that joined earlier in the past ... This parent is provided by the
centralized node that randomly picks any of the previously joined nodes
as a parent for a newly joined node.  Dissemination is done by pushing
the messages immediately through tree links thus minimizing latency."

The coordinator is a real simulated node, so the "single communication
step with the centralized node" shows up in the stabilization bandwidth
exactly as in Fig. 12.  SimpleTree deliberately has **no** failure
handling — the paper excludes it from every dynamic experiment.
"""

from __future__ import annotations

from repro.config import SimpleTreeConfig
from repro.ids import NODE_ID_BYTES, SEQ_BYTES, NodeId, StreamId
from repro.sim.message import Message
from repro.sim.node import ProtocolNode

STREAM_BYTES = 2
MEASURE_BYTES = 8


class TreeJoin(Message):
    kind = "st_join"
    __slots__ = ()


class TreeJoinReply(Message):
    kind = "st_join_reply"
    __slots__ = ("parent",)

    def __init__(self, parent: NodeId) -> None:
        self.parent = parent

    def body_bytes(self) -> int:
        return NODE_ID_BYTES


class TreeAttach(Message):
    kind = "st_attach"
    __slots__ = ()


class TreeData(Message):
    kind = "st_data"
    __slots__ = ("stream", "seq", "payload_bytes", "hops", "path_delay", "sent_at")

    def __init__(
        self,
        stream: StreamId,
        seq: int,
        payload_bytes: int,
        hops: int = 0,
        path_delay: float = 0.0,
        sent_at: float = 0.0,
    ) -> None:
        self.stream = stream
        self.seq = seq
        self.payload_bytes = payload_bytes
        self.hops = hops
        self.path_delay = path_delay
        self.sent_at = sent_at

    def body_bytes(self) -> int:
        return STREAM_BYTES + SEQ_BYTES + MEASURE_BYTES + self.payload_bytes


class SimpleTreeCoordinator(ProtocolNode):
    """The centralized node: hands each joiner a random earlier joiner."""

    def __init__(self, network, node_id: NodeId, config: SimpleTreeConfig | None = None) -> None:
        super().__init__(network, node_id)
        self.config = config if config is not None else SimpleTreeConfig()
        #: Nodes in join order; index 0 is the first (root candidate).
        self.members: list[NodeId] = []
        #: Children handed out per member (for optional degree caps).
        self.assigned: dict[NodeId, int] = {}

    def on_st_join(self, src: NodeId, msg: TreeJoin) -> None:
        if not self.members:
            self.members.append(src)
            self.send(src, TreeJoinReply(src))  # joiner is the root
            return
        candidates = self.members
        if self.config.max_children:
            limited = [
                m for m in self.members
                if self.assigned.get(m, 0) < self.config.max_children
            ]
            candidates = limited or self.members
        parent = self._rng.choice(candidates)
        self.assigned[parent] = self.assigned.get(parent, 0) + 1
        self.members.append(src)
        self.send(src, TreeJoinReply(parent))


class SimpleTreeNode(ProtocolNode):
    """One SimpleTree participant."""

    def __init__(self, network, node_id: NodeId, coordinator_id: NodeId) -> None:
        super().__init__(network, node_id)
        self.coordinator_id = coordinator_id
        self.parent: NodeId | None = None
        self.children: list[NodeId] = []
        self.delivered: dict[StreamId, set[int]] = {}
        self.joined = False

    def delivered_count(self, stream: StreamId = 0) -> int:
        return len(self.delivered.get(stream, ()))

    # ------------------------------------------------------------------
    # Join
    # ------------------------------------------------------------------
    def join(self, contact: NodeId = -1) -> None:
        """Join through the coordinator (the contact argument exists only
        for testbed API compatibility and is ignored)."""
        self.send(self.coordinator_id, TreeJoin())

    def on_st_join_reply(self, src: NodeId, msg: TreeJoinReply) -> None:
        self.joined = True
        if msg.parent == self.node_id:
            return  # we are the root
        self.parent = msg.parent
        self.send(msg.parent, TreeAttach())

    def on_st_attach(self, src: NodeId, msg: TreeAttach) -> None:
        if src not in self.children:
            self.children.append(src)

    # ------------------------------------------------------------------
    # Dissemination (push through tree links)
    # ------------------------------------------------------------------
    def inject(self, stream: StreamId, seq: int, payload_bytes: int) -> None:
        self.network.metrics.record_injection(stream, seq, self.sim.now)
        self.delivered.setdefault(stream, set()).add(seq)
        self._push(stream, seq, payload_bytes, hops=0, path_delay=0.0, exclude=None)

    def _push(
        self,
        stream: StreamId,
        seq: int,
        payload_bytes: int,
        hops: int,
        path_delay: float,
        exclude: NodeId | None,
    ) -> None:
        targets = list(self.children)
        # A non-root source also pushes up towards its parent so the whole
        # tree is covered regardless of which node injects.
        if self.parent is not None and self.parent != exclude:
            targets.append(self.parent)
        for peer in targets:
            if peer != exclude:
                self.send(
                    peer,
                    TreeData(
                        stream, seq, payload_bytes,
                        hops=hops, path_delay=path_delay, sent_at=self.sim.now,
                    ),
                )

    def on_st_data(self, src: NodeId, msg: TreeData) -> None:
        seen = self.delivered.setdefault(msg.stream, set())
        hop_delay = self.sim.now - msg.sent_at
        path_delay = msg.path_delay + hop_delay
        hops = msg.hops + 1
        self.network.metrics.record_delivery(
            self.node_id, msg.stream, msg.seq, self.sim.now, src, hops, path_delay,
            msg.payload_bytes,
        )
        if msg.seq in seen:
            return
        seen.add(msg.seq)
        self._push(msg.stream, msg.seq, msg.payload_bytes, hops, path_delay, exclude=src)

    def on_crash(self) -> None:
        super().on_crash()
        self.delivered.clear()
