"""SimpleGossip: Cyclon + rumor mongering + anti-entropy (§III-D).

"We use Cyclon as the PSS.  Due to its proactive nature we use a
combination of rumor mongering (push) to infect most of the nodes and
anti-entropy (pull) to ensure completeness.  Rumor mongering follows an
infect and die strategy with a fanout of ln(N) ... anti-entropy exchanges
updates with a single random node with a frequency that is the double of
the message creation ratio."

Nodes keep a message store (seq -> payload size) per stream to serve
anti-entropy pulls; digests carry the contiguous high-water mark plus the
out-of-order extras so the responder can compute the exact gap set.
"""

from __future__ import annotations

from repro.config import CyclonConfig, GossipConfig
from repro.ids import SEQ_BYTES, NodeId, StreamId
from repro.membership.cyclon import CyclonNode
from repro.sim.message import Message

STREAM_BYTES = 2
MEASURE_BYTES = 8

#: Messages served per anti-entropy exchange (bounds burst size).
ANTI_ENTROPY_BATCH = 16


class Rumor(Message):
    """Push phase: infect-and-die rumor.  ``hot=False`` marks anti-entropy
    repairs, which are stored but not re-pushed (old news travels by pull,
    per Demers et al.)."""

    kind = "sg_rumor"
    __slots__ = (
        "stream", "seq", "payload_bytes", "hops", "path_delay", "sent_at", "hot",
    )

    def __init__(
        self,
        stream: StreamId,
        seq: int,
        payload_bytes: int,
        hops: int = 0,
        path_delay: float = 0.0,
        sent_at: float = 0.0,
        hot: bool = True,
    ) -> None:
        self.stream = stream
        self.seq = seq
        self.payload_bytes = payload_bytes
        self.hops = hops
        self.path_delay = path_delay
        self.sent_at = sent_at
        self.hot = hot

    def body_bytes(self) -> int:
        return STREAM_BYTES + SEQ_BYTES + MEASURE_BYTES + self.payload_bytes


class Digest(Message):
    """Anti-entropy request: what the sender already has."""

    kind = "sg_digest"
    __slots__ = ("stream", "max_contig", "extras")

    def __init__(self, stream: StreamId, max_contig: int, extras: frozenset[int]) -> None:
        self.stream = stream
        self.max_contig = max_contig
        self.extras = extras

    def body_bytes(self) -> int:
        return STREAM_BYTES + SEQ_BYTES + len(self.extras) * SEQ_BYTES


class SimpleGossipNode(CyclonNode):
    """One SimpleGossip participant."""

    def __init__(
        self,
        network,
        node_id: NodeId,
        gossip_config: GossipConfig | None = None,
        *,
        anti_entropy_period: float = 0.1,
        cyclon_config: CyclonConfig | None = None,
    ) -> None:
        cfg = gossip_config if gossip_config is not None else GossipConfig()
        super().__init__(network, node_id, cyclon_config or cfg.cyclon)
        self.gossip_config = cfg
        #: stream -> {seq: payload_bytes} (serves anti-entropy pulls)
        self.store: dict[StreamId, dict[int, int]] = {}
        #: stream -> contiguous high-water mark
        self.max_contig: dict[StreamId, int] = {}
        self._anti_entropy_task = self.periodic(
            anti_entropy_period, self._anti_entropy, jitter=0.2
        )

    # ------------------------------------------------------------------
    def delivered_count(self, stream: StreamId = 0) -> int:
        return len(self.store.get(stream, ()))

    def _fanout(self) -> int:
        return self.gossip_config.effective_fanout(len(self.network.nodes))

    def _store(self, stream: StreamId, seq: int, payload_bytes: int) -> None:
        per = self.store.setdefault(stream, {})
        per[seq] = payload_bytes
        hwm = self.max_contig.get(stream, -1)
        while (hwm + 1) in per:
            hwm += 1
        self.max_contig[stream] = hwm

    # ------------------------------------------------------------------
    # Push phase: rumor mongering, infect and die
    # ------------------------------------------------------------------
    def inject(self, stream: StreamId, seq: int, payload_bytes: int) -> None:
        self.network.metrics.record_injection(stream, seq, self.sim.now)
        self._store(stream, seq, payload_bytes)
        self._push_rumor(stream, seq, payload_bytes, exclude=None, hops=0, path_delay=0.0)

    def _push_rumor(
        self,
        stream: StreamId,
        seq: int,
        payload_bytes: int,
        exclude: NodeId | None,
        hops: int,
        path_delay: float,
    ) -> None:
        peers = [p for p in self.view if p != exclude]
        fanout = min(self._fanout(), len(peers))
        for peer in self._rng.sample(peers, fanout):
            self.send(
                peer,
                Rumor(
                    stream, seq, payload_bytes,
                    hops=hops, path_delay=path_delay, sent_at=self.sim.now,
                ),
            )

    def on_sg_rumor(self, src: NodeId, msg: Rumor) -> None:
        per = self.store.get(msg.stream, {})
        hop_delay = self.sim.now - msg.sent_at
        path_delay = msg.path_delay + hop_delay
        hops = msg.hops + 1
        self.network.metrics.record_delivery(
            self.node_id, msg.stream, msg.seq, self.sim.now, src, hops, path_delay,
            msg.payload_bytes,
        )
        if msg.seq in per:
            return  # infect-and-die: duplicates are dropped, not relayed
        self._store(msg.stream, msg.seq, msg.payload_bytes)
        if msg.hot:
            self._push_rumor(
                msg.stream, msg.seq, msg.payload_bytes,
                exclude=src, hops=hops, path_delay=path_delay,
            )

    # ------------------------------------------------------------------
    # Pull phase: anti-entropy for completeness
    # ------------------------------------------------------------------
    def _anti_entropy(self) -> None:
        if not self.view:
            return
        peer = self._rng.choice(list(self.view))
        for stream in self.store.keys() | {0}:
            per = self.store.get(stream, {})
            hwm = self.max_contig.get(stream, -1)
            extras = frozenset(s for s in per if s > hwm)
            self.send(peer, Digest(stream, hwm, extras))

    def on_sg_digest(self, src: NodeId, msg: Digest) -> None:
        per = self.store.get(msg.stream)
        if not per:
            return
        have = msg.extras
        sent = 0
        for seq in sorted(per):
            if seq <= msg.max_contig or seq in have:
                continue
            self.send(
                src,
                Rumor(
                    msg.stream, seq, per[seq],
                    hops=0, path_delay=0.0, sent_at=self.sim.now, hot=False,
                ),
            )
            sent += 1
            if sent >= ANTI_ENTROPY_BATCH:
                break

    def on_crash(self) -> None:
        super().on_crash()
        self.store.clear()
        self.max_contig.clear()
