"""Plain flooding over the HyParView overlay (§II-A, Fig. 2).

"A node receiving a message for the first time from a neighbor simply
propagates it to all its other neighbors."  No deactivation, no structure:
every overlay link carries every message in at least one direction, which
is what produces the duplicate distributions of Fig. 2 — the motivation
BRISA starts from.
"""

from __future__ import annotations

from repro.config import HyParViewConfig
from repro.ids import SEQ_BYTES, NodeId, StreamId
from repro.membership.hyparview import HyParViewNode
from repro.sim.message import Message

STREAM_BYTES = 2
MEASURE_BYTES = 8


class FloodData(Message):
    """One flooded stream message."""

    kind = "flood_data"
    __slots__ = ("stream", "seq", "payload_bytes", "hops", "path_delay", "sent_at")

    def __init__(
        self,
        stream: StreamId,
        seq: int,
        payload_bytes: int,
        hops: int = 0,
        path_delay: float = 0.0,
        sent_at: float = 0.0,
    ) -> None:
        self.stream = stream
        self.seq = seq
        self.payload_bytes = payload_bytes
        self.hops = hops
        self.path_delay = path_delay
        self.sent_at = sent_at

    def body_bytes(self) -> int:
        return STREAM_BYTES + SEQ_BYTES + MEASURE_BYTES + self.payload_bytes


class FloodNode(HyParViewNode):
    """HyParView participant that floods every stream message."""

    def __init__(
        self,
        network,
        node_id: NodeId,
        hpv_config: HyParViewConfig | None = None,
    ) -> None:
        super().__init__(network, node_id, hpv_config)
        #: stream -> delivered sequence numbers
        self.delivered: dict[StreamId, set[int]] = {}

    def delivered_count(self, stream: StreamId = 0) -> int:
        return len(self.delivered.get(stream, ()))

    # ------------------------------------------------------------------
    def inject(self, stream: StreamId, seq: int, payload_bytes: int) -> None:
        self.network.metrics.record_injection(stream, seq, self.sim.now)
        self.delivered.setdefault(stream, set()).add(seq)
        self._flood(stream, seq, payload_bytes, exclude=None, hops=0, path_delay=0.0)

    def _flood(
        self,
        stream: StreamId,
        seq: int,
        payload_bytes: int,
        exclude: NodeId | None,
        hops: int,
        path_delay: float,
    ) -> None:
        peers = [peer for peer in self.active if peer != exclude]
        if peers:
            # One shared message instance for the whole fan-out: FloodData
            # is read-only at receivers, so batching is safe and skips the
            # per-peer construction + accounting of the naive loop.
            self.send_many(
                peers,
                FloodData(
                    stream, seq, payload_bytes,
                    hops=hops, path_delay=path_delay, sent_at=self.sim.now,
                ),
            )

    def on_flood_data(self, src: NodeId, msg: FloodData) -> None:
        seen = self.delivered.setdefault(msg.stream, set())
        hop_delay = self.sim.now - msg.sent_at
        path_delay = msg.path_delay + hop_delay
        hops = msg.hops + 1
        first = self.network.metrics.record_delivery(
            self.node_id, msg.stream, msg.seq, self.sim.now, src, hops, path_delay
        )
        if msg.seq in seen:
            return
        seen.add(msg.seq)
        if first:
            self._flood(
                msg.stream, msg.seq, msg.payload_bytes,
                exclude=src, hops=hops, path_delay=path_delay,
            )

    def on_crash(self) -> None:
        super().on_crash()
        self.delivered.clear()
