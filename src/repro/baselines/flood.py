"""Plain flooding over the HyParView overlay (§II-A, Fig. 2).

"A node receiving a message for the first time from a neighbor simply
propagates it to all its other neighbors."  No deactivation, no structure:
every overlay link carries every message in at least one direction, which
is what produces the duplicate distributions of Fig. 2 — the motivation
BRISA starts from.

Two delivery kernels implement that rule behind the same :class:`Network`
API (DESIGN.md §9):

- :class:`FloodNode` — the readable reference implementation: per-node
  Python object state (``delivered`` dict-of-sets, per-reception
  ``Metrics.record_delivery`` bookkeeping).
- :class:`SlottedFloodNode` + :class:`SlottedFloodKernel` — the scale
  kernel: delivery state lives in flat arrays indexed by a dense node
  *slot*, one :class:`_SlotPlane` per stream (seen byte-maps per
  sequence number, delivered/duplicate counters, payload-byte totals)
  shared by all nodes of a run, with per-slot fan-out rows maintained
  from membership notifications and bulk-installable from PR 3's CSR
  topology arrays.  Draw-for-draw
  equivalent to the object path — same delivery sets, duplicate counts,
  byte totals and timestamps under zero-cost and occupancy-charging
  latency models — pinned by tests/test_slotted_parity.py.
"""

from __future__ import annotations

from array import array

from repro.config import HyParViewConfig
from repro.ids import SEQ_BYTES, NodeId, StreamId
from repro.membership.hyparview import HyParViewNode
from repro.sim.message import Message

STREAM_BYTES = 2
MEASURE_BYTES = 8


class FloodData(Message):
    """One flooded stream message."""

    kind = "flood_data"
    __slots__ = ("stream", "seq", "payload_bytes", "hops", "path_delay", "sent_at")

    def __init__(
        self,
        stream: StreamId,
        seq: int,
        payload_bytes: int,
        hops: int = 0,
        path_delay: float = 0.0,
        sent_at: float = 0.0,
    ) -> None:
        self.stream = stream
        self.seq = seq
        self.payload_bytes = payload_bytes
        self.hops = hops
        self.path_delay = path_delay
        self.sent_at = sent_at

    def body_bytes(self) -> int:
        return STREAM_BYTES + SEQ_BYTES + MEASURE_BYTES + self.payload_bytes


class FloodNode(HyParViewNode):
    """HyParView participant that floods every stream message."""

    def __init__(
        self,
        network,
        node_id: NodeId,
        hpv_config: HyParViewConfig | None = None,
    ) -> None:
        super().__init__(network, node_id, hpv_config)
        #: stream -> delivered sequence numbers
        self.delivered: dict[StreamId, set[int]] = {}

    def delivered_count(self, stream: StreamId = 0) -> int:
        return len(self.delivered.get(stream, ()))

    # ------------------------------------------------------------------
    def inject(self, stream: StreamId, seq: int, payload_bytes: int) -> None:
        self.network.metrics.record_injection(stream, seq, self.sim.now)
        self.delivered.setdefault(stream, set()).add(seq)
        self._flood(stream, seq, payload_bytes, exclude=None, hops=0, path_delay=0.0)

    def _flood(
        self,
        stream: StreamId,
        seq: int,
        payload_bytes: int,
        exclude: NodeId | None,
        hops: int,
        path_delay: float,
    ) -> None:
        peers = [peer for peer in self.active if peer != exclude]
        if peers:
            # One shared message instance for the whole fan-out: FloodData
            # is read-only at receivers, so batching is safe and skips the
            # per-peer construction + accounting of the naive loop.
            self.send_many(
                peers,
                FloodData(
                    stream, seq, payload_bytes,
                    hops=hops, path_delay=path_delay, sent_at=self.sim.now,
                ),
            )

    def on_flood_data(self, src: NodeId, msg: FloodData) -> None:
        seen = self.delivered.setdefault(msg.stream, set())
        hop_delay = self.sim.now - msg.sent_at
        path_delay = msg.path_delay + hop_delay
        hops = msg.hops + 1
        first = self.network.metrics.record_delivery(
            self.node_id, msg.stream, msg.seq, self.sim.now, src, hops, path_delay,
            msg.payload_bytes,
        )
        if msg.seq in seen:
            return
        seen.add(msg.seq)
        if first:
            self._flood(
                msg.stream, msg.seq, msg.payload_bytes,
                exclude=src, hops=hops, path_delay=path_delay,
            )

    def on_crash(self) -> None:
        super().on_crash()
        self.delivered.clear()


# ----------------------------------------------------------------------
# Slotted delivery kernel (DESIGN.md §9)
# ----------------------------------------------------------------------
#: Seen-map cell states.  ``_INJECTED`` marks a sequence the node itself
#: injected (locally delivered, but not yet a *recorded reception* — the
#: source's first echo from a neighbour still counts as a first delivery,
#: matching ``Metrics.record_delivery`` semantics in the object path).
_UNSEEN, _INJECTED, _RECEIVED = 0, 1, 2


class _SlotPlane:
    """Per-stream *slot plane*: one stream's flat delivery state.

    A plane is the slotted analogue of one stream shard — seen maps
    (one ``bytearray`` cell per slot per sequence) and per-slot
    delivered/duplicate/payload counters, all indexed by the kernel's
    dense node slots.  The kernel keeps one plane per active stream id
    (dense plane index, DESIGN.md §10), so K concurrent streams stay on
    the array path with zero shared-dict contention between streams.
    """

    __slots__ = ("stream", "rows", "delivered", "duplicates", "payload_bytes")

    def __init__(self, stream: StreamId, capacity: int) -> None:
        self.stream = stream
        #: Seen maps indexed by seq; one byte cell per slot.
        self.rows: list[bytearray] = []
        zeros = bytes(8 * capacity)
        #: Distinct sequence numbers delivered per slot (injections included).
        self.delivered = array("q", zeros)
        #: Duplicate receptions per slot on this stream.
        self.duplicates = array("q", zeros)
        #: Payload bytes of first-time receptions per slot.
        self.payload_bytes = array("q", zeros)


class SlottedFloodKernel:
    """Flat-array delivery state shared by every :class:`SlottedFloodNode`.

    At xxl populations the dissemination cost is per-delivery Python
    handler work, not the engine: every reception walks ``delivered``
    dict-of-sets plus the ``Metrics.record_delivery`` nested dicts.  This
    kernel replaces all of it with arrays indexed by a dense *slot*:

    - one :class:`_SlotPlane` per stream id (resolved through a dense
      plane index, not ad-hoc ``(stream, seq)`` dict keys): the seen
      maps (``_UNSEEN``/``_INJECTED``/``_RECEIVED`` byte cells) and the
      per-slot delivered/duplicate/payload counters of that stream;
    - ``rx_bytes`` — wire bytes received per slot across all streams;
    - ``fanout_rows`` — per-slot peer-id lists mirroring the node's
      active view in insertion order, maintained from membership
      notifications and bulk-installable from a :class:`CSRTopology`
      (the overlay is shared by every stream, so rows are plane-free).

    Slots are recycled through a free list: :meth:`release` (called from
    ``SlottedFloodNode.on_crash``, i.e. under :meth:`Network.crash`)
    zeroes the slot's cells in *every* plane before the slot can be
    handed to a churn joiner, so a recycled slot starts exactly like a
    fresh object node on every stream.

    When the run's :class:`Metrics` records deliveries (small/parity
    runs), the kernel mirrors every reception into
    ``Metrics.record_delivery`` exactly like the object path, so delivery
    records — timestamps, senders, hops, path delays — are directly
    comparable.  At scale (``record_deliveries=False``) the arrays are
    authoritative and the per-reception dict work disappears entirely.
    """

    def __init__(self, network) -> None:
        self.network = network
        self.sim = network.sim
        self.metrics = network.metrics
        #: Mirror receptions into Metrics (parity/record mode)?
        self._mirror = network.metrics.record_deliveries
        self.slot_of: dict[NodeId, int] = {}
        self._free: list[int] = []
        self.capacity = 0
        #: Wire bytes received per slot on the fan-sink path (the slotted
        #: stand-in for ``Metrics.bytes_received`` at scale; in mirror
        #: mode Metrics is fed too and the two agree).
        self.rx_bytes = array("q")
        #: Per-slot live peer ids, in active-view insertion order.
        self.fanout_rows: list[list[NodeId]] = []
        #: While True, membership notifications skip per-peer row
        #: appends — a bulk bootstrap builds the rows in one
        #: :meth:`install_rows` pass over the CSR arrays instead.
        self.bulk_rows = False
        #: Slot planes in dense-index order; one per stream ever seen.
        self.planes: list[_SlotPlane] = []
        #: stream id -> dense plane index.
        self.plane_of: dict[StreamId, int] = {}
        #: Total receptions processed (first deliveries + duplicates).
        self.receptions = 0
        # Whole fused fan-outs of flood data land in one batched call
        # (Network.register_fan_sink, DESIGN.md §9) instead of one
        # handle_message per receiver.  Fused fan events exist only on
        # the uniform zero-cost path, so on_fan may forward through
        # send_fan_unchecked unconditionally.
        network.register_fan_sink(FloodData.kind, self.on_fan)

    # -- slot lifecycle -------------------------------------------------
    def attach(self, node_id: NodeId) -> int:
        """Allocate (or recycle) a slot for ``node_id``."""
        free = self._free
        if free:
            slot = free.pop()
        else:
            slot = self.capacity
            self.capacity += 1
            self.rx_bytes.append(0)
            self.fanout_rows.append([])
            for plane in self.planes:
                plane.delivered.append(0)
                plane.duplicates.append(0)
                plane.payload_bytes.append(0)
                for row in plane.rows:
                    row.append(_UNSEEN)
        self.slot_of[node_id] = slot
        return slot

    def release(self, node_id: NodeId, slot: int) -> None:
        """Return a crashed node's slot to the free list, zeroed in
        every plane."""
        if self.slot_of.pop(node_id, None) is None:
            return
        self.rx_bytes[slot] = 0
        self.fanout_rows[slot] = []
        for plane in self.planes:
            plane.delivered[slot] = 0
            plane.duplicates[slot] = 0
            plane.payload_bytes[slot] = 0
            for row in plane.rows:
                row[slot] = _UNSEEN
        self._free.append(slot)

    def row_append(self, slot: int, peer: NodeId) -> None:
        """Record a new live peer in ``slot``'s fan-out row.

        Row mutations funnel through this pair of methods (rather than
        poking ``fanout_rows`` directly) so subclasses that keep derived
        per-row state — the vectorized kernel caches numpy mirrors —
        can invalidate it at the mutation site."""
        self.fanout_rows[slot].append(peer)

    def row_remove(self, slot: int, peer: NodeId) -> None:
        """Drop ``peer`` from ``slot``'s fan-out row (no-op when absent)."""
        try:
            self.fanout_rows[slot].remove(peer)
        except ValueError:
            pass

    def install_rows(self, ids, topo) -> None:
        """Bulk-build the fan-out rows from CSR adjacency arrays.

        ``topo`` is a :class:`repro.experiments.bootstrap.CSRTopology`
        over ``ids`` (the i-th row describes ``ids[i]``).  Row order
        matches what :meth:`HyParViewNode.install_overlay` produces from
        the same arrays, so rows built here are identical to the ones
        the membership notifications would have accumulated — set
        :attr:`bulk_rows` around the view installation so that work is
        skipped rather than redone."""
        offsets = topo.offsets
        neighbors = topo.neighbors
        rows = self.fanout_rows
        slot_of = self.slot_of
        for i, nid in enumerate(ids):
            rows[slot_of[nid]] = [
                ids[j] for j in neighbors[offsets[i] : offsets[i + 1]]
            ]

    # -- slot planes ----------------------------------------------------
    def plane(self, stream: StreamId) -> _SlotPlane:
        """The slot plane for ``stream`` (created on first touch)."""
        idx = self.plane_of.get(stream)
        if idx is None:
            idx = self.plane_of[stream] = len(self.planes)
            self.planes.append(_SlotPlane(stream, self.capacity))
        return self.planes[idx]

    def _row(self, plane: _SlotPlane, seq: int) -> bytearray:
        rows = plane.rows
        while len(rows) <= seq:
            rows.append(bytearray(self.capacity))
        return rows[seq]

    def delivered_count(self, slot: int, stream: StreamId) -> int:
        """Distinct sequence numbers delivered at ``slot`` on ``stream``
        (exact walk of the stream plane's seen maps; the hot path keeps
        only the per-slot counters)."""
        idx = self.plane_of.get(stream)
        if idx is None:
            return 0
        return sum(1 for row in self.planes[idx].rows if row[slot])

    # -- cross-plane slot aggregates (tests / parity checks) -------------
    def slot_delivered(self, slot: int) -> int:
        """Distinct (stream, seq) deliveries at ``slot`` across planes —
        the object path's ``FloodNode.delivered`` total size."""
        return sum(plane.delivered[slot] for plane in self.planes)

    def slot_duplicates(self, slot: int) -> int:
        """Duplicate receptions at ``slot`` across planes
        (``Metrics.duplicates[node]`` semantics)."""
        return sum(plane.duplicates[slot] for plane in self.planes)

    def slot_payload_bytes(self, slot: int) -> int:
        """First-reception payload bytes at ``slot`` across planes."""
        return sum(plane.payload_bytes[slot] for plane in self.planes)

    # -- delivery hot path ----------------------------------------------
    def on_fan(self, src: NodeId, dsts: list[NodeId], msg: FloodData, size: int) -> None:
        """Process one whole fused fan-out (the Network fan sink).

        Replaces the per-receiver ``account_receive`` + ``handle_message``
        loop of the uniform zero-cost path: the seen map, counters and
        message-derived values are bound once per fan-out and every
        reception is a handful of array operations.  Per-destination
        order, dead-endpoint drops and (in mirror mode) Metrics calls
        exactly match the generic loop over object nodes.
        """
        stream = msg.stream
        seq = msg.seq
        plane = self.plane(stream)
        rows = plane.rows
        row = rows[seq] if seq < len(rows) else self._row(plane, seq)
        slot_of = self.slot_of
        delivered = plane.delivered
        duplicates = plane.duplicates
        payload_totals = plane.payload_bytes
        rx_bytes = self.rx_bytes
        fanout_rows = self.fanout_rows
        mirror = self._mirror
        metrics = self.metrics
        network = self.network
        nodes = network.nodes
        now = self.sim.now
        hops = msg.hops + 1
        path_delay = msg.path_delay + (now - msg.sent_at)
        payload = msg.payload_bytes
        # Every first-deliverer of this fan re-floods identical content
        # (same hop count, path delay and send instant): one shared
        # forward message serves them all, like any fan-out share.
        fwd = None
        fwd_size = 0
        # on_fan is reachable only through a fused fan event, which the
        # network schedules solely on the uniform zero-cost path — the
        # path send_fan_unchecked implements.  The kernel guarantees the
        # invariants send_many would check: live sender, no self-sends,
        # non-empty snapshot targets.
        fan_send = network.send_fan_unchecked
        processed = 0
        for dst in dsts:
            slot = slot_of.get(dst)
            if slot is None:
                # Crashed (slot released) or not kernel-attached: fall
                # back to the generic single-delivery semantics.
                node = nodes.get(dst)
                if node is None or not node.alive:
                    network._drop(src, dst)
                else:
                    metrics.account_receive(dst, size)
                    node.handle_message(src, msg)
                continue
            processed += 1
            rx_bytes[slot] += size
            if mirror:
                metrics.account_receive(dst, size)
                metrics.record_delivery(
                    dst, stream, seq, now, src, hops, path_delay, payload
                )
            state = row[slot]
            if state == _RECEIVED:
                duplicates[slot] += 1
                continue
            row[slot] = _RECEIVED
            if state == _INJECTED:
                # Source echo: recorded reception, no re-flood.
                continue
            delivered[slot] += 1
            payload_totals[slot] += payload
            targets = [p for p in fanout_rows[slot] if p != src]
            if targets:
                if fwd is None:
                    fwd = FloodData(
                        stream, seq, payload,
                        hops=hops, path_delay=path_delay, sent_at=now,
                    )
                    fwd_size = fwd.size_bytes()
                fan_send(dst, targets, fwd, fwd_size)
        self.receptions += processed

    def inject(self, node: "SlottedFloodNode", stream: StreamId, seq: int,
               payload_bytes: int) -> None:
        self.metrics.record_injection(stream, seq, self.sim.now)
        plane = self.plane(stream)
        row = self._row(plane, seq)
        slot = node.slot
        if row[slot] == _UNSEEN:
            row[slot] = _INJECTED
            plane.delivered[slot] += 1
        self._fan(node, slot, stream, seq, payload_bytes, None, 0, 0.0)

    def on_data(self, node: "SlottedFloodNode", src: NodeId, msg: FloodData) -> None:
        self.receptions += 1
        stream = msg.stream
        seq = msg.seq
        plane = self.plane(stream)
        rows = plane.rows
        row = rows[seq] if seq < len(rows) else self._row(plane, seq)
        slot = node.slot
        state = row[slot]
        if state == _RECEIVED:
            plane.duplicates[slot] += 1
            if self._mirror:
                now = self.sim.now
                self.metrics.record_delivery(
                    node.node_id, stream, seq, now, src,
                    msg.hops + 1, msg.path_delay + (now - msg.sent_at),
                    msg.payload_bytes,
                )
            return
        row[slot] = _RECEIVED
        now = self.sim.now
        hops = msg.hops + 1
        path_delay = msg.path_delay + (now - msg.sent_at)
        if self._mirror:
            self.metrics.record_delivery(
                node.node_id, stream, seq, now, src, hops, path_delay,
                msg.payload_bytes,
            )
        if state == _INJECTED:
            # The source hearing its own message back: a recorded first
            # reception, but locally delivered already — no re-flood
            # (the object path returns on ``seq in seen``).
            return
        plane.delivered[slot] += 1
        plane.payload_bytes[slot] += msg.payload_bytes
        self._fan(node, slot, stream, seq, msg.payload_bytes, src, hops, path_delay)

    def _fan(
        self,
        node: "SlottedFloodNode",
        slot: int,
        stream: StreamId,
        seq: int,
        payload_bytes: int,
        exclude: NodeId | None,
        hops: int,
        path_delay: float,
    ) -> None:
        peers = self.fanout_rows[slot]
        if exclude is not None:
            peers = [p for p in peers if p != exclude]
        if peers:
            self.network.send_many(
                node.node_id,
                peers,
                FloodData(
                    stream, seq, payload_bytes,
                    hops=hops, path_delay=path_delay, sent_at=self.sim.now,
                ),
            )


class SlottedFloodNode(HyParViewNode):
    """HyParView flood participant backed by a :class:`SlottedFloodKernel`.

    Membership (views, repair, promotion) is the unmodified HyParView
    machinery — identical to :class:`FloodNode`'s, and consuming the same
    RNG streams (``rng_kind``) so slotted and object runs of one seed see
    the same overlay evolution under churn.  Only the delivery path is
    slotted: ``FloodData`` receptions short-circuit the ``on_<kind>``
    dispatch and hit the kernel arrays directly.
    """

    #: Consume the RNG streams of the reference implementation: the two
    #: kernels must be draw-for-draw interchangeable within one seed.
    rng_kind = "FloodNode"

    def __init__(
        self,
        network,
        node_id: NodeId,
        hpv_config: HyParViewConfig | None = None,
        *,
        kernel: SlottedFloodKernel,
    ) -> None:
        self.kernel = kernel
        self.slot = kernel.attach(node_id)
        super().__init__(network, node_id, hpv_config)

    def delivered_count(self, stream: StreamId = 0) -> int:
        return self.kernel.delivered_count(self.slot, stream)

    def handle_message(self, src: NodeId, msg: Message) -> None:
        # One type probe replaces the ``getattr("on_" + kind)`` dispatch
        # on the dominant message kind; everything else (membership
        # traffic) takes the regular path.
        if type(msg) is FloodData:
            if self.alive:
                self.kernel.on_data(self, src, msg)
            return
        super().handle_message(src, msg)

    def inject(self, stream: StreamId, seq: int, payload_bytes: int) -> None:
        self.kernel.inject(self, stream, seq, payload_bytes)

    # -- keep the kernel's fan-out rows mirroring the active view -------
    def neighbor_up(self, peer: NodeId) -> None:
        # Fired only on genuine inserts (HyParView guards duplicates), in
        # active-view insertion order — the row stays order-identical to
        # ``[p for p in self.active]``.  During a bulk bootstrap the
        # rows come from one install_rows pass instead.
        kernel = self.kernel
        if not kernel.bulk_rows:
            kernel.row_append(self.slot, peer)

    def neighbor_down(self, peer: NodeId, failure: bool) -> None:
        self.kernel.row_remove(self.slot, peer)

    def on_crash(self) -> None:
        super().on_crash()
        self.kernel.release(self.node_id, self.slot)
