"""Comparison protocols of §III-D.

Four points on the efficiency/robustness design spectrum:

- :class:`repro.baselines.flood.FloodNode` — plain flooding over
  HyParView; the duplicates baseline of Fig. 2 and BRISA's own fallback.
- :class:`repro.baselines.simplegossip.SimpleGossipNode` — the robustness
  end: Cyclon + push rumor mongering (fanout ``ln N``, infect-and-die) +
  anti-entropy pull for completeness.
- :class:`repro.baselines.simpletree.SimpleTreeNode` — the efficiency
  end: a centralized random tree with push dissemination and no support
  for dynamism.
- :class:`repro.baselines.tag.TagNode` — the closest hybrid competitor:
  a join-time-sorted linked list with 2-hop knowledge, gossip partners,
  and pull-based dissemination.
"""

from repro.baselines.flood import FloodNode
from repro.baselines.plumtree import PlumTreeNode
from repro.baselines.simplegossip import SimpleGossipNode
from repro.baselines.simpletree import SimpleTreeCoordinator, SimpleTreeNode
from repro.baselines.tag import TagNode, TagTracker

__all__ = [
    "FloodNode",
    "PlumTreeNode",
    "SimpleGossipNode",
    "SimpleTreeCoordinator",
    "SimpleTreeNode",
    "TagNode",
    "TagTracker",
]
