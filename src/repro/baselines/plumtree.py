"""PlumTree — Epidemic Broadcast Trees (Leitão, Pereira, Rodrigues 2007).

BRISA's closest relative and §V's main point of comparison: PlumTree
also prunes an embedded spanning tree out of an unstructured overlay by
detecting duplicates, but keeps the pruned links alive through *lazy
push* — every message's id is advertised (``IHave``) over inactive
links, and a missing-payload timer triggers a ``Graft`` that both
repairs the tree and recovers the message.

The §V trade-off this module lets the benches measure:

    "Due to the use of message advertisements to manage faults both
    PlumTree and GoCast fall in an undesirable tradeoff: either
    advertisements are sent sparingly to conserve bandwidth with an
    impact on recovery time, or advertisements are eagerly sent imposing
    a constant management overhead."

BRISA's steady state spends zero control messages per data message;
PlumTree pays one ``IHave`` per lazy link per message, forever.

Implementation follows the original paper over our HyParView layer:
``eager`` / ``lazy`` peer sets, PRUNE on duplicates, GRAFT on missing
payloads, with the missing-timer set from the configured interval.
"""

from __future__ import annotations

from repro.config import HyParViewConfig
from repro.ids import SEQ_BYTES, NodeId, StreamId
from repro.membership.hyparview import HyParViewNode
from repro.sim.message import Message

STREAM_BYTES = 2
MEASURE_BYTES = 8


class Gossip(Message):
    """Eager push: full payload."""

    kind = "pt_gossip"
    __slots__ = ("stream", "seq", "payload_bytes", "hops", "path_delay", "sent_at")

    def __init__(
        self,
        stream: StreamId,
        seq: int,
        payload_bytes: int,
        hops: int = 0,
        path_delay: float = 0.0,
        sent_at: float = 0.0,
    ) -> None:
        self.stream = stream
        self.seq = seq
        self.payload_bytes = payload_bytes
        self.hops = hops
        self.path_delay = path_delay
        self.sent_at = sent_at

    def body_bytes(self) -> int:
        return STREAM_BYTES + SEQ_BYTES + MEASURE_BYTES + self.payload_bytes


class IHave(Message):
    """Lazy push: message id only."""

    kind = "pt_ihave"
    __slots__ = ("stream", "seq")

    def __init__(self, stream: StreamId, seq: int) -> None:
        self.stream = stream
        self.seq = seq

    def body_bytes(self) -> int:
        return STREAM_BYTES + SEQ_BYTES


class Prune(Message):
    kind = "pt_prune"
    __slots__ = ("stream",)

    def __init__(self, stream: StreamId) -> None:
        self.stream = stream

    def body_bytes(self) -> int:
        return STREAM_BYTES


class Graft(Message):
    """Repair: re-attach the link eagerly and request a missing message."""

    kind = "pt_graft"
    __slots__ = ("stream", "seq")

    def __init__(self, stream: StreamId, seq: int) -> None:
        self.stream = stream
        self.seq = seq

    def body_bytes(self) -> int:
        return STREAM_BYTES + SEQ_BYTES


class PlumTreeNode(HyParViewNode):
    """One PlumTree participant."""

    def __init__(
        self,
        network,
        node_id: NodeId,
        hpv_config: HyParViewConfig | None = None,
        *,
        missing_timeout: float = 0.3,
    ) -> None:
        super().__init__(network, node_id, hpv_config)
        self.missing_timeout = missing_timeout
        #: Per-stream eager/lazy split of the current neighbours.
        self.lazy: dict[StreamId, set[NodeId]] = {}
        #: stream -> {seq: payload_bytes}
        self.store: dict[StreamId, dict[int, int]] = {}
        #: (stream, seq) -> peers that advertised it (graft candidates).
        self._announced: dict[tuple[StreamId, int], list[NodeId]] = {}
        #: (stream, seq) already being waited for.
        self._pending_graft: set[tuple[StreamId, int]] = set()

    # ------------------------------------------------------------------
    def delivered_count(self, stream: StreamId = 0) -> int:
        return len(self.store.get(stream, ()))

    def eager_peers(self, stream: StreamId) -> list[NodeId]:
        lazy = self.lazy.setdefault(stream, set())
        return [p for p in self.active if p not in lazy]

    def _store(self, stream: StreamId, seq: int, payload: int) -> None:
        self.store.setdefault(stream, {})[seq] = payload

    # ------------------------------------------------------------------
    # Broadcast
    # ------------------------------------------------------------------
    def inject(self, stream: StreamId, seq: int, payload_bytes: int) -> None:
        self.network.metrics.record_injection(stream, seq, self.sim.now)
        self._store(stream, seq, payload_bytes)
        self._push(stream, seq, payload_bytes, exclude=None, hops=0, path_delay=0.0)

    def _push(
        self,
        stream: StreamId,
        seq: int,
        payload_bytes: int,
        exclude: NodeId | None,
        hops: int,
        path_delay: float,
    ) -> None:
        lazy = self.lazy.setdefault(stream, set())
        for peer in self.active:
            if peer == exclude:
                continue
            if peer in lazy:
                self.send(peer, IHave(stream, seq))
            else:
                self.send(
                    peer,
                    Gossip(
                        stream, seq, payload_bytes,
                        hops=hops, path_delay=path_delay, sent_at=self.sim.now,
                    ),
                )

    def on_pt_gossip(self, src: NodeId, msg: Gossip) -> None:
        per = self.store.get(msg.stream, {})
        hop_delay = self.sim.now - msg.sent_at
        path_delay = msg.path_delay + hop_delay
        hops = msg.hops + 1
        self.network.metrics.record_delivery(
            self.node_id, msg.stream, msg.seq, self.sim.now, src, hops, path_delay,
            msg.payload_bytes,
        )
        lazy = self.lazy.setdefault(msg.stream, set())
        if msg.seq in per:
            # Duplicate: prune the link (move the sender to lazy push).
            if src not in lazy:
                lazy.add(src)
                self.send(src, Prune(msg.stream))
            return
        self._pending_graft.discard((msg.stream, msg.seq))
        self._store(msg.stream, msg.seq, msg.payload_bytes)
        lazy.discard(src)  # an eager provider proves itself useful
        self._push(
            msg.stream, msg.seq, msg.payload_bytes,
            exclude=src, hops=hops, path_delay=path_delay,
        )

    def on_pt_prune(self, src: NodeId, msg: Prune) -> None:
        self.lazy.setdefault(msg.stream, set()).add(src)

    # ------------------------------------------------------------------
    # Lazy push + repair
    # ------------------------------------------------------------------
    def on_pt_ihave(self, src: NodeId, msg: IHave) -> None:
        key = (msg.stream, msg.seq)
        if msg.seq in self.store.get(msg.stream, {}):
            return
        self._announced.setdefault(key, []).append(src)
        if key not in self._pending_graft:
            self._pending_graft.add(key)
            self.after(self.missing_timeout, self._graft_timer, msg.stream, msg.seq)

    def _graft_timer(self, stream: StreamId, seq: int) -> None:
        key = (stream, seq)
        if key not in self._pending_graft:
            return  # payload arrived in time
        if seq in self.store.get(stream, {}):
            self._pending_graft.discard(key)
            return
        candidates = [
            p for p in self._announced.get(key, []) if self.is_active(p)
        ]
        if not candidates:
            self._pending_graft.discard(key)
            return
        target = candidates[0]
        self._announced[key] = candidates[1:]
        # Graft: the link becomes eager again and the payload is pulled.
        self.lazy.setdefault(stream, set()).discard(target)
        self.send(target, Graft(stream, seq))
        # Re-arm in case the grafted peer fails too.
        self.after(self.missing_timeout, self._graft_timer, stream, seq)

    def on_pt_graft(self, src: NodeId, msg: Graft) -> None:
        self.lazy.setdefault(msg.stream, set()).discard(src)
        payload = self.store.get(msg.stream, {}).get(msg.seq)
        if payload is not None:
            self.send(
                src,
                Gossip(msg.stream, msg.seq, payload, sent_at=self.sim.now),
            )

    # ------------------------------------------------------------------
    def neighbor_down(self, peer: NodeId, failure: bool) -> None:
        for lazy in self.lazy.values():
            lazy.discard(peer)

    def on_crash(self) -> None:
        super().on_crash()
        self.store.clear()
        self.lazy.clear()
        self._announced.clear()
        self._pending_graft.clear()
