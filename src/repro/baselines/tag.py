"""TAG: tree-assisted gossip (Liu & Zhou 2006), as described in §III-D.

"TAG maintains a tree and a gossip-based overlay ... Nodes are further
organized in a linked list structure sorted by joining time, with nodes
maintaining information about their predecessors/successors up to two
hops away.  New nodes traverse this list backwards until an application
specific condition is met.  In the traversal, nodes pick k random peers
to form the gossip overlay and join the tree by choosing a suitable
parent.  Upon parent failures, nodes update the linked list and traverse
it to find a new parent and thus restore the tree.  With respect to
dissemination, TAG uses a pull-based approach with nodes pulling content
both from the tree and from gossip neighbors."

Key modelled behaviours (they drive Figs. 12–14 and Table II):

- **Per-hop connection setup.**  The traversal opens a fresh TCP
  connection at every hop (setup = 1.5 RTT), tears it down, and moves on;
  on wide-area latencies this dominates construction time (Fig. 13) —
  unlike BRISA, which keeps its HyParView connections open.
- **Pull-based dissemination.**  A child pulls from its parent every
  ``pull_period`` seconds, fetching at most ``pull_batch`` messages, and
  prefetches from a random gossip partner every ``gossip_pull_period``.
  The extra round trips and the bounded fetch rate are what double TAG's
  dissemination latency in Table II.
- **List-based repair.**  A failed parent/predecessor is patched from the
  2-hop list knowledge (soft); two consecutive failures break the list
  and force a re-insertion traversal (hard) — the recovery-delay CDF of
  Fig. 14.

The join entry point (learning the current list tail) goes through a
zero-cost tracker object, standing in for the rendezvous service any
join-time-ordered system needs; all traversal traffic and connection
setups are fully accounted.
"""

from __future__ import annotations

from typing import Optional

from repro.config import TagConfig
from repro.ids import NODE_ID_BYTES, SEQ_BYTES, NodeId, StreamId
from repro.sim.message import Message
from repro.sim.node import ProtocolNode
from repro.sim.transport import TransientConnCost

STREAM_BYTES = 2
MEASURE_BYTES = 8


# ----------------------------------------------------------------------
# Messages
# ----------------------------------------------------------------------
class ListProbe(Message):
    """Traversal step: ask a list node for its state (capacity, pred)."""

    kind = "tag_probe"
    __slots__ = ()


class ListProbeReply(Message):
    kind = "tag_probe_reply"
    __slots__ = ("pred", "pred2", "has_capacity")

    def __init__(self, pred: Optional[NodeId], pred2: Optional[NodeId], has_capacity: bool) -> None:
        self.pred = pred
        self.pred2 = pred2
        self.has_capacity = has_capacity

    def body_bytes(self) -> int:
        return 2 * NODE_ID_BYTES + 1


class ListAppend(Message):
    """Attach the sender as the new list successor (tail append)."""

    kind = "tag_append"
    __slots__ = ()


class ListAppendReply(Message):
    kind = "tag_append_reply"
    __slots__ = ("pred", "pred2")

    def __init__(self, pred: Optional[NodeId], pred2: Optional[NodeId]) -> None:
        self.pred = pred
        self.pred2 = pred2

    def body_bytes(self) -> int:
        return 2 * NODE_ID_BYTES


class ListSuccUpdate(Message):
    """Propagate successor knowledge one hop back (2-hop horizon)."""

    kind = "tag_succ_update"
    __slots__ = ("succ", "succ2")

    def __init__(self, succ: Optional[NodeId], succ2: Optional[NodeId]) -> None:
        self.succ = succ
        self.succ2 = succ2

    def body_bytes(self) -> int:
        return 2 * NODE_ID_BYTES


class TreeAttach(Message):
    """Ask a node to adopt the sender as a tree child."""

    kind = "tag_attach"
    __slots__ = ()


class TreeAttachReply(Message):
    kind = "tag_attach_reply"
    __slots__ = ("accepted",)

    def __init__(self, accepted: bool) -> None:
        self.accepted = accepted

    def body_bytes(self) -> int:
        return 1


class Pull(Message):
    """Pull request: the sender's high-water mark per known stream.  The
    responder serves gaps for every stream *it* knows, so new streams are
    discovered through the regular pull path."""

    kind = "tag_pull"
    __slots__ = ("have",)

    def __init__(self, have: tuple[tuple[StreamId, int], ...]) -> None:
        self.have = have

    def body_bytes(self) -> int:
        return max(1, len(self.have)) * (STREAM_BYTES + SEQ_BYTES)


class Segment(Message):
    """Pulled content segment."""

    kind = "tag_segment"
    __slots__ = ("stream", "seq", "payload_bytes", "hops", "path_delay", "sent_at")

    def __init__(
        self,
        stream: StreamId,
        seq: int,
        payload_bytes: int,
        hops: int = 0,
        path_delay: float = 0.0,
        sent_at: float = 0.0,
    ) -> None:
        self.stream = stream
        self.seq = seq
        self.payload_bytes = payload_bytes
        self.hops = hops
        self.path_delay = path_delay
        self.sent_at = sent_at

    def body_bytes(self) -> int:
        return STREAM_BYTES + SEQ_BYTES + MEASURE_BYTES + self.payload_bytes


# ----------------------------------------------------------------------
# Tracker (join entry point)
# ----------------------------------------------------------------------
class TagTracker:
    """Rendezvous registry: remembers the current list tail.

    Zero-cost by design (see module docstring); every message the joiner
    exchanges afterwards is fully accounted.
    """

    def __init__(self) -> None:
        self.tail: Optional[NodeId] = None
        self.members: list[NodeId] = []

    def register_tail(self, node_id: NodeId) -> Optional[NodeId]:
        """Append a node; returns the previous tail (None for the first)."""
        prev = self.tail
        self.tail = node_id
        self.members.append(node_id)
        return prev

    def current_tail(self, exclude: NodeId) -> Optional[NodeId]:
        for member in reversed(self.members):
            if member != exclude:
                return member
        return None


# ----------------------------------------------------------------------
# Node
# ----------------------------------------------------------------------
class TagNode(ProtocolNode):
    """One TAG participant."""

    def __init__(
        self,
        network,
        node_id: NodeId,
        tracker: TagTracker,
        config: TagConfig | None = None,
    ) -> None:
        super().__init__(network, node_id)
        self.config = config if config is not None else TagConfig()
        self.tracker = tracker
        self.conn_cost = TransientConnCost(network, node_id, self.config.connection_setup_rtts)

        # Linked list state (2-hop horizon in both directions).
        self.pred: Optional[NodeId] = None
        self.pred2: Optional[NodeId] = None
        self.succ: Optional[NodeId] = None
        self.succ2: Optional[NodeId] = None

        # Tree state.
        self.parent: Optional[NodeId] = None
        self.children: list[NodeId] = []

        # Gossip overlay.
        self.partners: list[NodeId] = []

        # Content store.
        self.store: dict[StreamId, dict[int, int]] = {}
        self.max_contig: dict[StreamId, int] = {}
        self.hops_estimate = 0

        # Join bookkeeping.
        self.joined = False
        self.join_started: Optional[float] = None
        self.settled_at: Optional[float] = None
        self._traversal_target: Optional[NodeId] = None
        self._repairing_since: Optional[float] = None
        self._repair_hard = False

        self._pull_task = self.periodic(self.config.pull_period, self._pull_parent, jitter=0.2)
        self._gossip_task = self.periodic(
            self.config.gossip_pull_period, self._pull_partner, jitter=0.2
        )

    # ------------------------------------------------------------------
    def delivered_count(self, stream: StreamId = 0) -> int:
        return len(self.store.get(stream, ()))

    def _store(self, stream: StreamId, seq: int, payload_bytes: int) -> None:
        per = self.store.setdefault(stream, {})
        per[seq] = payload_bytes
        hwm = self.max_contig.get(stream, -1)
        while (hwm + 1) in per:
            hwm += 1
        self.max_contig[stream] = hwm

    # ------------------------------------------------------------------
    # Join: tail append + backwards traversal (§III-D)
    # ------------------------------------------------------------------
    def join(self, contact: NodeId = -1) -> None:
        """Join the system: append to the list tail, then traverse
        backwards collecting gossip partners until a parent with spare
        capacity is found.  ``contact`` is unused (tracker entry point)."""
        self.join_started = self.sim.now
        prev_tail = self.tracker.register_tail(self.node_id)
        if prev_tail is None:
            self.joined = True
            self.settled_at = self.sim.now
            return  # first node: list head and tree root
        self.conn_cost.connect(
            prev_tail,
            on_ready=lambda: self.send(prev_tail, ListAppend()),
            on_fail=lambda: self._retry_join(),
        )

    def _retry_join(self) -> None:
        if self.alive and not self.joined:
            tail = self.tracker.current_tail(self.node_id)
            if tail is None:
                self.joined = True
                self.settled_at = self.sim.now
                return
            self.conn_cost.connect(
                tail,
                on_ready=lambda: self.send(tail, ListAppend()),
                on_fail=lambda: self._retry_join(),
            )

    def on_tag_append(self, src: NodeId, msg: ListAppend) -> None:
        old_succ = self.succ
        self.succ = src
        self.succ2 = None
        self.send(src, ListAppendReply(self.node_id, self.pred))
        self.network.register_link(self.node_id, src)
        # Keep the 2-hop horizon of our predecessor up to date.
        if self.pred is not None:
            self.send(self.pred, ListSuccUpdate(self.node_id, src))

    def on_tag_append_reply(self, src: NodeId, msg: ListAppendReply) -> None:
        self.pred = msg.pred
        self.pred2 = msg.pred2
        self.network.register_link(self.node_id, src)
        self.joined = True
        # Traverse backwards for partners + parent.
        self._traverse(src)

    def on_tag_succ_update(self, src: NodeId, msg: ListSuccUpdate) -> None:
        if src == self.succ:
            self.succ2 = msg.succ

    def _traverse(self, target: NodeId) -> None:
        """One backwards traversal hop: fresh connection + probe."""
        self._traversal_target = target
        self.conn_cost.connect(
            target,
            on_ready=lambda: self.send(target, ListProbe()),
            on_fail=lambda: self._traverse_failed(target),
        )

    def _traverse_failed(self, target: NodeId) -> None:
        # Dead hop: restart the traversal from our own predecessor
        # knowledge, or re-insert from the tracker if the list is broken.
        if not self.alive:
            return
        if self.pred is not None and self.network.alive(self.pred):
            self._traverse(self.pred)
        elif self.pred2 is not None and self.network.alive(self.pred2):
            self._traverse(self.pred2)
        else:
            self._retry_join()

    def on_tag_probe(self, src: NodeId, msg: ListProbe) -> None:
        # Eligible parents need spare fan-out *and* enough buffered
        # content ahead of the joiner (the min_parent_age proxy for TAG's
        # application-specific traversal condition).
        eligible = (
            len(self.children) < self.config.max_children
            and self.uptime >= self.config.min_parent_age
        )
        self.send(src, ListProbeReply(self.pred, self.pred2, eligible))

    def on_tag_probe_reply(self, src: NodeId, msg: ListProbeReply) -> None:
        if src != self._traversal_target:
            return  # stale traversal step
        # Collect gossip partners along the traversal.
        if (
            src != self.node_id
            and src not in self.partners
            and len(self.partners) < self.config.gossip_partners
        ):
            self.partners.append(src)
        if msg.has_capacity:
            self.conn_cost.connect(
                src,
                on_ready=lambda: self.send(src, TreeAttach()),
                on_fail=lambda: self._traverse_failed(src),
            )
            return
        if msg.pred is not None:
            self._traverse(msg.pred)
        elif msg.pred2 is not None:
            self._traverse(msg.pred2)
        else:
            # Reached the list head without capacity: attach to the head.
            self.conn_cost.connect(
                src,
                on_ready=lambda: self.send(src, TreeAttach()),
                on_fail=lambda: self._retry_join(),
            )

    def on_tag_attach(self, src: NodeId, msg: TreeAttach) -> None:
        if len(self.children) < self.config.max_children or not self.children:
            if src not in self.children:
                self.children.append(src)
            self.network.register_link(self.node_id, src)
            self.send(src, TreeAttachReply(True))
        else:
            self.send(src, TreeAttachReply(False))

    def on_tag_attach_reply(self, src: NodeId, msg: TreeAttachReply) -> None:
        if not msg.accepted:
            self._traverse_failed(src)
            return
        self.parent = src
        self.network.register_link(self.node_id, src)
        if self.settled_at is None:
            self.settled_at = self.sim.now
            if self.join_started is not None:
                self.network.metrics.record_construction(
                    self.node_id, self.join_started, self.settled_at
                )
        if self._repairing_since is not None:
            duration = self.sim.now - self._repairing_since
            kind = "hard" if self._repair_hard else "soft"
            self.network.metrics.record_repair(self.sim.now, self.node_id, kind, duration)
            self._repairing_since = None
            self._repair_hard = False

    # ------------------------------------------------------------------
    # Dissemination: pull from parent + prefetch from partners
    # ------------------------------------------------------------------
    def inject(self, stream: StreamId, seq: int, payload_bytes: int) -> None:
        self.network.metrics.record_injection(stream, seq, self.sim.now)
        self._store(stream, seq, payload_bytes)

    def _have_marks(self) -> tuple[tuple[StreamId, int], ...]:
        return tuple((s, self.max_contig.get(s, -1)) for s in self.store)

    def _pull_parent(self) -> None:
        if self.parent is not None and self.network.alive(self.parent):
            self.send(self.parent, Pull(self._have_marks()))

    def _pull_partner(self) -> None:
        live = [p for p in self.partners if self.network.alive(p)]
        if not live:
            return
        peer = self._rng.choice(live)
        self.send(peer, Pull(self._have_marks()))

    def on_tag_pull(self, src: NodeId, msg: Pull) -> None:
        marks = dict(msg.have)
        for stream, per in self.store.items():
            have_up_to = marks.get(stream, -1)
            sent = 0
            for seq in sorted(per):
                if seq <= have_up_to:
                    continue
                self.send(
                    src,
                    Segment(
                        stream, seq, per[seq],
                        hops=self.hops_estimate, path_delay=0.0, sent_at=self.sim.now,
                    ),
                )
                sent += 1
                if sent >= self.config.pull_batch:
                    break

    def on_tag_segment(self, src: NodeId, msg: Segment) -> None:
        per = self.store.get(msg.stream, {})
        hops = msg.hops + 1
        self.network.metrics.record_delivery(
            self.node_id, msg.stream, msg.seq, self.sim.now, src,
            hops, msg.path_delay + (self.sim.now - msg.sent_at),
            msg.payload_bytes,
        )
        if msg.seq in per:
            return
        self.hops_estimate = max(self.hops_estimate, hops)
        self._store(msg.stream, msg.seq, msg.payload_bytes)

    # ------------------------------------------------------------------
    # Failure handling (§III-D: list update, traversal, re-insertion)
    # ------------------------------------------------------------------
    def on_link_failed(self, peer: NodeId) -> None:
        if not self.alive:
            return
        list_broken = False
        if peer == self.pred:
            if self.pred2 is not None and self.network.alive(self.pred2):
                self.pred = self.pred2
                self.pred2 = None
                self.network.register_link(self.node_id, self.pred)
                self.send(self.pred, ListSuccUpdate(self.node_id, self.succ))
            else:
                list_broken = True
                self.pred = None
                self.pred2 = None
        if peer == self.succ:
            self.succ = self.succ2 if self.succ2 is not None and self.network.alive(self.succ2) else None
            self.succ2 = None
            if self.succ is not None:
                self.network.register_link(self.node_id, self.succ)
        if peer in self.children:
            self.children.remove(peer)
        if peer in self.partners:
            self.partners.remove(peer)
        if peer == self.parent:
            self.parent = None
            self._repairing_since = self.sim.now
            if self.pred is not None and self.network.alive(self.pred):
                # Soft: restore the tree by traversing from the patched list.
                self._repair_hard = False
                self._traverse(self.pred)
            else:
                # Hard: the list is broken — re-insert through the tracker.
                self._repair_hard = True
                self._reinsert()
        elif list_broken:
            # List broken but parent alive: re-insert to repair the list.
            self._reinsert(repair_metric=False)

    def _reinsert(self, repair_metric: bool = True) -> None:
        tail = self.tracker.current_tail(self.node_id)
        if tail is None or not self.network.alive(tail):
            live = [
                m for m in self.tracker.members
                if m != self.node_id and self.network.alive(m)
            ]
            if not live:
                return
            tail = live[-1]
        self.conn_cost.connect(
            tail,
            on_ready=lambda: self.send(tail, ListAppend()),
            on_fail=lambda: self._reinsert(repair_metric),
        )

    def on_crash(self) -> None:
        super().on_crash()
        self.store.clear()
        self.children.clear()
        self.partners.clear()
