"""Lazy probabilistic broadcast: eager push to a fanout + pull recovery.

The literature-standard comparator for BRISA's §II-F repair machinery
(Guerraoui & Rodrigues' *Lazy Probabilistic Broadcast*; cf. the gossip
reference in SNIPPETS.md): instead of flooding every overlay link, a
node receiving a message for the first time *gossips* it to a small
random sample of its active view (``GOSSIP_FANOUT``), bounded by a hop
TTL.  Push alone is probabilistic — it reaches roughly ``1 - e^-K`` of
the population — so delivery is completed by a **pull phase**: stream
sequence numbers expose gaps, and a node that observes ``seq`` while
missing earlier sequences requests them from a random active neighbour
after a short detection delay, retrying (elsewhere) a bounded number of
rounds.

Honest limitations of the scheme, kept deliberately (they are what make
it a *baseline* rather than a competitor):

- **Tail blindness** — a node that misses the final sequences of a
  stream and never sees a later one cannot know they exist, so it never
  pulls them.  Delivery therefore converges below 1.0 even on lossless
  links, unlike flooding (complete by bidirectionality) or BRISA
  (parent-buffer recovery down the emerged structure).
- **No anti-entropy** — recovery is driven only by observed gaps;
  there is no periodic digest exchange, so the heap drains and the
  scenario terminates exactly when the bounded pull rounds do.

Every per-node random draw (gossip targets, pull servers) comes from the
node's own derived stream (``rng_kind``), so runs are draw-for-draw
deterministic and independent of the latency and loss streams.
"""

from __future__ import annotations

from repro.config import HyParViewConfig
from repro.ids import SEQ_BYTES, NodeId, StreamId
from repro.membership.hyparview import HyParViewNode
from repro.sim.message import Message

from repro.baselines.flood import MEASURE_BYTES, STREAM_BYTES

#: Random peers a first delivery is gossiped to (K; coverage ~ 1-e^-K).
GOSSIP_FANOUT = 3
#: Hop TTL bounding the eager-push epidemic (diameter of the synthesized
#: overlays is O(log n); 12 covers the xl rung with a wide margin).
GOSSIP_TTL = 12
#: Seconds between observing a gap and asking a neighbour for it —
#: in-flight copies usually land within a couple of hop latencies, and
#: pulling too eagerly just buys duplicates.
PULL_DELAY = 0.05
#: Bounded retry rounds per missing sequence; after these the node gives
#: up (keeps drain-to-idle finite even when every request is lost).
PULL_ROUNDS = 8
#: Missing sequences batched into one request.
PULL_BATCH = 32


class PullData(Message):
    """One eagerly-pushed stream message (gossip copy)."""

    kind = "pull_data"
    __slots__ = ("stream", "seq", "payload_bytes", "hops", "path_delay", "sent_at")

    def __init__(
        self,
        stream: StreamId,
        seq: int,
        payload_bytes: int,
        hops: int = 0,
        path_delay: float = 0.0,
        sent_at: float = 0.0,
    ) -> None:
        self.stream = stream
        self.seq = seq
        self.payload_bytes = payload_bytes
        self.hops = hops
        self.path_delay = path_delay
        self.sent_at = sent_at

    def body_bytes(self) -> int:
        return STREAM_BYTES + SEQ_BYTES + MEASURE_BYTES + self.payload_bytes


class PullRequest(Message):
    """Ask a neighbour for sequences this node observed gaps for."""

    kind = "pull_request"
    __slots__ = ("stream", "seqs")

    def __init__(self, stream: StreamId, seqs: tuple) -> None:
        self.stream = stream
        self.seqs = seqs

    def body_bytes(self) -> int:
        return STREAM_BYTES + SEQ_BYTES * len(self.seqs)


class PullReply(Message):
    """One recovered message served from a neighbour's store."""

    kind = "pull_reply"
    __slots__ = ("stream", "seq", "payload_bytes", "sent_at")

    def __init__(
        self, stream: StreamId, seq: int, payload_bytes: int, sent_at: float = 0.0
    ) -> None:
        self.stream = stream
        self.seq = seq
        self.payload_bytes = payload_bytes
        self.sent_at = sent_at

    def body_bytes(self) -> int:
        return STREAM_BYTES + SEQ_BYTES + MEASURE_BYTES + self.payload_bytes


class PullGossipNode(HyParViewNode):
    """HyParView participant running lazy push + pull recovery."""

    def __init__(
        self,
        network,
        node_id: NodeId,
        hpv_config: HyParViewConfig | None = None,
    ) -> None:
        super().__init__(network, node_id, hpv_config)
        #: stream -> delivered sequence numbers (the scale-accounting book).
        self.delivered: dict[StreamId, set[int]] = {}
        #: stream -> seq -> payload size; the store pull requests are
        #: served from (sizes only — payloads are synthetic at scale).
        self.store: dict[StreamId, dict[int, int]] = {}
        #: stream -> highest sequence ever observed.
        self.max_seen: dict[StreamId, int] = {}
        #: stream -> seq -> pull attempts spent so far.
        self.missing: dict[StreamId, dict[int, int]] = {}
        #: Streams with a pull timer currently armed.
        self._pull_armed: set[StreamId] = set()

    def delivered_count(self, stream: StreamId = 0) -> int:
        return len(self.delivered.get(stream, ()))

    # ------------------------------------------------------------------
    # Eager (probabilistic) push
    # ------------------------------------------------------------------
    def inject(self, stream: StreamId, seq: int, payload_bytes: int) -> None:
        self.network.metrics.record_injection(stream, seq, self.sim.now)
        self.delivered.setdefault(stream, set()).add(seq)
        self.store.setdefault(stream, {})[seq] = payload_bytes
        prior = self.max_seen.get(stream, -1)
        if seq > prior:
            self.max_seen[stream] = seq
        self._gossip(stream, seq, payload_bytes, exclude=None, hops=0, path_delay=0.0)

    def _gossip(
        self,
        stream: StreamId,
        seq: int,
        payload_bytes: int,
        exclude: NodeId | None,
        hops: int,
        path_delay: float,
    ) -> None:
        peers = [peer for peer in self.active if peer != exclude]
        if not peers:
            return
        if len(peers) > GOSSIP_FANOUT:
            peers = self._rng.sample(peers, GOSSIP_FANOUT)
        self.send_many(
            peers,
            PullData(
                stream, seq, payload_bytes,
                hops=hops, path_delay=path_delay, sent_at=self.sim.now,
            ),
        )

    def on_pull_data(self, src: NodeId, msg: PullData) -> None:
        hop_delay = self.sim.now - msg.sent_at
        path_delay = msg.path_delay + hop_delay
        hops = msg.hops + 1
        first = self._deliver(
            msg.stream, msg.seq, msg.payload_bytes, src, hops, path_delay
        )
        if first and hops < GOSSIP_TTL:
            self._gossip(
                msg.stream, msg.seq, msg.payload_bytes,
                exclude=src, hops=hops, path_delay=path_delay,
            )

    # ------------------------------------------------------------------
    # Delivery + gap tracking
    # ------------------------------------------------------------------
    def _deliver(
        self,
        stream: StreamId,
        seq: int,
        payload_bytes: int,
        src: NodeId,
        hops: int,
        path_delay: float,
    ) -> bool:
        """Record one reception; track gaps; return True iff first."""
        seen = self.delivered.setdefault(stream, set())
        self.network.metrics.record_delivery(
            self.node_id, stream, seq, self.sim.now, src, hops, path_delay,
            payload_bytes,
        )
        if seq in seen:
            return False
        seen.add(seq)
        self.store.setdefault(stream, {})[seq] = payload_bytes
        missing = self.missing.setdefault(stream, {})
        missing.pop(seq, None)
        prior = self.max_seen.get(stream, -1)
        if seq > prior:
            for gap in range(prior + 1, seq):
                if gap not in seen and gap not in missing:
                    missing[gap] = 0
            self.max_seen[stream] = seq
        if missing:
            self._arm_pull(stream)
        return True

    # ------------------------------------------------------------------
    # Pull recovery
    # ------------------------------------------------------------------
    def _arm_pull(self, stream: StreamId) -> None:
        if stream in self._pull_armed:
            return
        self._pull_armed.add(stream)
        self.after(PULL_DELAY, self._pull_round, stream)

    def _pull_round(self, stream: StreamId) -> None:
        self._pull_armed.discard(stream)
        missing = self.missing.get(stream)
        if not missing:
            return
        # Retire sequences whose retry budget is spent — the bound that
        # keeps drain-to-idle finite when every request or reply is lost.
        for seq in [s for s, tries in missing.items() if tries >= PULL_ROUNDS]:
            del missing[seq]
        if not missing:
            return
        batch = sorted(missing)[:PULL_BATCH]
        for seq in batch:
            missing[seq] += 1
        peers = list(self.active)
        if peers:
            server = self._rng.choice(peers)
            self.send(server, PullRequest(stream, tuple(batch)))
        # Re-arm while anything retriable remains: retries for this batch
        # and first attempts for sequences beyond the batch window.
        if any(tries < PULL_ROUNDS for tries in missing.values()):
            self._arm_pull(stream)

    def on_pull_request(self, src: NodeId, msg: PullRequest) -> None:
        held = self.store.get(msg.stream)
        if not held:
            return
        now = self.sim.now
        for seq in msg.seqs:
            payload_bytes = held.get(seq)
            if payload_bytes is not None:
                self.send(src, PullReply(msg.stream, seq, payload_bytes, sent_at=now))

    def on_pull_reply(self, src: NodeId, msg: PullReply) -> None:
        # Recovered copies are not re-gossiped (lazy push already ran its
        # course for this sequence) — recovery repairs, it does not flood.
        self._deliver(
            msg.stream, msg.seq, msg.payload_bytes, src,
            hops=1, path_delay=self.sim.now - msg.sent_at,
        )

    def on_crash(self) -> None:
        super().on_crash()
        self.delivered.clear()
        self.store.clear()
        self.max_seen.clear()
        self.missing.clear()
        self._pull_armed.clear()
