"""Protocol-node base class: message dispatch, guarded timers, lifecycle.

Concrete protocol layers (HyParView, Cyclon, BRISA, the baselines) extend
:class:`ProtocolNode`.  Messages dispatch to ``on_<kind>`` methods; timers
created through :meth:`after`/:meth:`periodic` are automatically silenced
when the node crashes, so failure injection can never resurrect a node
through a stale callback.

Nodes are written against the runtime seam (DESIGN.md §13): everything a
node does goes through ``self.clock`` (time, timers, seeded RNG streams)
and ``self.transport`` (sends, link bookkeeping, metrics).  The simulated
``Network``/``Simulator`` pair satisfies those contracts directly; the
asyncio backend substitutes real sockets and wall clocks without the node
noticing.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.errors import ProtocolError
from repro.ids import NodeId
from repro.runtime.api import MessageTransport, PeriodicTask, ScheduledHandle
from repro.sim.message import Message


class ProtocolNode:
    """A process participating in the overlay (simulated or live)."""

    #: Label under which this node's RNG stream is derived (defaults to
    #: the concrete class name).  An alternative implementation of the
    #: same protocol (e.g. the slotted flood kernel standing in for
    #: ``FloodNode``) pins this to the reference class's name so both
    #: consume identical streams — the property that makes kernel runs
    #: draw-for-draw comparable under churn.
    rng_kind: "str | None" = None

    def __init__(self, transport: MessageTransport, node_id: NodeId) -> None:
        self.transport = transport
        self.clock = transport.clock
        self.node_id = node_id
        self.alive = True
        self.birth_time = self.clock.now
        self._tasks: list[PeriodicTask] = []

    def __getattr__(self, name: str):
        # ``_rng`` is materialized on first use: deriving a per-node RNG
        # stream costs a SHA-256 plus a ``random.Random`` construction,
        # which the bulk bootstrap of 100k-node scenarios never needs for
        # nodes that stay on deterministic code paths (DESIGN.md §8).
        if name == "_rng":
            cls = type(self)
            rng = self.clock.rng("node", self.node_id, cls.rng_kind or cls.__name__)
            self._rng = rng
            return rng
        raise AttributeError(
            f"{type(self).__name__!r} object has no attribute {name!r}"
        )

    # ------------------------------------------------------------------
    # Legacy backend views (pre-seam names; simulator-backed code only)
    # ------------------------------------------------------------------
    @property
    def network(self):
        """The transport under its historical name.  Simulator-specific
        callers (kernels, testbeds, tests) still reach through this; the
        protocol modules themselves no longer do."""
        return self.transport

    @property
    def sim(self):
        """The clock under its historical name (see :attr:`network`)."""
        return self.clock

    # ------------------------------------------------------------------
    # Identity / introspection
    # ------------------------------------------------------------------
    @property
    def uptime(self) -> float:
        """Seconds since this node joined (gerontocratic strategy input)."""
        return self.clock.now - self.birth_time

    @property
    def capacity(self) -> float:
        """Relative bandwidth capacity (heterogeneity strategy input)."""
        return self.transport.capacity(self.node_id)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "up" if self.alive else "down"
        return f"<{type(self).__name__} {self.node_id} {state}>"

    # ------------------------------------------------------------------
    # Messaging
    # ------------------------------------------------------------------
    def send(self, dst: NodeId, msg: Message) -> None:
        self.transport.send(self.node_id, dst, msg)

    def send_many(self, dsts, msg: Message) -> int:
        """Fan one (immutable) message out to several peers in one call."""
        return self.transport.send_many(self.node_id, dsts, msg)

    def handle_message(self, src: NodeId, msg: Message) -> None:
        if not self.alive:
            return
        handler = getattr(self, "on_" + msg.kind, None)
        if handler is None:
            raise ProtocolError(
                f"{type(self).__name__} has no handler for message kind {msg.kind!r}"
            )
        handler(src, msg)

    # ------------------------------------------------------------------
    # Timers (all guarded on liveness)
    # ------------------------------------------------------------------
    def after(self, delay: float, fn: Callable, *args) -> ScheduledHandle:
        def guarded() -> None:
            if self.alive:
                fn(*args)

        return self.clock.schedule(delay, guarded)

    def periodic(
        self, period: float, fn: Callable[[], None], *, jitter: float = 0.1,
        start_delay: Optional[float] = None,
    ) -> PeriodicTask:
        def guarded() -> None:
            if self.alive:
                fn()

        # The RNG is handed over as a lazy provider so an unstarted task
        # (deferred-timer bootstrap) never materializes the node's stream.
        task = PeriodicTask(
            self.clock, period, guarded, jitter=jitter, rng=lambda: self._rng,
            start_delay=start_delay,
        )
        self._tasks.append(task)
        if getattr(self.transport, "autostart_timers", True):
            task.start()
        return task

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start_timers(self) -> None:
        """Arm every periodic timer created while timer autostart was
        deferred (bulk bootstrap, DESIGN.md §8).  Idempotent — already-
        running tasks are untouched — and the counterpart of the stop in
        :meth:`on_crash`, which owns the same task list."""
        for task in self._tasks:
            task.start()

    def on_crash(self) -> None:
        """Called by the network when this node fails; stops all timers."""
        self.alive = False
        for task in self._tasks:
            task.stop()
        self._tasks.clear()

    def on_link_failed(self, peer: NodeId) -> None:
        """Failure-detector notification for a registered connection."""
        # Default: nothing; the membership layer overrides.
