"""Discrete-event simulation substrate.

Stands in for the paper's two testbeds (the Splay cluster and PlanetLab):
an event engine with deterministic seeding, pluggable latency models, a
network with crash/leave semantics and TCP-like failure-detection
notifications, the Splay-style churn-trace DSL (Listing 1), and metric
collection with stabilization/dissemination phase accounting.
"""

from repro.sim.engine import EventHandle, PeriodicTask, Simulator
from repro.sim.latency import (
    ClusterLatency,
    ConstantLatency,
    LatencyModel,
    PlanetLabLatency,
)
from repro.sim.message import Message
from repro.sim.monitor import Metrics
from repro.sim.network import Network
from repro.sim.node import ProtocolNode
from repro.sim.trace import (
    ConstChurn,
    JoinRamp,
    SetReplacementRatio,
    Stop,
    Trace,
    parse_trace,
)
from repro.sim.churn import ChurnDriver, ChurnStats

__all__ = [
    "ChurnDriver",
    "ChurnStats",
    "ClusterLatency",
    "ConstantLatency",
    "ConstChurn",
    "EventHandle",
    "JoinRamp",
    "LatencyModel",
    "Message",
    "Metrics",
    "Network",
    "PeriodicTask",
    "PlanetLabLatency",
    "ProtocolNode",
    "SetReplacementRatio",
    "Simulator",
    "Stop",
    "Trace",
    "parse_trace",
]
