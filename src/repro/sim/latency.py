"""Latency models: the two testbeds of §III plus test helpers.

``ClusterLatency`` models the 15-machine 1 Gbps switched cluster (sub-ms
RTTs, light jitter).  ``PlanetLabLatency`` is the documented substitution
for the real PlanetLab slice: a synthetic wide-area model with embedded
2-D coordinates, per-node "slowness" factors (overloaded PlanetLab hosts),
directional asymmetry and a heavy lognormal jitter tail, calibrated to the
often-published PlanetLab RTT profile (median ≈ 75 ms, 95th pct ≈ 300 ms).

One-way delays are sampled per message; ``expected_owd`` exposes the mean
for delay-*estimation* (BRISA's delay-aware strategy measures RTTs from
keep-alives, which average out jitter — §II-E).
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod

from repro.ids import NodeId
from repro.sim.rng import derive, derive_seed


class LatencyModel(ABC):
    """Pairwise one-way message delay + per-node occupancy model.

    Besides propagation delay, a model describes what sending/receiving a
    message *costs a node*: NIC serialization (``size / bandwidth``) plus
    per-message processing overhead.  The network serializes these costs
    per node, which is what makes heavy fan-out (flooding) slow on loaded
    testbeds — the contention §III-B attributes Fig. 9's flood series to.
    A zero-cost model (the default for :class:`ConstantLatency`) keeps
    unit tests exact.
    """

    #: Node uplink/downlink bandwidth in bytes/s (None = infinite).
    node_bandwidth: float | None = None
    #: Per-message CPU/processing overhead in seconds.
    proc_overhead: float = 0.0
    #: Set to the delay value when ``sample()`` returns the same constant
    #: for every pair and every draw; lets the network fuse a whole
    #: fan-out (identical arrival times) into one heap event.
    uniform_delay: float | None = None
    #: Tri-state override for :meth:`occupancy_batchable`.  ``None``
    #: (default) auto-detects: un-overridden ``tx_cost``/``rx_cost`` are
    #: pure functions of ``(node, size)``, overrides are conservatively
    #: treated as sampled (same policy as :meth:`zero_cost`).  A subclass
    #: whose overrides are deterministic sets this True to keep the fused
    #: fan-out charging (DESIGN.md §8).
    deterministic_occupancy: bool | None = None

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._rng = derive(seed, "latency")

    @abstractmethod
    def expected_owd(self, src: NodeId, dst: NodeId) -> float:
        """Mean one-way delay from ``src`` to ``dst`` (seconds)."""

    def sample(self, src: NodeId, dst: NodeId) -> float:
        """Sample the one-way delay of one message (seconds)."""
        return self.expected_owd(src, dst)

    def expected_rtt(self, src: NodeId, dst: NodeId) -> float:
        """Mean round-trip time between two nodes (seconds)."""
        return self.expected_owd(src, dst) + self.expected_owd(dst, src)

    # -- occupancy -------------------------------------------------------
    def tx_cost(self, node: NodeId, size_bytes: int) -> float:
        """Time ``node`` is busy transmitting one message."""
        cost = self.proc_overhead
        if self.node_bandwidth:
            cost += size_bytes / self.node_bandwidth
        return cost

    def rx_cost(self, node: NodeId, size_bytes: int) -> float:
        """Time ``node`` is busy receiving/processing one message."""
        cost = self.proc_overhead
        if self.node_bandwidth:
            cost += size_bytes / self.node_bandwidth
        return cost

    def zero_cost(self) -> bool:
        """True when this model charges no per-node occupancy at all —
        every ``tx_cost``/``rx_cost`` is exactly zero for any message.

        The network probes this once at construction to pick the fused
        single-event delivery path (DESIGN.md §2).  A subclass overriding
        ``tx_cost``/``rx_cost`` is conservatively treated as costly.
        """
        return (
            type(self).tx_cost is LatencyModel.tx_cost
            and type(self).rx_cost is LatencyModel.rx_cost
            and not self.node_bandwidth
            and self.proc_overhead == 0.0
        )

    def occupancy_batchable(self) -> bool:
        """True when ``tx_cost``/``rx_cost`` draw no per-call randomness,
        so the network may charge a whole fan-out's occupancy in one
        pass over the sender's horizon (DESIGN.md §8).

        Probed once at :class:`Network` construction.  A subclass
        overriding the cost methods is conservatively treated as sampled
        (falling back to per-message charging — correct, just slower)
        unless it declares ``deterministic_occupancy = True``.
        """
        if self.deterministic_occupancy is not None:
            return self.deterministic_occupancy
        return (
            type(self).tx_cost is LatencyModel.tx_cost
            and type(self).rx_cost is LatencyModel.rx_cost
        )


class ConstantLatency(LatencyModel):
    """Fixed one-way delay; the unit-test workhorse."""

    def __init__(self, delay: float = 0.001, seed: int = 0) -> None:
        super().__init__(seed)
        if delay < 0:
            raise ValueError("delay must be >= 0")
        self.delay = delay
        self.uniform_delay = delay

    def expected_owd(self, src: NodeId, dst: NodeId) -> float:
        return self.delay


class OccupancyLatency(LatencyModel):
    """Constant propagation delay plus deterministic occupancy charges.

    The controlled counterpart of :class:`ConstantLatency` for the
    occupancy-charging regime (the realistic cost model of Figs. 10–12
    and of buffer-occupancy epidemic routing studies): propagation is a
    fixed ``delay`` (so ``uniform_delay`` stays set and fan-outs can
    fuse), while sending/receiving charges the node's single occupancy
    horizon.  ``tx_overhead``/``rx_overhead`` split the per-message
    processing cost by direction — the default charges receive
    processing only, modelling a node whose bottleneck is handling
    inbound messages (the regime where flooding melts down first); add
    ``node_bandwidth`` for NIC serialization in both directions.
    """

    #: The overridden costs below are pure in ``(node, size)``.
    deterministic_occupancy = True

    def __init__(
        self,
        delay: float = 0.001,
        *,
        tx_overhead: float = 0.0,
        rx_overhead: float = 0.0005,
        node_bandwidth: float | None = None,
        seed: int = 0,
    ) -> None:
        super().__init__(seed)
        if delay < 0:
            raise ValueError("delay must be >= 0")
        if tx_overhead < 0 or rx_overhead < 0:
            raise ValueError("occupancy overheads must be >= 0")
        if node_bandwidth is not None and node_bandwidth <= 0:
            raise ValueError("node_bandwidth must be positive (or None)")
        self.delay = delay
        self.uniform_delay = delay
        self.tx_overhead = tx_overhead
        self.rx_overhead = rx_overhead
        self.node_bandwidth = node_bandwidth

    def expected_owd(self, src: NodeId, dst: NodeId) -> float:
        return self.delay

    def tx_cost(self, node: NodeId, size_bytes: int) -> float:
        cost = self.tx_overhead
        if self.node_bandwidth:
            cost += size_bytes / self.node_bandwidth
        return cost

    def rx_cost(self, node: NodeId, size_bytes: int) -> float:
        cost = self.rx_overhead
        if self.node_bandwidth:
            cost += size_bytes / self.node_bandwidth
        return cost


class ClusterLatency(LatencyModel):
    """Switched-GbE cluster: ~0.15 ms one-way, small exponential jitter.

    The paper's cluster multiplexes up to 512 protocol nodes over 15
    physical machines; ``contention_jitter`` models the extra scheduling
    delay that co-located nodes experience (§III-D attributes BRISA's small
    latency gap over SimpleTree to context switching and machine sharing).
    """

    #: The paper multiplexes up to ~34 protocol nodes per physical
    #: machine: the effective per-node share of the GbE NIC and CPU is a
    #: few MB/s and a fraction of a millisecond per message.  This is the
    #: contention §III-D blames for BRISA's small latency gap over
    #: SimpleTree ("extra context switching and physical machine sharing").
    node_bandwidth = 4_000_000.0
    proc_overhead = 0.0002

    def __init__(
        self,
        base_owd: float = 0.00015,
        jitter_mean: float = 0.00005,
        contention_jitter: float = 0.0002,
        seed: int = 0,
    ) -> None:
        super().__init__(seed)
        self.base_owd = base_owd
        self.jitter_mean = jitter_mean
        self.contention_jitter = contention_jitter

    def expected_owd(self, src: NodeId, dst: NodeId) -> float:
        return self.base_owd + self.jitter_mean + self.contention_jitter / 2

    def sample(self, src: NodeId, dst: NodeId) -> float:
        jitter = self._rng.expovariate(1.0 / self.jitter_mean) if self.jitter_mean else 0.0
        contention = self._rng.uniform(0, self.contention_jitter)
        return self.base_owd + jitter + contention


class PlanetLabLatency(LatencyModel):
    """Synthetic wide-area model standing in for the PlanetLab slice.

    Construction (all derived deterministically from ``seed``):

    - each node gets a coordinate on the unit square; geographic distance
      maps to up to ``max_geo_owd`` of one-way delay,
    - each node gets a multiplicative slowness factor drawn lognormally
      (overloaded hosts are slow in *both* directions),
    - each ordered pair gets an asymmetry factor (PlanetLab routing is
      famously asymmetric — §III-B even notes that asymmetries deter
      direct-communication measurements),
    - each message adds lognormal jitter.

    With defaults the RTT distribution has median ≈ 75 ms and a tail past
    300 ms, matching published PlanetLab all-pairs studies.

    Occupancy costs model the famously overloaded PlanetLab hosts: a few
    Mbps of usable uplink and ~1.5 ms of per-message processing, both
    scaled by the node's slowness factor — this is the "heavy load" that
    makes flooding the worst Fig. 9 series and first-come selections
    noisy.
    """

    #: ~1.6 Mbps of usable per-node bandwidth on a contended slice.
    node_bandwidth = 200_000.0
    #: Per-message processing on an oversubscribed host.
    proc_overhead = 0.003
    #: The overridden costs below are pure in ``(node, size)`` — the
    #: per-node slowness factor is derived deterministically and cached.
    deterministic_occupancy = True

    def __init__(
        self,
        min_owd: float = 0.004,
        max_geo_owd: float = 0.180,
        slowness_sigma: float = 0.9,
        asymmetry: float = 0.25,
        jitter_mean: float = 0.006,
        jitter_sigma: float = 1.3,
        seed: int = 0,
    ) -> None:
        super().__init__(seed)
        self.min_owd = min_owd
        self.max_geo_owd = max_geo_owd
        self.slowness_sigma = slowness_sigma
        self.asymmetry = asymmetry
        self.jitter_mean = jitter_mean
        self.jitter_sigma = jitter_sigma
        self._coords: dict[NodeId, tuple[float, float]] = {}
        self._slowness: dict[NodeId, float] = {}

    # -- per-node deterministic attributes ------------------------------
    def _coord(self, node: NodeId) -> tuple[float, float]:
        c = self._coords.get(node)
        if c is None:
            r = derive(self.seed, "coord", node)
            c = (r.random(), r.random())
            self._coords[node] = c
        return c

    def _slow(self, node: NodeId) -> float:
        s = self._slowness.get(node)
        if s is None:
            r = derive(self.seed, "slow", node)
            s = r.lognormvariate(0.0, self.slowness_sigma)
            self._slowness[node] = s
        return s

    def _asym(self, src: NodeId, dst: NodeId) -> float:
        # Deterministic per ordered pair, mean 1.0 across both directions.
        h = derive_seed(self.seed, "asym", src, dst)
        frac = (h % 10_000) / 10_000.0
        return 1.0 + self.asymmetry * (frac - 0.5)

    # -- model -----------------------------------------------------------
    def _base_owd(self, src: NodeId, dst: NodeId) -> float:
        (x1, y1), (x2, y2) = self._coord(src), self._coord(dst)
        dist = math.hypot(x1 - x2, y1 - y2) / math.sqrt(2.0)
        geo = self.min_owd + dist * self.max_geo_owd
        pair_slow = (self._slow(src) + self._slow(dst)) / 2.0
        return geo * pair_slow * self._asym(src, dst)

    def expected_owd(self, src: NodeId, dst: NodeId) -> float:
        jitter_mean = self.jitter_mean * math.exp(self.jitter_sigma**2 / 2.0)
        return self._base_owd(src, dst) + jitter_mean

    def sample(self, src: NodeId, dst: NodeId) -> float:
        jitter = self.jitter_mean * self._rng.lognormvariate(0.0, self.jitter_sigma)
        return self._base_owd(src, dst) + jitter

    def tx_cost(self, node: NodeId, size_bytes: int) -> float:
        slow = self._slow(node)
        return self.proc_overhead * slow + size_bytes / (self.node_bandwidth / slow)

    def rx_cost(self, node: NodeId, size_bytes: int) -> float:
        return self.tx_cost(node, size_bytes)
