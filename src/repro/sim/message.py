"""Base wire-message class with size accounting.

Each concrete message declares a class-level ``kind`` string; protocol
nodes dispatch on it via ``on_<kind>`` handler methods (see
:class:`repro.sim.node.ProtocolNode`).  ``size_bytes`` drives the byte
accounting behind every bandwidth figure — subclasses add payload and
metadata (embedded paths, depth labels, digests) on top of the fixed
framing overhead.
"""

from __future__ import annotations

from repro.ids import HEADER_BYTES


class Message:
    """Base class for every simulated wire message."""

    kind: str = "message"

    __slots__ = ("_size",)

    def size_bytes(self) -> int:
        """Total on-the-wire size, including framing overhead.

        Memoized: a message is immutable once handed to the network (the
        wire abstraction — fan-outs share one instance), so the size is
        computed once even when an instance is sent many times.
        """
        try:
            return self._size
        except AttributeError:
            size = HEADER_BYTES + self.body_bytes()
            self._size = size
            return size

    def body_bytes(self) -> int:
        """Payload + metadata size; subclasses override."""
        return 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        fields = getattr(self, "__slots__", ())
        inner = ", ".join(f"{f}={getattr(self, f)!r}" for f in fields)
        return f"{type(self).__name__}({inner})"
