"""Churn driver: applies a parsed trace to a live network.

Mirrors Splay's churn-support module (§III-C): joins are spread uniformly
over ramp windows; each constant-churn period kills the configured
percentage of the live population at random instants inside the period and
joins ``replacement_ratio`` times as many fresh nodes.  The stream source
can be protected, as in the paper ("we ensure that the source node does
not fail").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional

from repro.ids import NodeId
from repro.sim.engine import Simulator
from repro.sim.network import Network
from repro.sim.trace import ConstChurn, JoinRamp, SetReplacementRatio, Stop, Trace


@dataclass
class ChurnStats:
    """Counts of applied churn operations (for sanity checks/reports)."""

    kills: int = 0
    joins: int = 0
    kill_times: list[float] = field(default_factory=list)
    join_times: list[float] = field(default_factory=list)

    def kills_per_minute(self, duration: float) -> float:
        return self.kills / (duration / 60.0) if duration > 0 else 0.0


class ChurnDriver:
    """Schedules the operations of a :class:`Trace` onto a simulator.

    ``join_fn()`` must create a fresh protocol node and start its join
    procedure (the testbed supplies it).  Kills pick uniformly among live,
    unprotected nodes and go through :meth:`Network.crash`.
    """

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        trace: Trace,
        join_fn: Callable[[], object],
        *,
        protected: Optional[Iterable[NodeId]] = None,
        seed_label: str = "churn",
    ) -> None:
        self.sim = sim
        self.network = network
        self.trace = trace
        self.join_fn = join_fn
        self.protected: set[NodeId] = set(protected or ())
        self.replacement_ratio = 1.0
        self.stats = ChurnStats()
        self.stopped = False
        self._rng = sim.rng(seed_label)

    # ------------------------------------------------------------------
    def protect(self, node_id: NodeId) -> None:
        self.protected.add(node_id)

    def apply(self) -> None:
        """Schedule every trace operation (call once, before ``sim.run``).

        All driver events go through the fire-and-forget scheduling tier
        (pooled handles, DESIGN.md §1): the driver never cancels an event
        — ``stopped`` gates the callbacks instead — so churn at xl/xxl
        populations allocates no per-kill ``EventHandle``."""
        for op in self.trace.ops:
            if isinstance(op, JoinRamp):
                self._schedule_ramp(op)
            elif isinstance(op, SetReplacementRatio):
                self.sim.call_at(op.time, self._set_ratio, op.ratio)
            elif isinstance(op, ConstChurn):
                self._schedule_churn(op)
            elif isinstance(op, Stop):
                self.sim.call_at(op.time, self._stop)

    # ------------------------------------------------------------------
    def _set_ratio(self, ratio: float) -> None:
        self.replacement_ratio = ratio

    def _stop(self) -> None:
        self.stopped = True

    def _schedule_ramp(self, op: JoinRamp) -> None:
        span = max(0.0, op.end - op.start)
        for i in range(op.count):
            t = op.start + (span * i / op.count if op.count else 0.0)
            self.sim.call_at(t, self._join)

    def _schedule_churn(self, op: ConstChurn) -> None:
        t = op.start
        while t < op.end:
            self.sim.call_at(t, self._churn_period, op, t)
            t += op.period

    def _join(self) -> None:
        if self.stopped:
            return
        self.join_fn()
        self.stats.joins += 1
        self.stats.join_times.append(self.sim.now)

    def _stochastic_round(self, expected: float) -> int:
        """Round preserving the expectation: small populations and short
        periods must still churn at the configured *rate* on average."""
        base = int(expected)
        if self._rng.random() < expected - base:
            base += 1
        return base

    def _churn_period(self, op: ConstChurn, period_start: float) -> None:
        """Apply one period of constant churn: kills + replacement joins."""
        if self.stopped:
            return
        alive = [n for n in self.network.alive_ids() if n not in self.protected]
        n_kill = self._stochastic_round(len(alive) * op.percent / 100.0)
        n_kill = min(n_kill, len(alive))
        victims = self._rng.sample(alive, n_kill) if n_kill else []
        window = min(op.period, max(0.0, op.end - period_start))
        for victim in victims:
            delay = self._rng.uniform(0.0, window)
            self.sim.call_later(delay, self._kill, victim)
        n_join = self._stochastic_round(n_kill * self.replacement_ratio)
        for _ in range(n_join):
            delay = self._rng.uniform(0.0, window)
            self.sim.call_later(delay, self._join)

    def _kill(self, victim: NodeId) -> None:
        if self.stopped or not self.network.alive(victim):
            return
        self.network.crash(victim)
        self.stats.kills += 1
        self.stats.kill_times.append(self.sim.now)
