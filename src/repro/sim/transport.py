"""Connection-setup cost modelling.

BRISA/HyParView keep persistent TCP connections to active-view neighbours,
so their messages pay only propagation delay.  TAG tears connections down
between list-traversal hops; §III-D attributes TAG's poor PlanetLab
construction time exactly to this per-hop "create a connection, exchange
messages, tear it down" cost.  :class:`TransientConnCost` exposes that
cost so the TAG implementation can model it without the simulator growing
a full TCP state machine.

(Historically this class was named ``Transport``; it was renamed when the
runtime seam (DESIGN.md §13) claimed that name for the actual message
transport contract.  The old name remains as a deprecation alias.)
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.ids import NodeId
from repro.sim.network import Network


class TransientConnCost:
    """Per-node helper for protocols with non-persistent connections."""

    def __init__(self, network: Network, node_id: NodeId, setup_rtts: float = 1.5) -> None:
        self.network = network
        self.node_id = node_id
        self.setup_rtts = setup_rtts

    def setup_delay(self, peer: NodeId) -> float:
        """Connection establishment cost towards ``peer`` (3-way handshake)."""
        return self.setup_rtts * self.network.rtt(self.node_id, peer)

    def connect(
        self,
        peer: NodeId,
        on_ready: Callable[[], None],
        on_fail: Optional[Callable[[], None]] = None,
    ) -> None:
        """Open a transient connection: ``on_ready`` fires after the setup
        delay if the peer is still alive, ``on_fail`` otherwise (with the
        same delay — a timed-out handshake is not free)."""

        def complete() -> None:
            if self.network.alive(peer):
                on_ready()
            elif on_fail is not None:
                on_fail()

        self.network.sim.schedule(self.setup_delay(peer), complete)


#: Deprecated alias (pre-runtime-seam name); use :class:`TransientConnCost`.
Transport = TransientConnCost
