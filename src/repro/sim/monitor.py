"""Metric collection with phase accounting.

The paper separates *stabilization* bandwidth (overlay + structure
bootstrap) from *dissemination* bandwidth (Fig. 12); :class:`Metrics`
tags every byte with the phase active at send time.  Delivery recording
feeds the duplicates CDF (Fig. 2), routing delays (Fig. 9), dissemination
latency (Table II) and the repair statistics (Table I, Figs. 13–14).

Recording is plain-dict hot-path cheap; the NumPy conversion happens once
at analysis time (see :mod:`repro.metrics.stats`), per the HPC guides'
"profile, then vectorize the aggregation" advice.
"""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Mapping
from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.ids import NodeId, StreamId

#: Phase names used across all experiments.
STABILIZATION = "stabilization"
DISSEMINATION = "dissemination"


@dataclass
class DeliveryRecord:
    """First delivery of one (stream, seq) at one node."""

    time: float
    sender: NodeId
    hops: int
    #: Sum of sampled per-hop delays from the source (Fig. 9's cumulative
    #: per-hop routing delay).
    path_delay: float


@dataclass
class RepairEvent:
    """One parent-repair episode at a node (§II-F, Table I, Fig. 14)."""

    time: float
    node: NodeId
    kind: str  # 'soft' | 'hard'
    duration: float  # detection -> new parent active
    stream: StreamId = 0


@dataclass
class ConstructionProbe:
    """Structure construction interval at one node (Fig. 13)."""

    node: NodeId
    start: float  # first deactivation sent (BRISA) / join start (TAG)
    end: float  # all-but-target inbound links deactivated / list settled

    @property
    def duration(self) -> float:
        return self.end - self.start


class StreamMetrics:
    """Delivery/bandwidth shard of one stream (DESIGN.md §10).

    Multi-stream runs used to funnel every reception of every stream
    through one ``(stream, seq)``-keyed nested dict; sharding keys the
    hot-path bookkeeping by plain ``seq`` inside a per-stream object
    instead (no tuple allocation, no shared dict), and gives per-stream
    delivery/bandwidth reporting direct access to its own stream's books.
    """

    __slots__ = (
        "stream",
        "injections",
        "deliveries",
        "duplicates",
        "first_deliveries",
        "duplicate_receptions",
        "payload_bytes",
    )

    def __init__(self, stream: StreamId) -> None:
        self.stream = stream
        #: seq -> injection time at the source.
        self.injections: dict[int, float] = {}
        #: seq -> node -> DeliveryRecord (first delivery only).
        self.deliveries: dict[int, dict[NodeId, DeliveryRecord]] = {}
        #: node -> duplicate receptions on this stream.
        self.duplicates: dict[NodeId, int] = defaultdict(int)
        #: Total first-time receptions recorded on this stream.
        self.first_deliveries = 0
        #: Total duplicate receptions recorded on this stream.
        self.duplicate_receptions = 0
        #: Payload bytes of first-time receptions (per-stream goodput).
        self.payload_bytes = 0


class _StreamKeyedView(Mapping):
    """Read-only ``(stream, seq)``-keyed view over per-stream shards.

    Keeps the historical :class:`Metrics` surface — e.g.
    ``metrics.deliveries[(stream, seq)]`` — working unchanged on top of
    the sharded store; all writes go through the ``record_*`` methods.
    """

    __slots__ = ("_streams", "_attr")

    def __init__(self, streams: dict[StreamId, StreamMetrics], attr: str) -> None:
        self._streams = streams
        self._attr = attr

    def __getitem__(self, key):
        stream, seq = key
        shard = self._streams.get(stream)
        if shard is None:
            raise KeyError(key)
        return getattr(shard, self._attr)[seq]

    def __iter__(self):
        for stream, shard in self._streams.items():
            for seq in getattr(shard, self._attr):
                yield (stream, seq)

    def __len__(self) -> int:
        return sum(len(getattr(shard, self._attr)) for shard in self._streams.values())


class _DuplicatesView(Mapping):
    """Node-keyed duplicates aggregated across all stream shards.

    Per-stream counts live in :attr:`StreamMetrics.duplicates`; this view
    preserves the historical all-streams ``metrics.duplicates[node]``
    surface for analysis code.
    """

    __slots__ = ("_streams",)

    def __init__(self, streams: dict[StreamId, StreamMetrics]) -> None:
        self._streams = streams

    def __getitem__(self, node: NodeId) -> int:
        total = 0
        found = False
        for shard in self._streams.values():
            if node in shard.duplicates:
                found = True
                total += shard.duplicates[node]
        if not found:
            raise KeyError(node)
        return total

    def __iter__(self):
        seen: set[NodeId] = set()
        for shard in self._streams.values():
            for node in shard.duplicates:
                if node not in seen:
                    seen.add(node)
                    yield node

    def __len__(self) -> int:
        return len({n for shard in self._streams.values() for n in shard.duplicates})


class Metrics:
    """Central metric sink shared by all nodes of one simulation."""

    def __init__(self, record_deliveries: bool = True) -> None:
        self.record_deliveries = record_deliveries
        self.phase: str = STABILIZATION
        #: First time each phase was entered (reporting only; durations
        #: come from the accumulated closed intervals below).
        self.phase_starts: dict[str, float] = {STABILIZATION: 0.0}
        #: Last time each phase was closed.
        self.phase_ends: dict[str, float] = {}
        #: Sum of closed [enter, leave) intervals per phase.  A phase can
        #: be entered repeatedly (e.g. two ``run_stream`` calls on one
        #: testbed); only time actually spent *in* the phase counts, so
        #: interleaved idle gaps cannot deflate bandwidth rates.
        self.phase_elapsed: dict[str, float] = defaultdict(float)
        #: Start of the currently-open interval (None when closed).
        self._phase_opened_at: Optional[float] = 0.0
        # node -> phase -> bytes
        self.bytes_sent: dict[NodeId, dict[str, int]] = defaultdict(lambda: defaultdict(int))
        self.bytes_received: dict[NodeId, dict[str, int]] = defaultdict(lambda: defaultdict(int))
        # message-kind -> phase -> count
        self.msg_counts: dict[str, dict[str, int]] = defaultdict(lambda: defaultdict(int))
        #: Per-stream delivery/bandwidth shards (DESIGN.md §10): every
        #: injection/delivery/duplicate is booked in its own stream's
        #: :class:`StreamMetrics`, so concurrent streams never contend on
        #: one nested dict and per-stream reports read their shard directly.
        self.streams: dict[StreamId, StreamMetrics] = {}
        #: (stream, seq) -> node -> DeliveryRecord — compatibility view
        #: over the shards (first delivery only).
        self.deliveries = _StreamKeyedView(self.streams, "deliveries")
        #: node -> duplicate receptions across all streams (view).
        self.duplicates = _DuplicatesView(self.streams)
        #: (stream, seq) -> injection time at the source (view).
        self.injections = _StreamKeyedView(self.streams, "injections")
        self.repair_events: list[RepairEvent] = []
        self.parent_losses: list[tuple[float, NodeId]] = []
        self.orphan_events: list[tuple[float, NodeId]] = []
        self.construction_probes: list[ConstructionProbe] = []
        self.counters: dict[str, int] = defaultdict(int)

    def stream(self, stream: StreamId) -> StreamMetrics:
        """The per-stream shard for ``stream`` (created on first touch)."""
        shard = self.streams.get(stream)
        if shard is None:
            shard = self.streams[stream] = StreamMetrics(stream)
        return shard

    # ------------------------------------------------------------------
    # Phases
    # ------------------------------------------------------------------
    def set_phase(self, phase: str, now: float) -> None:
        """Close the current phase interval and open ``phase`` at ``now``.

        Re-entering a phase (after a :meth:`close`, or from another
        phase) opens a *new* interval; the closed ones stay accumulated
        in :attr:`phase_elapsed`."""
        if phase == self.phase and self._phase_opened_at is not None:
            return
        self._close_interval(now)
        self.phase = phase
        self.phase_starts.setdefault(phase, now)
        self._phase_opened_at = now

    def close(self, now: float) -> None:
        """Close the current phase interval (for rate computations).
        Idempotent: a second close without an intervening
        :meth:`set_phase` adds nothing."""
        self._close_interval(now)

    def _close_interval(self, now: float) -> None:
        if self._phase_opened_at is None:
            return
        self.phase_elapsed[self.phase] += max(0.0, now - self._phase_opened_at)
        self.phase_ends[self.phase] = now
        self._phase_opened_at = None

    def phase_duration(self, phase: str) -> float:
        """Total time spent in ``phase`` across all its closed intervals."""
        return self.phase_elapsed.get(phase, 0.0)

    # ------------------------------------------------------------------
    # Traffic
    # ------------------------------------------------------------------
    def account_send(self, node: NodeId, kind: str, nbytes: int) -> None:
        self.bytes_sent[node][self.phase] += nbytes
        self.msg_counts[kind][self.phase] += 1

    def account_send_many(self, node: NodeId, kind: str, nbytes: int, count: int) -> None:
        """Batched form of :meth:`account_send` for fan-out sends: one
        dict walk for ``count`` identical messages (same totals)."""
        phase = self.phase
        self.bytes_sent[node][phase] += nbytes * count
        self.msg_counts[kind][phase] += count

    def account_fan_sends(self, kind: str, fans: list[tuple]) -> None:
        """Batched :meth:`account_send_many` over one wave of fan-outs:
        ``fans`` holds ``(src, dsts, msg, size)`` entries of one message
        ``kind`` (same totals as one call per entry, one dict walk per
        distinct sender and one per wave for the kind counter)."""
        phase = self.phase
        bytes_sent = self.bytes_sent
        total = 0
        for src, dsts, _msg, size in fans:
            n = len(dsts)
            total += n
            bytes_sent[src][phase] += size * n
        self.msg_counts[kind][phase] += total

    def account_receive(self, node: NodeId, nbytes: int) -> None:
        self.bytes_received[node][self.phase] += nbytes

    def account_overhead(self, node: NodeId, phase: str, sent: int, received: int) -> None:
        """Analytically-accounted traffic (keep-alives; see DESIGN.md §5)."""
        self.bytes_sent[node][phase] += sent
        self.bytes_received[node][phase] += received

    # ------------------------------------------------------------------
    # Deliveries
    # ------------------------------------------------------------------
    def record_injection(self, stream: StreamId, seq: int, time: float) -> None:
        self.stream(stream).injections[seq] = time

    def record_delivery(
        self,
        node: NodeId,
        stream: StreamId,
        seq: int,
        time: float,
        sender: NodeId,
        hops: int,
        path_delay: float,
        payload_bytes: int = 0,
    ) -> bool:
        """Record a reception; returns True iff it was the first delivery.

        ``payload_bytes`` (when the caller knows it) accrues to the
        stream shard's goodput total on first deliveries only.
        """
        shard = self.stream(stream)
        per_node = shard.deliveries.get(seq)
        if per_node is None:
            per_node = shard.deliveries[seq] = {}
        if node in per_node:
            shard.duplicates[node] += 1
            shard.duplicate_receptions += 1
            return False
        shard.first_deliveries += 1
        shard.payload_bytes += payload_bytes
        if self.record_deliveries:
            per_node[node] = DeliveryRecord(time, sender, hops, path_delay)
        else:  # still need first/dup distinction, so store a sentinel
            per_node[node] = _SENTINEL
        return True

    def record_duplicate(self, node: NodeId, stream: StreamId = 0) -> None:
        shard = self.stream(stream)
        shard.duplicates[node] += 1
        shard.duplicate_receptions += 1

    # ------------------------------------------------------------------
    # Repairs & probes
    # ------------------------------------------------------------------
    def record_parent_loss(self, time: float, node: NodeId) -> None:
        self.parent_losses.append((time, node))

    def record_orphan(self, time: float, node: NodeId) -> None:
        self.orphan_events.append((time, node))

    def record_repair(
        self, time: float, node: NodeId, kind: str, duration: float, stream: StreamId = 0
    ) -> None:
        self.repair_events.append(RepairEvent(time, node, kind, duration, stream))

    def record_construction(self, node: NodeId, start: float, end: float) -> None:
        self.construction_probes.append(ConstructionProbe(node, start, end))

    def incr(self, name: str, n: int = 1) -> None:
        self.counters[name] += n

    # ------------------------------------------------------------------
    # Simple queries (heavier analysis lives in repro.metrics)
    # ------------------------------------------------------------------
    def duplicates_per_node(self, nodes) -> list[int]:
        shards = self.streams.values()
        return [sum(shard.duplicates.get(n, 0) for shard in shards) for n in nodes]

    def delivery_times(self, stream: StreamId, seq: int) -> dict[NodeId, float]:
        return {
            n: rec.time
            for n, rec in self.deliveries.get((stream, seq), {}).items()
            if rec is not _SENTINEL
        }

    def stream_delivery_count(
        self,
        stream: StreamId,
        receivers: Iterable[NodeId],
        *,
        window: Optional[tuple[int, int]] = None,
    ) -> int:
        """First deliveries of ``stream`` observed by ``receivers`` over a
        half-open ``[lo, hi)`` sequence ``window``.

        ``window=None`` spans every injection recorded for the stream —
        ``[min seq, max seq + 1)``.  The window is half-open so callers
        can split a stream into disjoint ranges (``(0, k)`` + ``(k, n)``)
        without double-counting the boundary sequence.
        """
        if not isinstance(receivers, set):
            receivers = set(receivers)
        shard = self.streams.get(stream)
        lo, hi = self._resolve_window(shard, window)
        if not receivers or hi <= lo or shard is None:
            return 0
        deliveries = shard.deliveries
        got = 0
        for seq in range(lo, hi):
            per_node = deliveries.get(seq)
            if per_node:
                got += len(receivers & per_node.keys())
        return got

    def delivered_fraction(
        self,
        stream: StreamId,
        receivers: Iterable[NodeId],
        *,
        window: Optional[tuple[int, int]] = None,
    ) -> float:
        """Fraction of (sequence, receiver) pairs of ``stream`` delivered,
        over the half-open ``window`` (see :meth:`stream_delivery_count`).

        An empty audience or an empty window expects zero pairs and is
        vacuously complete (1.0); a window with no recorded injections
        and no deliveries is 0.0.
        """
        if not isinstance(receivers, set):
            receivers = set(receivers)
        if not receivers:
            return 1.0
        shard = self.streams.get(stream)
        lo, hi = self._resolve_window(shard, window)
        if hi <= lo:
            return 1.0 if window is not None else 0.0
        got = self.stream_delivery_count(stream, receivers, window=(lo, hi))
        return got / ((hi - lo) * len(receivers))

    @staticmethod
    def _resolve_window(
        shard: Optional[StreamMetrics], window: Optional[tuple[int, int]]
    ) -> tuple[int, int]:
        if window is not None:
            return window
        if shard is None or not shard.injections:
            return (0, 0)
        return (min(shard.injections), max(shard.injections) + 1)

    def total_bytes(self, phase: Optional[str] = None) -> int:
        total = 0
        for per_phase in self.bytes_sent.values():
            if phase is None:
                total += sum(per_phase.values())
            else:
                total += per_phase.get(phase, 0)
        return total

    def node_bytes(self, node: NodeId, phase: str, direction: str = "sent") -> int:
        book = self.bytes_sent if direction == "sent" else self.bytes_received
        return book.get(node, {}).get(phase, 0)


#: Shared sentinel for delivery bookkeeping when full records are disabled.
_SENTINEL = DeliveryRecord(0.0, -1, 0, 0.0)
