"""Metric collection with phase accounting.

The paper separates *stabilization* bandwidth (overlay + structure
bootstrap) from *dissemination* bandwidth (Fig. 12); :class:`Metrics`
tags every byte with the phase active at send time.  Delivery recording
feeds the duplicates CDF (Fig. 2), routing delays (Fig. 9), dissemination
latency (Table II) and the repair statistics (Table I, Figs. 13–14).

Recording is plain-dict hot-path cheap; the NumPy conversion happens once
at analysis time (see :mod:`repro.metrics.stats`), per the HPC guides'
"profile, then vectorize the aggregation" advice.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Optional

from repro.ids import NodeId, StreamId

#: Phase names used across all experiments.
STABILIZATION = "stabilization"
DISSEMINATION = "dissemination"


@dataclass
class DeliveryRecord:
    """First delivery of one (stream, seq) at one node."""

    time: float
    sender: NodeId
    hops: int
    #: Sum of sampled per-hop delays from the source (Fig. 9's cumulative
    #: per-hop routing delay).
    path_delay: float


@dataclass
class RepairEvent:
    """One parent-repair episode at a node (§II-F, Table I, Fig. 14)."""

    time: float
    node: NodeId
    kind: str  # 'soft' | 'hard'
    duration: float  # detection -> new parent active
    stream: StreamId = 0


@dataclass
class ConstructionProbe:
    """Structure construction interval at one node (Fig. 13)."""

    node: NodeId
    start: float  # first deactivation sent (BRISA) / join start (TAG)
    end: float  # all-but-target inbound links deactivated / list settled

    @property
    def duration(self) -> float:
        return self.end - self.start


class Metrics:
    """Central metric sink shared by all nodes of one simulation."""

    def __init__(self, record_deliveries: bool = True) -> None:
        self.record_deliveries = record_deliveries
        self.phase: str = STABILIZATION
        #: First time each phase was entered (reporting only; durations
        #: come from the accumulated closed intervals below).
        self.phase_starts: dict[str, float] = {STABILIZATION: 0.0}
        #: Last time each phase was closed.
        self.phase_ends: dict[str, float] = {}
        #: Sum of closed [enter, leave) intervals per phase.  A phase can
        #: be entered repeatedly (e.g. two ``run_stream`` calls on one
        #: testbed); only time actually spent *in* the phase counts, so
        #: interleaved idle gaps cannot deflate bandwidth rates.
        self.phase_elapsed: dict[str, float] = defaultdict(float)
        #: Start of the currently-open interval (None when closed).
        self._phase_opened_at: Optional[float] = 0.0
        # node -> phase -> bytes
        self.bytes_sent: dict[NodeId, dict[str, int]] = defaultdict(lambda: defaultdict(int))
        self.bytes_received: dict[NodeId, dict[str, int]] = defaultdict(lambda: defaultdict(int))
        # message-kind -> phase -> count
        self.msg_counts: dict[str, dict[str, int]] = defaultdict(lambda: defaultdict(int))
        # (stream, seq) -> node -> DeliveryRecord (first delivery only)
        self.deliveries: dict[tuple[StreamId, int], dict[NodeId, DeliveryRecord]] = defaultdict(dict)
        # node -> number of duplicate receptions (all streams)
        self.duplicates: dict[NodeId, int] = defaultdict(int)
        # (stream, seq) -> injection time at the source
        self.injections: dict[tuple[StreamId, int], float] = {}
        self.repair_events: list[RepairEvent] = []
        self.parent_losses: list[tuple[float, NodeId]] = []
        self.orphan_events: list[tuple[float, NodeId]] = []
        self.construction_probes: list[ConstructionProbe] = []
        self.counters: dict[str, int] = defaultdict(int)

    # ------------------------------------------------------------------
    # Phases
    # ------------------------------------------------------------------
    def set_phase(self, phase: str, now: float) -> None:
        """Close the current phase interval and open ``phase`` at ``now``.

        Re-entering a phase (after a :meth:`close`, or from another
        phase) opens a *new* interval; the closed ones stay accumulated
        in :attr:`phase_elapsed`."""
        if phase == self.phase and self._phase_opened_at is not None:
            return
        self._close_interval(now)
        self.phase = phase
        self.phase_starts.setdefault(phase, now)
        self._phase_opened_at = now

    def close(self, now: float) -> None:
        """Close the current phase interval (for rate computations).
        Idempotent: a second close without an intervening
        :meth:`set_phase` adds nothing."""
        self._close_interval(now)

    def _close_interval(self, now: float) -> None:
        if self._phase_opened_at is None:
            return
        self.phase_elapsed[self.phase] += max(0.0, now - self._phase_opened_at)
        self.phase_ends[self.phase] = now
        self._phase_opened_at = None

    def phase_duration(self, phase: str) -> float:
        """Total time spent in ``phase`` across all its closed intervals."""
        return self.phase_elapsed.get(phase, 0.0)

    # ------------------------------------------------------------------
    # Traffic
    # ------------------------------------------------------------------
    def account_send(self, node: NodeId, kind: str, nbytes: int) -> None:
        self.bytes_sent[node][self.phase] += nbytes
        self.msg_counts[kind][self.phase] += 1

    def account_send_many(self, node: NodeId, kind: str, nbytes: int, count: int) -> None:
        """Batched form of :meth:`account_send` for fan-out sends: one
        dict walk for ``count`` identical messages (same totals)."""
        phase = self.phase
        self.bytes_sent[node][phase] += nbytes * count
        self.msg_counts[kind][phase] += count

    def account_receive(self, node: NodeId, nbytes: int) -> None:
        self.bytes_received[node][self.phase] += nbytes

    def account_overhead(self, node: NodeId, phase: str, sent: int, received: int) -> None:
        """Analytically-accounted traffic (keep-alives; see DESIGN.md §5)."""
        self.bytes_sent[node][phase] += sent
        self.bytes_received[node][phase] += received

    # ------------------------------------------------------------------
    # Deliveries
    # ------------------------------------------------------------------
    def record_injection(self, stream: StreamId, seq: int, time: float) -> None:
        self.injections[(stream, seq)] = time

    def record_delivery(
        self,
        node: NodeId,
        stream: StreamId,
        seq: int,
        time: float,
        sender: NodeId,
        hops: int,
        path_delay: float,
    ) -> bool:
        """Record a reception; returns True iff it was the first delivery."""
        key = (stream, seq)
        per_node = self.deliveries[key]
        if node in per_node:
            self.duplicates[node] += 1
            return False
        if self.record_deliveries:
            per_node[node] = DeliveryRecord(time, sender, hops, path_delay)
        else:  # still need first/dup distinction, so store a sentinel
            per_node[node] = _SENTINEL
        return True

    def record_duplicate(self, node: NodeId) -> None:
        self.duplicates[node] += 1

    # ------------------------------------------------------------------
    # Repairs & probes
    # ------------------------------------------------------------------
    def record_parent_loss(self, time: float, node: NodeId) -> None:
        self.parent_losses.append((time, node))

    def record_orphan(self, time: float, node: NodeId) -> None:
        self.orphan_events.append((time, node))

    def record_repair(
        self, time: float, node: NodeId, kind: str, duration: float, stream: StreamId = 0
    ) -> None:
        self.repair_events.append(RepairEvent(time, node, kind, duration, stream))

    def record_construction(self, node: NodeId, start: float, end: float) -> None:
        self.construction_probes.append(ConstructionProbe(node, start, end))

    def incr(self, name: str, n: int = 1) -> None:
        self.counters[name] += n

    # ------------------------------------------------------------------
    # Simple queries (heavier analysis lives in repro.metrics)
    # ------------------------------------------------------------------
    def duplicates_per_node(self, nodes) -> list[int]:
        return [self.duplicates.get(n, 0) for n in nodes]

    def delivery_times(self, stream: StreamId, seq: int) -> dict[NodeId, float]:
        return {
            n: rec.time
            for n, rec in self.deliveries.get((stream, seq), {}).items()
            if rec is not _SENTINEL
        }

    def total_bytes(self, phase: Optional[str] = None) -> int:
        total = 0
        for per_phase in self.bytes_sent.values():
            if phase is None:
                total += sum(per_phase.values())
            else:
                total += per_phase.get(phase, 0)
        return total

    def node_bytes(self, node: NodeId, phase: str, direction: str = "sent") -> int:
        book = self.bytes_sent if direction == "sent" else self.bytes_received
        return book.get(node, {}).get(phase, 0)


#: Shared sentinel for delivery bookkeeping when full records are disabled.
_SENTINEL = DeliveryRecord(0.0, -1, 0, 0.0)
