"""Deterministic seed derivation.

Every component of a simulation gets its own independent
:class:`random.Random` stream derived from the experiment's root seed and a
string label.  This keeps runs bit-reproducible regardless of the order in
which components draw randomness — a property the property-based tests and
the paper-comparison benches rely on.
"""

from __future__ import annotations

import hashlib
import random


def derive_seed(root: int, *labels: object) -> int:
    """Derive a 64-bit child seed from ``root`` and a label path."""
    h = hashlib.sha256()
    h.update(str(int(root)).encode())
    for label in labels:
        h.update(b"/")
        h.update(str(label).encode())
    return int.from_bytes(h.digest()[:8], "big")


def derive(root: int, *labels: object) -> random.Random:
    """Return an independent RNG stream for the given label path."""
    return random.Random(derive_seed(root, *labels))
