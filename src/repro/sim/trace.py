"""Parser for the Splay-style churn-trace DSL of Listing 1.

The paper drives its robustness experiments (§III-C) with a synthetic
churn description::

    from 1 s to N s join N
    at 1000 s set replacement ratio to 100%
    from 1000 s to 1600 s const churn X% each 60 s
    at 1600 s stop

We implement the same four statement forms.  Parsing is whitespace- and
case-insensitive; ``#`` starts a comment; blank lines are ignored.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Union

from repro.errors import TraceParseError

_NUM = r"(\d+(?:\.\d+)?)"

_RE_JOIN = re.compile(
    rf"^from\s+{_NUM}\s*s\s+to\s+{_NUM}\s*s\s+join\s+(\d+)$", re.IGNORECASE
)
_RE_RATIO = re.compile(
    rf"^at\s+{_NUM}\s*s\s+set\s+replacement\s+ratio\s+to\s+{_NUM}\s*%$", re.IGNORECASE
)
_RE_CHURN = re.compile(
    rf"^from\s+{_NUM}\s*s\s+to\s+{_NUM}\s*s\s+const\s+churn\s+{_NUM}\s*%\s+each\s+{_NUM}\s*s$",
    re.IGNORECASE,
)
_RE_STOP = re.compile(rf"^at\s+{_NUM}\s*s\s+stop$", re.IGNORECASE)


@dataclass(frozen=True)
class JoinRamp:
    """``from <start> s to <end> s join <count>``: joins spread uniformly."""

    start: float
    end: float
    count: int


@dataclass(frozen=True)
class SetReplacementRatio:
    """``at <t> s set replacement ratio to <pct>%``."""

    time: float
    ratio: float  # 0..1


@dataclass(frozen=True)
class ConstChurn:
    """``from <start> s to <end> s const churn <pct>% each <period> s``:
    every period, ``pct``% of the live population fails and the replacement
    ratio times as many fresh nodes join (§III-C)."""

    start: float
    end: float
    percent: float
    period: float


@dataclass(frozen=True)
class Stop:
    """``at <t> s stop``: end of the experiment."""

    time: float


TraceOp = Union[JoinRamp, SetReplacementRatio, ConstChurn, Stop]


@dataclass(frozen=True)
class Trace:
    """A parsed churn trace: an ordered list of operations."""

    ops: tuple[TraceOp, ...]

    @property
    def stop_time(self) -> float:
        stops = [op.time for op in self.ops if isinstance(op, Stop)]
        if stops:
            return min(stops)
        return self.end_time

    @property
    def end_time(self) -> float:
        t = 0.0
        for op in self.ops:
            if isinstance(op, (JoinRamp, ConstChurn)):
                t = max(t, op.end)
            else:
                t = max(t, op.time)
        return t

    @property
    def total_joins(self) -> int:
        return sum(op.count for op in self.ops if isinstance(op, JoinRamp))

    def churn_ops(self) -> list[ConstChurn]:
        return [op for op in self.ops if isinstance(op, ConstChurn)]


def parse_trace(text: str) -> Trace:
    """Parse a Listing-1 style churn script into a :class:`Trace`."""
    ops: list[TraceOp] = []
    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        normalized = re.sub(r"\s+", " ", line)
        m = _RE_JOIN.match(normalized)
        if m:
            start, end, count = float(m.group(1)), float(m.group(2)), int(m.group(3))
            if end < start:
                raise TraceParseError(line_no, raw, "join ramp ends before it starts")
            ops.append(JoinRamp(start, end, count))
            continue
        m = _RE_RATIO.match(normalized)
        if m:
            pct = float(m.group(2))
            if not 0.0 <= pct <= 100.0:
                raise TraceParseError(line_no, raw, "replacement ratio outside 0..100%")
            ops.append(SetReplacementRatio(float(m.group(1)), pct / 100.0))
            continue
        m = _RE_CHURN.match(normalized)
        if m:
            start, end = float(m.group(1)), float(m.group(2))
            pct, period = float(m.group(3)), float(m.group(4))
            if end < start:
                raise TraceParseError(line_no, raw, "churn window ends before it starts")
            if period <= 0:
                raise TraceParseError(line_no, raw, "churn period must be positive")
            if not 0.0 <= pct <= 100.0:
                raise TraceParseError(line_no, raw, "churn percentage outside 0..100%")
            ops.append(ConstChurn(start, end, pct, period))
            continue
        m = _RE_STOP.match(normalized)
        if m:
            ops.append(Stop(float(m.group(1))))
            continue
        raise TraceParseError(line_no, raw, "unrecognized statement")
    return Trace(tuple(ops))


def churn_trace(
    n: int,
    churn_percent: float,
    *,
    bootstrap_end: float = None,
    churn_start: float = 1000.0,
    churn_end: float = 1600.0,
    period: float = 60.0,
) -> Trace:
    """Build the paper's Listing-1 trace for ``n`` nodes and X% churn."""
    if bootstrap_end is None:
        bootstrap_end = float(n)
    text = (
        f"from 1 s to {bootstrap_end} s join {n}\n"
        f"at {churn_start} s set replacement ratio to 100%\n"
        f"from {churn_start} s to {churn_end} s const churn {churn_percent}% each {period} s\n"
        f"at {churn_end} s stop\n"
    )
    return parse_trace(text)
