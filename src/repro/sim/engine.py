"""Event engine: binary-heap scheduler with cancellable handles.

The engine is intentionally minimal and allocation-light: events are
``(time, seq, handle)`` heap entries where ``seq`` breaks ties in FIFO
order, making same-timestamp processing deterministic.  Cancellation is
lazy (a flag on the handle) so cancel is O(1) and the heap never needs
re-sifting — the standard pattern for high-churn simulations where most
timers are cancelled before firing.

Two scheduling tiers keep the hot path cheap (see DESIGN.md §1):

- :meth:`Simulator.schedule` / :meth:`Simulator.schedule_at` return a
  fresh cancellable :class:`EventHandle` — the safe API for timers.
- :meth:`Simulator.call_later` / :meth:`Simulator.call_at` are
  fire-and-forget: no handle escapes to the caller, so the engine reuses
  ``EventHandle`` objects from a free list (slab reuse) instead of
  allocating one per event.  Message deliveries — the overwhelming bulk
  of events in a dissemination run — go through this tier.

:meth:`Simulator.run_until_idle` is the batched drain loop: no ``until``
or ``max_events`` bookkeeping per event, locals bound outside the loop.

:meth:`Simulator.register_batch_drain` opens the third tier (DESIGN.md
§12): a callback registered for one fire-and-forget function claims
whole contiguous runs of same-time events of that function in a single
call, so a delivery kernel can process an entire arrival wave without
one Python frame per event.  Each constituent event still counts exactly
once toward ``max_events`` / ``events_processed``, and a budget break
splits the run cleanly mid-batch.
"""

from __future__ import annotations

import heapq
from typing import Callable, Optional

from repro.errors import SimulationError
from repro.sim.rng import derive


class EventHandle:
    """Handle to a scheduled event; ``cancel()`` is O(1) and idempotent."""

    __slots__ = ("time", "fn", "args", "cancelled", "_pooled")

    def __init__(self, time: float, fn: Callable, args: tuple) -> None:
        self.time = time
        self.fn = fn
        self.args = args
        self.cancelled = False
        #: Pool-owned handles never escape the engine, so they are safe to
        #: recycle the moment their event fires (no aliasing with callers).
        self._pooled = False

    def cancel(self) -> None:
        self.cancelled = True
        # Drop references early: cancelled events may sit in the heap for a
        # long time and would otherwise pin node/message objects in memory.
        self.fn = None  # type: ignore[assignment]
        self.args = ()

    @property
    def active(self) -> bool:
        return not self.cancelled


class Simulator:
    """Discrete-event simulator with virtual time in seconds."""

    def __init__(self, seed: int = 0) -> None:
        self.now: float = 0.0
        self.seed = seed
        self._heap: list[tuple[float, int, EventHandle]] = []
        self._seq = 0
        self._running = False
        self._stopped = False
        self.events_processed = 0
        #: Free list of pooled handles (high-water mark = peak in-flight
        #: fire-and-forget events; bounded, never trimmed).
        self._free: list[EventHandle] = []
        #: fn -> drain callback for the batch-drain tier (see
        #: :meth:`register_batch_drain`).  Empty in most runs — the run
        #: loops then pay one falsy check per pooled event.
        self._batch_drains: dict[Callable, Callable] = {}
        #: Largest heap size ever observed (peak scheduled backlog).
        self.peak_pending = 0
        #: Batch-drain correction for :attr:`peak_pending` (DESIGN.md
        #: §12): a claimed same-time run is popped from the heap *before*
        #: its events are processed, so pushes made while draining see a
        #: heap that is short by the not-yet-processed remainder of the
        #: run.  The run loops set this to that remainder (and drain
        #: clients may lower it as they advance through the batch) so the
        #: push-site peak checks measure the same backlog the per-event
        #: tiers would.  Zero outside a drain call.
        self.pending_bias = 0

    # ------------------------------------------------------------------
    # Randomness
    # ------------------------------------------------------------------
    def rng(self, *labels: object):
        """Independent RNG stream derived from the simulation seed."""
        return derive(self.seed, *labels)

    # ------------------------------------------------------------------
    # Scheduling — cancellable tier
    # ------------------------------------------------------------------
    def schedule(self, delay: float, fn: Callable, *args) -> EventHandle:
        """Schedule ``fn(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        return self.schedule_at(self.now + delay, fn, *args)

    def schedule_at(self, time: float, fn: Callable, *args) -> EventHandle:
        """Schedule ``fn(*args)`` at an absolute virtual time."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at {time} before current time {self.now}"
            )
        handle = EventHandle(time, fn, args)
        self._seq += 1
        heap = self._heap
        heapq.heappush(heap, (time, self._seq, handle))
        depth = len(heap) + self.pending_bias
        if depth > self.peak_pending:
            self.peak_pending = depth
        return handle

    # ------------------------------------------------------------------
    # Scheduling — fire-and-forget fast tier (pooled handles)
    # ------------------------------------------------------------------
    def call_later(self, delay: float, fn: Callable, *args) -> None:
        """Like :meth:`schedule` but returns no handle; the event cannot
        be cancelled, which lets the engine recycle its slab entry."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        self.call_at(self.now + delay, fn, *args)

    def call_at(self, time: float, fn: Callable, *args) -> None:
        """Like :meth:`schedule_at` but fire-and-forget (pooled)."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at {time} before current time {self.now}"
            )
        free = self._free
        if free:
            handle = free.pop()
            handle.time = time
            handle.fn = fn
            handle.args = args
        else:
            handle = EventHandle(time, fn, args)
            handle._pooled = True
        self._seq += 1
        heap = self._heap
        heapq.heappush(heap, (time, self._seq, handle))
        depth = len(heap) + self.pending_bias
        if depth > self.peak_pending:
            self.peak_pending = depth

    def call_at_many(self, time: float, fn: Callable, argss: list[tuple]) -> None:
        """Bulk :meth:`call_at`: one pooled ``fn(*args)`` event per entry
        of ``argss``, all at ``time``, in list order (consecutive ``seq``
        numbers, so FIFO order among them is the list order).  Exactly
        equivalent to calling :meth:`call_at` once per entry; one frame
        and one validation for a whole fan-out wave (DESIGN.md §12)."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at {time} before current time {self.now}"
            )
        free = self._free
        heap = self._heap
        seq = self._seq
        push = heapq.heappush
        pop = free.pop
        for args in argss:
            if free:
                handle = pop()
                handle.time = time
                handle.fn = fn
                handle.args = args
            else:
                handle = EventHandle(time, fn, args)
                handle._pooled = True
            seq += 1
            push(heap, (time, seq, handle))
        self._seq = seq
        depth = len(heap) + self.pending_bias
        if depth > self.peak_pending:
            self.peak_pending = depth

    def note_peak(self, depth: int) -> None:
        """Raise :attr:`peak_pending` to ``depth`` if it is larger.

        Batch-drain clients that reorder a claimed run's pushes (the
        vectorized kernel's wave-at-a-time forward pass, DESIGN.md §12)
        use this to record the backlog maximum the per-event dispatch
        order would have produced; the regular push-site checks are
        arranged never to exceed that reference value mid-batch.
        """
        if depth > self.peak_pending:
            self.peak_pending = depth

    # ------------------------------------------------------------------
    # Scheduling — batch-drain tier (whole same-arrival event runs)
    # ------------------------------------------------------------------
    def register_batch_drain(self, fn: Callable, drain: Callable) -> None:
        """Route contiguous runs of pooled ``fn`` events through ``drain``.

        When the run loops pop a fire-and-forget event whose function is
        ``fn``, they claim every directly following heap entry with the
        *same timestamp and the same function* (FIFO ``seq`` order keeps
        the run contiguous at the heap top) and hand the whole run to
        ``drain`` as one list of ``args`` tuples — one call per arrival
        wave instead of one ``fn(*args)`` frame per event.

        Exact-count contract: every claimed event counts once toward
        ``max_events`` and :attr:`events_processed`, and a claim never
        exceeds the remaining ``max_events`` budget — the surplus events
        stay in the heap for the next ``run()``.  ``stop()`` takes
        effect after the in-flight drain call returns, like any event.

        Only fire-and-forget events (:meth:`call_later` / :meth:`call_at`)
        participate: cancellable handles keep per-event dispatch.  The
        fused fan-delivery path is the intended client (DESIGN.md §12).

        Claims match ``fn`` by *identity* (``is``): register and
        schedule one pinned callable — a bound method freshly minted per
        ``obj.method`` access never merges into a run (see
        ``Network.__init__``'s ``_deliver_fan`` pin).
        """
        self._batch_drains[fn] = drain

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> int:
        """Process events until the heap drains, ``until`` is reached, or
        ``max_events`` have run.  Returns the number of events processed.

        When ``until`` is given, virtual time is advanced to exactly
        ``until`` on return — but only when no live event at or before
        ``until`` remains unprocessed.  A break caused by ``max_events``
        leaves ``now`` at the last processed event so that a subsequent
        ``run()`` never moves the clock backwards.
        """
        if until is None and max_events is None:
            return self.run_until_idle()
        if self._running:
            raise SimulationError("run() is not reentrant")
        self._running = True
        self._stopped = False
        processed = 0
        heap = self._heap
        pop = heapq.heappop
        free_append = self._free.append
        drains = self._batch_drains
        try:
            while heap and not self._stopped:
                time, _, handle = heap[0]
                if until is not None and time > until:
                    break
                if max_events is not None and processed >= max_events:
                    break
                pop(heap)
                if handle._pooled:
                    self.now = time
                    fn = handle.fn
                    args = handle.args
                    handle.fn = None
                    handle.args = ()
                    free_append(handle)
                    drain = drains.get(fn) if drains else None
                    if drain is not None:
                        batch = [args]
                        # Claim the contiguous same-time run of this fn,
                        # capped by the remaining max_events budget (the
                        # event in hand already consumed one unit).
                        budget = (
                            max_events - processed if max_events is not None else None
                        )
                        while heap and (budget is None or len(batch) < budget):
                            nxt = heap[0][2]
                            if (
                                heap[0][0] != time
                                or not nxt._pooled
                                or nxt.fn is not fn
                            ):
                                break
                            pop(heap)
                            batch.append(nxt.args)
                            nxt.fn = None
                            nxt.args = ()
                            free_append(nxt)
                        # The whole run left the heap in one claim; the
                        # bias keeps push-site peak checks seeing the
                        # unprocessed remainder (drain clients lower it
                        # as they advance).  Reset unconditionally: a
                        # drain that raised mid-batch must not poison
                        # later measurements.
                        self.pending_bias = len(batch) - 1
                        try:
                            drain(batch)
                        finally:
                            self.pending_bias = 0
                        processed += len(batch)
                        continue
                    fn(*args)
                    processed += 1
                    continue
                if handle.cancelled:
                    continue
                self.now = time
                handle.fn(*handle.args)
                processed += 1
        finally:
            self._running = False
        if until is not None and not self._stopped and self.now < until:
            next_live = self.next_event_time()
            if next_live is None or next_live > until:
                self.now = until
        self.events_processed += processed
        return processed

    def run_until_idle(self) -> int:
        """Drain the heap in a tight batched loop.

        Semantically equivalent to ``run()`` without bounds, but skips the
        per-event ``until``/``max_events`` checks and binds hot attributes
        to locals once.  ``stop()`` is still honoured between events.
        """
        if self._running:
            raise SimulationError("run() is not reentrant")
        self._running = True
        self._stopped = False
        processed = 0
        heap = self._heap
        pop = heapq.heappop
        free_append = self._free.append
        drains = self._batch_drains
        try:
            while heap:
                if self._stopped:
                    break
                entry = pop(heap)
                handle = entry[2]
                if handle._pooled:
                    time = entry[0]
                    self.now = time
                    fn = handle.fn
                    args = handle.args
                    handle.fn = None
                    handle.args = ()
                    free_append(handle)
                    drain = drains.get(fn) if drains else None
                    if drain is not None:
                        batch = [args]
                        while heap:
                            nxt = heap[0][2]
                            if (
                                heap[0][0] != time
                                or not nxt._pooled
                                or nxt.fn is not fn
                            ):
                                break
                            pop(heap)
                            batch.append(nxt.args)
                            nxt.fn = None
                            nxt.args = ()
                            free_append(nxt)
                        self.pending_bias = len(batch) - 1
                        try:
                            drain(batch)
                        finally:
                            self.pending_bias = 0
                        processed += len(batch)
                        continue
                    fn(*args)
                    processed += 1
                    continue
                if handle.cancelled:
                    continue
                self.now = entry[0]
                handle.fn(*handle.args)
                processed += 1
        finally:
            self._running = False
        self.events_processed += processed
        return processed

    def stop(self) -> None:
        """Stop the current ``run()`` after the in-flight event returns."""
        self._stopped = True

    @property
    def pending(self) -> int:
        """Number of heap entries (including lazily-cancelled ones)."""
        return len(self._heap)

    @property
    def pool_size(self) -> int:
        """Handles currently parked in the free list (introspection)."""
        return len(self._free)

    def next_event_time(self) -> Optional[float]:
        """Timestamp of the next live event, or None if the heap is empty."""
        while self._heap and self._heap[0][2].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0][0] if self._heap else None


# PeriodicTask moved to the runtime seam (it is pure clock algebra — it
# only calls ``clock.schedule`` — and both backends reuse it).  Imported
# at the bottom so ``repro.runtime.api`` never sees this module
# half-initialized, and re-exported here for backward compatibility.
from repro.runtime.api import PeriodicTask  # noqa: E402

__all__ = ["EventHandle", "PeriodicTask", "Simulator"]
