"""Simulated network: node registry, delivery, crashes, failure detection.

The network delivers messages with latencies drawn from a
:class:`repro.sim.latency.LatencyModel`, accounts every byte into
:class:`repro.sim.monitor.Metrics`, and models the failure-detection
behaviour the paper relies on: each *registered link* (an open TCP
connection of the HyParView active view) produces an
``on_link_failed(peer)`` notification at the surviving endpoint a
keep-alive-detection delay after a crash (§II-A, §II-F).

Messages in flight to a crashed node are dropped at delivery time — the
TCP connection would have been reset — counted under the ``dropped``
metrics counter and, if the link was registered, the sender is notified
through the same failure-detection path.

Delivery hot path (DESIGN.md §2): with a zero-occupancy latency model
(``LatencyModel.zero_cost()`` — no NIC serialization, no per-message
processing cost) the ``send → _deliver → _process`` chain collapses into
a single pooled fire-and-forget event per message, and fan-out sends
share one message instance and one batched accounting call through
:meth:`send_many`.

Occupancy-charging models no longer fall all the way back to the
per-message queueing chain (DESIGN.md §8): when the model's costs are
deterministic (``LatencyModel.deterministic_occupancy``), a fan-out's
transmission charges are applied to the sender's horizon in one pass —
single horizon read, one ``tx_cost`` probe, arrival times rolled forward
locally — and when the sender side is free and propagation is uniform,
the whole fan-out rides one heap event that batches the receiver-side
queue charges too.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional

from repro.errors import SimulationError
from repro.ids import NodeId
from repro.sim.engine import Simulator
from repro.sim.latency import ConstantLatency, LatencyModel
from repro.sim.message import Message
from repro.sim.monitor import Metrics
from repro.sim.node import ProtocolNode
from repro.sim.rng import derive


class Network:
    """Registry + message fabric shared by all nodes of one simulation."""

    def __init__(
        self,
        sim: Simulator,
        latency: Optional[LatencyModel] = None,
        metrics: Optional[Metrics] = None,
        *,
        keepalive_period: float = 1.0,
        capacity_sigma: float = 0.5,
        loss_percent: float = 0.0,
    ) -> None:
        if not 0.0 <= loss_percent < 100.0:
            raise ValueError(f"loss_percent must be in [0, 100), got {loss_percent}")
        self.sim = sim
        #: The runtime-seam name for the time source (DESIGN.md §13):
        #: ``Network`` doubles as the simulator's ``MessageTransport``
        #: implementation, and ``Simulator`` duck-types ``Clock``.
        self.clock = sim
        self.latency = latency if latency is not None else ConstantLatency()
        self.metrics = metrics if metrics is not None else Metrics()
        self.keepalive_period = keepalive_period
        self.capacity_sigma = capacity_sigma
        self.nodes: dict[NodeId, ProtocolNode] = {}
        self._next_id = 0
        #: Registered TCP links, by endpoint.  Invariant: every key maps to
        #: a non-empty peer set and belongs to a live node — crash() and
        #: _unlink() prune aggressively so keep-alive accounting can walk
        #: exactly the live links (DESIGN.md §5).
        self.links: dict[NodeId, set[NodeId]] = {}
        #: (observer, failed) pairs with a failure notice in flight, to
        #: de-duplicate crash-driven and send-failure-driven notifications.
        #: Entries are dropped again once the notice fires, so the set
        #: stays bounded under arbitrarily long churn runs.
        self._notified: set[tuple[NodeId, NodeId]] = set()
        self._rng = derive(sim.seed, "network")
        #: Per-link loss model (DESIGN.md §14): each (message, destination)
        #: pair flips one independent coin on its *own* RNG stream —
        #: ``derive(seed, "loss")`` — so enabling loss never perturbs the
        #: latency or protocol draws of an identically-seeded run.  Draws
        #: happen at send time, per destination in destination order,
        #: *after* any latency sampling for that destination; a lost
        #: message is fully accounted as sent (the sender transmitted it)
        #: but never scheduled for delivery.
        self._loss_rate = loss_percent / 100.0
        self._loss_rng = derive(sim.seed, "loss") if loss_percent > 0.0 else None
        self._capacities: dict[NodeId, float] = {}
        #: Observers called as fn(node_id) after a crash is applied.
        self.crash_listeners: list[Callable[[NodeId], None]] = []
        #: Slotted kernels (see :meth:`register_kernel`) whose per-node
        #: slot state the network releases as the final step of a crash.
        self._kernels: list = []
        #: When False, ``ProtocolNode.periodic`` creates timers without
        #: arming them — the bulk-bootstrap path flips this off while
        #: spawning so wiring 100k nodes schedules zero shuffle events
        #: (DESIGN.md §8).  Deferred tasks are armed via ``task.start()``.
        self.autostart_timers: bool = True
        #: Per-node occupancy horizon: one shared CPU/NIC queue per node.
        #: Sends and receive-processing serialize against each other —
        #: the single-core model that makes duplicate processing delay a
        #: node's own forwards (the §III-B "heavy load" effect).
        self._busy: dict[NodeId, float] = {}
        #: True when the latency model has no occupancy costs: deliveries
        #: take the single-event fused path (decided once — occupancy is a
        #: static property of the model, not of simulation state).
        self._fast_delivery = self.latency.zero_cost()
        #: True when occupancy costs are deterministic: fan-outs charge
        #: the sender horizon in one pass (DESIGN.md §8; decided once).
        self._batch_occupancy = self.latency.occupancy_batchable()
        #: Opt-in batched receivers by message kind (DESIGN.md §9): a
        #: fused same-arrival fan-out whose message kind has a sink is
        #: handed to it whole — one call per fan-out instead of one
        #: ``handle_message`` per receiver.  Empty unless a slotted
        #: kernel registered one; the fused path pays one falsy check.
        self._fan_sinks: dict[str, Callable[[NodeId, list[NodeId], Message, int], None]] = {}
        #: Batch fan sinks by message kind (DESIGN.md §12): a kernel that
        #: can execute *many* same-arrival fan-outs in one call registers
        #: one here, and the network claims whole contiguous
        #: ``_deliver_fan`` runs from the engine's batch-drain tier.
        self._batch_fan_sinks: dict[str, Callable[[list[tuple]], None]] = {}
        #: The engine-side drain is registered at most once, on the first
        #: batch sink — runs without one keep the two-tier run loops.
        self._fan_drain_registered = False
        # Pin ONE bound-method object for the fused fan event function:
        # attribute access would otherwise mint a fresh bound method per
        # send, and the engine's batch-drain claim loop matches events
        # by function identity (`is`).  The instance attribute shadows
        # the class method, so every later ``self._deliver_fan`` — send
        # paths and drain registration alike — resolves to this object.
        self._deliver_fan = self._deliver_fan
        #: Messages between one ordered pair ride one TCP connection, so
        #: delivery must be FIFO.  Models with per-message sampled jitter
        #: can invert two sends otherwise — e.g. a Deactivate overtaken by
        #: a later Activate leaves the link-activation state permanently
        #: inconsistent at the two endpoints.  Uniform-delay models are
        #: FIFO by construction (arrival monotone in send time) and skip
        #: the bookkeeping.
        self._fifo_order = self.latency.uniform_delay is None
        #: Last scheduled arrival per ordered pair (FIFO clamp state).
        self._fifo: dict[tuple[NodeId, NodeId], float] = {}

    # ------------------------------------------------------------------
    # Node lifecycle
    # ------------------------------------------------------------------
    def allocate_id(self) -> NodeId:
        nid = self._next_id
        self._next_id += 1
        return nid

    def add_node(self, node: ProtocolNode) -> ProtocolNode:
        if node.node_id in self.nodes:
            raise SimulationError(f"node id {node.node_id} already registered")
        self.nodes[node.node_id] = node
        return node

    def spawn(self, factory: Callable[["Network", NodeId], ProtocolNode]) -> ProtocolNode:
        """Allocate an id, build a node with ``factory`` and register it."""
        nid = self.allocate_id()
        return self.add_node(factory(self, nid))

    def spawn_many(
        self, factory: Callable[["Network", NodeId], ProtocolNode], count: int
    ) -> list[ProtocolNode]:
        """Batched :meth:`spawn`: allocate ``count`` consecutive ids and
        register the factory-built nodes in one registry walk.

        Semantically ``[self.spawn(factory) for _ in range(count)]`` with
        the per-call indirection (id allocation, duplicate check, method
        dispatch) hoisted out of the loop — the node-materialization leg
        of the array-backed bootstrap (DESIGN.md §8)."""
        if count < 0:
            raise ValueError("count must be >= 0")
        nodes = self.nodes
        spawned: list[ProtocolNode] = []
        append = spawned.append
        for _ in range(count):
            nid = self._next_id
            self._next_id = nid + 1
            node = factory(self, nid)
            if node.node_id in nodes:
                raise SimulationError(f"node id {node.node_id} already registered")
            nodes[node.node_id] = node
            append(node)
        return spawned

    def alive(self, node_id: NodeId) -> bool:
        node = self.nodes.get(node_id)
        return node is not None and node.alive

    def node(self, node_id: NodeId) -> ProtocolNode:
        return self.nodes[node_id]

    def alive_ids(self) -> list[NodeId]:
        return [nid for nid, node in self.nodes.items() if node.alive]

    def crash(self, node_id: NodeId) -> None:
        """Fail a node: stop it, notify linked peers after detection delay,
        and purge every per-node bookkeeping entry so long churn runs do
        not grow memory without bound."""
        node = self.nodes.get(node_id)
        if node is None or not node.alive:
            return
        node.on_crash()
        self.metrics.incr("crashes")
        for peer in list(self.links.get(node_id, ())):
            self._unlink(node_id, peer)
            self._schedule_failure_notice(peer, node_id)
        self.links.pop(node_id, None)
        self._busy.pop(node_id, None)
        self._capacities.pop(node_id, None)
        if self._fifo:
            # FIFO clamp state for pairs involving the dead node can
            # never matter again (ids are not reused); drop it so long
            # churn runs stay bounded.
            self._fifo = {
                pair: t for pair, t in self._fifo.items() if node_id not in pair
            }
        # Pending notices *to* the dead node will never be acted on; their
        # dedup entries would otherwise outlive the node forever (ids are
        # never reused).  Notices *about* it stay until they fire.
        self._notified = {
            pair for pair in self._notified if pair[0] != node_id
        }
        for listener in self.crash_listeners:
            listener(node_id)
        # Kernel slot release runs last: protocol teardown and crash
        # listeners above may still read the node's slot state (rows,
        # per-plane counters) before the slot is zeroed and recycled.
        for kernel in self._kernels:
            kernel.release_node(node_id)

    # ------------------------------------------------------------------
    # Links & failure detection
    # ------------------------------------------------------------------
    def register_link(self, a: NodeId, b: NodeId) -> None:
        """Record an open TCP connection between two live nodes.

        Registering against a *crashed* endpoint models a TCP connect to
        a dead host: no link is recorded and the live side learns of the
        failure through the regular detection path.  Without this guard a
        ``NeighborAccept`` processed after its sender's crash notice has
        already fired re-registers the link with nothing left in flight
        to reset it — a permanent ``links`` entry for a dead node and a
        dead peer pinned in the survivor's active view (reachable under
        occupancy backlog, where delivery delay exceeds the keep-alive
        detection delay; regression-tested in tests/test_churn_at_scale.py).
        """
        if a == b:
            raise SimulationError("cannot link a node to itself")
        nodes = self.nodes
        node_a = nodes.get(a)
        node_b = nodes.get(b)
        a_dead = node_a is not None and not node_a.alive
        b_dead = node_b is not None and not node_b.alive
        if a_dead or b_dead:
            # Ids never registered stay linkable (pre-spawn bulk wiring);
            # only *crashed* endpoints refuse the connection.
            if not a_dead:
                self._schedule_failure_notice(a, b)
            elif not b_dead:
                self._schedule_failure_notice(b, a)
            return
        links = self.links
        peers = links.get(a)
        if peers is None:
            peers = links[a] = set()
        peers.add(b)
        peers = links.get(b)
        if peers is None:
            peers = links[b] = set()
        peers.add(a)
        self._notified.discard((a, b))
        self._notified.discard((b, a))

    def register_links(self, edges: Iterable[tuple[NodeId, NodeId]]) -> int:
        """Bulk-register undirected links (synthesized-overlay bootstrap).

        Equivalent to calling :meth:`register_link` per edge, but binds the
        dicts once so wiring a whole synthesized topology stays O(edges)
        with minimal constant factor.  Returns the number of edges
        processed."""
        links = self.links
        notified_discard = self._notified.discard
        count = 0
        for a, b in edges:
            if a == b:
                raise SimulationError("cannot link a node to itself")
            peers = links.get(a)
            if peers is None:
                peers = links[a] = set()
            peers.add(b)
            peers = links.get(b)
            if peers is None:
                peers = links[b] = set()
            peers.add(a)
            notified_discard((a, b))
            notified_discard((b, a))
            count += 1
        return count

    def register_links_csr(self, ids, offsets, neighbors, *, validate: bool = True) -> int:
        """Bulk-register a whole symmetric CSR adjacency (array-backed
        bootstrap, DESIGN.md §8).

        ``offsets``/``neighbors`` describe row ``i`` as the index slice
        ``neighbors[offsets[i]:offsets[i+1]]``; entries are *indices into*
        ``ids``, which maps them to node ids.  The adjacency must be
        symmetric (every edge in both rows); with ``validate`` (the
        default) this is checked *before* any mutation, so a bad input
        cannot leave half-registered one-directional links behind.  A
        caller whose adjacency is symmetric by construction (the
        synthesizer — property-tested) may skip the O(edges) pass.
        Each undirected link is covered by building one peer set per
        node instead of two dict round trips per edge.  Returns the
        number of undirected edges registered."""
        n = len(ids)
        # One id-mapped peer set per node, shared by the validation pass
        # and the registration loop below.
        rows: list[set[NodeId]] = [
            {ids[j] for j in neighbors[offsets[i] : offsets[i + 1]]}
            for i in range(n)
        ]
        # Self-links are rejected before any mutation on both paths; the
        # O(edges) symmetry pass is what ``validate=False`` skips.
        for i, nid in enumerate(ids):
            if nid in rows[i]:
                raise SimulationError("cannot link a node to itself")
        if validate:
            for i, nid in enumerate(ids):
                for j in neighbors[offsets[i] : offsets[i + 1]]:
                    if nid not in rows[j]:
                        raise SimulationError(
                            f"CSR adjacency is not symmetric: edge "
                            f"({nid}, {ids[j]}) has no reverse entry"
                        )
        links = self.links
        notified = self._notified
        total = 0
        for i, peers in enumerate(rows):
            if not peers:
                continue
            nid = ids[i]
            existing = links.get(nid)
            if existing is None:
                links[nid] = peers
            else:
                existing |= peers
            total += len(peers)
            if notified:
                for peer in peers:
                    notified.discard((nid, peer))
                    notified.discard((peer, nid))
        return total // 2

    def unregister_link(self, a: NodeId, b: NodeId) -> None:
        self._unlink(a, b)

    def _unlink(self, a: NodeId, b: NodeId) -> None:
        links = self.links
        peers = links.get(a)
        if peers is not None:
            peers.discard(b)
            if not peers:
                del links[a]
        peers = links.get(b)
        if peers is not None:
            peers.discard(a)
            if not peers:
                del links[b]

    def linked(self, a: NodeId, b: NodeId) -> bool:
        return b in self.links.get(a, ())

    def check_link_invariants(self) -> None:
        """Raise unless the registered-link invariants hold: every
        endpoint maps to a live node, every peer set is non-empty, and
        every link appears in both directions.

        The invariants are guaranteed whenever no messages or failure
        notices are in flight (crash purging and the TCP-reset emulation
        repair transient violations); tests call this after draining the
        heap to catch link leaks under churn (DESIGN.md §3, §9).
        """
        links = self.links
        for nid, peers in links.items():
            node = self.nodes.get(nid)
            if node is None or not node.alive:
                raise SimulationError(
                    f"links registry holds dead endpoint {nid} (peers {sorted(peers)})"
                )
            if not peers:
                raise SimulationError(f"links registry holds empty peer set for {nid}")
            for peer in peers:
                if nid not in links.get(peer, ()):
                    raise SimulationError(
                        f"link {nid}->{peer} has no reverse entry"
                    )

    def _schedule_failure_notice(self, observer: NodeId, failed: NodeId) -> None:
        if (observer, failed) in self._notified:
            return
        self._notified.add((observer, failed))
        delay = self._rng.uniform(0.5, 1.5) * self.keepalive_period
        self.sim.call_later(delay, self._deliver_failure_notice, observer, failed)

    def _deliver_failure_notice(self, observer: NodeId, failed: NodeId) -> None:
        # The in-flight notice has landed: its dedup entry has done its
        # job (register_link also clears it on reconnection).
        self._notified.discard((observer, failed))
        node = self.nodes.get(observer)
        if node is not None and node.alive and not self.alive(failed):
            node.on_link_failed(failed)

    # ------------------------------------------------------------------
    # Messaging
    # ------------------------------------------------------------------
    def send(self, src: NodeId, dst: NodeId, msg: Message) -> None:
        """Send ``msg`` from ``src`` to ``dst``.

        Total delay = sender serialization queue (NIC bandwidth + per-
        message processing, serialized per node) + propagation latency +
        receiver processing queue.  With a zero-cost latency model this
        reduces to pure propagation delay and a single scheduled event.
        """
        if src == dst:
            raise SimulationError(f"node {src} attempted to message itself")
        sender = self.nodes.get(src)
        if sender is None or not sender.alive:
            return
        size = msg.size_bytes()
        self.metrics.account_send(src, msg.kind, size)
        sim = self.sim
        loss_rng = self._loss_rng
        if self._fast_delivery:
            delay = self.latency.uniform_delay
            if delay is None:
                # Latency is sampled before the loss coin so the latency
                # stream consumes identical draws with loss on or off; a
                # lost message skips only the FIFO clamp (it never
                # arrives) and the delivery event.
                arrival = sim.now + self.latency.sample(src, dst)
                if loss_rng is not None and loss_rng.random() < self._loss_rate:
                    self._drop_lost(1)
                    return
                sim.call_at(
                    self._fifo_clamp(src, dst, arrival), self._deliver_fast, src, dst, msg, size
                )
                return
            if loss_rng is not None and loss_rng.random() < self._loss_rate:
                self._drop_lost(1)
                return
            sim.call_at(sim.now + delay, self._deliver_fast, src, dst, msg, size)
            return
        # The sender's NIC transmitted the frame either way: occupancy is
        # charged before the loss coin decides the link's fate.
        arrival = self._enqueue_tx(src, size) + self.latency.sample(src, dst)
        if loss_rng is not None and loss_rng.random() < self._loss_rate:
            self._drop_lost(1)
            return
        if self._fifo_order:
            arrival = self._fifo_clamp(src, dst, arrival)
        sim.call_at(arrival, self._deliver, src, dst, msg, size)

    def _fifo_clamp(self, src: NodeId, dst: NodeId, arrival: float) -> float:
        """Clamp a sampled arrival so deliveries src→dst stay FIFO (same-
        timestamp ties keep send order through the heap's sequence key)."""
        key = (src, dst)
        fifo = self._fifo
        last = fifo.get(key)
        if last is not None and arrival < last:
            arrival = last
        fifo[key] = arrival
        return arrival

    def _enqueue_tx(self, src: NodeId, size: int) -> float:
        """Serialize one transmission on ``src``'s occupancy horizon and
        return the time it leaves the NIC."""
        now = self.sim.now
        tx_cost = self.latency.tx_cost(src, size)
        if tx_cost <= 0.0:
            return now
        tx_done = max(now, self._busy.get(src, now)) + tx_cost
        self._busy[src] = tx_done
        return tx_done

    def send_many(self, src: NodeId, dsts: Iterable[NodeId], msg: Message) -> int:
        """Fan ``msg`` out from ``src`` to every destination in ``dsts``.

        The *same* message instance is shared by all recipients — senders
        must treat a message as immutable once handed to the network
        (every protocol here does; it is the wire abstraction).  Sharing
        lifts the per-peer message construction and byte-size computation
        out of fan-out loops, and the traffic accounting collapses into
        one batched call.  Returns the number of sends.
        """
        sender = self.nodes.get(src)
        if sender is None or not sender.alive:
            return 0
        # Validate + snapshot before any scheduling so a bad destination
        # cannot leave half a fan-out in flight but unaccounted (and a
        # caller mutating its list afterwards cannot reach the heap).
        targets = list(dsts)
        if not targets:
            return 0
        if src in targets:
            raise SimulationError(f"node {src} attempted to message itself")
        size = msg.size_bytes()
        # Accounting covers every destination, masked or not: the sender
        # transmitted the bytes; loss happens on the link.
        n_sent = len(targets)
        sim = self.sim
        loss_rng = self._loss_rng
        rate = self._loss_rate
        if self._fast_delivery:
            uniform = self.latency.uniform_delay
            if uniform is not None:
                # Every recipient sees the same arrival time: the whole
                # fan-out rides one heap event (delivery order within the
                # timestamp matches the per-peer FIFO order it replaces).
                # Loss prunes destinations before the event is scheduled
                # (one coin per destination, in destination order), so a
                # fully-lost fan-out schedules nothing at all — the same
                # event-set reduction every delivery kernel sees.
                if loss_rng is not None:
                    targets = self._mask_lost(targets)
                if targets:
                    sim.call_at(sim.now + uniform, self._deliver_fan, src, targets, msg, size)
            else:
                now = sim.now
                sample = self.latency.sample
                call_at = sim.call_at
                deliver = self._deliver_fast
                clamp = self._fifo_clamp
                lost = 0
                for dst in targets:
                    arrival = now + sample(src, dst)
                    if loss_rng is not None and loss_rng.random() < rate:
                        lost += 1
                        continue
                    call_at(clamp(src, dst, arrival), deliver, src, dst, msg, size)
                if lost:
                    self._drop_lost(lost)
        elif self._batch_occupancy:
            # Occupancy-fused fan-out (DESIGN.md §8): every transmission
            # of the batch lands on the same sender horizon, so the
            # charges are applied in one pass — a single horizon read,
            # one tx_cost probe, arrival times rolled forward in a local
            # — instead of a per-message _enqueue_tx round trip each.
            latency = self.latency
            now = sim.now
            tx_cost = latency.tx_cost(src, size)
            uniform = latency.uniform_delay
            call_at = sim.call_at
            deliver = self._deliver
            if tx_cost <= 0.0:
                if uniform is not None:
                    # Free sender + uniform propagation: all arrivals
                    # coincide, so the whole fan-out rides one heap event
                    # that also batches the receiver-side queue charges.
                    if loss_rng is not None:
                        targets = self._mask_lost(targets)
                    if targets:
                        call_at(now + uniform, self._deliver_occ_fan, src, targets, msg, size)
                else:
                    sample = latency.sample
                    clamp = self._fifo_clamp
                    lost = 0
                    for dst in targets:
                        arrival = now + sample(src, dst)
                        if loss_rng is not None and loss_rng.random() < rate:
                            lost += 1
                            continue
                        call_at(clamp(src, dst, arrival), deliver, src, dst, msg, size)
                    if lost:
                        self._drop_lost(lost)
            else:
                # Lost transmissions still roll the sender horizon: the
                # NIC serialized the frame before the link dropped it.
                busy = self._busy.get(src, now)
                tx_done = busy if busy > now else now
                lost = 0
                if uniform is not None:
                    # Arrivals strictly increase in send order: FIFO by
                    # construction, one heap push per distinct arrival.
                    for dst in targets:
                        tx_done += tx_cost
                        if loss_rng is not None and loss_rng.random() < rate:
                            lost += 1
                            continue
                        call_at(tx_done + uniform, deliver, src, dst, msg, size)
                else:
                    sample = latency.sample
                    clamp = self._fifo_clamp
                    for dst in targets:
                        tx_done += tx_cost
                        arrival = tx_done + sample(src, dst)
                        if loss_rng is not None and loss_rng.random() < rate:
                            lost += 1
                            continue
                        call_at(clamp(src, dst, arrival), deliver, src, dst, msg, size)
                self._busy[src] = tx_done
                if lost:
                    self._drop_lost(lost)
        else:
            # Sampled per-message occupancy costs: full queueing chain.
            clamp = self._fifo_clamp if self._fifo_order else None
            lost = 0
            for dst in targets:
                arrival = self._enqueue_tx(src, size) + self.latency.sample(src, dst)
                if loss_rng is not None and loss_rng.random() < rate:
                    lost += 1
                    continue
                if clamp is not None:
                    arrival = clamp(src, dst, arrival)
                sim.call_at(arrival, self._deliver, src, dst, msg, size)
            if lost:
                self._drop_lost(lost)
        self.metrics.account_send_many(src, msg.kind, size, n_sent)
        return n_sent

    def _deliver_fast(self, src: NodeId, dst: NodeId, msg: Message, size: int) -> None:
        """Fused delivery for zero-occupancy models: one node lookup, no
        receive-queue event."""
        node = self.nodes.get(dst)
        if node is None or not node.alive:
            self._drop(src, dst)
            return
        self.metrics.account_receive(dst, size)
        node.handle_message(src, msg)

    def send_fan_unchecked(
        self, src: NodeId, dsts: list[NodeId], msg: Message, size: int
    ) -> None:
        """Trusted-caller reduction of :meth:`send_many` for the uniform
        zero-cost fused branch (fan sinks, DESIGN.md §9): one fused fan
        event plus one batched accounting call.  The caller guarantees
        what ``send_many`` would otherwise check — live sender, no
        self-sends, a non-empty snapshot list it will not mutate — and
        supplies the precomputed ``size``.  Kept on the Network so the
        checked and unchecked paths evolve in lockstep."""
        n_sent = len(dsts)
        if self._loss_rng is not None:
            dsts = self._mask_lost(dsts)
        if dsts:
            sim = self.sim
            sim.call_at(
                sim.now + self.latency.uniform_delay, self._deliver_fan, src, dsts, msg, size
            )
        self.metrics.account_send_many(src, msg.kind, size, n_sent)

    def send_fan_batch_unchecked(self, fans: list[tuple], kind: str) -> "list[int] | None":
        """Bulk :meth:`send_fan_unchecked`: schedule one fused fan event
        per ``(src, dsts, msg, size)`` entry of ``fans`` — all of one
        message ``kind``, all arriving together — in list order, with one
        batched accounting pass.  Exactly equivalent to calling
        :meth:`send_fan_unchecked` once per entry (same heap state, same
        Metrics totals); one frame per dissemination wave instead of one
        per forwarder (the vectorized kernel's forward path, DESIGN.md
        §12).

        Under loss, each fan's destinations are masked in list order —
        the same per-destination coin sequence the per-entry path draws —
        and fully-lost fans schedule no event.  Returns ``None`` when
        every entry was scheduled unmasked (the lossless fast path), else
        a list aligned with ``fans`` giving the number of destinations
        actually scheduled per entry (0 = no event), so the caller can
        reconstruct the per-event push counts the per-entry path would
        have produced (peak-backlog emulation, DESIGN.md §12).
        """
        sim = self.sim
        if self._loss_rng is None:
            sim.call_at_many(
                sim.now + self.latency.uniform_delay, self._deliver_fan, fans
            )
            self.metrics.account_fan_sends(kind, fans)
            return None
        mask = self._mask_lost
        pushed: list[tuple] = []
        counts: list[int] = []
        for fan in fans:
            kept = mask(fan[1])
            counts.append(len(kept))
            if kept:
                pushed.append((fan[0], kept, fan[2], fan[3]))
        if pushed:
            sim.call_at_many(
                sim.now + self.latency.uniform_delay, self._deliver_fan, pushed
            )
        self.metrics.account_fan_sends(kind, fans)
        return counts

    def register_fan_sink(
        self,
        kind: str,
        sink: Callable[[NodeId, list[NodeId], Message, int], None],
        *,
        batch_sink: Callable[[list[tuple]], None] | None = None,
    ) -> None:
        """Route whole fused fan-outs of one message kind to ``sink``.

        The sink replaces the per-receiver loop of :meth:`_deliver_fan`
        for that kind and therefore owns its semantics: alive-filtering,
        receive accounting, dead-destination drops (via :meth:`_drop`)
        and handler dispatch, in destination order.  Only the uniform
        zero-cost fused path is affected — per-message deliveries and
        occupancy-charging paths keep the regular per-node chain — so a
        run's receive bookkeeping stays consistent per latency model.
        Used by the slotted flood kernel (DESIGN.md §9) to process a
        fan-out's receptions against flat arrays with locals bound once.

        ``batch_sink`` additionally subscribes the kind to the engine's
        batch-drain tier (DESIGN.md §12): whole contiguous same-arrival
        runs of fused fan events are claimed in one engine call and
        handed to it as a list of ``(src, dsts, msg, size)`` tuples in
        heap FIFO order — the vectorized kernel's entry point.  Kinds
        without a batch sink in such a run fall back to their per-event
        ``sink``/per-node semantics unchanged, so registering one kernel
        never alters another kind's behaviour.
        """
        self._fan_sinks[kind] = sink
        if batch_sink is not None:
            self._batch_fan_sinks[kind] = batch_sink
            if not self._fan_drain_registered:
                self._fan_drain_registered = True
                self.sim.register_batch_drain(self._deliver_fan, self._drain_fan_batch)

    def register_kernel(self, kernel) -> None:
        """Attach a slotted kernel's lifecycle to this network.

        The kernel must expose ``release_node(node_id)``; :meth:`crash`
        calls it after the node teardown and crash listeners, so dead
        nodes' slot state — tree-edge rows, plane counters, Bloom
        filter rows — is zeroed and recycled exactly once, however the
        crash was initiated (churn driver, test, or protocol logic).
        """
        self._kernels.append(kernel)

    def _deliver_fan(self, src: NodeId, dsts: list[NodeId], msg: Message, size: int) -> None:
        """One event delivering a whole same-arrival fan-out."""
        if self._fan_sinks:
            sink = self._fan_sinks.get(msg.kind)
            if sink is not None:
                sink(src, dsts, msg, size)
                return
        nodes = self.nodes
        account = self.metrics.account_receive
        for dst in dsts:
            node = nodes.get(dst)
            if node is None or not node.alive:
                self._drop(src, dst)
                continue
            account(dst, size)
            node.handle_message(src, msg)

    def _drain_fan_batch(self, batch: list[tuple]) -> None:
        """Engine batch drain for fused fan events (DESIGN.md §12).

        ``batch`` is a contiguous same-time run of ``_deliver_fan`` args
        tuples in heap FIFO order.  Contiguous sub-runs whose message
        kind has a batch sink go to it whole; every other event keeps
        the exact per-event :meth:`_deliver_fan` dispatch, so membership
        traffic and foreign kinds are untouched by the batching.
        """
        sinks = self._batch_fan_sinks
        deliver = self._deliver_fan
        sim = self.sim
        i = 0
        n = len(batch)
        while i < n:
            kind = batch[i][2].kind
            bsink = sinks.get(kind)
            # Keep the engine's peak-backlog bias exact as the claimed run
            # is consumed: event ``i`` runs with ``n - 1 - i`` claimed
            # events still unprocessed — precisely what the per-event
            # tiers would have left sitting in the heap.  A batch sink
            # inherits the bias of its sub-run's first event and lowers
            # it itself as it advances (DESIGN.md §12).
            sim.pending_bias = n - 1 - i
            if bsink is None:
                deliver(*batch[i])
                i += 1
                continue
            j = i + 1
            while j < n and batch[j][2].kind == kind:
                j += 1
            bsink(batch[i:j])
            i = j

    def _deliver_occ_fan(self, src: NodeId, dsts: list[NodeId], msg: Message, size: int) -> None:
        """One event delivering a same-arrival occupancy fan-out: the
        receiver-side queue charges are applied in one walk instead of
        one ``_deliver`` event per message, and runs of recipients whose
        processing completes at the *same* instant (uniform rx cost,
        free horizons — the common benchmark regime) share one
        ``_process_fan`` event (DESIGN.md §8)."""
        nodes = self.nodes
        latency = self.latency
        busy = self._busy
        sim = self.sim
        now = sim.now
        call_at = sim.call_at
        account = self.metrics.account_receive
        group: list[NodeId] = []
        group_ready = 0.0
        for dst in dsts:
            node = nodes.get(dst)
            if node is None or not node.alive:
                self._drop(src, dst)
                continue
            rx_cost = latency.rx_cost(dst, size)
            if rx_cost > 0.0:
                b = busy.get(dst, now)
                ready = (b if b > now else now) + rx_cost
                busy[dst] = ready
                if ready == group_ready:
                    group.append(dst)
                else:
                    if group:
                        self._push_process(group_ready, src, group, msg, size)
                    group = [dst]
                    group_ready = ready
            else:
                account(dst, size)
                node.handle_message(src, msg)
        if group:
            self._push_process(group_ready, src, group, msg, size)

    def _push_process(
        self, ready: float, src: NodeId, dsts: list[NodeId], msg: Message, size: int
    ) -> None:
        """Schedule one receive-queue completion for a same-ready run."""
        if len(dsts) == 1:
            self.sim.call_at(ready, self._process, src, dsts[0], msg, size)
        else:
            self.sim.call_at(ready, self._process_fan, src, dsts, msg, size)

    def _process_fan(self, src: NodeId, dsts: list[NodeId], msg: Message, size: int) -> None:
        """Batched :meth:`_process`: one event for a same-instant run of
        receive-queue completions from one fan-out."""
        nodes = self.nodes
        account = self.metrics.account_receive
        incr = self.metrics.incr
        for dst in dsts:
            node = nodes.get(dst)
            if node is None or not node.alive:
                # Crashed while the message sat in its receive queue.
                incr("dropped_crash")
                incr("dropped")
                continue
            account(dst, size)
            node.handle_message(src, msg)

    def _deliver(self, src: NodeId, dst: NodeId, msg: Message, size: int) -> None:
        node = self.nodes.get(dst)
        if node is None or not node.alive:
            self._drop(src, dst)
            return
        rx_cost = self.latency.rx_cost(dst, size)
        if rx_cost > 0.0:
            now = self.sim.now
            ready = max(now, self._busy.get(dst, now)) + rx_cost
            self._busy[dst] = ready
            self.sim.call_at(ready, self._process, src, dst, msg, size)
        else:
            self._process(src, dst, msg, size)

    def _process(self, src: NodeId, dst: NodeId, msg: Message, size: int) -> None:
        node = self.nodes.get(dst)
        if node is None or not node.alive:
            # Crashed while the message sat in its receive queue.
            self.metrics.incr("dropped_crash")
            self.metrics.incr("dropped")
            return
        self.metrics.account_receive(dst, size)
        node.handle_message(src, msg)

    def _drop(self, src: NodeId, dst: NodeId) -> None:
        """A message reached a dead endpoint: count it and emulate the
        TCP reset — a sender holding an open connection learns of the
        failure through the regular detection path.

        Crash-time drops and link-loss drops are separate counters
        (``dropped_crash`` / ``dropped_loss``) so loss-rate experiments
        never misattribute churn casualties; ``dropped`` stays their sum
        for bench-compare continuity."""
        self.metrics.incr("dropped_crash")
        self.metrics.incr("dropped")
        if self.linked(src, dst) or self.linked(dst, src):
            self._unlink(src, dst)
            self._schedule_failure_notice(src, dst)

    def _drop_lost(self, n: int) -> None:
        """Count ``n`` messages dropped by the per-link loss model."""
        self.metrics.incr("dropped_loss", n)
        self.metrics.incr("dropped", n)

    def _mask_lost(self, targets: list[NodeId]) -> list[NodeId]:
        """Flip one loss coin per destination, in destination order, and
        return the surviving sublist.  Only called when loss is enabled."""
        rand = self._loss_rng.random
        rate = self._loss_rate
        kept = [dst for dst in targets if rand() >= rate]
        lost = len(targets) - len(kept)
        if lost:
            self._drop_lost(lost)
        return kept

    # ------------------------------------------------------------------
    # Measurements available to protocol logic
    # ------------------------------------------------------------------
    def rtt(self, a: NodeId, b: NodeId) -> float:
        """Keep-alive-measured RTT estimate between two nodes (§II-E:
        delay-aware selection leverages HyParView keep-alive RTTs)."""
        return self.latency.expected_rtt(a, b)

    def capacity(self, node_id: NodeId) -> float:
        """Per-node relative capacity (heterogeneity-aware strategy)."""
        cap = self._capacities.get(node_id)
        if cap is None:
            cap = derive(self.sim.seed, "capacity", node_id).lognormvariate(
                0.0, self.capacity_sigma
            )
            self._capacities[node_id] = cap
        return cap

    def peer_stats(self, peer: NodeId, stream: int) -> "tuple[float, int] | None":
        """(uptime, relay-load) of a live peer, or None (runtime seam).

        Stands in for the stats the paper piggybacks on HyParView
        keep-alives (§II-E): the simulator reads the peer object
        directly.  Duck-typed on ``children_of`` so this module needs no
        BRISA import; non-BRISA populations report zero load, exactly as
        the old in-protocol ``isinstance`` check did.
        """
        peer_node = self.nodes.get(peer)
        if peer_node is None or not peer_node.alive:
            return None
        children_of = getattr(peer_node, "children_of", None)
        load = len(children_of(stream)) if children_of is not None else 0
        return (peer_node.uptime, load)

    def peer_position(self, peer: NodeId, stream: int) -> "int | None":
        """A live peer's last-contiguous stream position, or None.

        Backs BRISA's path-predictor eligibility probe; same
        omniscient-simulator shortcut as :meth:`peer_stats`.
        """
        peer_node = self.nodes.get(peer)
        if peer_node is None or not peer_node.alive:
            return None
        streams = getattr(peer_node, "streams", None)
        if streams is None:
            return None
        peer_state = streams.get(stream)
        return peer_state.position if peer_state is not None else None

    # ------------------------------------------------------------------
    # Analytic keep-alive accounting (see DESIGN.md §5)
    # ------------------------------------------------------------------
    def account_keepalives(self, phase: str, duration: float, ka_bytes: int = 48) -> None:
        """Charge keep-alive traffic for ``duration`` seconds of ``phase``.

        Each registered link carries one probe + one ack per keep-alive
        period in each direction.  This is accounted analytically instead
        of being simulated per-packet (it changes no protocol decision):
        the per-link byte rate is precomputed once per phase and the walk
        touches exactly the live links — ``self.links`` holds no dead
        nodes and no empty peer sets by construction.
        """
        if duration <= 0:
            return
        # Precomputed per-phase rate: bytes per link for the whole phase.
        per_link_bytes = int(round(duration / self.keepalive_period * ka_bytes))
        if per_link_bytes <= 0:
            return
        account = self.metrics.account_overhead
        nodes = self.nodes
        for node_id, peers in self.links.items():
            # Links to a node that died without crash() being observed yet
            # (stale handshake races) must not charge the dead endpoint.
            node = nodes.get(node_id)
            if node is None or not node.alive:
                continue
            n = len(peers)
            account(node_id, phase, sent=per_link_bytes * n, received=per_link_bytes * n)
