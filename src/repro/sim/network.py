"""Simulated network: node registry, delivery, crashes, failure detection.

The network delivers messages with latencies drawn from a
:class:`repro.sim.latency.LatencyModel`, accounts every byte into
:class:`repro.sim.monitor.Metrics`, and models the failure-detection
behaviour the paper relies on: each *registered link* (an open TCP
connection of the HyParView active view) produces an
``on_link_failed(peer)`` notification at the surviving endpoint a
keep-alive-detection delay after a crash (§II-A, §II-F).

Messages in flight to a crashed node are dropped at delivery time — the
TCP connection would have been reset — and, if the link was registered,
the sender is notified through the same failure-detection path.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Callable, Optional

from repro.errors import SimulationError
from repro.ids import NodeId
from repro.sim.engine import Simulator
from repro.sim.latency import ConstantLatency, LatencyModel
from repro.sim.message import Message
from repro.sim.monitor import Metrics
from repro.sim.node import ProtocolNode
from repro.sim.rng import derive


class Network:
    """Registry + message fabric shared by all nodes of one simulation."""

    def __init__(
        self,
        sim: Simulator,
        latency: Optional[LatencyModel] = None,
        metrics: Optional[Metrics] = None,
        *,
        keepalive_period: float = 1.0,
        capacity_sigma: float = 0.5,
    ) -> None:
        self.sim = sim
        self.latency = latency if latency is not None else ConstantLatency()
        self.metrics = metrics if metrics is not None else Metrics()
        self.keepalive_period = keepalive_period
        self.capacity_sigma = capacity_sigma
        self.nodes: dict[NodeId, ProtocolNode] = {}
        self._next_id = 0
        #: Registered TCP links, by endpoint.
        self.links: dict[NodeId, set[NodeId]] = defaultdict(set)
        #: (observer, failed) pairs already notified, to de-duplicate
        #: crash-driven and send-failure-driven notifications.
        self._notified: set[tuple[NodeId, NodeId]] = set()
        self._rng = derive(sim.seed, "network")
        self._capacities: dict[NodeId, float] = {}
        #: Observers called as fn(node_id) after a crash is applied.
        self.crash_listeners: list[Callable[[NodeId], None]] = []
        #: Per-node occupancy horizon: one shared CPU/NIC queue per node.
        #: Sends and receive-processing serialize against each other —
        #: the single-core model that makes duplicate processing delay a
        #: node's own forwards (the §III-B "heavy load" effect).
        self._busy: dict[NodeId, float] = {}

    # ------------------------------------------------------------------
    # Node lifecycle
    # ------------------------------------------------------------------
    def allocate_id(self) -> NodeId:
        nid = self._next_id
        self._next_id += 1
        return nid

    def add_node(self, node: ProtocolNode) -> ProtocolNode:
        if node.node_id in self.nodes:
            raise SimulationError(f"node id {node.node_id} already registered")
        self.nodes[node.node_id] = node
        return node

    def spawn(self, factory: Callable[["Network", NodeId], ProtocolNode]) -> ProtocolNode:
        """Allocate an id, build a node with ``factory`` and register it."""
        nid = self.allocate_id()
        return self.add_node(factory(self, nid))

    def alive(self, node_id: NodeId) -> bool:
        node = self.nodes.get(node_id)
        return node is not None and node.alive

    def node(self, node_id: NodeId) -> ProtocolNode:
        return self.nodes[node_id]

    def alive_ids(self) -> list[NodeId]:
        return [nid for nid, node in self.nodes.items() if node.alive]

    def crash(self, node_id: NodeId) -> None:
        """Fail a node: stop it, notify linked peers after detection delay."""
        node = self.nodes.get(node_id)
        if node is None or not node.alive:
            return
        node.on_crash()
        self.metrics.incr("crashes")
        for peer in list(self.links.get(node_id, ())):
            self._unlink(node_id, peer)
            self._schedule_failure_notice(peer, node_id)
        self.links.pop(node_id, None)
        for listener in self.crash_listeners:
            listener(node_id)

    # ------------------------------------------------------------------
    # Links & failure detection
    # ------------------------------------------------------------------
    def register_link(self, a: NodeId, b: NodeId) -> None:
        """Record an open TCP connection between two live nodes."""
        if a == b:
            raise SimulationError("cannot link a node to itself")
        self.links[a].add(b)
        self.links[b].add(a)
        self._notified.discard((a, b))
        self._notified.discard((b, a))

    def unregister_link(self, a: NodeId, b: NodeId) -> None:
        self._unlink(a, b)

    def _unlink(self, a: NodeId, b: NodeId) -> None:
        self.links.get(a, set()).discard(b)
        self.links.get(b, set()).discard(a)

    def linked(self, a: NodeId, b: NodeId) -> bool:
        return b in self.links.get(a, ())

    def _schedule_failure_notice(self, observer: NodeId, failed: NodeId) -> None:
        if (observer, failed) in self._notified:
            return
        self._notified.add((observer, failed))
        delay = self._rng.uniform(0.5, 1.5) * self.keepalive_period
        self.sim.schedule(delay, self._deliver_failure_notice, observer, failed)

    def _deliver_failure_notice(self, observer: NodeId, failed: NodeId) -> None:
        node = self.nodes.get(observer)
        if node is not None and node.alive and not self.alive(failed):
            node.on_link_failed(failed)

    # ------------------------------------------------------------------
    # Messaging
    # ------------------------------------------------------------------
    def send(self, src: NodeId, dst: NodeId, msg: Message) -> None:
        """Send ``msg`` from ``src`` to ``dst``.

        Total delay = sender serialization queue (NIC bandwidth + per-
        message processing, serialized per node) + propagation latency +
        receiver processing queue.  With a zero-cost latency model this
        reduces to pure propagation delay.
        """
        if src == dst:
            raise SimulationError(f"node {src} attempted to message itself")
        sender = self.nodes.get(src)
        if sender is None or not sender.alive:
            return
        size = msg.size_bytes()
        self.metrics.account_send(src, msg.kind, size)
        now = self.sim.now
        tx_cost = self.latency.tx_cost(src, size)
        if tx_cost > 0.0:
            tx_done = max(now, self._busy.get(src, now)) + tx_cost
            self._busy[src] = tx_done
        else:
            tx_done = now
        arrival = tx_done + self.latency.sample(src, dst)
        self.sim.schedule_at(arrival, self._deliver, src, dst, msg, size)

    def _deliver(self, src: NodeId, dst: NodeId, msg: Message, size: int) -> None:
        node = self.nodes.get(dst)
        if node is None or not node.alive:
            # TCP reset: a sender holding an open connection learns of the
            # failure through the regular detection path.
            if self.linked(src, dst) or self.linked(dst, src):
                self._unlink(src, dst)
                self._schedule_failure_notice(src, dst)
            return
        rx_cost = self.latency.rx_cost(dst, size)
        if rx_cost > 0.0:
            now = self.sim.now
            ready = max(now, self._busy.get(dst, now)) + rx_cost
            self._busy[dst] = ready
            self.sim.schedule_at(ready, self._process, src, dst, msg, size)
        else:
            self._process(src, dst, msg, size)

    def _process(self, src: NodeId, dst: NodeId, msg: Message, size: int) -> None:
        node = self.nodes.get(dst)
        if node is None or not node.alive:
            return
        self.metrics.account_receive(dst, size)
        node.handle_message(src, msg)

    # ------------------------------------------------------------------
    # Measurements available to protocol logic
    # ------------------------------------------------------------------
    def rtt(self, a: NodeId, b: NodeId) -> float:
        """Keep-alive-measured RTT estimate between two nodes (§II-E:
        delay-aware selection leverages HyParView keep-alive RTTs)."""
        return self.latency.expected_rtt(a, b)

    def capacity(self, node_id: NodeId) -> float:
        """Per-node relative capacity (heterogeneity-aware strategy)."""
        cap = self._capacities.get(node_id)
        if cap is None:
            cap = derive(self.sim.seed, "capacity", node_id).lognormvariate(
                0.0, self.capacity_sigma
            )
            self._capacities[node_id] = cap
        return cap

    # ------------------------------------------------------------------
    # Analytic keep-alive accounting (see DESIGN.md §5)
    # ------------------------------------------------------------------
    def account_keepalives(self, phase: str, duration: float, ka_bytes: int = 48) -> None:
        """Charge keep-alive traffic for ``duration`` seconds of ``phase``.

        Each registered link carries one probe + one ack per keep-alive
        period in each direction.  This is accounted analytically instead
        of being simulated per-packet (it changes no protocol decision).
        """
        if duration <= 0:
            return
        probes = duration / self.keepalive_period
        per_link_bytes = int(round(probes * ka_bytes))
        for node_id, peers in self.links.items():
            if not self.alive(node_id):
                continue
            n = len(peers)
            if n == 0:
                continue
            self.metrics.account_overhead(
                node_id, phase, sent=per_link_bytes * n, received=per_link_bytes * n
            )
