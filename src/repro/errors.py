"""Exception hierarchy for the reproduction library."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library-specific errors."""


class ConfigError(ReproError):
    """A configuration dataclass was constructed with invalid values."""


class SimulationError(ReproError):
    """The event engine was driven into an invalid state."""


class TraceParseError(ReproError):
    """A churn-trace script (Listing 1 DSL) could not be parsed."""

    def __init__(self, line_no: int, line: str, reason: str) -> None:
        self.line_no = line_no
        self.line = line
        self.reason = reason
        super().__init__(f"line {line_no}: {reason!s}: {line!r}")


class MembershipError(ReproError):
    """A peer-sampling-service invariant was violated."""


class ProtocolError(ReproError):
    """A dissemination-protocol invariant was violated."""
