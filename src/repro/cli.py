"""Command-line interface: ``python -m repro <command>``.

Commands mirror the per-experiment index of DESIGN.md §4::

    python -m repro list                     # available experiments
    python -m repro run fig2 --scale fast    # one artifact, print rows
    python -m repro run all --scale fast     # every artifact
    python -m repro quickstart               # the README quickstart
    python -m repro scale --scale xl         # 10k-node flood benchmark
    python -m repro scale --stack brisa --size xl   # full BRISA stack at 10k
    python -m repro scale --scale xxl --messages 10 --no-microbench  # 100k rung
    python -m repro scale --scale xl --churn 1 --kernel slotted      # churn at scale
    python -m repro scale --stack brisa --size xl --streams 8        # §IV multi-stream
    python -m repro scale --size xxxl --kernel vectorized --messages 10 \
        --no-microbench                                              # 1M-node rung
    python -m repro live --size small            # BRISA over real UDP sockets:
                                                 # 64 nodes across 2 OS processes,
                                                 # cross-checked vs same-seed sim
    python -m repro live --size small --workers 4 --streams 2 --json live.json
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable

from repro.errors import SimulationError
from repro.experiments import report as rp
from repro.experiments import scenarios as sc
from repro.sim.monitor import DISSEMINATION, STABILIZATION


def _render_fig2(scale) -> str:
    res = sc.fig2_duplicates(scale)
    from repro.metrics.stats import CDF

    series = {
        f"view size = {v}": CDF.of(x / res.messages for x in cdf.values)
        for v, cdf in sorted(res.by_view.items())
    }
    return rp.banner("Fig. 2 — duplicates per message per node") + "\n" + rp.cdf_rows(series)


def _render_fig6(scale) -> str:
    res = sc.fig6_fig7_structure(scale)
    out = rp.banner("Fig. 6 — depth distribution") + "\n" + rp.cdf_rows(res.depth)
    out += "\n" + rp.banner("Fig. 7 — degree distribution") + "\n" + rp.cdf_rows(res.degree)
    return out


def _render_fig8(scale) -> str:
    res = sc.fig8_tree_shape()
    rows = [
        [f"view={v}", s["nodes"], s["edges"], s["max_depth"], s["max_degree"], s["leaves"]]
        for v, s in sorted(res.summary.items())
    ]
    return rp.banner("Fig. 8 — sample tree shapes") + "\n" + rp.table(
        ["config", "nodes", "edges", "max depth", "max degree", "leaves"], rows
    )


def _render_fig9(scale) -> str:
    res = sc.fig9_routing_delays(scale, seed=24)
    return rp.banner("Fig. 9 — routing delays (PlanetLab)") + "\n" + rp.cdf_rows(res.series)


def _render_fig10(scale) -> str:
    res = sc.fig10_fig11_bandwidth(scale)
    dl = {f"{label}, {kb} KB": p for (label, kb), p in sorted(res.download.items())}
    ul = {f"{label}, {kb} KB": p for (label, kb), p in sorted(res.upload.items())}
    out = rp.banner("Fig. 10 — download KB/s percentiles") + "\n" + rp.percentile_rows(dl)
    out += "\n" + rp.banner("Fig. 11 — upload KB/s percentiles") + "\n" + rp.percentile_rows(ul)
    return out


def _render_table1(scale) -> str:
    res = sc.table1_churn(scale)
    rows = [
        [n, f"{pct:g}%", mode, r.parents_lost_per_min, r.orphans_per_min,
         r.soft_repair_pct, r.hard_repair_pct]
        for (n, pct, mode), r in sorted(res.rows.items())
    ]
    return rp.banner("Table I — impact of churn") + "\n" + rp.table(
        ["nodes", "churn", "mode", "lost/min", "orphans/min", "% soft", "% hard"], rows
    )


def _render_fig12(scale) -> str:
    res = sc.fig12_bandwidth_comparison(scale)
    rows = []
    for proto, per in res.data.items():
        for kb, d in sorted(per.items()):
            rows.append([proto, kb, d[STABILIZATION], d[DISSEMINATION],
                         d[STABILIZATION] + d[DISSEMINATION]])
    return rp.banner("Fig. 12 — data transmitted per node (MB)") + "\n" + rp.table(
        ["protocol", "payload KB", "stabilization", "dissemination", "total"], rows
    )


def _render_fig13(scale) -> str:
    res = sc.fig13_construction(scale)
    series = {f"{p}, {e}": c for (p, e), c in sorted(res.series.items())}
    return rp.banner("Fig. 13 — construction time (s)") + "\n" + rp.cdf_rows(series)


def _render_table2(scale) -> str:
    res = sc.table2_latency(scale)
    rows = [
        [proto, res.latency[proto], f"+{res.overhead(proto) * 100:.0f}%",
         f"{res.delivered[proto] * 100:.1f}%"]
        for proto in res.latency
    ]
    return rp.banner(f"Table II — dissemination latency (ideal {res.ideal:.1f}s)") + "\n" + rp.table(
        ["protocol", "latency (s)", "overhead", "delivered"], rows
    )


def _render_fig14(scale) -> str:
    res = sc.fig14_recovery(scale, churn_percent=6.0)
    out = rp.banner("Fig. 14 — recovery delays (s)") + "\nHard repairs:\n"
    out += rp.cdf_rows(res.hard) + "\nSoft repairs:\n" + rp.cdf_rows(res.soft)
    return out


EXPERIMENTS: dict[str, tuple[str, Callable]] = {
    "fig2": ("Duplicates per node under flooding", _render_fig2),
    "fig6": ("Depth + degree distributions (also fig7)", _render_fig6),
    "fig8": ("Sample tree shapes", _render_fig8),
    "fig9": ("Routing delays on PlanetLab", _render_fig9),
    "fig10": ("Bandwidth percentiles (also fig11)", _render_fig10),
    "table1": ("Churn impact", _render_table1),
    "fig12": ("Cross-protocol bandwidth", _render_fig12),
    "fig13": ("Construction time", _render_fig13),
    "table2": ("Dissemination latency", _render_table2),
    "fig14": ("Recovery delays", _render_fig14),
}


def _add_workload_args(cmd, *, default_size: str, default_messages: int) -> None:
    """Workload flags shared by ``repro scale`` and ``repro live`` — one
    definition, so the two commands cannot drift apart (they feed the
    same :class:`~repro.experiments.scale_runner.RunSpec`)."""
    cmd.add_argument("--scale", "--size", dest="scale", default=default_size,
                     help="tiny | small | fast | paper | large | xl | xxl | xxxl")
    cmd.add_argument("--nodes", type=int, default=None,
                     help="override the population (default: scale's cluster_nodes)")
    cmd.add_argument("--messages", type=int, default=default_messages,
                     help=f"stream length (default {default_messages})")
    cmd.add_argument("--rate", type=float, default=20.0, help="injection rate (msgs/s)")
    cmd.add_argument("--mode", choices=["tree", "dag"], default=None,
                     help="BRISA structure mode (brisa stack only; default tree)")
    cmd.add_argument("--streams", type=int, default=1, metavar="K",
                     help="concurrent publishers, spread over the population, "
                          "each driving its own stream id (default 1; "
                          "DESIGN.md §10)")
    cmd.add_argument("--seed", type=int, default=1)
    cmd.add_argument("--json", dest="json_path", default=None, metavar="FILE",
                     help="also write the results as JSON (merge-write: "
                          "existing entries in FILE from other runs are "
                          "preserved)")


def make_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="BRISA reproduction (IPDPS 2012)"
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list reproducible artifacts")
    run = sub.add_parser("run", help="run one artifact (or 'all')")
    run.add_argument("experiment", choices=[*EXPERIMENTS, "all"])
    run.add_argument("--scale", default=None,
                     help="tiny | small | fast | paper | large | xl | xxl | xxxl")
    sub.add_parser("quickstart", help="run the README quickstart")
    sc_cmd = sub.add_parser(
        "scale", help="large-scale dissemination benchmark (see DESIGN.md §6–7)"
    )
    _add_workload_args(sc_cmd, default_size="large", default_messages=20)
    sc_cmd.add_argument("--stack", choices=["flood", "brisa", "pull"], default="flood",
                        help="protocol stack: flood baseline, the full BRISA stack, "
                             "or the lazy-push/pull recovery baseline")
    sc_cmd.add_argument("--degree", type=int, default=None,
                        help="overlay degree (default: 5 for flood, settled-ramp "
                             "degree for brisa)")
    sc_cmd.add_argument("--bootstrap", default=None, metavar="KIND",
                        help="brisa stack only: synthesized (default) | simulated | "
                             "path to an overlay checkpoint")
    sc_cmd.add_argument("--kernel", choices=["object", "slotted", "vectorized"],
                        default=None,
                        help="delivery kernel (default object; slotted = "
                             "flat-array state, DESIGN.md §9 for flood, §11 for "
                             "brisa; vectorized = numpy batch-drain kernel, "
                             "flood stack only, DESIGN.md §12)")
    sc_cmd.add_argument("--churn", type=float, default=None, metavar="PCT",
                        help="flood stack only: kill PCT%% of the population at "
                             "random instants during the stream (sources protected) "
                             "and join as many fresh nodes")
    sc_cmd.add_argument("--topology", choices=["uniform", "powerlaw", "smallworld"],
                        default="uniform",
                        help="synthesized overlay topology class (default uniform; "
                             "powerlaw = preferential-attachment heavy tail, "
                             "smallworld = rewired ring lattice; DESIGN.md §14)")
    sc_cmd.add_argument("--loss", type=float, default=0.0, metavar="PCT",
                        dest="loss_percent",
                        help="per-link message loss rate in percent (default 0; "
                             "independent coin per (message, destination) from "
                             "its own RNG stream, DESIGN.md §14)")
    sc_cmd.add_argument("--no-microbench", action="store_true",
                        help="skip the engine and occupancy microbenchmarks")
    live_cmd = sub.add_parser(
        "live",
        help="BRISA over real asyncio UDP sockets across worker processes "
             "(DESIGN.md §13), e.g.: repro live --size small",
        description="Run the BRISA stack live: N worker OS processes on "
                    "localhost, one UDP socket each, dissemination over "
                    "real datagrams, cross-checked against a same-seed "
                    "simulated run.  Example: repro live --size small",
    )
    _add_workload_args(live_cmd, default_size="small", default_messages=10)
    live_cmd.add_argument("--workers", type=int, default=2, metavar="N",
                          help="worker OS processes hosting the nodes (default 2)")
    live_cmd.add_argument("--payload", type=int, default=256, metavar="BYTES",
                          dest="payload_bytes",
                          help="payload bytes per message (default 256)")
    live_cmd.add_argument("--timeout", type=float, default=60.0,
                          help="coordinator deadline in seconds before workers "
                               "are terminated (default 60)")
    live_cmd.add_argument("--checkpoint", default=None, metavar="FILE",
                          help="overlay checkpoint to restore (default: "
                               "synthesize one for this seed)")
    live_cmd.add_argument("--no-cross-check", action="store_true",
                          help="skip the same-seed simulated leg")
    live_cmd.add_argument("--control-host", default=None, metavar="HOST",
                          help="host the coordinator binds its control socket "
                               "on and advertises in the node address table "
                               "(default 127.0.0.1; set a routable address to "
                               "run workers on other hosts)")
    return parser


def _run_scale(args) -> int:
    spec = sc.RunSpec(
        stack=args.stack,
        size=args.scale,
        nodes=args.nodes,
        messages=args.messages,
        rate=args.rate,
        seed=args.seed,
        streams=args.streams,
        kernel=args.kernel,
        degree=args.degree,
        mode=args.mode,
        bootstrap=args.bootstrap,
        churn_percent=args.churn,
        topology=args.topology,
        loss_percent=args.loss_percent,
    )
    try:
        result = sc.run_spec(spec)
        nodes = spec.population(sc.get_scale(spec.size))
    except (ValueError, SimulationError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(rp.banner(f"Scale {args.stack} — {nodes} nodes ({args.scale})"))
    print(result.summary())
    payload = {"scale_run": result.to_dict()}
    if not args.no_microbench:
        bench = sc.engine_microbench()
        print(rp.banner("Engine microbenchmark — legacy vs fused hot path"))
        print(bench.summary())
        payload["microbench"] = bench.to_dict()
        occ = sc.occupancy_microbench()
        print(rp.banner("Occupancy microbenchmark — per-message vs fused fan-out"))
        print(occ.summary())
        payload["occupancy_microbench"] = occ.to_dict()
    if args.json_path:
        # The shared merge-write (DESIGN.md §10): repeated runs pointed at
        # one artifact accumulate entries instead of clobbering them, the
        # same contract the BENCH_*.json files rely on.
        sc.merge_json(args.json_path, payload)
        print(f"\nwrote {args.json_path}")
    return 0


def _run_live(args) -> int:
    from repro.experiments.live_runner import LiveSpec, run_live

    # The same RunSpec plumbing as `repro scale` resolves the shared
    # workload flags (size/nodes/messages/rate/streams/seed/mode); the
    # live stack is always BRISA.
    spec = sc.RunSpec(
        stack="brisa",
        size=args.scale,
        nodes=args.nodes,
        messages=args.messages,
        rate=args.rate,
        seed=args.seed,
        streams=args.streams,
        mode=args.mode,
    )
    try:
        spec.validate()
        nodes = spec.population(sc.get_scale(spec.size))
        live = LiveSpec(
            nodes=nodes,
            workers=args.workers,
            messages=spec.messages,
            streams=spec.streams,
            rate=spec.rate,
            payload_bytes=args.payload_bytes,
            seed=spec.seed,
            mode=spec.mode if spec.mode is not None else "tree",
            timeout=args.timeout,
            checkpoint=args.checkpoint,
            cross_check=not args.no_cross_check,
            **(
                {"control_host": args.control_host}
                if args.control_host is not None
                else {}
            ),
        )
        outcome = run_live(live, json_path=args.json_path)
    except (ValueError, SimulationError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(rp.banner(f"Live brisa — {nodes} nodes x {args.workers} workers ({args.scale})"))
    print(outcome.summary())
    if args.json_path:
        print(f"\nwrote {args.json_path}")
    ok = (
        outcome.delivered_fraction == 1.0
        and outcome.all_structures_ok
        and outcome.clean_shutdown
        and outcome.cross_check_ok is not False
    )
    return 0 if ok else 1


def main(argv: list[str] | None = None) -> int:
    args = make_parser().parse_args(argv)
    if args.command == "list":
        for name, (desc, _) in EXPERIMENTS.items():
            print(f"{name:8} {desc}")
        return 0
    if args.command == "quickstart":
        from repro.experiments.common import quick_brisa_run

        print(quick_brisa_run().summary())
        return 0
    if args.command == "scale":
        return _run_scale(args)
    if args.command == "live":
        return _run_live(args)
    scale = sc.get_scale(args.scale)
    names = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in names:
        _, render = EXPERIMENTS[name]
        print(render(scale))
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
