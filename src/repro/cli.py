"""Command-line interface: ``python -m repro <command>``.

Commands mirror the per-experiment index of DESIGN.md §4::

    python -m repro list                     # available experiments
    python -m repro run fig2 --scale fast    # one artifact, print rows
    python -m repro run all --scale fast     # every artifact
    python -m repro quickstart               # the README quickstart
    python -m repro scale --scale xl         # 10k-node flood benchmark
    python -m repro scale --stack brisa --size xl   # full BRISA stack at 10k
    python -m repro scale --scale xxl --messages 10 --no-microbench  # 100k rung
    python -m repro scale --scale xl --churn 1 --kernel slotted      # churn at scale
    python -m repro scale --stack brisa --size xl --streams 8        # §IV multi-stream
    python -m repro scale --size xxxl --kernel vectorized --messages 10 \
        --no-microbench                                              # 1M-node rung
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable

from repro.errors import SimulationError
from repro.experiments import report as rp
from repro.experiments import scenarios as sc
from repro.sim.monitor import DISSEMINATION, STABILIZATION


def _render_fig2(scale) -> str:
    res = sc.fig2_duplicates(scale)
    from repro.metrics.stats import CDF

    series = {
        f"view size = {v}": CDF.of(x / res.messages for x in cdf.values)
        for v, cdf in sorted(res.by_view.items())
    }
    return rp.banner("Fig. 2 — duplicates per message per node") + "\n" + rp.cdf_rows(series)


def _render_fig6(scale) -> str:
    res = sc.fig6_fig7_structure(scale)
    out = rp.banner("Fig. 6 — depth distribution") + "\n" + rp.cdf_rows(res.depth)
    out += "\n" + rp.banner("Fig. 7 — degree distribution") + "\n" + rp.cdf_rows(res.degree)
    return out


def _render_fig8(scale) -> str:
    res = sc.fig8_tree_shape()
    rows = [
        [f"view={v}", s["nodes"], s["edges"], s["max_depth"], s["max_degree"], s["leaves"]]
        for v, s in sorted(res.summary.items())
    ]
    return rp.banner("Fig. 8 — sample tree shapes") + "\n" + rp.table(
        ["config", "nodes", "edges", "max depth", "max degree", "leaves"], rows
    )


def _render_fig9(scale) -> str:
    res = sc.fig9_routing_delays(scale, seed=24)
    return rp.banner("Fig. 9 — routing delays (PlanetLab)") + "\n" + rp.cdf_rows(res.series)


def _render_fig10(scale) -> str:
    res = sc.fig10_fig11_bandwidth(scale)
    dl = {f"{label}, {kb} KB": p for (label, kb), p in sorted(res.download.items())}
    ul = {f"{label}, {kb} KB": p for (label, kb), p in sorted(res.upload.items())}
    out = rp.banner("Fig. 10 — download KB/s percentiles") + "\n" + rp.percentile_rows(dl)
    out += "\n" + rp.banner("Fig. 11 — upload KB/s percentiles") + "\n" + rp.percentile_rows(ul)
    return out


def _render_table1(scale) -> str:
    res = sc.table1_churn(scale)
    rows = [
        [n, f"{pct:g}%", mode, r.parents_lost_per_min, r.orphans_per_min,
         r.soft_repair_pct, r.hard_repair_pct]
        for (n, pct, mode), r in sorted(res.rows.items())
    ]
    return rp.banner("Table I — impact of churn") + "\n" + rp.table(
        ["nodes", "churn", "mode", "lost/min", "orphans/min", "% soft", "% hard"], rows
    )


def _render_fig12(scale) -> str:
    res = sc.fig12_bandwidth_comparison(scale)
    rows = []
    for proto, per in res.data.items():
        for kb, d in sorted(per.items()):
            rows.append([proto, kb, d[STABILIZATION], d[DISSEMINATION],
                         d[STABILIZATION] + d[DISSEMINATION]])
    return rp.banner("Fig. 12 — data transmitted per node (MB)") + "\n" + rp.table(
        ["protocol", "payload KB", "stabilization", "dissemination", "total"], rows
    )


def _render_fig13(scale) -> str:
    res = sc.fig13_construction(scale)
    series = {f"{p}, {e}": c for (p, e), c in sorted(res.series.items())}
    return rp.banner("Fig. 13 — construction time (s)") + "\n" + rp.cdf_rows(series)


def _render_table2(scale) -> str:
    res = sc.table2_latency(scale)
    rows = [
        [proto, res.latency[proto], f"+{res.overhead(proto) * 100:.0f}%",
         f"{res.delivered[proto] * 100:.1f}%"]
        for proto in res.latency
    ]
    return rp.banner(f"Table II — dissemination latency (ideal {res.ideal:.1f}s)") + "\n" + rp.table(
        ["protocol", "latency (s)", "overhead", "delivered"], rows
    )


def _render_fig14(scale) -> str:
    res = sc.fig14_recovery(scale, churn_percent=6.0)
    out = rp.banner("Fig. 14 — recovery delays (s)") + "\nHard repairs:\n"
    out += rp.cdf_rows(res.hard) + "\nSoft repairs:\n" + rp.cdf_rows(res.soft)
    return out


EXPERIMENTS: dict[str, tuple[str, Callable]] = {
    "fig2": ("Duplicates per node under flooding", _render_fig2),
    "fig6": ("Depth + degree distributions (also fig7)", _render_fig6),
    "fig8": ("Sample tree shapes", _render_fig8),
    "fig9": ("Routing delays on PlanetLab", _render_fig9),
    "fig10": ("Bandwidth percentiles (also fig11)", _render_fig10),
    "table1": ("Churn impact", _render_table1),
    "fig12": ("Cross-protocol bandwidth", _render_fig12),
    "fig13": ("Construction time", _render_fig13),
    "table2": ("Dissemination latency", _render_table2),
    "fig14": ("Recovery delays", _render_fig14),
}


def make_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="BRISA reproduction (IPDPS 2012)"
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list reproducible artifacts")
    run = sub.add_parser("run", help="run one artifact (or 'all')")
    run.add_argument("experiment", choices=[*EXPERIMENTS, "all"])
    run.add_argument("--scale", default=None,
                     help="tiny | fast | paper | large | xl | xxl | xxxl")
    sub.add_parser("quickstart", help="run the README quickstart")
    sc_cmd = sub.add_parser(
        "scale", help="large-scale dissemination benchmark (see DESIGN.md §6–7)"
    )
    sc_cmd.add_argument("--scale", "--size", dest="scale", default="large",
                        help="tiny | fast | paper | large | xl | xxl | xxxl")
    sc_cmd.add_argument("--stack", choices=["flood", "brisa"], default="flood",
                        help="protocol stack: flood baseline or the full BRISA stack")
    sc_cmd.add_argument("--nodes", type=int, default=None,
                        help="override the population (default: scale's cluster_nodes)")
    sc_cmd.add_argument("--messages", type=int, default=20,
                        help="stream length (default 20)")
    sc_cmd.add_argument("--degree", type=int, default=None,
                        help="overlay degree (default: 5 for flood, settled-ramp "
                             "degree for brisa)")
    sc_cmd.add_argument("--rate", type=float, default=20.0, help="injection rate (msgs/s)")
    sc_cmd.add_argument("--mode", choices=["tree", "dag"], default=None,
                        help="BRISA structure mode (brisa stack only; default tree)")
    sc_cmd.add_argument("--bootstrap", default=None, metavar="KIND",
                        help="brisa stack only: synthesized (default) | simulated | "
                             "path to an overlay checkpoint")
    sc_cmd.add_argument("--kernel", choices=["object", "slotted", "vectorized"],
                        default=None,
                        help="delivery kernel (default object; slotted = "
                             "flat-array state, DESIGN.md §9 for flood, §11 for "
                             "brisa; vectorized = numpy batch-drain kernel, "
                             "flood stack only, DESIGN.md §12)")
    sc_cmd.add_argument("--churn", type=float, default=None, metavar="PCT",
                        help="flood stack only: kill PCT%% of the population at "
                             "random instants during the stream (sources protected) "
                             "and join as many fresh nodes")
    sc_cmd.add_argument("--streams", type=int, default=1, metavar="K",
                        help="concurrent publishers, spread over the population, "
                             "each driving its own stream id (default 1; "
                             "DESIGN.md §10)")
    sc_cmd.add_argument("--seed", type=int, default=1)
    sc_cmd.add_argument("--json", dest="json_path", default=None, metavar="FILE",
                        help="also write the results as JSON (merge-write: "
                             "existing entries in FILE from other runs are "
                             "preserved)")
    sc_cmd.add_argument("--no-microbench", action="store_true",
                        help="skip the engine and occupancy microbenchmarks")
    return parser


def _run_scale(args) -> int:
    if args.stack != "brisa":
        # A forgotten --stack brisa must not silently benchmark the flood
        # stack while ignoring the BRISA-only knobs the user set.
        for flag, value in (("--mode", args.mode), ("--bootstrap", args.bootstrap)):
            if value is not None:
                print(
                    f"error: {flag} applies to the brisa stack only "
                    f"(add --stack brisa)",
                    file=sys.stderr,
                )
                return 2
    else:
        # Symmetrically, the remaining flood-only knob must not be
        # silently ignored (--kernel works on both stacks since the
        # slotted BRISA kernel landed, DESIGN.md §11).
        if args.churn is not None:
            print(
                "error: --churn applies to the flood stack only "
                "(BRISA churn runs through the repair scenarios)",
                file=sys.stderr,
            )
            return 2
    try:
        scale = sc.get_scale(args.scale)
        nodes = args.nodes if args.nodes is not None else scale.cluster_nodes
        if args.stack == "brisa":
            result = sc.run_scale_brisa(
                nodes, args.messages,
                mode=args.mode if args.mode is not None else "tree",
                degree=args.degree,
                rate=args.rate, seed=args.seed,
                bootstrap=args.bootstrap if args.bootstrap is not None else "synthesized",
                join_spacing=scale.join_spacing, settle=scale.settle,
                streams=args.streams,
                kernel=args.kernel if args.kernel is not None else "object",
            )
        else:
            result = sc.run_scale_flood(
                nodes, args.messages,
                degree=args.degree if args.degree is not None else 5,
                rate=args.rate, seed=args.seed,
                kernel=args.kernel if args.kernel is not None else "object",
                churn_percent=args.churn if args.churn is not None else 0.0,
                streams=args.streams,
            )
    except (ValueError, SimulationError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(rp.banner(f"Scale {args.stack} — {nodes} nodes ({args.scale})"))
    print(result.summary())
    payload = {"scale_run": result.to_dict()}
    if not args.no_microbench:
        bench = sc.engine_microbench()
        print(rp.banner("Engine microbenchmark — legacy vs fused hot path"))
        print(bench.summary())
        payload["microbench"] = bench.to_dict()
        occ = sc.occupancy_microbench()
        print(rp.banner("Occupancy microbenchmark — per-message vs fused fan-out"))
        print(occ.summary())
        payload["occupancy_microbench"] = occ.to_dict()
    if args.json_path:
        # The shared merge-write (DESIGN.md §10): repeated runs pointed at
        # one artifact accumulate entries instead of clobbering them, the
        # same contract the BENCH_*.json files rely on.
        sc.merge_json(args.json_path, payload)
        print(f"\nwrote {args.json_path}")
    return 0


def main(argv: list[str] | None = None) -> int:
    args = make_parser().parse_args(argv)
    if args.command == "list":
        for name, (desc, _) in EXPERIMENTS.items():
            print(f"{name:8} {desc}")
        return 0
    if args.command == "quickstart":
        from repro.experiments.common import quick_brisa_run

        print(quick_brisa_run().summary())
        return 0
    if args.command == "scale":
        return _run_scale(args)
    scale = sc.get_scale(args.scale)
    names = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in names:
        _, render = EXPERIMENTS[name]
        print(render(scale))
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
