"""Asyncio implementation of the runtime seam: real clocks, real UDP.

One worker process runs one event loop hosting M nodes.  The two
contracts from :mod:`repro.runtime.api` map onto it directly:

- :class:`AsyncioClock` — ``now`` is seconds since a *shared epoch*: the
  coordinator samples ``time.monotonic()`` once at launch and ships it
  to every worker, and ``CLOCK_MONOTONIC`` is machine-wide on Linux, so
  timestamps taken in different processes are directly comparable (the
  live runner's delivery latencies rely on this).  RNG streams derive
  from the run seed through the same :func:`repro.sim.rng.derive` as
  the simulator — a live node and its same-seed simulated twin draw
  identical streams.

- :class:`UdpTransport` — one datagram socket per worker; every send is
  a real UDP packet (loopback included — two nodes in one process still
  round-trip through the kernel), encoded by :mod:`repro.runtime.wire`
  with a 16-byte ``(src, dst)`` routing envelope in front of the frame.
  The address table mapping node id -> (host, port) is pushed by the
  coordinator before traffic starts.  Per the transport contract,
  ``peer_stats``/``peer_position`` return None: a real network is not
  omniscient, and only non-default strategies/predictors consume them.

Nothing here imports the simulator's engine or network.
"""

from __future__ import annotations

import asyncio
import socket
import struct
import time
from typing import Callable, Optional

from repro.ids import NodeId
from repro.sim.message import Message
from repro.sim.monitor import Metrics
from repro.sim.rng import derive
from repro.runtime.wire import WireCodecError, decode_frame, encode_frame

#: Datagram routing envelope: big-endian (src, dst) node ids.
_ENVELOPE = struct.Struct("!qq")

#: Ask the kernel for a deep receive buffer: dissemination is bursty
#: (a fan-out lands as a packet train), and the default rmem on many
#: hosts drops tails of exactly such trains.
RECV_BUFFER_BYTES = 4 << 20


def encode_packet(src: NodeId, dst: NodeId, msg: Message) -> bytes:
    return _ENVELOPE.pack(src, dst) + encode_frame(msg)


def decode_packet(data: bytes) -> tuple[NodeId, NodeId, Message]:
    if len(data) < _ENVELOPE.size:
        raise WireCodecError("datagram shorter than routing envelope")
    src, dst = _ENVELOPE.unpack_from(data)
    msg, end = decode_frame(data, _ENVELOPE.size)
    if end != len(data):
        raise WireCodecError("trailing bytes after frame")
    return src, dst, msg


class _TimerHandle:
    """Adapter giving ``asyncio.TimerHandle`` the seam's handle shape."""

    __slots__ = ("_handle", "_done")

    def __init__(self, handle: asyncio.TimerHandle) -> None:
        self._handle = handle

    def cancel(self) -> None:
        self._handle.cancel()

    @property
    def active(self) -> bool:
        return not self._handle.cancelled()


class AsyncioClock:
    """Event-loop clock on a cross-process shared monotonic epoch."""

    def __init__(
        self,
        loop: Optional[asyncio.AbstractEventLoop] = None,
        *,
        seed: int = 0,
        epoch: Optional[float] = None,
    ) -> None:
        self.loop = loop if loop is not None else asyncio.get_event_loop()
        self.seed = seed
        #: ``time.monotonic()`` at run start (coordinator-sampled).
        self.epoch = epoch if epoch is not None else time.monotonic()
        #: Offset translating run time into this loop's time axis:
        #: ``loop.time()`` is monotonic-based on the default event loop,
        #: but the translation is measured, not assumed.
        self._loop_offset = self.loop.time() - (time.monotonic() - self.epoch)

    def configure(self, *, seed: int, epoch: float) -> None:
        """Adopt the coordinator-assigned seed and shared epoch (workers
        bind sockets before their config arrives, so the clock exists
        first and is re-anchored here, before any node spawns)."""
        self.seed = seed
        self.epoch = epoch
        self._loop_offset = self.loop.time() - (time.monotonic() - self.epoch)

    @property
    def now(self) -> float:
        return time.monotonic() - self.epoch

    def schedule(self, delay: float, fn: Callable, *args) -> _TimerHandle:
        return _TimerHandle(self.loop.call_later(max(0.0, delay), fn, *args))

    def call_later(self, delay: float, fn: Callable, *args) -> None:
        self.loop.call_later(max(0.0, delay), fn, *args)

    def call_at(self, when: float, fn: Callable, *args) -> None:
        self.loop.call_at(when + self._loop_offset, fn, *args)

    def rng(self, *labels: object):
        """Same label-derived streams as ``Simulator.rng``."""
        return derive(self.seed, *labels)


class UdpTransport(asyncio.DatagramProtocol):
    """Datagram transport hosting this worker's nodes.

    Lifecycle: construct, ``await open()`` (binds the socket, fixes the
    port), learn the cluster address table via :meth:`set_peers`, spawn
    nodes, exchange traffic, ``close()``.
    """

    def __init__(
        self,
        clock: AsyncioClock,
        *,
        host: str = "127.0.0.1",
        metrics: Optional[Metrics] = None,
    ) -> None:
        self.clock = clock
        self.host = host
        self.metrics = metrics if metrics is not None else Metrics(record_deliveries=False)
        self.autostart_timers = True
        #: Locally-hosted nodes by id.
        self.nodes: dict[NodeId, object] = {}
        #: node id -> (host, port) for every node in the cluster.
        self.addr_of: dict[NodeId, tuple[str, int]] = {}
        self.links: dict[NodeId, set[NodeId]] = {}
        #: Wire/codec trouble counters (poisoned packets are dropped).
        self.rx_packets = 0
        self.tx_packets = 0
        self.rx_errors = 0
        self._transport: Optional[asyncio.DatagramTransport] = None
        self.port: Optional[int] = None

    # ------------------------------------------------------------------
    # Socket lifecycle (asyncio.DatagramProtocol callbacks included)
    # ------------------------------------------------------------------
    async def open(self, port: int = 0) -> int:
        """Bind the worker socket; returns the OS-assigned port."""
        await self.clock.loop.create_datagram_endpoint(
            lambda: self, local_addr=(self.host, port)
        )
        return self.port  # type: ignore[return-value]

    def connection_made(self, transport) -> None:
        self._transport = transport
        sock = transport.get_extra_info("socket")
        if sock is not None:
            try:
                sock.setsockopt(socket.SOL_SOCKET, socket.SO_RCVBUF, RECV_BUFFER_BYTES)
            except OSError:
                pass  # best effort; the default buffer still works
        self.port = transport.get_extra_info("sockname")[1]

    def close(self) -> None:
        if self._transport is not None:
            self._transport.close()
            self._transport = None

    def set_peers(self, addr_of: dict[NodeId, tuple[str, int]]) -> None:
        self.addr_of = dict(addr_of)

    # ------------------------------------------------------------------
    # Node hosting
    # ------------------------------------------------------------------
    def spawn(self, factory, node_id: NodeId):
        node = factory(self, node_id)
        self.nodes[node_id] = node
        return node

    def datagram_received(self, data: bytes, addr) -> None:
        try:
            src, dst, msg = decode_packet(data)
        except WireCodecError:
            self.rx_errors += 1
            return
        node = self.nodes.get(dst)
        if node is None:
            self.rx_errors += 1
            return
        self.rx_packets += 1
        self.metrics.account_receive(dst, msg.size_bytes())
        node.handle_message(src, msg)

    # ------------------------------------------------------------------
    # MessageTransport contract
    # ------------------------------------------------------------------
    def send(self, src: NodeId, dst: NodeId, msg: Message) -> None:
        addr = self.addr_of.get(dst)
        if addr is None or self._transport is None:
            return  # unknown peer: a real network just loses the packet
        self.metrics.account_send(src, msg.kind, msg.size_bytes())
        self.tx_packets += 1
        self._transport.sendto(encode_packet(src, dst, msg), addr)

    def send_many(self, src: NodeId, dsts, msg: Message) -> int:
        if self._transport is None:
            return 0
        # One message object, one encode: only the 16-byte routing
        # envelope differs per destination.
        frame = encode_frame(msg)
        kind, nbytes = msg.kind, msg.size_bytes()
        count = 0
        for dst in dsts:
            addr = self.addr_of.get(dst)
            if addr is None:
                continue
            self.metrics.account_send(src, kind, nbytes)
            self.tx_packets += 1
            self._transport.sendto(_ENVELOPE.pack(src, dst) + frame, addr)
            count += 1
        return count

    def register_link(self, a: NodeId, b: NodeId) -> None:
        self.links.setdefault(a, set()).add(b)
        self.links.setdefault(b, set()).add(a)

    def unregister_link(self, a: NodeId, b: NodeId) -> None:
        peers = self.links.get(a)
        if peers is not None:
            peers.discard(b)
            if not peers:
                del self.links[a]
        peers = self.links.get(b)
        if peers is not None:
            peers.discard(a)
            if not peers:
                del self.links[b]

    def rtt(self, a: NodeId, b: NodeId) -> float:
        """Loopback RTT estimate; matches the live smoke's latency scale
        so protocol timeouts (6×RTT floors) stay in the same regime as
        the cross-checked simulated run."""
        return 0.002

    def capacity(self, node_id: NodeId) -> float:
        return 1.0

    def alive(self, node_id: NodeId) -> bool:
        node = self.nodes.get(node_id)
        if node is not None:
            return node.alive
        return node_id in self.addr_of

    def peer_stats(self, peer: NodeId, stream: int) -> "tuple[float, int] | None":
        return None  # not omniscient; piggybacking is future work

    def peer_position(self, peer: NodeId, stream: int) -> "int | None":
        return None
