"""Length-prefixed wire codec for the protocol message classes.

The asyncio backend ships the exact message objects the simulator passes
by reference: every concrete :class:`repro.sim.message.Message` subclass
in :mod:`repro.core.messages` and :mod:`repro.membership.messages` is
registered here by its ``kind`` string and serialized field-for-field
from its ``__slots__``.

Frame layout: a 4-byte big-endian payload length, then a UTF-8 JSON
object ``{"k": <kind>, "f": {<field>: <value>, ...}}``.  JSON keeps the
codec honest about the message inventory (arbitrary objects cannot
sneak through, unlike pickle), handles the Bloom ancestor filters —
arbitrary-precision ints, up to 1024 bits — natively, and is cheap to
debug on the wire.  Tuples flatten to JSON arrays and are re-tupled
recursively on decode (paths, shuffle entry lists), restoring the exact
immutable shape the protocol code hashes and compares.

Decode never trusts the peer: unknown kinds, truncated frames,
oversized declarations, junk JSON, and field mismatches all raise
:class:`WireCodecError` instead of half-building a message.
"""

from __future__ import annotations

import json
import struct
from typing import Iterator

from repro.errors import ReproError
from repro.sim.message import Message

#: Frame header: big-endian payload byte length.
_LEN = struct.Struct("!I")
LENGTH_PREFIX_BYTES = _LEN.size

#: Refuse to allocate for absurd length declarations (a corrupt or
#: hostile prefix must not buffer gigabytes).  Generous: the largest
#: legitimate frame is a Data message with a multi-KB payload field.
MAX_FRAME_BYTES = 1 << 20


class WireCodecError(ReproError):
    """A frame could not be encoded or decoded."""


def _message_classes() -> Iterator[type[Message]]:
    from repro.core import messages as core_messages
    from repro.membership import messages as membership_messages

    for module in (core_messages, membership_messages):
        for obj in vars(module).values():
            if (
                isinstance(obj, type)
                and issubclass(obj, Message)
                and obj is not Message
            ):
                yield obj


def wire_fields(cls: type[Message]) -> tuple[str, ...]:
    """Serializable field names of a message class, in declaration order.

    Walks the MRO's ``__slots__`` (base-class first), excluding the
    ``Message`` size-memo slot — the decoder rebuilds instances field by
    field and lets ``size_bytes()`` re-memoize lazily.
    """
    fields: list[str] = []
    for klass in reversed(cls.__mro__):
        for name in getattr(klass, "__slots__", ()):
            if name != "_size":
                fields.append(name)
    return tuple(fields)


#: kind -> (class, field names); built once at import.
REGISTRY: dict[str, tuple[type[Message], tuple[str, ...]]] = {
    cls.kind: (cls, wire_fields(cls)) for cls in _message_classes()
}


def _retuple(value):
    """JSON arrays back to the tuples the protocol code expects."""
    if isinstance(value, list):
        return tuple(_retuple(v) for v in value)
    return value


def encode_message(msg: Message) -> bytes:
    """Message object -> JSON payload bytes (no length prefix)."""
    entry = REGISTRY.get(msg.kind)
    if entry is None or not isinstance(msg, entry[0]):
        raise WireCodecError(f"unregistered message type {type(msg).__name__!r}")
    fields = {name: getattr(msg, name) for name in entry[1]}
    return json.dumps({"k": msg.kind, "f": fields}, separators=(",", ":")).encode()


def decode_message(payload: bytes) -> Message:
    """JSON payload bytes -> message object; raises :class:`WireCodecError`."""
    try:
        obj = json.loads(payload)
    except (ValueError, UnicodeDecodeError) as exc:
        raise WireCodecError(f"undecodable frame payload: {exc}") from exc
    if not isinstance(obj, dict) or not isinstance(obj.get("f"), dict):
        raise WireCodecError("frame payload is not a {k, f} object")
    entry = REGISTRY.get(obj.get("k"))
    if entry is None:
        raise WireCodecError(f"unknown message kind {obj.get('k')!r}")
    cls, names = entry
    fields = obj["f"]
    if set(fields) != set(names):
        raise WireCodecError(
            f"field mismatch for {cls.__name__}: got {sorted(fields)}, "
            f"want {sorted(names)}"
        )
    msg = cls.__new__(cls)
    for name in names:
        setattr(msg, name, _retuple(fields[name]))
    return msg


def encode_frame(msg: Message) -> bytes:
    """Message -> one length-prefixed frame."""
    payload = encode_message(msg)
    if len(payload) > MAX_FRAME_BYTES:
        raise WireCodecError(f"frame too large ({len(payload)} bytes)")
    return _LEN.pack(len(payload)) + payload


def decode_frame(data: bytes, offset: int = 0) -> tuple[Message, int]:
    """One frame at ``offset`` -> (message, next offset).

    Raises :class:`WireCodecError` on a truncated header, a length
    declaration past :data:`MAX_FRAME_BYTES`, or a payload shorter than
    declared — a datagram transport treats any of these as a poisoned
    packet and drops it.
    """
    if len(data) - offset < LENGTH_PREFIX_BYTES:
        raise WireCodecError("truncated frame header")
    (length,) = _LEN.unpack_from(data, offset)
    if length > MAX_FRAME_BYTES:
        raise WireCodecError(f"declared frame length {length} exceeds cap")
    start = offset + LENGTH_PREFIX_BYTES
    end = start + length
    if len(data) < end:
        raise WireCodecError("truncated frame payload")
    return decode_message(data[start:end]), end
