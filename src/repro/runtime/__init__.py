"""Backend-neutral runtime seam: Clock + MessageTransport contracts.

Protocol state machines (:class:`repro.sim.node.ProtocolNode` and its
subclasses) speak only the structural contracts defined in
:mod:`repro.runtime.api`.  Two backends implement them:

- the discrete-event simulator (``repro.sim.engine.Simulator`` /
  ``repro.sim.network.Network`` duck-type the contracts directly, so the
  simulated hot paths pay zero adaptation overhead), and
- the asyncio backend (:mod:`repro.runtime.asyncio_backend`): real
  monotonic clocks and UDP datagram sockets, one event loop per worker
  process.

See DESIGN.md §13.
"""

from repro.runtime.api import Clock, MessageTransport, PeriodicTask, ScheduledHandle

__all__ = ["Clock", "MessageTransport", "PeriodicTask", "ScheduledHandle"]
