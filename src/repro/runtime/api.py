"""The runtime API protocol nodes are written against (DESIGN.md §13).

Contracts are *structural* (:class:`typing.Protocol`): any object with
the right methods is a valid backend, so the simulator's ``Simulator``
and ``Network`` satisfy them as-is — no wrapper objects sit on the
per-message hot path.  The asyncio backend provides real implementations
over an event loop and UDP sockets.

A node sees exactly two capability objects:

- ``clock`` — virtual or wall time: ``now``, cancellable ``schedule``,
  and seeded ``rng(*labels)`` stream derivation.  Both backends derive
  RNG streams through :func:`repro.sim.rng.derive`, which is what makes
  a live run and a same-seed simulated run draw-for-draw comparable.
- ``transport`` — message delivery and link bookkeeping: ``send``,
  ``send_many``, ``register_link``/``unregister_link``, link properties
  (``rtt``, ``capacity``), liveness, per-run ``metrics``, and the two
  peer-introspection hooks BRISA's parent-choice strategies use
  (``peer_stats``, ``peer_position``).

:class:`PeriodicTask` lives here because it is pure clock algebra — it
only ever calls ``clock.schedule`` — and both backends reuse it
verbatim.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional, Protocol, runtime_checkable

from repro.errors import SimulationError
from repro.ids import NodeId

if TYPE_CHECKING:  # annotation-only; keeps runtime/ import-independent of sim/
    from repro.sim.message import Message


@runtime_checkable
class ScheduledHandle(Protocol):
    """Cancellable handle returned by :meth:`Clock.schedule`."""

    def cancel(self) -> None: ...

    @property
    def active(self) -> bool: ...


@runtime_checkable
class Clock(Protocol):
    """Time source + timer scheduler + seeded RNG provisioning."""

    #: Current time in seconds.  Virtual time for the simulator, seconds
    #: since the shared run epoch for the asyncio backend.
    now: float

    def schedule(self, delay: float, fn: Callable, *args) -> ScheduledHandle:
        """Run ``fn(*args)`` ``delay`` seconds from now; cancellable."""
        ...

    def rng(self, *labels: object):
        """Independent seeded RNG stream derived from the run seed."""
        ...


@runtime_checkable
class MessageTransport(Protocol):
    """Message delivery + link bookkeeping for one node population.

    The simulator's ``Network`` satisfies this structurally; the asyncio
    backend's ``UdpTransport`` implements it over datagram sockets.
    """

    #: The clock this transport's deliveries are timed against.
    clock: Clock

    #: Per-run metrics sink (``repro.sim.monitor.Metrics``-compatible).
    metrics: object

    #: Whether ``ProtocolNode.periodic`` arms timers at creation time
    #: (False during bulk bootstrap, DESIGN.md §8).
    autostart_timers: bool

    def send(self, src: NodeId, dst: NodeId, msg: Message) -> None: ...

    def send_many(self, src: NodeId, dsts, msg: Message) -> int: ...

    def register_link(self, a: NodeId, b: NodeId) -> None:
        """Declare an active connection (failure-detector scope)."""
        ...

    def unregister_link(self, a: NodeId, b: NodeId) -> None: ...

    def rtt(self, a: NodeId, b: NodeId) -> float:
        """Round-trip estimate between two nodes (strategy input)."""
        ...

    def capacity(self, node_id: NodeId) -> float:
        """Relative bandwidth capacity of a node (strategy input)."""
        ...

    def alive(self, node_id: NodeId) -> bool: ...

    def peer_stats(self, peer: NodeId, stream: int) -> "tuple[float, int] | None":
        """(uptime, relay-load) of a peer, or None if unobservable.

        The simulator reads the peer node directly (omniscient); a real
        transport returns None unless the protocol piggybacks the data.
        Only non-default parent-choice strategies consume this.
        """
        ...

    def peer_position(self, peer: NodeId, stream: int) -> Optional[int]:
        """A peer's last-delivered sequence position, or None."""
        ...


class PeriodicTask:
    """Re-scheduling periodic callback with optional uniform jitter.

    Protocol timers (shuffles, keep-alives, pulls) use jitter to avoid the
    lock-step synchrony a real deployment never exhibits.

    Stop/restart semantics: ``stop()`` cancels the pending firing;
    ``start()`` after a ``stop()`` behaves exactly like the first start,
    including the ``start_delay`` override.  ``stop()`` called from inside
    ``fn()`` during a firing suppresses the re-schedule.

    ``rng`` may be an RNG instance or a zero-argument provider returning
    one; a provider is resolved on the first jittered delay draw.  Nodes
    pass a provider so a task that never starts (deferred-timer bulk
    bootstrap, DESIGN.md §8) never forces its node's RNG stream into
    existence.
    """

    def __init__(
        self,
        clock: Clock,
        period: float,
        fn: Callable[[], None],
        *,
        jitter: float = 0.0,
        rng=None,
        start_delay: Optional[float] = None,
    ) -> None:
        if period <= 0:
            raise SimulationError("period must be positive")
        if not 0.0 <= jitter < 1.0:
            raise SimulationError("jitter must be in [0, 1)")
        self.clock = clock
        self.period = period
        self.fn = fn
        self.jitter = jitter
        self.rng = rng
        self._handle: Optional[ScheduledHandle] = None
        self._running = False
        self._start_delay = start_delay

    @property
    def sim(self):
        """Legacy alias from when this class lived in ``sim.engine``."""
        return self.clock

    def _next_delay(self) -> float:
        if self.jitter and self.rng is not None:
            rng = self.rng
            if not hasattr(rng, "uniform"):
                rng = self.rng = rng()
            spread = self.period * self.jitter
            return self.period + rng.uniform(-spread, spread)
        return self.period

    def start(self) -> "PeriodicTask":
        if self._running:
            return self
        self._running = True
        delay = self._start_delay if self._start_delay is not None else self._next_delay()
        self._handle = self.clock.schedule(max(0.0, delay), self._fire)
        return self

    def _fire(self) -> None:
        if not self._running:
            return
        self.fn()
        if self._running:  # fn() may have stopped us
            self._handle = self.clock.schedule(self._next_delay(), self._fire)

    def stop(self) -> None:
        self._running = False
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    @property
    def running(self) -> bool:
        return self._running
