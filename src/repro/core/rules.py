"""Pure BRISA state-transition rules (the engine/protocol seam).

The link-deactivation decision of Fig. 3 and the steady-state parent
revalidation of §II-D/§II-G are *pure* functions of (predictor, strategy,
own position, parent set, incoming metadata).  This module states them
once, free of object plumbing — no sends, no metrics, no timers — so
every kernel applies the same rule table:

- :class:`repro.core.brisa.BrisaNode` (reference object kernel) threads
  the verdicts through its message/metrics side effects;
- :class:`repro.core.brisa_slotted.SlottedBrisaKernel` uses them to
  prove its array fast path sound: a reception whose inputs match the
  last maintenance decision *by object identity* must produce the same
  verdict, so the whole maintenance step can be skipped (see
  DESIGN.md §11);
- a future asyncio backend (ROADMAP) gets the protocol logic without the
  simulator.

Verdict values are interned module-level strings, so callers may compare
with ``is``.
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.core.cycle import PARENT_CYCLE, PARENT_DEMOTE, CyclePredictor

# -- provider_action verdicts (Fig. 3, first tier) ----------------------
#: ``src`` is already a parent: revalidate it (maintenance_action).
MAINTAIN = "maintain"
#: Ineligible provider and we have parents: deactivate the link.
PRUNE = "prune"
#: Ineligible provider but zero parents: keep the link as fallback flow.
IGNORE = "ignore"
#: Eligible and the parent set has room: adopt.
ADOPT = "adopt"
#: Eligible but parents are full: run the contention rule.
CONTEND = "contend"

# -- contention_action verdicts (Fig. 3, parents full) ------------------
#: Newcomer beats the worst incumbent: swap them.
SWAP = "swap"
#: First reception from a non-parent: keep the live feed (§II-F).
KEEP_FEED = "keep-feed"
#: Duplicate from a worse provider: deactivate it.
REJECT = "reject"

# -- maintenance_action verdicts (§II-D / §II-G) ------------------------
#: Parent is mid-hard-repair (meta is None): nothing to check.
PARENT_SKIP = "skip"
#: Cycle evidence: drop the parent (demote counts untouched).
PARENT_DROP_CYCLE = "drop-cycle"
#: Demotion chase detected: drop the parent and forget its count.
PARENT_DROP_DEMOTED = "drop-demoted"
#: Depth race: move below the parent (demote count incremented).
PARENT_DEMOTE_STEP = "demote"
#: Parent stands: refresh own position from its metadata.
PARENT_REFRESH = "refresh"


def provider_action(
    predictor: CyclePredictor,
    node_id,
    position: Any,
    parents,
    num_parents: int,
    src,
    meta: Any,
) -> str:
    """First tier of the Fig. 3 decision for a message from ``src``."""
    if src in parents:
        return MAINTAIN
    if not predictor.eligible(node_id, position, meta):
        return PRUNE if parents else IGNORE
    if len(parents) < num_parents:
        return ADOPT
    return CONTEND


def contention_action(strategy, newcomer, incumbents, first: bool):
    """Parents full: (verdict, worst_peer) between newcomer and incumbents.

    ``first`` receptions from non-parents never deactivate (link
    deactivation is a duplicate-triggered decision): the provider is
    ahead of every current parent, so its feed stays live until a parent
    actually resumes service.
    """
    worst = strategy.worst(incumbents)
    if strategy.prefers(newcomer, worst):
        return SWAP, worst.peer
    if first:
        return KEEP_FEED, None
    return REJECT, None


def symmetric_mute(config, strategy, src_reactivated: bool) -> bool:
    """§II-E symmetric deactivation: may we silently stop relaying to a
    peer that demonstrably received this message before us?  Trees only,
    and never for peers that explicitly re-activated the link (repair
    adoptions are not governed by first-come order)."""
    return (
        config.symmetric_deactivation
        and strategy.supports_symmetric
        and config.num_parents == 1
        and not src_reactivated
    )


def maintenance_action(
    predictor: CyclePredictor,
    node_id,
    position: Any,
    meta: Any,
    demote_count: int,
    backflow_open: bool,
    demote_limit: int,
) -> tuple[str, int]:
    """Steady-state revalidation of an existing parent: (verdict, count).

    ``backflow_open`` is whether the parent still accepts our relays
    (``src not in out_deactivated``) — the mutual-adoption tell: a
    legitimate parent deactivates our backflow, so a parent that keeps
    demoting us while consuming our relays is chasing its own depth
    labels around a two-cycle.
    """
    if meta is None:
        return PARENT_SKIP, demote_count
    verdict = predictor.check_parent(node_id, position, meta)
    if verdict == PARENT_CYCLE:
        return PARENT_DROP_CYCLE, demote_count
    if verdict == PARENT_DEMOTE:
        count = demote_count + 1
        suspicious = count >= 2 and backflow_open
        if suspicious or count > demote_limit:
            return PARENT_DROP_DEMOTED, count
        return PARENT_DEMOTE_STEP, count
    return PARENT_REFRESH, demote_count


def merge_position(predictor_name: str, old: Any, new: Any) -> Any:
    """Combine the constraints of multiple parents (DAG depth = max,
    Bloom = union, path = freshest)."""
    if old is None:
        return new
    if predictor_name == "depth":
        return max(old, new)
    if predictor_name == "bloom":
        return old | new
    return new


def hops_from_position(predictor_name: str, position: Any, last_hops) -> int:
    """Distance implied by a position; Bloom filters carry none, so the
    last reception's count stands in."""
    if predictor_name == "path":
        return len(position) - 1
    if predictor_name == "depth":
        return int(position)
    return last_hops if last_hops is not None else 1


def fold_parent_filters(position: Any, parent_metas: Iterable[Any]) -> Any:
    """Union of own Bloom position with every parent's current filter —
    the growth that _broadcast_bloom pushes downstream (§II-G safety)."""
    combined = position
    for parent_meta in parent_metas:
        if parent_meta is None:
            continue
        combined = parent_meta if combined is None else combined | parent_meta
    return combined


def wants_gap_recovery(
    seq: int,
    max_contig: int,
    recovered: bool,
    now: float,
    last_request: float,
    cooldown: float,
) -> bool:
    """Sequence-gap recovery trigger (§II-F), rate-limited."""
    return (
        seq > max_contig + 1
        and not recovered
        and now - last_request > cooldown
    )
