"""Packed Bloom ancestor-filter bit-matrix (§II-F, slotted kernel).

The object kernel keeps each node's Bloom position as an arbitrary-width
Python int mask.  At scale that is one boxed bigint per node per stream;
the slotted kernel instead packs all filters of one stream plane into a
single row-major ``bytearray`` — rows are node slots, columns are the
``bits`` filter bits — so growth-push updates (§II-G: BloomUpdate folds
parent filters into children) become row ORs over flat bytes, and a
crash releases a node by zeroing one row slice.

The matrix mirrors ``StreamState.position`` for the bloom predictor
(synced through the ``_set_position`` choke point, see DESIGN.md §11);
``as_int`` converts a row back to the object kernel's mask
representation, which is what the parity tests compare.
"""

from __future__ import annotations


class BloomBitMatrix:
    """``capacity`` × ``bits`` bit-matrix over one packed bytearray."""

    __slots__ = ("bits", "row_bytes", "capacity", "data")

    def __init__(self, bits: int, capacity: int = 0) -> None:
        if bits <= 0:
            raise ValueError("bits must be positive")
        self.bits = bits
        self.row_bytes = (bits + 7) // 8
        self.capacity = 0
        self.data = bytearray()
        if capacity:
            self.grow(capacity)

    # ------------------------------------------------------------------
    def grow(self, capacity: int) -> None:
        """Extend to ``capacity`` rows (new rows zeroed); never shrinks."""
        if capacity > self.capacity:
            self.data.extend(bytes((capacity - self.capacity) * self.row_bytes))
            self.capacity = capacity

    def clear_row(self, slot: int) -> None:
        """Zero one row (slot release on crash; hard-repair position reset)."""
        start = slot * self.row_bytes
        self.data[start:start + self.row_bytes] = bytes(self.row_bytes)

    # ------------------------------------------------------------------
    def set_row(self, slot: int, mask: int) -> None:
        """Overwrite a row from an int mask (adoption after a reset)."""
        start = slot * self.row_bytes
        self.data[start:start + self.row_bytes] = mask.to_bytes(
            self.row_bytes, "little"
        )

    def or_row(self, slot: int, mask: int) -> bool:
        """OR an int mask into a row (growth-push update); True if grew.

        Filter growth is monotone between hard-repair resets (§II-G), so
        every position change of a live filter is expressible as one row
        OR — the operation BloomUpdate cascades are made of.
        """
        start = slot * self.row_bytes
        current = int.from_bytes(self.data[start:start + self.row_bytes], "little")
        merged = current | mask
        if merged == current:
            return False
        self.data[start:start + self.row_bytes] = merged.to_bytes(
            self.row_bytes, "little"
        )
        return True

    def as_int(self, slot: int) -> int:
        """Row as the object kernel's int-mask representation."""
        start = slot * self.row_bytes
        return int.from_bytes(self.data[start:start + self.row_bytes], "little")

    # ------------------------------------------------------------------
    def insert(self, slot: int, node_mask: int) -> None:
        """Add one node's hash bits to a row's ancestor set."""
        self.or_row(slot, node_mask)

    def contains(self, slot: int, node_mask: int) -> bool:
        """Are all of ``node_mask``'s bits present in the row's filter?
        (Bloom membership — false positives possible, §II-D.)"""
        return (self.as_int(slot) & node_mask) == node_mask
