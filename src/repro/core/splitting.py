"""Stream splitting over DAG parents (§IV *Stream splitting* extension).

With ``p`` parents, a node can ask each parent for a disjoint share of the
stream instead of receiving every message from every parent — SplitStream's
idea, but without SplitStream's rigid all-nodes-in-all-trees requirement.
The splitter assigns sequence numbers round-robin across parents
(``seq mod p``); a :class:`StripeAssignment` tells a node which parent
feeds which stripe and lets it detect stripes left uncovered after a
parent failure (those fall back to full reception until repair).

This module provides the pure assignment/recombination logic; the
``examples/stream_splitting.py`` example and the ablation bench exercise
it end-to-end on top of DAG state.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

from repro.ids import NodeId


@dataclass(frozen=True)
class StripeAssignment:
    """Mapping of stripe index -> feeding parent."""

    parents: tuple[NodeId, ...]

    def __post_init__(self) -> None:
        if not self.parents:
            raise ValueError("stripe assignment needs at least one parent")

    @property
    def stripes(self) -> int:
        return len(self.parents)

    def parent_for(self, seq: int) -> NodeId:
        """The parent responsible for sequence number ``seq``."""
        return self.parents[seq % self.stripes]

    def stripe_of(self, seq: int) -> int:
        return seq % self.stripes

    def sequences_for_parent(self, parent: NodeId, upto: int) -> list[int]:
        """All sequence numbers in ``[0, upto)`` served by ``parent``."""
        stripes = [i for i, p in enumerate(self.parents) if p == parent]
        return [s for s in range(upto) if s % self.stripes in stripes]

    def without_parent(self, parent: NodeId) -> Optional["StripeAssignment"]:
        """Assignment after ``parent`` fails: its stripes are redistributed
        round-robin over the survivors (None if nobody is left)."""
        survivors = [p for p in self.parents if p != parent]
        if not survivors:
            return None
        reassigned = tuple(
            p if p != parent else survivors[i % len(survivors)]
            for i, p in enumerate(self.parents)
        )
        return StripeAssignment(reassigned)


class StripeReassembler:
    """Order-recovery buffer on the receiving side of a split stream.

    Messages arrive interleaved from several parents; the reassembler
    releases them in sequence order and reports gaps (stripes whose parent
    is lagging or failed) so the caller can trigger recovery.
    """

    def __init__(self, start_seq: int = 0) -> None:
        self.next_seq = start_seq
        self._pending: dict[int, object] = {}
        self.delivered: list[int] = []

    def offer(self, seq: int, payload: object = None) -> list[int]:
        """Accept one message; return the sequence numbers released (in
        order) by this arrival.  Duplicates and stale messages are ignored."""
        if seq < self.next_seq or seq in self._pending:
            return []
        self._pending[seq] = payload
        released: list[int] = []
        while self.next_seq in self._pending:
            self._pending.pop(self.next_seq)
            released.append(self.next_seq)
            self.delivered.append(self.next_seq)
            self.next_seq += 1
        return released

    def missing_before(self, horizon: int) -> list[int]:
        """Sequence numbers below ``horizon`` still blocking delivery."""
        return [s for s in range(self.next_seq, horizon) if s not in self._pending]

    @property
    def buffered(self) -> int:
        return len(self._pending)


def split_bandwidth_share(
    assignment: StripeAssignment, payload_bytes: int, messages: int
) -> dict[NodeId, int]:
    """Bytes each parent ships under an assignment — the §IV argument that
    splitting improves inbound/outbound bandwidth usage."""
    share: dict[NodeId, int] = {}
    for seq in range(messages):
        parent = assignment.parent_for(seq)
        share[parent] = share.get(parent, 0) + payload_bytes
    return share
