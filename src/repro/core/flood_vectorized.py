"""Numpy-vectorized flood delivery kernel (DESIGN.md §12).

The slotted kernel (DESIGN.md §9) already keeps delivery state in flat
per-slot arrays, but still spends one Python iteration per reception.
This kernel re-homes the slot planes onto numpy storage and consumes the
engine's batch-drain tier (``Simulator.register_batch_drain`` →
``Network.register_fan_sink(..., batch_sink=...)``): a whole contiguous
run of same-arrival fan events — an entire dissemination wave — arrives
as one :meth:`VectorizedFloodKernel.on_fan_batch` call and is executed
as masked array operations, so the per-duplicate cost drops from a
Python loop body to a handful of vector instructions.

Exactness contract: draw-for-draw parity with the slotted kernel (and,
transitively, the object path) for one seed.  The three order-sensitive
effects of a wave are preserved literally:

- dead/unattached destinations fall back in flat batch order, so the
  failure-notice RNG draws of :meth:`Network._drop` come out in the
  exact per-event sequence;
- forward fan-outs are scheduled in flat batch order across *all*
  ``(stream, seq)`` groups, so heap sequence numbers — and with them
  the constituent order of every later batch — match the per-event run;
- within one ``(stream, seq)`` group the first-occurrence masks encode
  the scalar seen-map transition exactly (first ``_UNSEEN`` delivers
  and forwards, a first ``_INJECTED`` is a source echo, everything
  else is a duplicate).

Everything order-insensitive (per-slot counters, byte totals, Metrics
sums) is commutative and may be applied vectorized in any order.

numpy is an *optional* dependency: importing this module without it is
fine (the CLI keeps working), constructing the kernel raises a clear
:class:`SimulationError`.  The sequential entry points (``inject``,
``on_data``, the scalar ``on_fan``) are inherited from the slotted
kernel unchanged — they operate element-wise on the numpy storage — so
occupancy-latency runs and mirror-mode parity runs share one code path.
"""

from __future__ import annotations

try:  # pragma: no cover - exercised implicitly by every import
    import numpy as np
except ImportError:  # pragma: no cover - CI always installs numpy
    np = None

from repro.baselines.flood import (
    _INJECTED,
    _RECEIVED,
    _UNSEEN,
    FloodData,
    SlottedFloodKernel,
)
from repro.errors import SimulationError
from repro.ids import NodeId, StreamId

#: Below this many fan events a batch is cheaper scalar than vectorized
#: (array construction dominates); the scalar path is the reference
#: semantics itself, so the cutover is invisible to parity.
_SCALAR_BATCH_LIMIT = 4


class _VectorPlane:
    """Per-stream slot plane on numpy storage.

    Attribute-compatible with :class:`repro.baselines.flood._SlotPlane`
    (same slot layout, same cell states) so every inherited scalar path
    of the slotted kernel runs on it unmodified.  Arrays are allocated
    to the kernel's current allocation size and grown by the kernel —
    cells at or beyond ``capacity`` stay zero and are never indexed.
    """

    __slots__ = ("stream", "rows", "delivered", "duplicates", "payload_bytes")

    def __init__(self, stream: StreamId, alloc: int) -> None:
        self.stream = stream
        #: Seen maps indexed by seq; one uint8 cell per slot.
        self.rows: list = []
        self.delivered = np.zeros(alloc, dtype=np.int64)
        self.duplicates = np.zeros(alloc, dtype=np.int64)
        self.payload_bytes = np.zeros(alloc, dtype=np.int64)


class VectorizedFloodKernel(SlottedFloodKernel):
    """Slotted flood kernel with numpy planes and batched wave delivery.

    Selectable via ``--kernel vectorized``; the node class is the
    unchanged :class:`SlottedFloodNode` (the kernel seam is the whole
    point — engine and protocol never see which backend runs).  On top
    of the slotted kernel this adds:

    - numpy per-slot storage with doubling growth (``_alloc``), so the
      1M-node tier allocates a few flat arrays instead of 1M objects;
    - ``_slot_map`` — a node-id-indexed slot vector (−1 = unattached)
      for O(1) vectorized id→slot gathers over whole waves;
    - :meth:`on_fan_batch` — the batch fan sink fed by
      :meth:`Network._drain_fan_batch` with contiguous same-time runs
      of fused fan events.
    """

    def __init__(self, network) -> None:
        if np is None:
            raise SimulationError(
                "the vectorized flood kernel requires numpy, which is not "
                "installed — `pip install numpy`, or select --kernel "
                "slotted for the pure-python flat-array kernel"
            )
        super().__init__(network)
        #: Allocated length of every per-slot array (>= capacity).
        self._alloc = 0
        self.rx_bytes = np.zeros(0, dtype=np.int64)
        #: node id -> slot, -1 when unattached (vector twin of slot_of).
        self._slot_map = np.full(0, -1, dtype=np.int64)
        #: Per-slot numpy mirror of fanout_rows, rebuilt lazily after a
        #: row mutation (None = stale).  In-flight forward target sets
        #: are masked copies, so a later invalidation never reaches them
        #: — the snapshot semantics of the scalar path's row copy.
        self._rows_np: list = []
        #: Per-slot row lengths (vector twin of len(fanout_rows[slot])).
        self._row_len = np.zeros(0, dtype=np.int64)
        #: Scratch for first-occurrence detection; only cells written in
        #: the same call are read back, so it is never reset.
        self._first_scratch = np.zeros(0, dtype=np.int64)
        # Fused CSR snapshot of *all* fan-out rows: on a quiescent
        # overlay (the steady state of every static run) the forward
        # pass gathers target rows straight out of one flat array
        # instead of touching 10k row objects.  _csr_version counts row
        # mutations; the snapshot is rebuilt only once the version has
        # been stable for a full wave (so churny phases fall back to the
        # per-slot mirrors instead of rebuilding every wave).
        self._csr_version = 0
        self._csr_built = -1
        self._csr_seen = -2
        self._csr_data = np.zeros(0, dtype=np.int64)
        self._csr_offs = np.zeros(1, dtype=np.int64)
        # Re-register the fan sink with the batch entry point: whole
        # same-arrival runs of flood fans now bypass per-event dispatch.
        network.register_fan_sink(
            FloodData.kind, self.on_fan, batch_sink=self.on_fan_batch
        )

    # -- storage management ---------------------------------------------
    def _grow_to(self, alloc: int) -> None:
        def grown(arr):
            out = np.zeros(alloc, dtype=arr.dtype)
            out[: arr.size] = arr
            return out

        self.rx_bytes = grown(self.rx_bytes)
        self._row_len = grown(self._row_len)
        self._first_scratch = np.zeros(alloc, dtype=np.int64)
        for plane in self.planes:
            plane.delivered = grown(plane.delivered)
            plane.duplicates = grown(plane.duplicates)
            plane.payload_bytes = grown(plane.payload_bytes)
            plane.rows = [grown(row) for row in plane.rows]
        self._alloc = alloc

    def attach(self, node_id: NodeId) -> int:
        free = self._free
        if free:
            slot = free.pop()
        else:
            slot = self.capacity
            if slot >= self._alloc:
                self._grow_to(max(64, self._alloc * 2))
            self.capacity += 1
            self.fanout_rows.append([])
            self._rows_np.append(None)
            self._csr_version += 1
        self.slot_of[node_id] = slot
        if node_id >= self._slot_map.size:
            grown = np.full(
                max(64, self._slot_map.size * 2, node_id + 1), -1, dtype=np.int64
            )
            grown[: self._slot_map.size] = self._slot_map
            self._slot_map = grown
        self._slot_map[node_id] = slot
        return slot

    def release(self, node_id: NodeId, slot: int) -> None:
        if node_id in self.slot_of:
            self._slot_map[node_id] = -1
            self._rows_np[slot] = None
            self._row_len[slot] = 0
            self._csr_version += 1
        super().release(node_id, slot)

    # -- fan-out row mirror maintenance ----------------------------------
    def row_append(self, slot: int, peer: NodeId) -> None:
        row = self.fanout_rows[slot]
        row.append(peer)
        self._rows_np[slot] = None
        self._row_len[slot] = len(row)
        self._csr_version += 1

    def row_remove(self, slot: int, peer: NodeId) -> None:
        row = self.fanout_rows[slot]
        try:
            row.remove(peer)
        except ValueError:
            return
        self._rows_np[slot] = None
        self._row_len[slot] = len(row)
        self._csr_version += 1

    def install_rows(self, ids, topo) -> None:
        super().install_rows(ids, topo)
        rows = self.fanout_rows
        rows_np = self._rows_np
        row_len = self._row_len
        slot_of = self.slot_of
        for nid in ids:
            slot = slot_of[nid]
            rows_np[slot] = None
            row_len[slot] = len(rows[slot])
        self._csr_version += 1

    def _rebuild_csr(self) -> None:
        rows = self.fanout_rows
        offs = np.zeros(len(rows) + 1, dtype=np.int64)
        np.cumsum(self._row_len[: len(rows)], out=offs[1:])
        if offs[-1]:
            # concatenate converts the int lists itself; an empty row
            # would promote the result to float64 (values still exact),
            # hence the dtype guard.
            data = np.concatenate(rows)
            if data.dtype != np.int64:
                data = data.astype(np.int64)
        else:
            data = np.zeros(0, dtype=np.int64)
        self._csr_data = data
        self._csr_offs = offs
        self._csr_built = self._csr_version

    def plane(self, stream: StreamId) -> _VectorPlane:
        idx = self.plane_of.get(stream)
        if idx is None:
            idx = self.plane_of[stream] = len(self.planes)
            self.planes.append(_VectorPlane(stream, self._alloc))
        return self.planes[idx]

    def _row(self, plane: _VectorPlane, seq: int):
        rows = plane.rows
        while len(rows) <= seq:
            rows.append(np.zeros(self._alloc, dtype=np.uint8))
        return rows[seq]

    # -- batched delivery hot path ---------------------------------------
    def on_fan_batch(self, batch: list[tuple]) -> None:
        """Execute a contiguous same-time run of flood fan-outs.

        ``batch`` holds ``(src, dsts, msg, size)`` tuples in heap FIFO
        order — one dissemination wave (possibly several ``(stream,
        seq)`` groups whose wave schedules coincide).  Seen-map
        transitions and counters are computed per group as masked array
        ops; fallbacks and forward scheduling run in flat batch order
        (see the module docstring for why that order is load-bearing).
        """
        sim = self.sim
        # Peak-backlog emulation (DESIGN.md §12): the claimed run left
        # the heap before processing, so pushes made here see a heap
        # short by the unprocessed remainder.  ``entry_bias`` is the
        # engine's correction as of this sub-run's first event; per-event
        # decrements below keep every *real* push-site check at or below
        # the value the per-event tiers would have measured, and the
        # end-of-wave ``note_peak`` lands the exact reference maximum.
        entry_bias = sim.pending_bias
        if len(batch) < _SCALAR_BATCH_LIMIT:
            # Small runs: per-event scalar processing IS the reference
            # semantics, and skips the array-construction overhead.
            # Fans scheduled by the batch path carry numpy target sets;
            # hand the scalar path plain lists of python ints.
            on_fan = self.on_fan
            for k, (src, dsts, msg, size) in enumerate(batch):
                sim.pending_bias = entry_bias - k
                if type(dsts) is not list:
                    dsts = dsts.tolist()
                on_fan(src, dsts, msg, size)
            return
        n_events = len(batch)
        heap = sim._heap
        heap_base = len(heap)
        #: Net heap pushes attributed to each event, in reference order
        #: (fallback notices + handler sends now, forward fans at the
        #: end); lazily allocated — zero-push waves never touch it.
        ev_pushes = None
        dlists = [t[1] for t in batch]
        counts = np.fromiter(map(len, dlists), dtype=np.int64, count=n_events)
        total = int(counts.sum())
        if total == 0:
            return
        # Fans from the batch forward pass below already carry int64
        # arrays; injection fans carry plain int lists, which concatenate
        # converts — except an *empty* list would promote the whole
        # result to float64, hence the dtype guard.
        ids = np.concatenate(dlists)
        if ids.dtype != np.int64:
            ids = ids.astype(np.int64)
        slots = self._slot_map[ids]
        # flat element -> index of its originating fan event.
        ev_idx = np.repeat(np.arange(n_events), counts)
        # The typical wave carries a single (stream, seq) at one wire
        # size: detect both with one cheap scan and skip the per-group /
        # per-event array machinery.
        m0 = batch[0][2]
        stream0 = m0.stream
        seq0 = m0.seq
        size0 = batch[0][3]
        single_group = True
        uniform_size = True
        last_m = m0
        for t in batch:
            m = t[2]
            if m is last_m:
                # Forwarders of one wave share the forward message
                # instance (and its wire size), so consecutive entries
                # mostly repeat the same object — key already checked.
                continue
            last_m = m
            if m.stream != stream0 or m.seq != seq0:
                single_group = False
            if t[3] != size0:
                uniform_size = False
        if single_group:
            group_iter = [((stream0, seq0), None)]
            starts = None
        else:
            groups: dict[tuple, list[int]] = {}
            for e, t in enumerate(batch):
                m = t[2]
                key = (m.stream, m.seq)
                grp = groups.get(key)
                if grp is None:
                    groups[key] = [e]
                else:
                    grp.append(e)
            starts = np.empty(n_events + 1, dtype=np.int64)
            starts[0] = 0
            np.cumsum(counts, out=starts[1:])
            group_iter = groups.items()

        attached = slots >= 0
        n_att = int(attached.sum()) if not attached.all() else total
        if n_att != total:
            # Dead (slot released) or never-attached destinations: the
            # generic single-delivery semantics, in flat order so the
            # _drop failure-notice RNG draws match the per-event run.
            # (Deliveries draw no RNG, so front-running the drops keeps
            # the stream identical; notice times are continuous draws,
            # so heap-seq interleaving with forwards is immaterial.)
            nodes = self.network.nodes
            drop = self.network._drop
            account = self.metrics.account_receive
            ev_pushes = np.zeros(n_events, dtype=np.int64)
            for g in np.nonzero(~attached)[0].tolist():
                e = int(ev_idx[g])
                src, _, msg, size = batch[e]
                dst = int(ids[g])
                # Failure notices (and any handler sends) push with the
                # bias of their own event; the heap-length delta charges
                # them to that event for the end-of-wave peak replay.
                sim.pending_bias = entry_bias - e
                pre_len = len(heap)
                node = nodes.get(dst)
                if node is None or not node.alive:
                    drop(src, dst)
                else:
                    account(dst, size)
                    node.handle_message(src, msg)
                ev_pushes[e] += len(heap) - pre_len

        att_slots = slots if n_att == total else slots[attached]
        if uniform_size:
            # One wire size: scatter-add via bincount (much faster than
            # np.add.at for repeated indices).
            self.rx_bytes += size0 * np.bincount(
                att_slots, minlength=self.rx_bytes.size
            )
        else:
            sizes = np.fromiter(
                (t[3] for t in batch), dtype=np.int64, count=n_events
            )
            flat_sizes = np.repeat(sizes, counts)
            np.add.at(
                self.rx_bytes, att_slots,
                flat_sizes if n_att == total else flat_sizes[attached],
            )
        self.receptions += n_att

        flat_payloads = None
        mirror = self._mirror
        now = self.sim.now
        deliver = None  # global first-delivery mask, built per group
        for (stream, seq), evs in group_iter:
            plane = self.plane(stream)
            rows = plane.rows
            row = rows[seq] if seq < len(rows) else self._row(plane, seq)
            if evs is None:
                gidx = None
                slots_g = slots
            else:
                gidx = np.concatenate(
                    [np.arange(starts[e], starts[e + 1]) for e in evs]
                )
                slots_g = slots[gidx]
            if n_att != total:
                att_g = slots_g >= 0
                gidx = np.nonzero(att_g)[0] if gidx is None else gidx[att_g]
                slots_g = slots_g[att_g]
            if slots_g.size == 0:
                continue
            if mirror:
                # Parity/record runs: feed Metrics exactly like the
                # scalar path, element by element in flat group order
                # (the restriction of batch order to this group — the
                # only order record_delivery's first/duplicate split
                # can observe).
                record = self.metrics.record_delivery
                account = self.metrics.account_receive
                for g in range(total) if gidx is None else gidx.tolist():
                    e = int(ev_idx[g])
                    src, _, m, size = batch[e]
                    record(
                        int(ids[g]), stream, seq, now, src, m.hops + 1,
                        m.path_delay + (now - m.sent_at), m.payload_bytes,
                    )
                    account(int(ids[g]), size)
            pre = row[slots_g]
            # First occurrence per slot without a sort: scatter flat
            # indices in reverse (so the lowest index wins) and compare
            # the gather-back against each element's own index.
            idx = np.arange(slots_g.size)
            scratch = self._first_scratch
            scratch[slots_g[::-1]] = idx[::-1]
            first = scratch[slots_g] == idx
            # Scalar transition, vectorized: a slot's first occurrence
            # sees the pre-batch state (deliver on _UNSEEN, echo on
            # _INJECTED, duplicate on _RECEIVED); every later occurrence
            # sees _RECEIVED and is a duplicate.
            dmask = first & (pre == _UNSEEN)
            dup = ~first | (pre == _RECEIVED)
            row[slots_g] = _RECEIVED
            dup_slots = slots_g[dup]
            if dup_slots.size:
                np.add.at(plane.duplicates, dup_slots, 1)
            if not dmask.any():
                continue
            dslots = slots_g[dmask]  # unique by construction
            plane.delivered[dslots] += 1
            if single_group and uniform_size:
                # One (stream, seq) at one size: every delivery adds the
                # same payload.
                plane.payload_bytes[dslots] += m0.payload_bytes
            else:
                if flat_payloads is None:
                    payloads = np.fromiter(
                        (t[2].payload_bytes for t in batch),
                        dtype=np.int64, count=n_events,
                    )
                    flat_payloads = np.repeat(payloads, counts)
                psel = flat_payloads if gidx is None else flat_payloads[gidx]
                plane.payload_bytes[dslots] += psel[dmask]
            if gidx is None:
                # Single group over a fully-attached batch: dmask IS the
                # global first-delivery mask.
                deliver = dmask
                continue
            if deliver is None:
                deliver = np.zeros(total, dtype=bool)
            deliver[gidx[dmask]] = True

        if deliver is None:
            self._replay_peak(heap_base, entry_bias, ev_pushes)
            return
        # Forward pass, in flat batch order across every group: heap
        # sequence numbers of the scheduled fans — and therefore the
        # constituent order of all later batches — match the per-event
        # run exactly.  One shared forward message per fan event, built
        # lazily like the slotted path's; the forward's wire size equals
        # the incoming event's (same kind, same size-bearing fields), so
        # the per-event size is reused.  All forwards of a wave arrive
        # together, so they ship as one bulk fan send.
        didx = np.nonzero(deliver)[0]
        d_slots = slots[didx]
        lens = self._row_len[d_slots]
        nz = lens > 0
        if not nz.all():
            didx = didx[nz]
            d_slots = d_slots[nz]
            lens = lens[nz]
            if didx.size == 0:
                self._replay_peak(heap_base, entry_bias, ev_pushes)
                return
        # Concatenate the deliverers' rows and mask out each deliverer's
        # sender in one vector compare.  HyParView rows never hold
        # duplicate peers, so dropping every sender occurrence is the
        # filtering list comprehension of the scalar path; cat[keep] is
        # a fresh array, so the per-fan target sets are snapshots —
        # later row mutations can't reach them.
        version = self._csr_version
        if version != self._csr_built and version == self._csr_seen:
            # Rows quiescent for a full wave: refresh the CSR snapshot.
            self._rebuild_csr()
        self._csr_seen = version
        if version == self._csr_built:
            # Steady state: gather every target row out of the fused
            # CSR arrays — no per-deliverer row object is touched.
            loc = np.zeros(lens.size, dtype=np.int64)
            np.cumsum(lens[:-1], out=loc[1:])
            flat = np.repeat(self._csr_offs[d_slots] - loc, lens)
            flat += np.arange(int(lens.sum()))
            cat = self._csr_data[flat]
        else:
            rows_np = self._rows_np
            fanout_rows = self.fanout_rows
            arrs = []
            ap = arrs.append
            for slot in d_slots.tolist():
                arr = rows_np[slot]
                if arr is None:
                    arr = rows_np[slot] = np.asarray(
                        fanout_rows[slot], dtype=np.int64
                    )
                ap(arr)
            cat = np.concatenate(arrs) if len(arrs) > 1 else arrs[0]
        ev_srcs = np.fromiter(
            (t[0] for t in batch), dtype=np.int64, count=n_events
        )
        d_ev = ev_idx[didx]
        keep = cat != np.repeat(ev_srcs[d_ev], lens)
        kept = cat[keep]
        offs = np.empty(lens.size, dtype=np.int64)
        offs[0] = 0
        np.cumsum(lens[:-1], out=offs[1:])
        klens = np.add.reduceat(keep.astype(np.int64), offs)
        koffs = np.empty(lens.size + 1, dtype=np.int64)
        koffs[0] = 0
        np.cumsum(klens, out=koffs[1:])
        ko = koffs.tolist()
        fans: list[tuple] = []
        append = fans.append
        #: Originating event per ``fans`` entry (sender-isolated
        #: deliverers append nothing, so ``ev_idx[didx]`` cannot be used
        #: directly for the peak replay below).
        fan_events: list[int] = []
        fev_append = fan_events.append
        # Deliverers arrive event-major (flat order), so the per-event
        # bindings — size, the shared forward message — are hoisted out
        # of the per-deliverer loop and rebuilt only on an event change.
        # (The forward is built even when every deliverer of the event
        # turns out sender-isolated: constructing FloodData touches no
        # clock or RNG, so the surplus object is unobservable.)
        prev_e = -1
        prev_m = False
        size = fwd = None
        for e, nid, a, b in zip(d_ev.tolist(), ids[didx].tolist(), ko, ko[1:]):
            if b == a:
                continue
            if e != prev_e:
                prev_e = e
                t = batch[e]
                size = t[3]
                m = t[2]
                if m is not prev_m:
                    # Events sharing one incoming message object (the
                    # common case: a whole wave ships one forward, see
                    # below) would rebuild field-identical forwards —
                    # messages are immutable value objects, so one
                    # instance serves them all.
                    prev_m = m
                    fwd = FloodData(
                        m.stream, m.seq, m.payload_bytes,
                        hops=m.hops + 1,
                        path_delay=m.path_delay + (now - m.sent_at),
                        sent_at=now,
                    )
            append((nid, kept[a:b], fwd, size))
            fev_append(e)
        if fans:
            # The bulk push's real peak check fires once, after every fan
            # entry landed; pinning the bias to the *last* event keeps it
            # at or below the per-event reference (whose last check runs
            # with exactly that many claimed events outstanding).  The
            # exact reference maximum is replayed below from the per-event
            # push counts — under loss, only fans that survived masking
            # (non-zero scheduled destinations) pushed an event.
            sim.pending_bias = entry_bias - (n_events - 1)
            fan_counts = self.network.send_fan_batch_unchecked(fans, FloodData.kind)
            if ev_pushes is None:
                ev_pushes = np.zeros(n_events, dtype=np.int64)
            fev = np.asarray(fan_events, dtype=np.int64)
            if fan_counts is None:
                np.add.at(ev_pushes, fev, 1)
            else:
                scheduled = np.asarray(fan_counts, dtype=np.int64) > 0
                if scheduled.any():
                    np.add.at(ev_pushes, fev[scheduled], 1)
        self._replay_peak(heap_base, entry_bias, ev_pushes)

    def _replay_peak(self, heap_base: int, entry_bias: int, ev_pushes) -> None:
        """Record the exact peak backlog the per-event dispatch order
        would have measured for one drained sub-run.

        The per-event tiers check the heap depth at every push: while
        event ``k`` of the run executes, ``bias_k = entry_bias - k``
        claimed events are still outstanding, so the run's reference
        maximum is ``heap_base + max_k(bias_k + C_k)`` over events that
        pushed at least once, with ``C_k`` the cumulative push count
        through event ``k`` (within an event the last push sees the
        full per-event total, because drops and forwards interleave per
        destination).  Every real check made mid-batch is arranged to
        stay at or below this value, so raising the peak to it afterward
        reproduces the reference metric exactly.
        """
        if ev_pushes is None:
            return
        ks = np.nonzero(ev_pushes > 0)[0]
        if ks.size == 0:
            return
        cum = np.cumsum(ev_pushes)
        peak = heap_base + int((entry_bias - ks + cum[ks]).max())
        self.sim.note_peak(peak)
