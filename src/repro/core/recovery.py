"""Bounded message buffer for post-repair retransmission (§II-F).

"Nodes can compensate message loss during the parent recovery process by
directly asking its new found parent to send the missing ones. Since
parent recovery is quick the number of messages each parent needs to
buffer is small."  The buffer keeps the last ``capacity`` sequence
numbers (with their payload sizes — the simulator never materializes
payload bits) in insertion order.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterator, Optional


class MessageBuffer:
    """Fixed-capacity per-stream buffer of (seq -> payload size)."""

    def __init__(self, capacity: int = 64) -> None:
        if capacity < 0:
            raise ValueError("capacity must be >= 0")
        self.capacity = capacity
        self._items: "OrderedDict[int, int]" = OrderedDict()

    def store(self, seq: int, payload_bytes: int) -> None:
        if self.capacity == 0:
            return
        if seq in self._items:
            self._items.move_to_end(seq)
            return
        self._items[seq] = payload_bytes
        while len(self._items) > self.capacity:
            self._items.popitem(last=False)

    def __contains__(self, seq: int) -> bool:
        return seq in self._items

    def __len__(self) -> int:
        return len(self._items)

    def get(self, seq: int) -> Optional[int]:
        return self._items.get(seq)

    @property
    def latest(self) -> Optional[int]:
        """Highest buffered sequence number (None when empty)."""
        return max(self._items) if self._items else None

    def after(self, have_up_to: int) -> Iterator[tuple[int, int]]:
        """Buffered ``(seq, payload_bytes)`` with ``seq > have_up_to``,
        in ascending sequence order."""
        for seq in sorted(self._items):
            if seq > have_up_to:
                yield seq, self._items[seq]

    def clear(self) -> None:
        self._items.clear()
