"""Per-stream protocol state of one BRISA node.

BRISA keys all dissemination state by stream id (the paper evaluates a
single stream; §IV's multiple-trees perspective falls out of this keying
for free).  The state tracks both directions of link activation:

- ``in_active[peer]`` — whether *we* still accept this stream from
  ``peer`` (False once we sent it a Deactivate);
- ``out_deactivated`` — peers that deactivated *our* outbound link (we
  stop relaying to them).

``position`` is the node's standing under the configured cycle predictor
(source path / depth label / Bloom mask); ``None`` means fresh — either
never reached or reset by a hard repair (§II-F).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from repro.core.recovery import MessageBuffer
from repro.core.strategies import Candidate
from repro.ids import NodeId, StreamId


@dataclass
class StreamState:
    stream: StreamId
    buffer: MessageBuffer
    is_source: bool = False

    # -- structure ------------------------------------------------------
    position: Any = None
    hops: Optional[int] = None
    parents: dict[NodeId, Candidate] = field(default_factory=dict)
    parent_meta: dict[NodeId, Any] = field(default_factory=dict)
    in_active: dict[NodeId, bool] = field(default_factory=dict)
    out_deactivated: set[NodeId] = field(default_factory=set)
    #: Peers that *explicitly* re-activated our outbound link (Activate,
    #: §II-F) since their last Deactivate.  The symmetric-deactivation
    #: inference of §II-E ("src received this first, we can never be its
    #: first-come parent") must not silently re-mute these: a repair
    #: adoption is not governed by first-come order, and muting a peer
    #: that considers us its parent severs it permanently.
    reactivated: set[NodeId] = field(default_factory=set)
    #: First-arrival candidate info per neighbour (duplicates observed).
    candidates: dict[NodeId, Candidate] = field(default_factory=dict)

    # -- delivery -------------------------------------------------------
    delivered: set[int] = field(default_factory=set)
    max_contig: int = -1
    #: Last time a gap-triggered retransmit request went out (cooldown).
    last_gap_request: float = -1.0

    # -- construction probe (Fig. 13) ------------------------------------
    first_deact_at: Optional[float] = None
    settled_at: Optional[float] = None

    #: Consecutive demotions attributed to each parent — the breaker for
    #: the mutual-adoption depth race (two equal-depth nodes adopting each
    #: other would otherwise chase each other's depth forever).
    demote_counts: dict[NodeId, int] = field(default_factory=dict)

    # -- repair machinery (§II-F) ----------------------------------------
    repairing: bool = False
    repair_record: bool = False
    repair_started: float = 0.0
    repair_hard: bool = False
    #: Whether this repair may escalate to a hard repair.  True for
    #: orphans and re-activation waves; False for DAG parent top-ups
    #: (losing one of several parents must never reset the position).
    repair_allow_hard: bool = True
    repair_queue: list[Candidate] = field(default_factory=list)
    repair_pending: Optional[NodeId] = None
    repair_attempt: int = 0

    # ------------------------------------------------------------------
    def note_delivered(self, seq: int) -> None:
        self.delivered.add(seq)
        while (self.max_contig + 1) in self.delivered:
            self.max_contig += 1

    def active_in_count(self) -> int:
        return sum(1 for active in self.in_active.values() if active)

    def reset_position(self) -> None:
        self.position = None
        self.hops = None

    def drop_parent(self, peer: NodeId) -> bool:
        self.parent_meta.pop(peer, None)
        return self.parents.pop(peer, None) is not None

    @property
    def engaged(self) -> bool:
        """Has this node participated in the stream at all?"""
        return self.is_source or self.position is not None or bool(self.delivered)
