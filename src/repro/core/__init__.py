"""BRISA core: emergent dissemination structures over a gossip substrate.

The protocol of §II: the first message of a stream floods the HyParView
overlay; every node then prunes all but ``p`` of its inbound links through
deactivation messages, letting a tree (``p = 1``) or DAG (``p > 1``)
emerge.  Cycle prevention is exact for trees (path embedding) and
approximate for DAGs (depth labels); failures are healed by soft repairs
(re-activate a link to a current neighbour) or hard repairs (re-bootstrap
a region through flooding).
"""

from repro.core.brisa import BrisaNode
from repro.core.cycle import (
    BloomFilterPredictor,
    CyclePredictor,
    DepthLabelPredictor,
    PathEmbeddingPredictor,
    make_predictor,
)
from repro.core.recovery import MessageBuffer
from repro.core.strategies import (
    Candidate,
    DelayAwareStrategy,
    FirstComeStrategy,
    GerontocraticStrategy,
    HeterogeneityAwareStrategy,
    LoadBalancingStrategy,
    ParentSelectionStrategy,
    make_strategy,
)
from repro.core.structure import (
    dag_depths,
    extract_structure,
    is_complete_structure,
    out_degrees,
    to_dot,
    tree_depths,
)

__all__ = [
    "BloomFilterPredictor",
    "BrisaNode",
    "Candidate",
    "CyclePredictor",
    "DelayAwareStrategy",
    "DepthLabelPredictor",
    "FirstComeStrategy",
    "GerontocraticStrategy",
    "HeterogeneityAwareStrategy",
    "LoadBalancingStrategy",
    "MessageBuffer",
    "ParentSelectionStrategy",
    "PathEmbeddingPredictor",
    "dag_depths",
    "extract_structure",
    "is_complete_structure",
    "make_predictor",
    "make_strategy",
    "out_degrees",
    "to_dot",
    "tree_depths",
]
