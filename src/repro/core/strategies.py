"""Parent selection strategies (§II-E plus the §IV perspectives).

A strategy ranks eligible parent candidates; BRISA keeps the best
``num_parents`` of them and deactivates the rest.  Scores are
*lower-is-better* so all strategies reduce to a single comparison rule:

- ``first-come`` — keep whoever delivered first (§II-E #1).  An existing
  parent always beats a newcomer, which is what enables the symmetric
  deactivation optimization.
- ``delay-aware`` — lowest keep-alive-measured RTT wins (§II-E #2).
- ``gerontocratic`` — highest uptime wins (§IV): long-lived nodes are the
  least likely to fail next (Bhagwan et al.'s availability observation).
- ``load-balancing`` — fewest current children wins (§IV): the dual of
  gerontocratic, spreading the relay effort onto fresh nodes.
- ``heterogeneity`` — highest available bandwidth capacity wins (§IV).

The inputs beyond first-arrival order (RTT, uptime, load, capacity) are
piggybacked on HyParView keep-alives in the paper (§II-E, §II-F); the
simulator surfaces them through :class:`Candidate` snapshots built by the
node (see ``BrisaNode._candidate``).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field

from repro.ids import NodeId

#: Relative score improvement a newcomer needs before an existing parent
#: is swapped out — avoids thrashing between near-equal candidates.
SWAP_MARGIN = 0.05


@dataclass
class Candidate:
    """Snapshot of one potential parent at decision time."""

    peer: NodeId
    #: Time the first message from this peer arrived (first-come order).
    arrival: float
    rtt: float = 0.0
    uptime: float = 0.0
    load: int = 0
    capacity: float = 1.0
    #: Smoothed source-to-candidate cumulative delay, observed from the
    #: per-hop timestamps its messages carry (0 when never observed).
    path_delay: float = 0.0


class ParentSelectionStrategy(ABC):
    """Ranks candidates; lower :meth:`score` is better."""

    name: str = ""
    #: Whether the symmetric deactivation optimization of §II-E is sound
    #: for this strategy (only first-come: observing a duplicate from C
    #: proves C already has an earlier-arriving candidate than us).
    supports_symmetric: bool = False

    @abstractmethod
    def score(self, candidate: Candidate) -> float:
        """Cost of selecting this candidate (lower wins)."""

    def best(self, candidates: list[Candidate]) -> Candidate:
        """The winning candidate (ties broken by arrival, then id)."""
        return min(candidates, key=lambda c: (self.score(c), c.arrival, c.peer))

    def worst(self, candidates: list[Candidate]) -> Candidate:
        return max(candidates, key=lambda c: (self.score(c), c.arrival, c.peer))

    def prefers(self, newcomer: Candidate, incumbent: Candidate) -> bool:
        """Should ``newcomer`` replace ``incumbent`` as a parent?

        Requires a strictly better score beyond :data:`SWAP_MARGIN` so
        structures stabilize (§III-A measures *stabilized* structures).
        """
        new, old = self.score(newcomer), self.score(incumbent)
        margin = abs(old) * SWAP_MARGIN
        return new < old - margin

    def sort(self, candidates: list[Candidate]) -> list[Candidate]:
        return sorted(candidates, key=lambda c: (self.score(c), c.arrival, c.peer))


class FirstComeStrategy(ParentSelectionStrategy):
    """First-come first-picked (§II-E #1)."""

    name = "first-come"
    supports_symmetric = True

    def score(self, candidate: Candidate) -> float:
        return candidate.arrival

    def prefers(self, newcomer: Candidate, incumbent: Candidate) -> bool:
        # A newcomer by definition arrived later: never swap.
        return newcomer.arrival < incumbent.arrival


class DelayAwareStrategy(ParentSelectionStrategy):
    """Lowest delivery delay (§II-E #2).

    The cost of a candidate is the end-to-end delay a message would
    experience through it: the measured source-to-candidate cumulative
    delay (piggybacked per-hop timestamps, smoothed) plus one link
    crossing (half the keep-alive RTT).  Scoring the *neighbour RTT
    alone* degenerates — greedy min-RTT adoption inflates tree depth
    faster than it saves per-link delay (see DESIGN.md §5); the
    end-to-end form reproduces the Fig. 9 behaviour the paper reports.
    """

    name = "delay-aware"

    def score(self, candidate: Candidate) -> float:
        return candidate.path_delay + candidate.rtt / 2.0


class GerontocraticStrategy(ParentSelectionStrategy):
    """Highest uptime (§IV perspective i).

    Uptime is a *moving* attribute (every candidate ages at the same
    rate), so swaps need strong hysteresis: without it a bootstrap cohort
    whose uptimes differ by seconds churns parents forever.  A newcomer
    must be meaningfully older (25% + 5 s) to displace an incumbent.
    """

    name = "gerontocratic"

    def score(self, candidate: Candidate) -> float:
        return -candidate.uptime

    def prefers(self, newcomer: Candidate, incumbent: Candidate) -> bool:
        return newcomer.uptime > incumbent.uptime * 1.25 + 5.0


class LoadBalancingStrategy(ParentSelectionStrategy):
    """Fewest children (§IV perspective iii).

    Loads are small integers that change with every adoption; swapping on
    a small difference oscillates (the newcomer's load rises the moment
    it is adopted, making the old parent attractive again).  Require a
    three-child advantage so the balancing converges.
    """

    name = "load-balancing"

    def score(self, candidate: Candidate) -> float:
        return float(candidate.load)

    def prefers(self, newcomer: Candidate, incumbent: Candidate) -> bool:
        return newcomer.load < incumbent.load - 2


class HeterogeneityAwareStrategy(ParentSelectionStrategy):
    """Highest available bandwidth (§IV perspective ii)."""

    name = "heterogeneity"

    def score(self, candidate: Candidate) -> float:
        return -candidate.capacity

    def prefers(self, newcomer: Candidate, incumbent: Candidate) -> bool:
        return newcomer.capacity > incumbent.capacity * 1.25


_STRATEGIES = {
    cls.name: cls
    for cls in (
        FirstComeStrategy,
        DelayAwareStrategy,
        GerontocraticStrategy,
        LoadBalancingStrategy,
        HeterogeneityAwareStrategy,
    )
}


def make_strategy(name: str) -> ParentSelectionStrategy:
    """Instantiate a registered strategy by name."""
    try:
        return _STRATEGIES[name]()
    except KeyError:
        raise ValueError(
            f"unknown strategy {name!r}; known: {sorted(_STRATEGIES)}"
        ) from None
