"""Structure extraction and analysis (§III-A).

Builds the emerged dissemination structure — the directed graph of
parent → child edges — from live node state, and computes the properties
the paper plots: depth distributions (Fig. 6; for DAGs depth is the
*longest* path from the root), degree distributions (Fig. 7; out-degree =
number of relays), completeness/acyclicity invariants, and the DOT export
behind the Fig. 8 tree drawings.
"""

from __future__ import annotations

from typing import Iterable, Optional

import networkx as nx

from repro.ids import NodeId, StreamId


def extract_structure(nodes: Iterable, stream: StreamId = 0) -> nx.DiGraph:
    """Directed parent->child graph from the nodes' parent sets.

    Only live nodes contribute; a node with no parents and no children
    still appears as an isolated vertex (so completeness checks can see
    disconnected nodes).
    """
    g = nx.DiGraph()
    for node in nodes:
        if not getattr(node, "alive", True):
            continue
        g.add_node(node.node_id)
        tree_parents = getattr(node, "tree_parents", None)
        if tree_parents is not None:
            # Kernel-agnostic accessor (DESIGN.md §11): the object kernel
            # reads StreamState.parents, the slotted kernel its tree-edge
            # rows — structural reporting works against either.
            parents = tree_parents(stream)
        else:
            state = node.streams.get(stream)
            parents = state.parents if state is not None else ()
        for parent in parents:
            g.add_edge(parent, node.node_id)
    return g


def tree_depths(g: nx.DiGraph, source: NodeId) -> dict[NodeId, int]:
    """Shortest-path depth of every reachable node (tree: unique path)."""
    if source not in g:
        return {}
    return nx.single_source_shortest_path_length(g, source)


def dag_depths(g: nx.DiGraph, source: NodeId) -> dict[NodeId, int]:
    """Longest-path depth from the source (the paper's DAG depth measure:
    "depth measures the maximum distance, i.e. the longest path from the
    root to the node").  Requires an acyclic ``g``."""
    if source not in g:
        return {}
    depth: dict[NodeId, int] = {source: 0}
    for node in nx.topological_sort(g):
        if node not in depth:
            continue
        d = depth[node]
        for child in g.successors(node):
            if depth.get(child, -1) < d + 1:
                depth[child] = d + 1
    return depth


def depths(g: nx.DiGraph, source: NodeId, mode: str = "tree") -> dict[NodeId, int]:
    """Dispatch on structure mode ('tree' | 'dag')."""
    return tree_depths(g, source) if mode == "tree" else dag_depths(g, source)


def out_degrees(g: nx.DiGraph) -> dict[NodeId, int]:
    """Out-degree (number of children served) per node — Fig. 7's degree:
    "the number of outgoing links ... bounds the message copies a node
    receives/sends"; degree-zero nodes are leaves."""
    return {n: d for n, d in g.out_degree()}


def is_complete_structure(
    g: nx.DiGraph,
    source: NodeId,
    expected_nodes: Optional[set[NodeId]] = None,
) -> tuple[bool, str]:
    """Check the §II-B correctness property: the structure is acyclic and
    covers all (expected) nodes from the source.  Returns (ok, reason)."""
    if source not in g:
        return False, f"source {source} absent from structure"
    if not nx.is_directed_acyclic_graph(g):
        cycle = nx.find_cycle(g)
        return False, f"cycle present: {cycle}"
    reachable = set(nx.descendants(g, source)) | {source}
    expected = expected_nodes if expected_nodes is not None else set(g.nodes)
    missing = expected - reachable
    if missing:
        return False, f"{len(missing)} nodes unreachable from source: {sorted(missing)[:8]}"
    return True, "ok"


def parent_counts(g: nx.DiGraph, source: NodeId) -> dict[NodeId, int]:
    """In-degree (number of parents) per non-source node."""
    return {n: d for n, d in g.in_degree() if n != source}


def to_dot(g: nx.DiGraph, source: NodeId, *, label_prefix: str = "n") -> str:
    """DOT export for visual inspection (Fig. 8 sample tree shapes)."""
    lines = ["digraph brisa {", "  rankdir=TB;", "  node [shape=box, fontsize=9];"]
    lines.append(f'  "{label_prefix}{source}" [style=filled, fillcolor=lightgrey];')
    for a, b in sorted(g.edges):
        lines.append(f'  "{label_prefix}{a}" -> "{label_prefix}{b}";')
    lines.append("}")
    return "\n".join(lines)


def structure_summary(g: nx.DiGraph, source: NodeId, mode: str = "tree") -> dict:
    """Compact stats bundle used by reports and the Fig. 8 bench."""
    dep = depths(g, source, mode)
    deg = out_degrees(g)
    leaves = sum(1 for d in deg.values() if d == 0)
    return {
        "nodes": g.number_of_nodes(),
        "edges": g.number_of_edges(),
        "max_depth": max(dep.values()) if dep else 0,
        "mean_depth": (sum(dep.values()) / len(dep)) if dep else 0.0,
        "max_degree": max(deg.values()) if deg else 0,
        "leaves": leaves,
    }
