"""BrisaNode: the BRISA protocol over a HyParView substrate (§II).

Life of a stream at one node:

1. **Bootstrap flood.** The source pushes every message to all active-view
   neighbours; nodes relay first receptions to all their other neighbours
   (infect-and-die).  Flooding is complete because the HyParView overlay
   is connected and bidirectional (§II-A).
2. **Emergence.** The first reception implicitly selects a parent; each
   duplicate triggers the link-deactivation decision of Fig. 3 — the
   parent-selection strategy keeps the cheaper provider and a
   ``Deactivate`` prunes the loser, subject to the cycle predictor
   (path embedding for trees, depth labels for DAGs).
3. **Steady state.** Messages flow only over active links: a tree delivers
   exactly one copy per node, a ``p``-parent DAG at most ``p``.
4. **Dynamism** (§II-F).  New neighbours come up with their links active.
   A failed parent triggers a *soft repair* — adopt a current neighbour
   that passes the cycle check, one Activate/Ack exchange — or, when no
   neighbour is eligible, a *hard repair*: forget the position, reactivate
   every inbound link, and push a ``ReactivateOrder`` down the old
   subtree; the wave stops at nodes that can find replacement parents.
   Missed messages are recovered from the new parent's buffer.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.config import BrisaConfig, HyParViewConfig
from repro.core import messages as bm
from repro.core import rules
from repro.core.cycle import extract_meta, make_predictor
from repro.core.recovery import MessageBuffer
from repro.core.state import StreamState
from repro.core.strategies import Candidate, make_strategy
from repro.ids import NodeId, StreamId
from repro.membership.hyparview import HyParViewNode


class BrisaNode(HyParViewNode):
    """One BRISA participant (membership + dissemination layers)."""

    def __init__(
        self,
        network,
        node_id: NodeId,
        config: BrisaConfig | None = None,
        hpv_config: HyParViewConfig | None = None,
    ) -> None:
        super().__init__(network, node_id, hpv_config)
        self.config = config if config is not None else BrisaConfig()
        self.predictor = make_predictor(self.config)
        self.strategy = make_strategy(self.config.strategy)
        self.streams: dict[StreamId, StreamState] = {}

    # ------------------------------------------------------------------
    # State access
    # ------------------------------------------------------------------
    def stream_state(self, stream: StreamId) -> StreamState:
        state = self.streams.get(stream)
        if state is None:
            state = StreamState(stream, MessageBuffer(self.config.buffer_size))
            # All links to current neighbours start active (§II-C, §II-F).
            state.in_active = {peer: True for peer in self.active}
            self.streams[stream] = state
            if self.config.tail_probe:
                # Both kernels materialize state here (the slotted
                # kernel delegates through super().stream_state), and
                # the probe only reads fields the slotted fast path
                # keeps current — so the timer behaves identically
                # under either representation.
                self._arm_tail_probe(state, -1, 0)
        return state

    # NOTE on synthesized bootstrap (§II-C consistency): HyParViewNode.
    # install_overlay fires neighbor_up per installed peer, which runs
    # this class's hook below — every stream sees installed neighbours
    # exactly as live joins would have presented them (inbound links
    # start active, predictor position stays None = "fresh, anything
    # eligible"), so the bootstrap flood and emergence run unchanged
    # over synthesized overlays.

    def parents_of(self, stream: StreamId = 0) -> list[NodeId]:
        return list(self.stream_state(stream).parents)

    def tree_parents(self, stream: StreamId) -> list[NodeId]:
        """Parent edges for one stream, without materializing state.

        The representation-independent read used by structure extraction
        (:mod:`repro.core.structure`): the slotted kernel overrides it to
        answer from its tree-edge rows instead of the parents dict.
        """
        state = self.streams.get(stream)
        return list(state.parents) if state is not None else []

    def children_of(self, stream: StreamId = 0) -> list[NodeId]:
        """Neighbours we still relay this stream to (≈ children once the
        structure has stabilized)."""
        state = self.stream_state(stream)
        return [
            p
            for p in self.active
            if p not in state.out_deactivated and p not in state.parents
        ]

    def delivered_count(self, stream: StreamId = 0) -> int:
        return len(self.stream_state(stream).delivered)

    # ------------------------------------------------------------------
    # Source API
    # ------------------------------------------------------------------
    def become_source(self, stream: StreamId = 0) -> None:
        state = self.stream_state(stream)
        state.is_source = True
        self._set_position(state, self.predictor.source_position(self.node_id))
        self._set_hops(state, 0)

    # ------------------------------------------------------------------
    # State-mutation choke points
    # ------------------------------------------------------------------
    # Every mutation of the structure-bearing stream state (position,
    # level, parent edges, link activation) funnels through one of these
    # hooks.  The reference kernel applies them directly; the slotted
    # kernel (core/brisa_slotted.py) overrides them to keep its flat
    # per-slot arrays — levels, tree-edge rows, relay rows, the Bloom
    # bit-matrix — in sync and to invalidate its fast-path maintenance
    # cache (DESIGN.md §11).

    def _set_position(self, state: StreamState, value: Any) -> None:
        state.position = value

    def _reset_position(self, state: StreamState) -> None:
        state.reset_position()

    def _set_hops(self, state: StreamState, value: Optional[int]) -> None:
        state.hops = value

    def _set_in_active(self, state: StreamState, peer: NodeId, value: bool) -> None:
        state.in_active[peer] = value

    def _forget_in_active(self, state: StreamState, peer: NodeId) -> None:
        state.in_active.pop(peer, None)

    def _add_parent_edge(
        self, state: StreamState, peer: NodeId, cand: Candidate, meta: Any
    ) -> None:
        state.parents[peer] = cand
        state.parent_meta[peer] = meta

    def _drop_parent_edge(self, state: StreamState, peer: NodeId) -> bool:
        return state.drop_parent(peer)

    def _bump_demote(self, state: StreamState, peer: NodeId, count: int) -> None:
        state.demote_counts[peer] = count

    def _mute_out(self, state: StreamState, peer: NodeId) -> None:
        state.out_deactivated.add(peer)

    def _unmute_out(self, state: StreamState, peer: NodeId) -> None:
        state.out_deactivated.discard(peer)

    def inject(self, stream: StreamId, seq: int, payload_bytes: int) -> None:
        """Publish one stream message (the experiment harness drives this)."""
        state = self.stream_state(stream)
        if not state.is_source:
            self.become_source(stream)
            state = self.stream_state(stream)
        self.transport.metrics.record_injection(stream, seq, self.clock.now)
        state.note_delivered(seq)
        state.buffer.store(seq, payload_bytes)
        self._forward(state, seq, payload_bytes, exclude=None, hops=0, path_delay=0.0)

    # ------------------------------------------------------------------
    # Data plane
    # ------------------------------------------------------------------
    def _data_message(
        self,
        state: StreamState,
        seq: int,
        payload_bytes: int,
        hops: int,
        path_delay: float,
        recovered: bool = False,
    ) -> bm.Data:
        fields = self.predictor.message_fields(state.position)
        return bm.Data(
            state.stream,
            seq,
            payload_bytes,
            hops=hops,
            path_delay=path_delay,
            sent_at=self.clock.now,
            recovered=recovered,
            **fields,
        )

    def _forward(
        self,
        state: StreamState,
        seq: int,
        payload_bytes: int,
        exclude: Optional[NodeId],
        hops: int,
        path_delay: float,
    ) -> None:
        peers = [
            peer
            for peer in self.active
            if peer != exclude and peer not in state.out_deactivated
        ]
        if peers:
            # One shared Data instance for the whole fan-out: it is
            # read-only at receivers, so batching through send_many fuses
            # the delivery event and computes size_bytes once instead of
            # per peer (the per-peer construction defeated the Message
            # size memoization entirely).
            self.send_many(
                peers, self._data_message(state, seq, payload_bytes, hops, path_delay)
            )

    def on_brisa_data(self, src: NodeId, msg: bm.Data) -> None:
        state = self.stream_state(msg.stream)
        meta = extract_meta(msg)
        hop_delay = self.clock.now - msg.sent_at
        path_delay = msg.path_delay + hop_delay
        hops = msg.hops + 1

        if state.is_source:
            # The source needs no inbound providers: prune the link.
            self._deactivate_link(state, src)
            return

        is_neighbor = src in self.active
        if is_neighbor:
            cand = state.candidates.get(src)
            if cand is None:
                cand = self._candidate(src, arrival=self.clock.now)
                cand.path_delay = msg.path_delay
                state.candidates[src] = cand
            else:
                # EMA over the sender's observed source-to-sender delay
                # (jitter-smoothed input for the delay-aware strategy).
                cand.path_delay = 0.7 * cand.path_delay + 0.3 * msg.path_delay

        first = msg.seq not in state.delivered
        self.transport.metrics.record_delivery(
            self.node_id, msg.stream, msg.seq, self.clock.now, src, hops, path_delay,
            msg.payload_bytes,
        )

        if first:
            state.note_delivered(msg.seq)
            state.buffer.store(msg.seq, msg.payload_bytes)
            if is_neighbor:
                self._consider_provider(state, src, meta, first=True)
            if src in state.parents:
                self._set_hops(state, hops)  # distance bookkeeping for retransmissions
                if rules.wants_gap_recovery(
                    msg.seq, state.max_contig, msg.recovered,
                    self.clock.now, state.last_gap_request, self.GAP_REQUEST_COOLDOWN,
                ):
                    # Sequence gap below this delivery: messages were lost
                    # in a swap/activation race — recover them from the
                    # parent's buffer (§II-F), rate-limited.
                    state.last_gap_request = self.clock.now
                    self.send(src, bm.RetransmitRequest(state.stream, state.max_contig))
            # Infect-and-die relay: only first receptions propagate.
            self._forward(
                state, msg.seq, msg.payload_bytes, exclude=src,
                hops=hops, path_delay=path_delay,
            )
            # Lazy DAG parent top-up: previously-ineligible neighbours may
            # have become eligible as the structure settled; retry the soft
            # acquisition every few messages (never escalates to hard).
            if (
                len(state.parents) < self.config.num_parents
                and not state.repairing
                and msg.seq % 8 == 7
            ):
                self._begin_repair(state, record=False, allow_hard=False)
        else:
            if is_neighbor and not msg.recovered:
                self._consider_provider(state, src, meta, first=False)

    # ------------------------------------------------------------------
    # Parent selection (Fig. 3) and cycle handling
    # ------------------------------------------------------------------
    def _consider_provider(self, state: StreamState, src: NodeId, meta: Any, first: bool) -> None:
        """Apply the link-deactivation decision to a message from ``src``.

        The decision itself lives in :mod:`repro.core.rules` (the pure
        rule table shared with the slotted kernel); this method threads
        the verdicts through the object kernel's side effects.
        """
        action = rules.provider_action(
            self.predictor, self.node_id, state.position,
            state.parents, self.config.num_parents, src, meta,
        )
        if action is rules.MAINTAIN:
            state.parent_meta[src] = meta
            self._maintain_parent(state, src, meta)
        elif action is rules.PRUNE:
            # Cycle risk (or unlabeled provider): this link can never feed
            # us as a parent — prune it before it delivers duplicates
            # forever.  (IGNORE, the zero-parent case, keeps the link as
            # fallback flow until a repair completes.)
            self._deactivate_link(state, src)
        elif action is rules.ADOPT:
            self._adopt_parent(state, src, meta)
        elif action is rules.CONTEND:
            # Parents full: strategy decides between newcomer and worst.
            newcomer = self._candidate(
                src, arrival=self._arrival_of(state, src), state=state
            )
            verdict, worst_peer = rules.contention_action(
                self.strategy, newcomer, list(state.parents.values()), first
            )
            if verdict is rules.SWAP:
                self._remove_parent(state, worst_peer, deactivate=True)
                self._adopt_parent(state, src, meta)
            elif verdict is rules.REJECT:
                # KEEP_FEED (first reception from a non-parent) keeps the
                # live feed: deactivation is duplicate-triggered (Fig. 3).
                self._deactivate_link(state, src)
                if rules.symmetric_mute(
                    self.config, self.strategy, src in state.reactivated
                ):
                    # Symmetric optimization (§II-E, trees only): src
                    # demonstrably received this message first, so we can
                    # never become its first-come parent; stop relaying to
                    # it without spending a message.  Unsound for DAGs and
                    # for explicitly re-Activated links (see rules).
                    self._mute_out(state, src)

    def _arrival_of(self, state: StreamState, peer: NodeId) -> float:
        cand = state.candidates.get(peer)
        return cand.arrival if cand is not None else self.clock.now

    def _candidate(
        self, peer: NodeId, arrival: float, state: Optional[StreamState] = None
    ) -> Candidate:
        """Candidate snapshot; RTT/uptime/load/capacity mirror the info the
        paper piggybacks on HyParView keep-alives (§II-E, §II-F)."""
        rtt = self.transport.rtt(self.node_id, peer)
        uptime = 0.0
        load = 0
        stats = self.transport.peer_stats(peer, 0)
        if stats is not None:
            uptime, load = stats
        path_delay = 0.0
        if state is not None:
            cached = state.candidates.get(peer)
            if cached is not None:
                path_delay = cached.path_delay
        return Candidate(
            peer=peer,
            arrival=arrival,
            rtt=rtt,
            uptime=uptime,
            load=load,
            capacity=self.transport.capacity(peer),
            path_delay=path_delay,
        )

    def _adopt_parent(self, state: StreamState, peer: NodeId, meta: Any) -> None:
        cand = self._candidate(peer, arrival=self._arrival_of(state, peer), state=state)
        self._add_parent_edge(state, peer, cand, meta)
        if not state.in_active.get(peer, True):
            # We deactivated this peer in an earlier decision (dynamic
            # strategies swap back and forth while duplicates flow): the
            # peer still holds us in its out_deactivated set and would
            # never relay again — re-activate the link explicitly.
            self.send(peer, bm.Activate(state.stream, adopt=False))
        self._set_in_active(state, peer, True)
        state.demote_counts.pop(peer, None)
        old_position = state.position
        new_position = self.predictor.adopt(self.node_id, meta)
        self._set_position(
            state, rules.merge_position(self.predictor.name, state.position, new_position)
        )
        self._set_hops(
            state,
            rules.hops_from_position(self.predictor.name, state.position, state.hops),
        )
        if (
            self.predictor.name == "depth"
            and old_position is not None
            and state.position > old_position
        ):
            # Adopting an equal-depth parent moved us down (§II-G):
            # "immediately updates its downstream children accordingly".
            self._broadcast_depth(state)
        elif self.predictor.name == "bloom" and state.position != old_position:
            # The grown ancestor filter must reach children promptly for
            # concurrent-adoption cycles to surface (see _maintain_parent).
            self._broadcast_bloom(state)
        self._check_settled(state)
        if state.repairing:
            self._finish_repair(state)

    def _remove_parent(self, state: StreamState, peer: NodeId, deactivate: bool) -> None:
        self._drop_parent_edge(state, peer)
        if deactivate:
            self._deactivate_link(state, peer)

    #: Demotions attributable to one parent before we conclude the depth
    #: labels are chasing each other around a cycle and drop the parent.
    DEMOTE_LIMIT = 3

    #: Minimum spacing between gap-triggered retransmit requests.
    GAP_REQUEST_COOLDOWN = 0.5

    #: Quiescence window before a tail probe fires (config.tail_probe).
    #: Must sit above the inter-message spacing and link latency so an
    #: active stream keeps resetting the check instead of probing.
    TAIL_PROBE_DELAY = 0.25

    #: Consecutive no-progress probes before a node concludes the stream
    #: has genuinely ended and lets its timer drain.  Two rounds cover
    #: nested orphan subtrees: the outer root's recovery pushes fresh
    #: data into the inner subtree, whose own probe then has a caught-up
    #: parent to ask.
    TAIL_PROBE_ROUNDS = 2

    def _arm_tail_probe(self, state: StreamState, seen: int, rounds: int) -> None:
        self.after(self.TAIL_PROBE_DELAY, self._tail_probe, state, seen, rounds)

    def _tail_probe(self, state: StreamState, seen: int, rounds: int) -> None:
        """Quiescence check for invisible tail gaps (§II-F blind spot).

        Gap recovery in ``on_brisa_data`` needs a *later* seq to arrive
        before it can see a hole — so a lost final message orphans its
        entire subtree silently.  This timer re-arms while the stream
        makes progress; once quiet, it asks one parent for anything
        beyond the contiguous prefix.  Recovered data is a first
        reception downstream and re-enters ``_forward``, so one probe at
        each orphaned subtree's root repairs the whole subtree.  The
        timer stops (and the heap drains) after ``TAIL_PROBE_ROUNDS``
        probes yield nothing new.
        """
        progress = len(state.delivered)
        if progress != seen:
            # Stream still moving — reset the probe budget and recheck.
            self._arm_tail_probe(state, progress, 0)
            return
        if rounds >= self.TAIL_PROBE_ROUNDS or not state.parents:
            return
        parent = min(state.parents)
        self.send(parent, bm.RetransmitRequest(state.stream, state.max_contig))
        self._arm_tail_probe(state, progress, rounds + 1)

    def _maintain_parent(self, state: StreamState, src: NodeId, meta: Any) -> None:
        """Steady-state revalidation of an existing parent (§II-D, §II-G).

        Verdicts come from the shared rule table; PARENT_SKIP means the
        parent is mid-hard-repair (position forgotten) and re-flooding —
        its ReactivateOrder will arrive separately.
        """
        action, count = rules.maintenance_action(
            self.predictor, self.node_id, state.position, meta,
            state.demote_counts.get(src, 0),
            src not in state.out_deactivated,
            self.DEMOTE_LIMIT,
        )
        if action is rules.PARENT_SKIP:
            return
        if action is rules.PARENT_DROP_CYCLE:
            # "A node that detects a cycle from a parent simply makes the
            # link from that parent inactive and selects a new parent."
            self.transport.metrics.incr("cycles_detected")
            self._remove_parent(state, src, deactivate=True)
            if not state.parents:
                self._begin_repair(state, record=False)
        elif action is rules.PARENT_DROP_DEMOTED:
            # Mutual-adoption detection: a parent that keeps demoting us
            # while still accepting our relays is consuming us as its own
            # parent — a two-cycle chasing its own depth labels (§II-G
            # safety: cycles must never survive).
            self.transport.metrics.incr("cycles_detected")
            self._remove_parent(state, src, deactivate=True)
            state.demote_counts.pop(src, None)
            if not state.parents:
                self._begin_repair(state, record=False)
        elif action is rules.PARENT_DEMOTE_STEP:
            self._bump_demote(state, src, count)
            self._demote(state, int(meta) + 1)
        elif self.predictor.name == "path":
            # Track our own position from the freshest parent path.  Only
            # reassign on an actual change: a steady parent re-sends the
            # same path every message, and keeping the tuple identity
            # stable is what lets downstream slotted nodes recognize the
            # no-op by identity and skip this check (DESIGN.md §11).
            new_position = self.predictor.adopt(self.node_id, meta)
            if new_position != state.position:
                self._set_position(state, new_position)
                self._set_hops(state, len(new_position) - 1)
        elif self.predictor.name == "bloom":
            # Refresh the ancestor filter from the freshest parent metas.
            # A filter frozen at adoption time can never circulate the
            # evidence of a concurrently-formed cycle: every member's
            # filter predates the loop closing, so check_parent stays
            # silent forever.  Folding each parent's *current* filter in
            # — and pushing growth to children (the Bloom counterpart of
            # _broadcast_depth) — lets the union circulate a loop until
            # some member sees its own bits and breaks it (§II-G safety:
            # cycles must never survive).  Growth is monotone and
            # bit-bounded, so the cascade reaches a fixpoint even after
            # the stream has drained.
            combined = rules.fold_parent_filters(
                state.position, state.parent_meta.values()
            )
            if combined is not None:
                new_position = self.predictor.adopt(self.node_id, combined)
                if new_position != state.position:
                    self._set_position(state, new_position)
                    self._broadcast_bloom(state)

    def _demote(self, state: StreamState, new_depth: int) -> None:
        if state.position is not None and new_depth <= state.position:
            return
        self._set_position(state, new_depth)
        self._set_hops(state, new_depth)
        self._broadcast_depth(state)

    def _broadcast_depth(self, state: StreamState) -> None:
        """Push our new depth to every neighbour still linked to us —
        including parents: in a pathological mutual-adoption pair the
        'parent' is also our child and *must* observe our depth change for
        the cycle breaker in _maintain_parent to trigger."""
        peers = [p for p in self.active if p not in state.out_deactivated]
        if peers:
            self.send_many(peers, bm.DepthUpdate(state.stream, state.position))

    def on_brisa_depth_update(self, src: NodeId, msg: bm.DepthUpdate) -> None:
        state = self.stream_state(msg.stream)
        if src in state.parents:
            state.parent_meta[src] = msg.depth
            self._maintain_parent(state, src, msg.depth)

    def _broadcast_bloom(self, state: StreamState) -> None:
        """Push the grown ancestor filter to every neighbour still linked
        to us (the Bloom counterpart of :meth:`_broadcast_depth`)."""
        peers = [p for p in self.active if p not in state.out_deactivated]
        if peers:
            self.send_many(
                peers,
                bm.BloomUpdate(state.stream, state.position, self.config.bloom_bits),
            )

    def on_brisa_bloom_update(self, src: NodeId, msg: bm.BloomUpdate) -> None:
        state = self.stream_state(msg.stream)
        if src in state.parents:
            state.parent_meta[src] = msg.bloom
            self._maintain_parent(state, src, msg.bloom)

    # ------------------------------------------------------------------
    # Link (de)activation
    # ------------------------------------------------------------------
    def _deactivate_link(self, state: StreamState, peer: NodeId) -> None:
        # Unknown peers (e.g. providers seen before the membership layer
        # reported them) are treated as active so the Deactivate is sent.
        if not state.in_active.get(peer, True):
            return
        self._set_in_active(state, peer, False)
        self.send(peer, bm.Deactivate(state.stream))
        if state.first_deact_at is None:
            state.first_deact_at = self.clock.now
        self._check_settled(state)

    def _check_settled(self, state: StreamState) -> None:
        """Construction-time probe (Fig. 13): settled once all inbound
        links but the target number are deactivated."""
        if state.settled_at is not None or state.first_deact_at is None:
            return
        if state.active_in_count() <= self.config.num_parents:
            state.settled_at = self.clock.now
            self.transport.metrics.record_construction(
                self.node_id, state.first_deact_at, state.settled_at
            )

    def on_brisa_deactivate(self, src: NodeId, msg: bm.Deactivate) -> None:
        state = self.stream_state(msg.stream)
        self._mute_out(state, src)
        # An explicit Deactivate re-arms the symmetric inference for src.
        state.reactivated.discard(src)

    def on_brisa_activate(self, src: NodeId, msg: bm.Activate) -> None:
        state = self.stream_state(msg.stream)
        self._unmute_out(state, src)
        state.reactivated.add(src)
        if msg.adopt:
            if state.repairing and state.repair_pending == src and self.node_id > src:
                # Crossing adopt requests: both sides are mid-repair
                # toward each other, and both Acks would carry
                # pre-adoption positions — committing a mutual parent
                # pair, a 2-cycle that a stream with no traffic left can
                # never detect.  Deterministic tie-break: the higher id
                # abandons its own request and serves the lower as child.
                state.repair_pending = None
                self._repair_next(state)
            fields = (
                self.predictor.message_fields(state.position)
                if state.position is not None
                else {}
            )
            self.send(src, bm.ActivateAck(msg.stream, **fields))

    # ------------------------------------------------------------------
    # Membership events
    # ------------------------------------------------------------------
    def neighbor_up(self, peer: NodeId) -> None:
        for state in self.streams.values():
            # Links to new nodes start active (§II-F).
            if peer not in state.in_active:
                self._set_in_active(state, peer, True)
            self._unmute_out(state, peer)

    def neighbor_down(self, peer: NodeId, failure: bool) -> None:
        for state in self.streams.values():
            self._forget_in_active(state, peer)
            self._unmute_out(state, peer)
            state.reactivated.discard(peer)
            state.candidates.pop(peer, None)
            if state.repair_pending == peer:
                state.repair_pending = None
                self._repair_next(state)
            if peer in state.parents:
                self._drop_parent_edge(state, peer)
                if state.engaged and not state.is_source:
                    self.transport.metrics.record_parent_loss(self.clock.now, self.node_id)
                    if not state.parents:
                        self.transport.metrics.record_orphan(self.clock.now, self.node_id)
                        self._begin_repair(state, record=True)
                    elif len(state.parents) < self.config.num_parents:
                        # DAG continuity: top the parent set back up, but
                        # this is not a disconnection (Table I counts only
                        # orphan repairs) and must never go hard.
                        self._begin_repair(state, record=False, allow_hard=False)

    # ------------------------------------------------------------------
    # Repairs (§II-F)
    # ------------------------------------------------------------------
    def _begin_repair(
        self, state: StreamState, record: bool, allow_hard: bool = True
    ) -> None:
        if state.repairing or not state.engaged or state.is_source:
            return
        state.repairing = True
        state.repair_record = record
        state.repair_started = self.clock.now
        state.repair_hard = False
        state.repair_allow_hard = allow_hard
        self._soft_repair(state)

    def _repair_candidates(self, state: StreamState) -> list[Candidate]:
        """Eligible replacement parents among current neighbours, using
        the keep-alive-piggybacked position info (§II-F)."""
        out = []
        for peer in self.active:
            if peer in state.parents:
                continue
            meta = self._peer_position(peer, state.stream)
            if meta is None:
                continue
            if self.predictor.eligible(self.node_id, state.position, meta):
                out.append(self._candidate(peer, arrival=self._arrival_of(state, peer), state=state))
        return out

    def _peer_position(self, peer: NodeId, stream: StreamId) -> Any:
        """Position advertised by a neighbour on its keep-alives.

        The simulator's transport reads the neighbour's live state
        directly instead of simulating per-heartbeat piggyback messages
        (see DESIGN.md §5); the Activate/Ack handshake still re-validates
        before adoption.
        """
        return self.transport.peer_position(peer, stream)

    def _soft_repair(self, state: StreamState) -> None:
        candidates = self._repair_candidates(state)
        if not candidates:
            self._repair_exhausted(state)
            return
        state.repair_queue = self.strategy.sort(candidates)
        self._repair_next(state)

    def _repair_exhausted(self, state: StreamState) -> None:
        """No (more) soft candidates: escalate or give up quietly."""
        if state.repair_allow_hard and not state.repair_hard:
            self._hard_repair(state)
        elif not state.repair_allow_hard:
            # Top-up attempt failed (e.g. every neighbour sits below us —
            # the Fig. 10 single-parent case); service continues on the
            # remaining parents.
            state.repairing = False
            state.repair_pending = None
            state.repair_queue = []

    def _repair_next(self, state: StreamState) -> None:
        if not state.repairing:
            return
        while state.repair_queue:
            cand = state.repair_queue.pop(0)
            if not self.is_active(cand.peer):
                continue
            state.repair_pending = cand.peer
            state.repair_attempt += 1
            attempt = state.repair_attempt
            self.send(cand.peer, bm.Activate(state.stream, adopt=True))
            timeout = max(0.02, 6.0 * self.transport.rtt(self.node_id, cand.peer))
            self.after(timeout, self._repair_timeout, state.stream, attempt)
            return
        # Queue exhausted without adoption.
        self._repair_exhausted(state)

    def _repair_timeout(self, stream: StreamId, attempt: int) -> None:
        state = self.streams.get(stream)
        if state is None or not state.repairing:
            return
        if state.repair_attempt != attempt or state.repair_pending is None:
            return
        state.repair_pending = None
        self._repair_next(state)

    def on_brisa_activate_ack(self, src: NodeId, msg: bm.ActivateAck) -> None:
        state = self.stream_state(msg.stream)
        if not state.repairing or state.repair_pending != src:
            return
        state.repair_pending = None
        meta = extract_meta(msg)
        if meta is not None and self.predictor.eligible(self.node_id, state.position, meta):
            self._adopt_parent(state, src, meta)
        else:
            # Same rule as _consider_provider: with zero parents the link
            # stays active as fallback flow.  Mid-storm positions are
            # transitional (an old subtree's paths still embed us); an
            # orphan that pruned every such neighbour would mute all its
            # inbound links and stay dark forever.
            if state.parents:
                self._deactivate_link(state, src)
            self._repair_next(state)

    def _finish_repair(self, state: StreamState) -> None:
        duration = self.clock.now - state.repair_started
        if state.repair_record:
            kind = "hard" if state.repair_hard else "soft"
            self.transport.metrics.record_repair(
                self.clock.now, self.node_id, kind, duration, state.stream
            )
        state.repairing = False
        state.repair_pending = None
        state.repair_queue = []
        # Recover anything missed while we were disconnected (§II-F).
        parent = next(iter(state.parents), None)
        if parent is not None:
            self.send(parent, bm.RetransmitRequest(state.stream, state.max_contig))

    def _hard_repair(self, state: StreamState) -> None:
        """Fall back to flooding: forget the position, re-activate every
        inbound link and re-bootstrap the subtree (§II-F)."""
        if state.repair_hard:
            return  # already hard; flooding will eventually reach us
        state.repair_hard = True
        old_parents = set(state.parents)
        for peer in old_parents:
            self._drop_parent_edge(state, peer)
        children = [
            p
            for p in self.active
            if p not in state.out_deactivated and p not in old_parents
        ]
        self._reset_position(state)
        peers = list(self.active)
        for peer in peers:
            self._set_in_active(state, peer, True)
        if peers:
            # One shared Activate for the whole re-activation wave (the
            # per-peer instances previously built here re-computed the
            # message size peer by peer).
            self.send_many(peers, bm.Activate(state.stream, adopt=False))
        if children:
            self.send_many(children, bm.ReactivateOrder(state.stream))
        # As a fresh node every neighbour is an eligible provider; try an
        # immediate adoption so service resumes before the next flood wave.
        state.repair_queue = self.strategy.sort(
            [
                self._candidate(p, arrival=self._arrival_of(state, p), state=state)
                for p in self.active
            ]
        )
        self._repair_next(state)

    def on_brisa_reactivate_order(self, src: NodeId, msg: bm.ReactivateOrder) -> None:
        state = self.stream_state(msg.stream)
        # Our parent re-bootstrapped: it can no longer serve us.
        had_parent = self._drop_parent_edge(state, src)
        if not state.engaged:
            return
        if state.parents:
            return  # other parents keep feeding us; wave stops here
        if state.repairing:
            return
        # Try to replace the re-activating parent locally; if impossible,
        # _soft_repair escalates to _hard_repair, which continues the wave
        # (the "nodes stop re-activating and propagating the order as soon
        # as they can select a suitable parent" rule of §II-F).
        self._begin_repair(state, record=False)

    # ------------------------------------------------------------------
    # Retransmissions
    # ------------------------------------------------------------------
    def on_brisa_retransmit(self, src: NodeId, msg: bm.RetransmitRequest) -> None:
        state = self.stream_state(msg.stream)
        hops = state.hops if state.hops is not None else 0
        for seq, payload_bytes in state.buffer.after(msg.have_up_to):
            self.send(
                src,
                self._data_message(
                    state, seq, payload_bytes, hops=hops, path_delay=0.0, recovered=True
                ),
            )

    # ------------------------------------------------------------------
    def on_crash(self) -> None:
        super().on_crash()
        self.streams.clear()
