"""BRISA wire messages (§II).

``Data`` carries the stream payload plus the cycle-prevention metadata of
the active predictor: the embedded source path for trees (§II-D), a depth
label for DAGs (§II-G), or a Bloom filter of ancestors for the comparison
baseline.  The byte accounting reflects exactly the §II-D cost argument —
paths cost ``hops × 6`` bytes, depths 4 bytes, Blooms ``bits/8`` bytes.

``sent_at``/``path_delay`` are measurement timestamps a real
implementation carries anyway (Fig. 9 sums per-hop delays); they add a
fixed 8 bytes to the accounting.
"""

from __future__ import annotations

from typing import Optional

from repro.ids import DEPTH_BYTES, NODE_ID_BYTES, SEQ_BYTES, NodeId, StreamId
from repro.sim.message import Message

#: Stream identifier wire size.
STREAM_BYTES = 2
#: Per-hop measurement header (timestamp + cumulative delay).
MEASURE_BYTES = 8


class Data(Message):
    """One stream message relayed along the emerging structure."""

    kind = "brisa_data"
    __slots__ = (
        "stream",
        "seq",
        "payload_bytes",
        "path",
        "depth",
        "bloom",
        "bloom_bits",
        "hops",
        "path_delay",
        "sent_at",
        "recovered",
    )

    def __init__(
        self,
        stream: StreamId,
        seq: int,
        payload_bytes: int,
        *,
        path: Optional[tuple[NodeId, ...]] = None,
        depth: Optional[int] = None,
        bloom: Optional[int] = None,
        bloom_bits: int = 0,
        hops: int = 0,
        path_delay: float = 0.0,
        sent_at: float = 0.0,
        recovered: bool = False,
    ) -> None:
        self.stream = stream
        self.seq = seq
        self.payload_bytes = payload_bytes
        self.path = path
        self.depth = depth
        self.bloom = bloom
        self.bloom_bits = bloom_bits
        self.hops = hops
        self.path_delay = path_delay
        self.sent_at = sent_at
        self.recovered = recovered

    def body_bytes(self) -> int:
        meta = 0
        if self.path is not None:
            meta += len(self.path) * NODE_ID_BYTES
        if self.depth is not None:
            meta += DEPTH_BYTES
        if self.bloom is not None:
            meta += (self.bloom_bits + 7) // 8
        return STREAM_BYTES + SEQ_BYTES + MEASURE_BYTES + meta + self.payload_bytes


class Deactivate(Message):
    """'Stop relaying this stream to me' — prunes one inbound link."""

    kind = "brisa_deactivate"
    __slots__ = ("stream",)

    def __init__(self, stream: StreamId) -> None:
        self.stream = stream

    def body_bytes(self) -> int:
        return STREAM_BYTES


class Activate(Message):
    """'Resume relaying this stream to me'.

    ``adopt`` marks a repair adoption: the receiver answers with
    :class:`ActivateAck` carrying its current cycle-prevention metadata so
    the adopter can re-validate eligibility before committing (§II-F).
    """

    kind = "brisa_activate"
    __slots__ = ("stream", "adopt")

    def __init__(self, stream: StreamId, adopt: bool = False) -> None:
        self.stream = stream
        self.adopt = adopt

    def body_bytes(self) -> int:
        return STREAM_BYTES + 1


class ActivateAck(Message):
    """Parent-side confirmation of an adoption Activate."""

    kind = "brisa_activate_ack"
    __slots__ = ("stream", "path", "depth", "bloom", "bloom_bits")

    def __init__(
        self,
        stream: StreamId,
        *,
        path: Optional[tuple[NodeId, ...]] = None,
        depth: Optional[int] = None,
        bloom: Optional[int] = None,
        bloom_bits: int = 0,
    ) -> None:
        self.stream = stream
        self.path = path
        self.depth = depth
        self.bloom = bloom
        self.bloom_bits = bloom_bits

    def body_bytes(self) -> int:
        meta = 0
        if self.path is not None:
            meta += len(self.path) * NODE_ID_BYTES
        if self.depth is not None:
            meta += DEPTH_BYTES
        if self.bloom is not None:
            meta += (self.bloom_bits + 7) // 8
        return STREAM_BYTES + meta


class ReactivateOrder(Message):
    """Hard-repair wave: 'your parent re-bootstrapped; re-activate your
    inbound links unless you can find a replacement parent' (§II-F)."""

    kind = "brisa_reactivate_order"
    __slots__ = ("stream",)

    def __init__(self, stream: StreamId) -> None:
        self.stream = stream

    def body_bytes(self) -> int:
        return STREAM_BYTES


class DepthUpdate(Message):
    """DAG-mode depth change pushed to downstream children (§II-G)."""

    kind = "brisa_depth_update"
    __slots__ = ("stream", "depth")

    def __init__(self, stream: StreamId, depth: int) -> None:
        self.stream = stream
        self.depth = depth

    def body_bytes(self) -> int:
        return STREAM_BYTES + DEPTH_BYTES


class BloomUpdate(Message):
    """Bloom ancestor-filter change pushed to downstream children.

    The Bloom predictor's counterpart of :class:`DepthUpdate`: a filter
    frozen at adoption time can never circulate the evidence of a
    concurrently-formed cycle, so filter *growth* is pushed down and
    folded into children's filters until the (monotone, bit-bounded)
    union reaches a fixpoint — around a cycle, until some member sees
    its own bits and breaks it.
    """

    kind = "brisa_bloom_update"
    __slots__ = ("stream", "bloom", "bloom_bits")

    def __init__(self, stream: StreamId, bloom: int, bloom_bits: int = 1024) -> None:
        self.stream = stream
        self.bloom = bloom
        self.bloom_bits = bloom_bits

    def body_bytes(self) -> int:
        return STREAM_BYTES + self.bloom_bits // 8


class RetransmitRequest(Message):
    """Ask a (new) parent for everything past ``have_up_to`` (§II-F)."""

    kind = "brisa_retransmit"
    __slots__ = ("stream", "have_up_to")

    def __init__(self, stream: StreamId, have_up_to: int) -> None:
        self.stream = stream
        self.have_up_to = have_up_to

    def body_bytes(self) -> int:
        return STREAM_BYTES + SEQ_BYTES
