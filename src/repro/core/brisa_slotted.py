"""Slotted BRISA kernel: flat-array tree state behind the fan-sink seam.

The flood stack's slotted kernel (DESIGN.md §9) showed that at xxl
populations the dissemination cost is per-reception Python handler work.
BRISA's hot path carries more state than flooding — parent sets, stream
levels, link-activation bits, cycle-prevention positions — but in steady
state almost every reception is the *same* transition: first copy of the
next sequence, from the same parent, carrying the same position metadata,
relayed to the same children.  This kernel makes that transition a
handful of array operations:

- one :class:`_BrisaPlane` per stream (dense plane index, DESIGN.md §10)
  holding seen maps, per-slot delivered/duplicate/payload counters,
  stream *levels* (``StreamState.hops``), inbound activation counts, the
  per-slot *relay rows* (active view minus out-deactivated links — the
  fan-out set) and *parent rows* (tree edges in adoption order), plus a
  packed :class:`~repro.core.bloom_matrix.BloomBitMatrix` of §II-F
  ancestor filters when the bloom predictor is active;
- a per-slot *maintenance cache* ``(maint_src, maint_meta)`` keyed by
  object identity: the pure rule table (:mod:`repro.core.rules`) is a
  function of (position, parents, demote counts, backflow, meta), every
  mutation of those inputs funnels through a ``BrisaNode`` choke-point
  hook, and :class:`SlottedBrisaNode` overrides the hooks to invalidate
  the cache.  A reception whose (src, meta) match the cache *by
  identity* with all inputs untouched since must reproduce the previous
  maintenance decision — which, for a surviving cache, took no mutating
  branch — so the whole Fig. 3 / §II-G revalidation can be skipped.

The path predictor makes the identity check work end to end:
``BrisaNode._maintain_parent`` reassigns the position tuple only on an
actual change, so a steady parent re-sends the *same* tuple object every
message and the no-op is recognizable in O(1) instead of O(depth).

Receptions that miss the fast path (duplicates, structure changes,
repairs, unknown providers) fall back to the unmodified
``BrisaNode.on_brisa_data`` — both kernels share one rule table and one
protocol implementation, so parity is structural, not re-implemented.

Slot lifecycle mirrors the flood kernel, but release is driven through
:meth:`repro.sim.network.Network.register_kernel`: ``Network.crash``
calls :meth:`SlottedBrisaKernel.release_node` after the node teardown,
zeroing the slot's cells — tree-edge rows included — in every plane
before the slot can be recycled by a churn joiner.
"""

from __future__ import annotations

from array import array

from repro.config import BrisaConfig, HyParViewConfig
from repro.core import messages as bm
from repro.core.bloom_matrix import BloomBitMatrix
from repro.core.brisa import BrisaNode
from repro.core.cycle import make_predictor
from repro.core.state import StreamState
from repro.errors import SimulationError
from repro.ids import NODE_ID_BYTES as _NODE_ID_BYTES, NodeId, StreamId

#: Seen-map cell states (shared convention with the flood kernel):
#: ``_INJECTED`` marks a sequence the slot's node itself published.
_UNSEEN, _INJECTED, _RECEIVED = 0, 1, 2

#: Local alias: the fast path builds forwards via ``__new__`` + direct
#: slot stores (the keyword constructor costs ~3x as much per message).
_Data = bm.Data


class _BrisaPlane:
    """Per-stream slot plane: one stream's flat BRISA state.

    The flood plane's seen maps and counters, plus the tree state the
    ISSUE's §II structures need: ``levels`` mirrors ``StreamState.hops``
    (0 while unset), ``active_in`` counts inbound-active links (the
    activation bits consumed by the O(1) settled probe), ``relay_rows``
    are the per-slot fan-out sets (active view minus out-deactivated, in
    active-view order), ``parent_rows`` the tree edges in adoption
    order, and ``states`` the per-slot :class:`StreamState` (the cold
    path and the repair machinery still run on it; ``None`` for slots
    that never touched the stream).  ``maint_src``/``maint_meta`` are
    the per-slot maintenance cache (see module docstring).
    """

    __slots__ = (
        "stream", "rows", "delivered", "duplicates", "payload_bytes",
        "levels", "active_in", "relay_rows", "parent_rows", "states",
        "maint_src", "maint_meta", "maint_cand", "maint_targets", "matrix",
    )

    def __init__(self, stream: StreamId, capacity: int, bloom_bits: int = 0) -> None:
        self.stream = stream
        #: Seen maps indexed by seq; one byte cell per slot.
        self.rows: list[bytearray] = []
        zeros = bytes(8 * capacity)
        self.delivered = array("q", zeros)
        self.duplicates = array("q", zeros)
        self.payload_bytes = array("q", zeros)
        #: Tree level per slot (``StreamState.hops``; 0 while unset).
        self.levels = array("q", zeros)
        #: Inbound-active link count per slot (Fig. 13 settled probe).
        self.active_in = array("q", zeros)
        #: Per-slot relay targets: active view minus out-deactivated.
        self.relay_rows: list[list[NodeId]] = [[] for _ in range(capacity)]
        #: Per-slot tree edges (parents, adoption order).
        self.parent_rows: list[list[NodeId]] = [[] for _ in range(capacity)]
        self.states: list[StreamState | None] = [None] * capacity
        #: Maintenance cache: last (src, meta) whose full revalidation
        #: took no mutating branch; ``maint_src[slot] is None`` = invalid.
        self.maint_src: list[NodeId | None] = [None] * capacity
        self.maint_meta: list = [None] * capacity
        #: The cached source's Candidate object (the EMA target), pinned
        #: at priming time: while the cache is valid the candidate entry
        #: cannot disappear (``neighbor_down`` is the only remover and it
        #: also drops the parent edge, which invalidates the cache).
        self.maint_cand: list = [None] * capacity
        #: Cached relay targets for the cached source (relay row minus
        #: ``maint_src``), filled lazily by the fast path; ``None`` =
        #: recompute.  Cleared alongside every ``maint_src`` write and on
        #: every relay-row mutation.  The cached list is never mutated in
        #: place, so pending fan events may safely share it.
        self.maint_targets: list[list[NodeId] | None] = [None] * capacity
        #: Packed §II-F ancestor filters (bloom predictor only).
        self.matrix = BloomBitMatrix(bloom_bits, capacity) if bloom_bits else None


class SlottedBrisaKernel:
    """Flat-array BRISA state shared by every :class:`SlottedBrisaNode`."""

    def __init__(self, network, config: BrisaConfig | None = None) -> None:
        self.network = network
        self.sim = network.sim
        self.metrics = network.metrics
        #: Mirror receptions into Metrics (parity/record mode)?
        self._mirror = network.metrics.record_deliveries
        self.config = config if config is not None else BrisaConfig()
        self.num_parents = self.config.num_parents
        #: Concrete predictor name, doubling as the ``Data`` metadata
        #: attribute it travels in ("path" / "depth" / "bloom").
        self.meta_attr = make_predictor(self.config).name
        self._bloom_bits = (
            self.config.bloom_bits if self.meta_attr == "bloom" else 0
        )
        self._gap_cooldown = BrisaNode.GAP_REQUEST_COOLDOWN
        self._buffer_cap = self.config.buffer_size
        #: Last plane touched by the fan sink (streams arrive in runs).
        self._hot_stream: StreamId | None = None
        self._hot_plane: _BrisaPlane | None = None
        self.slot_of: dict[NodeId, int] = {}
        self._free: list[int] = []
        self.capacity = 0
        #: Wire bytes received per slot on the fan-sink path.
        self.rx_bytes = array("q")
        #: Per-slot live peer ids, in active-view insertion order (the
        #: overlay is stream-agnostic; per-stream relay rows start as a
        #: copy of this row when the stream state materializes).
        self.neighbor_rows: list[list[NodeId]] = []
        #: While True, membership notifications skip per-peer row
        #: appends — a bulk bootstrap installs the rows from the CSR
        #: arrays in one :meth:`install_rows` pass instead.
        self.bulk_rows = False
        self.planes: list[_BrisaPlane] = []
        self.plane_of: dict[StreamId, int] = {}
        network.register_fan_sink(bm.Data.kind, self.on_fan)
        network.register_kernel(self)

    # -- slot lifecycle -------------------------------------------------
    def attach(self, node_id: NodeId) -> int:
        """Allocate (or recycle) a slot for ``node_id``."""
        free = self._free
        if free:
            slot = free.pop()
        else:
            slot = self.capacity
            self.capacity += 1
            self.rx_bytes.append(0)
            self.neighbor_rows.append([])
            for plane in self.planes:
                plane.delivered.append(0)
                plane.duplicates.append(0)
                plane.payload_bytes.append(0)
                plane.levels.append(0)
                plane.active_in.append(0)
                plane.relay_rows.append([])
                plane.parent_rows.append([])
                plane.states.append(None)
                plane.maint_src.append(None)
                plane.maint_meta.append(None)
                plane.maint_cand.append(None)
                plane.maint_targets.append(None)
                if plane.matrix is not None:
                    plane.matrix.grow(self.capacity)
                for row in plane.rows:
                    row.append(_UNSEEN)
        self.slot_of[node_id] = slot
        return slot

    def release_node(self, node_id: NodeId) -> None:
        """:meth:`Network.crash` hook: drop the dead node's slot state."""
        slot = self.slot_of.get(node_id)
        if slot is not None:
            self.release(node_id, slot)

    def release(self, node_id: NodeId, slot: int) -> None:
        """Return a crashed node's slot to the free list, zeroed —
        tree-edge rows and Bloom filter row included — in every plane."""
        if self.slot_of.pop(node_id, None) is None:
            return
        self.rx_bytes[slot] = 0
        self.neighbor_rows[slot] = []
        for plane in self.planes:
            plane.delivered[slot] = 0
            plane.duplicates[slot] = 0
            plane.payload_bytes[slot] = 0
            plane.levels[slot] = 0
            plane.active_in[slot] = 0
            plane.relay_rows[slot] = []
            plane.parent_rows[slot] = []
            plane.states[slot] = None
            plane.maint_src[slot] = None
            plane.maint_meta[slot] = None
            plane.maint_cand[slot] = None
            plane.maint_targets[slot] = None
            if plane.matrix is not None:
                plane.matrix.clear_row(slot)
            for row in plane.rows:
                row[slot] = _UNSEEN
        self._free.append(slot)

    def install_rows(self, ids, topo) -> None:
        """Bulk-build the neighbor rows from CSR adjacency arrays.

        ``topo`` is a :class:`repro.experiments.bootstrap.CSRTopology`
        over ``ids``; row order matches what ``install_overlay``'s
        ``neighbor_up`` notifications would have accumulated — set
        :attr:`bulk_rows` around the view installation so that work is
        skipped rather than redone."""
        offsets = topo.offsets
        neighbors = topo.neighbors
        rows = self.neighbor_rows
        slot_of = self.slot_of
        for i, nid in enumerate(ids):
            rows[slot_of[nid]] = [
                ids[j] for j in neighbors[offsets[i] : offsets[i + 1]]
            ]

    # -- slot planes ----------------------------------------------------
    def plane(self, stream: StreamId) -> _BrisaPlane:
        """The slot plane for ``stream`` (created on first touch)."""
        idx = self.plane_of.get(stream)
        if idx is None:
            idx = self.plane_of[stream] = len(self.planes)
            self.planes.append(
                _BrisaPlane(stream, self.capacity, self._bloom_bits)
            )
        # Plane objects are stable once created, so the hot-plane memo
        # used by the fan sink can never go stale.
        plane = self.planes[idx]
        self._hot_stream = stream
        self._hot_plane = plane
        return plane

    def _row(self, plane: _BrisaPlane, seq: int) -> bytearray:
        rows = plane.rows
        while len(rows) <= seq:
            rows.append(bytearray(self.capacity))
        return rows[seq]

    def delivered_count(self, slot: int, stream: StreamId) -> int:
        """Distinct sequence numbers delivered at ``slot`` on ``stream``
        (injections included, matching ``StreamState.delivered``)."""
        idx = self.plane_of.get(stream)
        if idx is None:
            return 0
        return sum(1 for row in self.planes[idx].rows if row[slot])

    def slot_duplicates(self, slot: int) -> int:
        """Duplicate receptions at ``slot`` across planes."""
        return sum(plane.duplicates[slot] for plane in self.planes)

    def duplicate_receptions(self, exclude_nodes=()) -> int:
        """Total duplicate receptions across every plane and slot.

        ``exclude_nodes`` drops whole node slots from the count — the
        scale accounting passes the publisher set so the total matches
        the object kernel's per-node ``Metrics.duplicates`` walk, which
        cannot split a source node's counts by stream and therefore
        excludes source nodes outright.
        """
        total = sum(sum(plane.duplicates) for plane in self.planes)
        for node_id in exclude_nodes:
            slot = self.slot_of.get(node_id)
            if slot is not None:
                total -= sum(plane.duplicates[slot] for plane in self.planes)
        return total

    def first_deliveries(self) -> int:
        """Total first receptions across every plane and slot
        (injections excluded: sources count their own publishes in
        ``delivered`` but never as receptions)."""
        total = 0
        for plane in self.planes:
            total += sum(plane.delivered)
            for row in plane.rows:
                total -= sum(1 for cell in row if cell == _INJECTED)
        return total

    # -- delivery hot path ----------------------------------------------
    def on_fan(self, src: NodeId, dsts: list[NodeId], msg: bm.Data, size: int) -> None:
        """Process one whole fused fan-out of stream data.

        Per destination, in order (matching the generic fan loop): slot
        bookkeeping, then either the maintenance-cache fast path — the
        full steady-state transition inlined against the arrays — or
        cold delegation to the unmodified ``BrisaNode.on_brisa_data``.
        """
        stream = msg.stream
        seq = msg.seq
        plane = self._hot_plane if stream == self._hot_stream else self.plane(stream)
        rows = plane.rows
        row = rows[seq] if seq < len(rows) else self._row(plane, seq)
        slot_of = self.slot_of
        states = plane.states
        delivered = plane.delivered
        payload_totals = plane.payload_bytes
        levels = plane.levels
        maint_src = plane.maint_src
        maint_meta = plane.maint_meta
        maint_cand = plane.maint_cand
        maint_targets = plane.maint_targets
        rx_bytes = self.rx_bytes
        mirror = self._mirror
        fan_send = self.network.send_fan_unchecked
        now = self.sim.now
        hops = msg.hops + 1
        mpd = msg.path_delay
        path_delay = mpd + (now - msg.sent_at)
        payload = msg.payload_bytes
        #: The message's cycle metadata, read once for the whole fan
        #: (the instance is shared by every recipient).
        meta = getattr(msg, self.meta_attr)
        is_path = self.meta_attr == "path"
        is_depth = self.meta_attr == "depth"
        buffer_cap = self._buffer_cap
        topup_seq = seq % 8 == 7
        fsize = size + _NODE_ID_BYTES if is_path else size
        for dst in dsts:
            slot = slot_of.get(dst)
            if slot is None:
                # Crashed (slot released) or not kernel-attached: fall
                # back to the generic single-delivery semantics.
                node = self.network.nodes.get(dst)
                if node is None or not node.alive:
                    self.network._drop(src, dst)
                else:
                    self.metrics.account_receive(dst, size)
                    node.handle_message(src, msg)
                continue
            rx_bytes[slot] += size
            if mirror:
                self.metrics.account_receive(dst, size)
            # A non-None cached source implies a materialized state and
            # a pinned candidate (set together at priming time).
            if src == maint_src[slot] and meta is maint_meta[slot] and not row[slot]:
                # Fast path: first copy of ``seq`` from the cached
                # parent with identity-identical metadata — the
                # previous revalidation of exactly these inputs took
                # no mutating branch (any hook would have cleared
                # the cache), so the Fig. 3 / §II-G maintenance step
                # is a proven no-op and only the delivery work runs.
                # (That prior MAINTAIN also stored ``parent_meta[src]
                # = meta``, so re-storing it here would be redundant.)
                state = states[slot]
                cand = maint_cand[slot]
                cand.path_delay = 0.7 * cand.path_delay + 0.3 * mpd
                if mirror:
                    self.metrics.record_delivery(
                        dst, stream, seq, now, src, hops, path_delay, payload
                    )
                row[slot] = _RECEIVED
                delivered[slot] += 1
                payload_totals[slot] += payload
                # note_delivered + rules.wants_gap_recovery, inlined
                # and merged (§II-F): an unseen ``seq`` is never
                # below the contiguous prefix, so it either extends
                # the prefix or sits above a gap.
                sd = state.delivered
                sd.add(seq)
                mc = state.max_contig + 1
                if seq == mc:
                    while mc + 1 in sd:
                        mc += 1
                    state.max_contig = mc
                elif (
                    not msg.recovered
                    and now - state.last_gap_request > self._gap_cooldown
                ):
                    state.last_gap_request = now
                    self.network.send(
                        dst, src, bm.RetransmitRequest(stream, state.max_contig)
                    )
                if buffer_cap:
                    # MessageBuffer.store, inlined: ``seq`` is unseen
                    # here so the duplicate re-order branch cannot
                    # apply, and single inserts overflow by at most
                    # one entry.
                    items = state.buffer._items
                    items[seq] = payload
                    if len(items) > buffer_cap:
                        items.popitem(last=False)
                state.hops = hops
                levels[slot] = hops
                targets = maint_targets[slot]
                if targets is None:
                    targets = [p for p in plane.relay_rows[slot] if p != src]
                    maint_targets[slot] = targets
                if targets:
                    # ``__new__`` + direct slot stores: the keyword
                    # constructor costs ~3x as much per forward.
                    fwd = _Data.__new__(_Data)
                    fwd.stream = stream
                    fwd.seq = seq
                    fwd.payload_bytes = payload
                    if is_path:
                        fwd.path = state.position
                        fwd.depth = None
                        fwd.bloom = None
                        fwd.bloom_bits = 0
                    elif is_depth:
                        fwd.path = None
                        fwd.depth = state.position
                        fwd.bloom = None
                        fwd.bloom_bits = 0
                    else:
                        fwd.path = None
                        fwd.depth = None
                        fwd.bloom = state.position
                        fwd.bloom_bits = self._bloom_bits
                    fwd.hops = hops
                    fwd.path_delay = path_delay
                    fwd.sent_at = now
                    fwd.recovered = False
                    # Arithmetic size: the forward differs from the
                    # incoming copy only in metadata *values* (depth
                    # label, bloom mask) — same byte layout — except
                    # under the path predictor, where the embedded
                    # path grows by exactly this node (the cache
                    # invariant pins position == msg.path + (self,)).
                    fwd._size = fsize
                    fan_send(dst, targets, fwd, fsize)
                if (
                    topup_seq
                    and len(state.parents) < self.num_parents
                    and not state.repairing
                ):
                    # Lazy DAG parent top-up (soft only), as in
                    # on_brisa_data.
                    self.network.nodes[dst]._begin_repair(
                        state, record=False, allow_hard=False
                    )
                continue
            # Cold path: keep the arrays in step, optimistically prime
            # the maintenance cache, then run the full protocol.
            node = self.network.nodes[dst]
            state = states[slot]
            if state is None:
                state = node.stream_state(stream)
            if not state.is_source:
                cell = row[slot]
                if cell == _RECEIVED:
                    plane.duplicates[slot] += 1
                else:
                    row[slot] = _RECEIVED
                    delivered[slot] += 1
                    payload_totals[slot] += payload
                    if meta is not None and src in state.parents:
                        cand = state.candidates.get(src)
                        if cand is not None:
                            # If the revalidation below mutates anything,
                            # a choke-point hook clears this again.
                            maint_src[slot] = src
                            maint_meta[slot] = meta
                            maint_cand[slot] = cand
                            maint_targets[slot] = None
            node.on_brisa_data(src, msg)
            if (
                meta is not None
                and maint_src[slot] is None
                and src in state.parents
                and state.parent_meta.get(src) is meta
            ):
                # Post-delegation priming: the call just adopted (or
                # refreshed from) exactly this (src, meta) — its final
                # state is a fixed point of that revalidation (position
                # was *set from* meta, so re-checking the same filter /
                # label / path is a no-op on every predictor).  Priming
                # here turns the adoption reception itself into the last
                # cold one instead of burning a second warm-up copy.
                cand = state.candidates.get(src)
                if cand is not None:
                    maint_src[slot] = src
                    maint_meta[slot] = meta
                    maint_cand[slot] = cand
                    maint_targets[slot] = None

    # -- per-message path (occupancy models, retransmissions) ------------
    def on_data(self, node: "SlottedBrisaNode", src: NodeId, msg: bm.Data) -> None:
        """Single-delivery entry (no fused fan): array bookkeeping plus
        cold delegation — per-message schedules never dominate, so the
        fast path is reserved for the fan sink."""
        stream = msg.stream
        seq = msg.seq
        plane = self.plane(stream)
        rows = plane.rows
        row = rows[seq] if seq < len(rows) else self._row(plane, seq)
        slot = node.slot
        state = plane.states[slot]
        if state is None:
            state = node.stream_state(stream)
        meta = getattr(msg, self.meta_attr)
        if not state.is_source:
            cell = row[slot]
            if cell == _RECEIVED:
                plane.duplicates[slot] += 1
            else:
                row[slot] = _RECEIVED
                plane.delivered[slot] += 1
                plane.payload_bytes[slot] += msg.payload_bytes
                if meta is not None and src in state.parents:
                    cand = state.candidates.get(src)
                    if cand is not None:
                        plane.maint_src[slot] = src
                        plane.maint_meta[slot] = meta
                        plane.maint_cand[slot] = cand
                        plane.maint_targets[slot] = None
        node.on_brisa_data(src, msg)
        if (
            meta is not None
            and plane.maint_src[slot] is None
            and src in state.parents
            and state.parent_meta.get(src) is meta
        ):
            # Same post-delegation priming as the fan path (see on_fan).
            cand = state.candidates.get(src)
            if cand is not None:
                plane.maint_src[slot] = src
                plane.maint_meta[slot] = meta
                plane.maint_cand[slot] = cand
                plane.maint_targets[slot] = None


class SlottedBrisaNode(BrisaNode):
    """BRISA participant backed by a :class:`SlottedBrisaKernel`.

    Protocol behaviour is the unmodified :class:`BrisaNode` — same rule
    table, same RNG streams (``rng_kind``), so slotted and object runs
    of one seed walk the same simulation.  The overrides keep the
    kernel's flat arrays in sync: ``Data`` receptions short-circuit into
    the kernel, and every structure-bearing mutation hook mirrors its
    effect into the slot's plane cells and invalidates the maintenance
    cache.
    """

    #: Consume the RNG streams of the reference implementation.
    rng_kind = "BrisaNode"

    def __init__(
        self,
        network,
        node_id: NodeId,
        config: BrisaConfig | None = None,
        hpv_config: HyParViewConfig | None = None,
        *,
        kernel: SlottedBrisaKernel,
    ) -> None:
        self.kernel = kernel
        self.slot = kernel.attach(node_id)
        super().__init__(network, node_id, config, hpv_config)
        if self.predictor.name != kernel.meta_attr:
            raise SimulationError(
                f"kernel predictor {kernel.meta_attr!r} != node predictor "
                f"{self.predictor.name!r}: one kernel serves one rule table"
            )

    # -- state wiring ---------------------------------------------------
    def stream_state(self, stream: StreamId) -> StreamState:
        state = self.streams.get(stream)
        if state is None:
            state = super().stream_state(stream)
            kernel = self.kernel
            plane = kernel.plane(stream)
            slot = self.slot
            plane.states[slot] = state
            # Relay row = active view minus out-deactivated; both start
            # as the overlay row (all inbound links active, §II-C).
            plane.relay_rows[slot] = list(kernel.neighbor_rows[slot])
            plane.active_in[slot] = sum(
                1 for active in state.in_active.values() if active
            )
            plane.parent_rows[slot] = []
            plane.levels[slot] = 0
            # Hooks reach the plane through the state they are handed.
            state._plane = plane
        return state

    def delivered_count(self, stream: StreamId = 0) -> int:
        return self.kernel.delivered_count(self.slot, stream)

    def tree_parents(self, stream: StreamId) -> list[NodeId]:
        state = self.streams.get(stream)
        if state is None:
            return []
        return list(state._plane.parent_rows[self.slot])

    # -- data plane -----------------------------------------------------
    def handle_message(self, src: NodeId, msg) -> None:
        # One type probe replaces the ``on_<kind>`` dispatch on the
        # dominant message kind; control traffic takes the regular path.
        if type(msg) is bm.Data:
            if self.alive:
                self.kernel.on_data(self, src, msg)
            return
        super().handle_message(src, msg)

    def inject(self, stream: StreamId, seq: int, payload_bytes: int) -> None:
        state = self.stream_state(stream)
        if not state.is_source:
            self.become_source(stream)
        plane = state._plane
        row = self.kernel._row(plane, seq)
        slot = self.slot
        if row[slot] == _UNSEEN:
            row[slot] = _INJECTED
            plane.delivered[slot] += 1
        super().inject(stream, seq, payload_bytes)

    # -- choke-point hooks: mirror into arrays, invalidate the cache ----
    def _set_position(self, state: StreamState, value) -> None:
        state.position = value
        plane = state._plane
        slot = self.slot
        plane.maint_src[slot] = None
        plane.maint_targets[slot] = None
        matrix = plane.matrix
        if matrix is not None:
            if value is None:
                matrix.clear_row(slot)
            else:
                # Between hard-repair resets Bloom positions only grow
                # (adoption merges and parent folds are unions), so
                # every live update is exactly one row OR.
                matrix.or_row(slot, value)

    def _reset_position(self, state: StreamState) -> None:
        state.reset_position()
        plane = state._plane
        slot = self.slot
        plane.maint_src[slot] = None
        plane.maint_targets[slot] = None
        plane.levels[slot] = 0
        if plane.matrix is not None:
            plane.matrix.clear_row(slot)

    def _set_hops(self, state: StreamState, value) -> None:
        state.hops = value
        state._plane.levels[self.slot] = value if value is not None else 0

    def _set_in_active(self, state: StreamState, peer: NodeId, value: bool) -> None:
        old = state.in_active.get(peer)
        state.in_active[peer] = value
        delta = (1 if value else 0) - (1 if old else 0)
        if delta:
            state._plane.active_in[self.slot] += delta

    def _forget_in_active(self, state: StreamState, peer: NodeId) -> None:
        if state.in_active.pop(peer, None):
            state._plane.active_in[self.slot] -= 1

    def _add_parent_edge(self, state: StreamState, peer: NodeId, cand, meta) -> None:
        plane = state._plane
        slot = self.slot
        if peer not in state.parents:
            plane.parent_rows[slot].append(peer)
        state.parents[peer] = cand
        state.parent_meta[peer] = meta
        plane.maint_src[slot] = None
        plane.maint_targets[slot] = None

    def _drop_parent_edge(self, state: StreamState, peer: NodeId) -> bool:
        dropped = state.drop_parent(peer)
        if dropped:
            plane = state._plane
            slot = self.slot
            plane.parent_rows[slot].remove(peer)
            plane.maint_src[slot] = None
            plane.maint_targets[slot] = None
        return dropped

    def _bump_demote(self, state: StreamState, peer: NodeId, count: int) -> None:
        state.demote_counts[peer] = count
        plane = state._plane
        plane.maint_src[self.slot] = None
        plane.maint_targets[self.slot] = None

    def _mute_out(self, state: StreamState, peer: NodeId) -> None:
        state.out_deactivated.add(peer)
        plane = state._plane
        slot = self.slot
        try:
            plane.relay_rows[slot].remove(peer)
        except ValueError:
            pass  # peer not currently in the active view
        plane.maint_targets[slot] = None
        # No cache invalidation: backflow state is only consulted on the
        # demote branch of the maintenance rule, which a valid cache
        # proves unreachable (check_parent's verdict depends on position
        # and meta alone), and relay targets are read live from the row.

    def _unmute_out(self, state: StreamState, peer: NodeId) -> None:
        state.out_deactivated.discard(peer)
        plane = state._plane
        slot = self.slot
        # Rebuild preserves active-view order for re-opened links and
        # doubles as the membership-change resync (neighbor_up/_down
        # route through here for every stream).  Cache survives for the
        # same reason as in _mute_out.
        plane.relay_rows[slot] = [
            p for p in self.active if p not in state.out_deactivated
        ]
        plane.maint_targets[slot] = None

    # -- O(1) settled probe ---------------------------------------------
    def _check_settled(self, state: StreamState) -> None:
        if state.settled_at is not None or state.first_deact_at is None:
            return
        if state._plane.active_in[self.slot] <= self.config.num_parents:
            state.settled_at = self.sim.now
            self.network.metrics.record_construction(
                self.node_id, state.first_deact_at, state.settled_at
            )

    # -- membership: keep the kernel's neighbor rows mirrored -----------
    def neighbor_up(self, peer: NodeId) -> None:
        kernel = self.kernel
        if not kernel.bulk_rows:
            kernel.neighbor_rows[self.slot].append(peer)
        super().neighbor_up(peer)

    def neighbor_down(self, peer: NodeId, failure: bool) -> None:
        row = self.kernel.neighbor_rows[self.slot]
        try:
            row.remove(peer)
        except ValueError:
            pass
        super().neighbor_down(peer, failure)

    # on_crash: slot release is driven by Network.crash through
    # SlottedBrisaKernel.release_node (the kernel crash-release hook),
    # after the protocol teardown — not from the node.
