"""Cycle predictors: the three candidates §II-D/§II-G weigh against each other.

A predictor answers one question: *may neighbour ``q`` (whose last message
carried metadata ``meta``) serve as a parent of node ``n`` without risking
a cycle?*  Three implementations:

- :class:`PathEmbeddingPredictor` — exact, used for trees.  Messages carry
  the identifiers on the path from the source; a candidate is eligible iff
  the node does not appear in its path.  Zero false positives/negatives;
  metadata grows with tree height (≈ ``log_b N`` ids).
- :class:`DepthLabelPredictor` — approximate, used for DAGs.  Messages
  carry a single integer depth; eligible iff the candidate sits strictly
  above (smaller depth).  May reject causally-unrelated candidates (false
  negatives, Fig. 5) but can never create a cycle.
- :class:`BloomFilterPredictor` — the probabilistic alternative the paper
  argues *against* (§II-D cost comparison); implemented for the ablation
  bench.  Messages carry a Bloom filter of the candidate's ancestors;
  false positives of the filter translate into false-negative parent
  rejections.

``position`` is the node's own standing in the structure (its path /
depth / filter); ``meta`` is what arrives inside a message.  For every
predictor the source's position is well-defined and a ``None`` position
means "fresh node, anything is eligible" (hard repair resets to it).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Optional

from repro.config import BrisaConfig
from repro.ids import NodeId
from repro.sim.rng import derive_seed

#: Verdicts of :meth:`CyclePredictor.check_parent`.
PARENT_OK = "ok"
PARENT_DEMOTE = "demote"  # depth mode: move self below the parent
PARENT_CYCLE = "cycle"  # exact modes: drop this parent, reselect


class CyclePredictor(ABC):
    """Strategy object for cycle-free parent eligibility."""

    name: str = ""

    @abstractmethod
    def source_position(self, node_id: NodeId) -> Any:
        """Initial position of the stream source."""

    @abstractmethod
    def adopt(self, node_id: NodeId, meta: Any) -> Any:
        """Own position after adopting a parent whose message carried
        ``meta``."""

    @abstractmethod
    def eligible(self, node_id: NodeId, position: Any, meta: Any) -> bool:
        """May the sender of ``meta`` become a parent of ``node_id``
        (whose own position is ``position``; ``None`` = fresh)?"""

    @abstractmethod
    def check_parent(self, node_id: NodeId, position: Any, meta: Any) -> str:
        """Re-validate an *existing* parent from a fresh ``meta``:
        ``ok``, ``demote`` (depth bump) or ``cycle`` (drop parent)."""

    def message_fields(self, position: Any) -> dict:
        """Keyword fields to place on an outgoing :class:`Data` message."""
        raise NotImplementedError


class PathEmbeddingPredictor(CyclePredictor):
    """Exact prediction through embedded source paths (§II-D)."""

    name = "path"

    def source_position(self, node_id: NodeId) -> tuple[NodeId, ...]:
        return (node_id,)

    def adopt(self, node_id: NodeId, meta: tuple[NodeId, ...]) -> tuple[NodeId, ...]:
        return tuple(meta) + (node_id,)

    def eligible(self, node_id: NodeId, position, meta) -> bool:
        return meta is not None and node_id not in meta

    def check_parent(self, node_id: NodeId, position, meta) -> str:
        return PARENT_CYCLE if node_id in meta else PARENT_OK

    def message_fields(self, position) -> dict:
        return {"path": position}


class DepthLabelPredictor(CyclePredictor):
    """Approximate prediction through depth labels (§II-G)."""

    name = "depth"

    def source_position(self, node_id: NodeId) -> int:
        return 0

    def adopt(self, node_id: NodeId, meta: int) -> int:
        return int(meta) + 1

    def eligible(self, node_id: NodeId, position, meta) -> bool:
        if meta is None:
            return False
        if position is None:
            return True
        # §II-G: "N can select parents from nodes at any depth not greater
        # than i".  Adopting an equal-depth parent moves N down to depth
        # i+1 (handled by adopt() + the demotion propagation), restoring
        # the strict parent-above-child invariant.
        return meta <= position

    def check_parent(self, node_id: NodeId, position, meta) -> str:
        # A parent that moved to our depth (or below) pushes us down — the
        # "N moves to depth i+1 and updates its children" rule of §II-G.
        if position is not None and meta >= position:
            return PARENT_DEMOTE
        return PARENT_OK

    def message_fields(self, position) -> dict:
        return {"depth": position}


class BloomFilterPredictor(CyclePredictor):
    """Probabilistic ancestor sets via Bloom filters (comparison baseline).

    The filter is an ``m``-bit integer mask; each node sets ``k``
    hash-derived bits.  A candidate is eligible iff the node's bits are
    not all present in the candidate's filter — false positives of the
    filter therefore *reject valid parents* (safe but wasteful), never
    admit cycles.
    """

    name = "bloom"

    def __init__(self, bits: int = 1024, hashes: int = 4) -> None:
        if bits <= 0 or hashes <= 0:
            raise ValueError("bits and hashes must be positive")
        self.bits = bits
        self.hashes = hashes

    def _node_mask(self, node_id: NodeId) -> int:
        mask = 0
        for i in range(self.hashes):
            bit = derive_seed(0, "bloom", node_id, i) % self.bits
            mask |= 1 << bit
        return mask

    def contains(self, filter_mask: int, node_id: NodeId) -> bool:
        bits = self._node_mask(node_id)
        return (filter_mask & bits) == bits

    def source_position(self, node_id: NodeId) -> int:
        return self._node_mask(node_id)

    def adopt(self, node_id: NodeId, meta: int) -> int:
        return int(meta) | self._node_mask(node_id)

    def eligible(self, node_id: NodeId, position, meta) -> bool:
        return meta is not None and not self.contains(meta, node_id)

    def check_parent(self, node_id: NodeId, position, meta) -> str:
        return PARENT_CYCLE if self.contains(meta, node_id) else PARENT_OK

    def message_fields(self, position) -> dict:
        return {"bloom": position, "bloom_bits": self.bits}


def make_predictor(config: BrisaConfig) -> CyclePredictor:
    """Build the predictor selected by a :class:`BrisaConfig`."""
    if config.cycle_predictor == "path":
        return PathEmbeddingPredictor()
    if config.cycle_predictor == "depth":
        return DepthLabelPredictor()
    if config.cycle_predictor == "bloom":
        return BloomFilterPredictor(config.bloom_bits, config.bloom_hashes)
    raise ValueError(f"unknown cycle predictor {config.cycle_predictor!r}")


def extract_meta(msg) -> Any:
    """Pull whichever metadata field a message carries (path/depth/bloom)."""
    if getattr(msg, "path", None) is not None:
        return msg.path
    if getattr(msg, "depth", None) is not None:
        return msg.depth
    return getattr(msg, "bloom", None)
