"""ASCII rendering of experiment results, paper-style.

Every bench prints through these helpers so the rows look like the
figures/tables they reproduce: CDF summaries for the CDF figures,
percentile stacks for Figs. 10–11, and side-by-side our-vs-paper tables.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Optional, Sequence

from repro.metrics.stats import CDF


def table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Plain fixed-width table."""
    str_rows = [[_fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "  "
    out = [sep.join(h.ljust(w) for h, w in zip(headers, widths))]
    out.append(sep.join("-" * w for w in widths))
    for row in str_rows:
        out.append(sep.join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(out)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 100:
            return f"{value:.1f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.4f}"
    return str(value)


def cdf_rows(series: Mapping[str, CDF]) -> str:
    """One row per series: the summary stats a CDF plot would show."""
    headers = ["series", "n", "min", "p25", "median", "p75", "p90", "max", "mean"]
    rows = []
    for label, cdf in series.items():
        s = cdf.summary()
        if s.get("n", 0) == 0:
            rows.append([label, 0, "-", "-", "-", "-", "-", "-", "-"])
        else:
            rows.append(
                [
                    label,
                    s["n"],
                    s["min"],
                    s["p25"],
                    s["median"],
                    s["p75"],
                    s["p90"],
                    s["max"],
                    s["mean"],
                ]
            )
    return table(headers, rows)


def percentile_rows(
    data: Mapping[str, Mapping[int, float]], unit: str = "KB/s"
) -> str:
    """Figs. 10–11 style: one row per configuration, one column per
    percentile of the stacked bars."""
    percentiles = sorted({p for d in data.values() for p in d})
    headers = ["configuration"] + [f"p{p} ({unit})" for p in percentiles]
    rows = [
        [label] + [d.get(p, 0.0) for p in percentiles] for label, d in data.items()
    ]
    return table(headers, rows)


def comparison_rows(
    ours: Mapping[str, float],
    paper: Mapping[str, float],
    *,
    label: str = "metric",
    unit: str = "",
) -> str:
    """Side-by-side our-measured vs paper-published values."""
    headers = [label, f"ours {unit}".strip(), f"paper {unit}".strip(), "ratio"]
    rows = []
    for key in ours:
        p = paper.get(key)
        ratio = (ours[key] / p) if p else float("nan")
        rows.append([key, ours[key], p if p is not None else "-", ratio])
    return table(headers, rows)


def banner(title: str) -> str:
    line = "=" * max(60, len(title) + 4)
    return f"\n{line}\n  {title}\n{line}"


def ascii_cdf(
    cdf: CDF, *, width: int = 50, height: int = 10, label: str = ""
) -> str:
    """Tiny ASCII CDF plot for terminal inspection."""
    if cdf.empty:
        return f"{label}: (empty)"
    lo, hi = cdf.min, cdf.max
    span = (hi - lo) or 1.0
    lines = []
    for row in range(height, 0, -1):
        frac = row / height
        cells = []
        for col in range(width):
            x = lo + span * col / (width - 1)
            cells.append("#" if cdf.fraction_at_most(x) >= frac else " ")
        lines.append(f"{frac * 100:5.0f}% |" + "".join(cells))
    lines.append(" " * 7 + "+" + "-" * width)
    lines.append(f"{'':7}{lo:<12.4g}{'':{max(0, width - 24)}}{hi:>12.4g}")
    if label:
        lines.insert(0, label)
    return "\n".join(lines)
