"""Shared multi-stream scale harness (DESIGN.md §10).

Every scale scenario has the same spine: build a stack, mark the
dissemination phase, schedule the injection window, drain the heap while
timing the loop, then account deliveries.  PR 1–4 grew two copies of
that spine (``scale_flood`` / ``scale_brisa``); this module extracts it
once and generalizes the workload from one lonely publisher to ``K``
concurrent sources — the paper's §IV *Multiple Trees* claim, and the
regime the intensive-dissemination literature (D'Angelo & Ferretti;
Moreno et al.) treats as the workload that separates efficient
protocols from flooding.

Pieces, in stack order:

- :class:`RunSpec` — one declarative scale-run request (stack + workload
  + structure knobs), validated in one place and consumed by both stack
  entry points through :func:`repro.experiments.scenarios.run_spec`;
  the CLI's ``repro scale`` and ``repro live`` both build one instead of
  duplicating kwarg plumbing;
- :func:`spread_sources` — K publishers spread evenly over a population;
- :class:`ScaleRunner` — phase mark + per-stream injection windows +
  timed drain, returning engine telemetry (:class:`DriveStats`);
- :func:`flood_stream_outcomes` / :func:`brisa_stream_outcomes` — the
  per-stream delivery accounting of the two stacks: both walk per-node
  delivered counts (the one book every kernel keeps at scale, correct
  under churn); BRISA adds the per-stream §II-B structure invariants;
- :func:`aggregate_outcomes` / :func:`outcomes_summary` — the roll-up
  and the report block both stacks print;
- :func:`merge_json` — the merge-write used for every BENCH/JSON
  artifact (CLI ``--json`` and the benchmark suite share it).
"""

from __future__ import annotations

import json
import time
from dataclasses import asdict, dataclass
from typing import Optional, Sequence

from repro.core.structure import extract_structure, is_complete_structure
from repro.ids import NodeId
from repro.sim.engine import Simulator
from repro.sim.monitor import DISSEMINATION


@dataclass(frozen=True)
class RunSpec:
    """One scale-run request, stack-agnostic until dispatch.

    Collapses the kwarg sprawl the two ``run_scale_*`` entry points had
    grown (kernel/streams/churn/mode/bootstrap/size) into a single
    validated value that the CLI, the live runner and library callers
    all share.  ``None`` means "stack default" for every optional knob,
    so a spec never has to know which stack it will be dispatched to
    until :meth:`validate` / :func:`~repro.experiments.scenarios.run_spec`.

    Validation mirrors the CLI's historic fail-fast checks: BRISA-only
    knobs (``mode``, ``bootstrap``) are rejected on the flood stack and
    the flood-only knob (``churn_percent``) on the BRISA stack, so a
    forgotten ``--stack brisa`` cannot silently benchmark the wrong
    stack while ignoring what the user asked for.
    """

    stack: str = "flood"
    #: Scale-rung name (:func:`repro.experiments.scale.get_scale`).
    size: str = "large"
    #: Population override; ``None`` uses the rung's ``cluster_nodes``.
    nodes: Optional[int] = None
    messages: int = 20
    rate: float = 20.0
    payload_bytes: int = 1024
    seed: int = 1
    streams: int = 1
    #: ``None`` -> object kernel.
    kernel: Optional[str] = None
    #: ``None`` -> stack default (5 for flood, settled-ramp for brisa).
    degree: Optional[int] = None
    #: BRISA only: ``tree`` (default) or ``dag``.
    mode: Optional[str] = None
    #: BRISA only: ``synthesized`` (default) | ``simulated`` | checkpoint path.
    bootstrap: Optional[str] = None
    #: Flood only: percentage of the population churned during the stream.
    churn_percent: Optional[float] = None
    #: Overlay topology class (``uniform`` | ``powerlaw`` | ``smallworld``).
    topology: str = "uniform"
    #: Per-link loss rate applied by the delivery layer (percent).
    loss_percent: float = 0.0

    def validate(self) -> None:
        if self.stack not in ("flood", "brisa", "pull"):
            raise ValueError(
                f"unknown stack {self.stack!r}; known: brisa, flood, pull"
            )
        if self.stack != "brisa":
            # A forgotten stack='brisa' must not silently benchmark the
            # flood stack while ignoring the BRISA-only knobs that were
            # set.  Messages are flag-phrased: the CLI prints them as-is.
            for knob, value in (("--mode", self.mode), ("--bootstrap", self.bootstrap)):
                if value is not None:
                    raise ValueError(
                        f"{knob} applies to the brisa stack only (add --stack brisa)"
                    )
        elif self.churn_percent is not None:
            raise ValueError(
                "--churn applies to the flood stack only "
                "(BRISA churn runs through the repair scenarios)"
            )
        if self.stack == "pull":
            if self.churn_percent is not None:
                raise ValueError("--churn applies to the flood stack only")
            if self.kernel not in (None, "object"):
                raise ValueError(
                    "the pull stack runs on the object kernel only "
                    "(recovery is timer-driven, off the fan-out hot path)"
                )
        from repro.experiments.bootstrap import TOPOLOGY_BUILDERS

        if self.topology not in TOPOLOGY_BUILDERS:
            known = ", ".join(sorted(TOPOLOGY_BUILDERS))
            raise ValueError(
                f"unknown topology {self.topology!r}; known: {known}"
            )
        if not 0.0 <= self.loss_percent < 100.0:
            raise ValueError("--loss must be in [0, 100)")
        if self.nodes is not None and self.nodes < 1:
            raise ValueError("nodes must be >= 1")
        validate_workload(self.messages, self.rate, self.streams, self.nodes)

    def population(self, scale) -> int:
        """Resolve the population against a :class:`~repro.experiments.scale.Scale`."""
        return self.nodes if self.nodes is not None else scale.cluster_nodes


@dataclass
class StreamOutcome:
    """Delivery (and, for BRISA, structure) outcome of one stream."""

    stream: int
    source: NodeId
    #: Audience size the fraction is measured over (survivors under churn).
    receivers: int
    #: First-time receptions of this stream across the audience.
    deliveries: int
    delivered_fraction: float
    #: §II-B invariant for structured stacks; None for flood.
    structure_complete: Optional[bool] = None
    structure_reason: str = ""

    def to_dict(self) -> dict:
        return asdict(self)


@dataclass
class DriveStats:
    """Engine telemetry of one drained injection window."""

    start: float
    sim_time: float
    wall_time: float
    events: int


def validate_workload(
    messages: int, rate: float, streams: int = 1, population: Optional[int] = None
) -> None:
    """Fail-fast workload validation, shared by both stacks' entry
    points so degenerate input is rejected *before* the (potentially
    minutes-long at xxl) overlay build.  :class:`ScaleRunner` re-checks
    at construction for library callers that skip the entry points."""
    if messages < 1:
        raise ValueError("need at least one message to disseminate")
    if rate <= 0:
        raise ValueError("rate must be positive")
    if streams < 1:
        raise ValueError("streams must be >= 1")
    if population is not None and streams > population:
        raise ValueError(f"cannot spread {streams} sources over {population} nodes")


def spread_sources(nodes: Sequence, streams: int) -> list:
    """Pick ``streams`` publishers spread evenly over ``nodes``.

    Stream ``i``'s source is ``nodes[i * n // streams]`` — deterministic,
    collision-free for ``streams <= n``, and spanning the population so
    the emerged trees root in different overlay neighbourhoods.
    """
    if streams < 1:
        raise ValueError("streams must be >= 1")
    n = len(nodes)
    if streams > n:
        raise ValueError(f"cannot spread {streams} sources over {n} nodes")
    return [nodes[(i * n) // streams] for i in range(streams)]


class ScaleRunner:
    """One multi-stream injection window over an already-built stack.

    The runner owns the shared spine only — phase marking, the K
    injection schedules (stream ``i`` is driven by ``sources[i]`` with
    ``stream_id=i``), the timed drain and the closing keep-alive
    accounting.  Stack construction and result assembly stay with the
    callers, which is what makes one runner serve both stacks.
    """

    def __init__(
        self,
        sim: Simulator,
        network,
        sources: Sequence,
        *,
        messages: int,
        rate: float,
        payload_bytes: int,
    ) -> None:
        validate_workload(messages, rate)
        self.sim = sim
        self.network = network
        self.sources = list(sources)
        self.messages = messages
        self.rate = rate
        self.payload_bytes = payload_bytes

    def schedule(self) -> float:
        """Mark the dissemination phase and schedule every stream's
        injection window (all streams share the window: sequence ``s``
        of every stream goes out at ``start + s/rate``).  Returns the
        window start."""
        sim = self.sim
        start = sim.now
        self.network.metrics.set_phase(DISSEMINATION, start)
        rate = self.rate
        payload = self.payload_bytes
        for stream_id, source in enumerate(self.sources):
            if hasattr(source, "become_source"):
                source.become_source(stream_id)
            for seq in range(self.messages):
                sim.call_at(start + seq / rate, source.inject, stream_id, seq, payload)
        return start

    def drain(self, start: float) -> DriveStats:
        """Run the heap to idle, timing the loop, then close the phase
        and account keep-alives over the drained window."""
        sim = self.sim
        events_before = sim.events_processed
        t0 = time.perf_counter()
        sim.run_until_idle()
        wall = max(time.perf_counter() - t0, 1e-9)
        span = max(sim.now - start, 1e-9)
        self.network.metrics.close(sim.now)
        self.network.account_keepalives(DISSEMINATION, span)
        return DriveStats(
            start=start,
            sim_time=span,
            wall_time=wall,
            events=sim.events_processed - events_before,
        )

    def run(self) -> DriveStats:
        """Schedule + drain in one call (the common case)."""
        return self.drain(self.schedule())


# ----------------------------------------------------------------------
# Per-stream delivery accounting
# ----------------------------------------------------------------------
def flood_stream_outcomes(
    sources: Sequence, alive_nodes: Sequence, messages: int
) -> list[StreamOutcome]:
    """Flood accounting: walk per-node delivered counts.

    Node state is the one book both flood kernels keep at scale
    (``record_deliveries=False`` leaves Metrics without records, and the
    slotted planes answer ``delivered_count`` directly), and restricting
    ``alive_nodes`` to survivors makes the same walk correct under
    churn.  Each stream's audience is every live node except its own
    source — concurrent publishers are subscribers of each other.
    """
    outcomes = []
    for stream_id, source in enumerate(sources):
        receivers = [node for node in alive_nodes if node is not source]
        deliveries = sum(node.delivered_count(stream_id) for node in receivers)
        expected = len(receivers) * messages
        outcomes.append(
            StreamOutcome(
                stream=stream_id,
                source=source.node_id,
                receivers=len(receivers),
                deliveries=deliveries,
                delivered_fraction=deliveries / expected if expected else 1.0,
            )
        )
    return outcomes


def brisa_stream_outcomes(
    sources: Sequence,
    alive_nodes: Sequence,
    messages: int,
) -> list[StreamOutcome]:
    """BRISA accounting: per-node delivered counts + §II-B structure.

    Delivery counts walk ``node.delivered_count(stream)`` — answered by
    ``StreamState.delivered`` on the object kernel and by the slot-plane
    seen-rows on the slotted one, so the accounting is representation-
    independent (Metrics shards are not populated at scale).  Every
    stream must also have emerged a complete, acyclic structure over the
    live population; :func:`~repro.core.structure.extract_structure`
    reads whichever tree representation the node carries via
    ``tree_parents``.
    """
    alive_ids = {node.node_id for node in alive_nodes}
    outcomes = []
    for stream_id, source in enumerate(sources):
        receivers = [node for node in alive_nodes if node is not source]
        deliveries = sum(node.delivered_count(stream_id) for node in receivers)
        expected = len(receivers) * messages
        graph = extract_structure(alive_nodes, stream_id)
        complete, reason = is_complete_structure(graph, source.node_id, alive_ids)
        outcomes.append(
            StreamOutcome(
                stream=stream_id,
                source=source.node_id,
                receivers=len(receivers),
                deliveries=deliveries,
                delivered_fraction=deliveries / expected if expected else 1.0,
                structure_complete=complete,
                structure_reason=reason,
            )
        )
    return outcomes


def aggregate_outcomes(outcomes: Sequence[StreamOutcome], messages: int) -> tuple[int, float]:
    """Total deliveries and the aggregate delivered fraction over every
    (stream, sequence, receiver) pair."""
    total = sum(o.deliveries for o in outcomes)
    expected = sum(o.receivers for o in outcomes) * messages
    return total, (total / expected if expected else 1.0)


def outcomes_summary(outcomes: Sequence, indent: str = "") -> str:
    """The per-stream report block (printed when K > 1); both stacks'
    result summaries render through it.  Accepts :class:`StreamOutcome`
    objects or their ``to_dict`` rows (results store the latter)."""
    lines = []
    for o in outcomes:
        row = o if isinstance(o, dict) else o.to_dict()
        line = (
            f"{indent}stream {row['stream']} (source {row['source']}): "
            f"{row['delivered_fraction'] * 100:.2f}% to "
            f"{row['receivers']:,} receivers"
        )
        if row.get("structure_complete") is not None:
            line += (
                "   structure: "
                + (
                    "complete/acyclic"
                    if row["structure_complete"]
                    else row["structure_reason"]
                )
            )
        lines.append(line)
    return "\n".join(lines)


# ----------------------------------------------------------------------
# JSON merge-write
# ----------------------------------------------------------------------
def merge_json(path, updates: dict) -> dict:
    """Merge ``updates`` into a JSON artifact, preserving entries written
    by other runs — e.g. the xxl benchmarks (nightly CI) and the
    default-tier benchmarks update disjoint keys of one BENCH file.

    A corrupt or non-object existing file is replaced rather than
    raised on: these are regenerable artifacts, and a truncated file
    from an interrupted run must not cost the finished run its results.
    """
    import pathlib

    path = pathlib.Path(path)
    data: dict = {}
    if path.exists():
        try:
            loaded = json.loads(path.read_text())
        except (json.JSONDecodeError, OSError):
            loaded = None
        if isinstance(loaded, dict):
            data = loaded
    data.update(updates)
    path.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
    return data
