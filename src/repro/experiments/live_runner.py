"""Multi-process live harness: BRISA over real UDP sockets (DESIGN.md §13).

Process model — one synchronous coordinator (this process) plus N worker
processes, each running one asyncio event loop hosting M nodes on one
UDP socket:

1. The coordinator synthesizes the overlay **checkpoint** (same
   ``derive(seed, "synth-overlay")`` draws as the simulator's
   ``bootstrap="synthesized"`` path — or an existing PR 2/3 checkpoint
   file is used as-is), binds a TCP control socket, and spawns the
   workers.
2. Each worker binds its UDP socket, reports ``hello`` with the port,
   and receives its ``config``: run seed, shared clock epoch, the full
   node->address table, and the active/passive views of the nodes it
   hosts.  Nodes are spawned with timers unarmed (static overlay — the
   same regime as the simulated scale runs).
3. On ``go``, source-hosting workers schedule the K injections; the
   coordinator polls ``status`` (per-worker rx/tx counters) and declares
   quiescence when all injections are done and the global counters hold
   still across consecutive polls.
4. ``report`` collects per-node delivery counts, duplicates, and tree
   parents; the coordinator assembles the global structure, checks
   §II-B completeness, and (by default) cross-checks delivery fraction
   and completeness against a same-seed simulated run restored from the
   *same checkpoint file* under ``ConstantLatency``.

Control protocol: one JSON object per line, both directions.  Everything
a worker knows arrives through it — workers import no experiment state.
"""

from __future__ import annotations

import json
import multiprocessing
import pathlib
import socket
import tempfile
import time
from dataclasses import dataclass, field
from typing import Optional

import networkx as nx

from repro.config import BrisaConfig, HyParViewConfig
from repro.core.structure import is_complete_structure
from repro.errors import SimulationError
from repro.experiments import bootstrap as bootstrap_mod
from repro.ids import NodeId
from repro.sim.rng import derive

#: Default bind/connect host for the control socket and the node address
#: table.  Overridable per run via ``LiveSpec.control_host`` (CLI
#: ``--control-host``) so coordinator and workers can sit on different
#: hosts — the address table and control protocol already carry
#: host:port everywhere.
CONTROL_HOST = "127.0.0.1"

#: Poll cadence of the coordinator's quiescence loop (seconds).
POLL_PERIOD = 0.25
#: Consecutive unchanged polls (with injections done) declaring the run
#: drained.  Two periods cover any in-flight loopback packet many times
#: over.
QUIET_POLLS = 2


# ----------------------------------------------------------------------
# Spec / outcome
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class LiveSpec:
    """One live run: cluster shape + workload + cross-check toggle."""

    nodes: int = 64
    workers: int = 2
    messages: int = 10
    streams: int = 1
    rate: float = 20.0
    payload_bytes: int = 256
    seed: int = 1
    mode: str = "tree"
    timeout: float = 60.0
    #: Existing overlay checkpoint to restore; None synthesizes one.
    checkpoint: "str | None" = None
    cross_check: bool = True
    #: Host the coordinator binds its control socket on (and advertises
    #: in the node address table).  The localhost default keeps the
    #: single-machine smoke unchanged; a routable address lets workers
    #: run on other hosts.
    control_host: str = CONTROL_HOST

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError("need at least one worker process")
        if not self.control_host:
            raise ValueError("control_host must be a non-empty host/address")
        if self.nodes < max(3, self.workers):
            raise ValueError("need >= 3 nodes and >= 1 node per worker")
        if self.streams < 1 or self.messages < 1:
            raise ValueError("need >= 1 stream and >= 1 message")


@dataclass
class StreamReport:
    """Per-stream outcome assembled from worker reports."""

    stream: int
    source: NodeId
    delivered: int
    expected: int
    structure_ok: bool
    structure_reason: str

    @property
    def delivered_fraction(self) -> float:
        return self.delivered / self.expected if self.expected else 1.0


@dataclass
class LiveOutcome:
    """Everything the live smoke asserts on (and the JSON artifact)."""

    spec: LiveSpec
    streams: list[StreamReport]
    duplicates: int
    rx_packets: int
    tx_packets: int
    rx_errors: int
    elapsed: float
    clean_shutdown: bool
    workers: int
    checkpoint_path: str
    #: Same-seed simulated leg: stream -> (delivered_fraction, structure_ok).
    sim_leg: "dict[int, tuple[float, bool]] | None" = None
    warnings: list = field(default_factory=list)

    @property
    def delivered_fraction(self) -> float:
        total = sum(s.delivered for s in self.streams)
        expected = sum(s.expected for s in self.streams)
        return total / expected if expected else 1.0

    @property
    def all_structures_ok(self) -> bool:
        return all(s.structure_ok for s in self.streams)

    @property
    def cross_check_ok(self) -> "bool | None":
        """Do the live and simulated legs agree (None: no sim leg)?"""
        if self.sim_leg is None:
            return None
        for s in self.streams:
            frac, ok = self.sim_leg[s.stream]
            if abs(frac - s.delivered_fraction) > 1e-9 or ok != s.structure_ok:
                return False
        return True

    def to_json(self) -> dict:
        return {
            "harness": "live-udp",
            "nodes": self.spec.nodes,
            "workers": self.workers,
            "streams": [
                {
                    "stream": s.stream,
                    "source": s.source,
                    "delivered": s.delivered,
                    "expected": s.expected,
                    "delivered_fraction": s.delivered_fraction,
                    "structure_ok": s.structure_ok,
                    "structure_reason": s.structure_reason,
                }
                for s in self.streams
            ],
            "delivered_fraction": self.delivered_fraction,
            "duplicates": self.duplicates,
            "rx_packets": self.rx_packets,
            "tx_packets": self.tx_packets,
            "rx_errors": self.rx_errors,
            "elapsed_seconds": self.elapsed,
            "clean_shutdown": self.clean_shutdown,
            "seed": self.spec.seed,
            "messages": self.spec.messages,
            "payload_bytes": self.spec.payload_bytes,
            "sim_leg": (
                {
                    str(stream): {"delivered_fraction": frac, "structure_ok": ok}
                    for stream, (frac, ok) in self.sim_leg.items()
                }
                if self.sim_leg is not None
                else None
            ),
            "cross_check_ok": self.cross_check_ok,
            "warnings": self.warnings,
        }

    def summary(self) -> str:
        lines = [
            f"live run: {self.spec.nodes} nodes x {self.workers} workers, "
            f"{len(self.streams)} stream(s) x {self.spec.messages} messages",
            f"delivered: {self.delivered_fraction * 100:.2f}%  "
            f"duplicates: {self.duplicates}  "
            f"udp rx/tx: {self.rx_packets}/{self.tx_packets}",
            f"structures: {'complete/acyclic' if self.all_structures_ok else 'INCOMPLETE'}  "
            f"shutdown: {'clean' if self.clean_shutdown else 'FORCED'}  "
            f"elapsed: {self.elapsed:.1f}s",
        ]
        if self.sim_leg is not None:
            lines.append(
                "cross-check vs same-seed sim: "
                + ("agree" if self.cross_check_ok else "DISAGREE")
            )
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Checkpoint synthesis (no simulator required)
# ----------------------------------------------------------------------
def synthesize_checkpoint(
    n: int,
    path: "str | pathlib.Path",
    *,
    seed: int = 1,
    hpv: Optional[HyParViewConfig] = None,
    degree: Optional[int] = None,
) -> pathlib.Path:
    """Write a ``brisa-overlay/1`` checkpoint for ``n`` nodes (ids 0..n-1).

    Consumes the RNG exactly like ``Testbed.populate(bootstrap=
    "synthesized")`` — ``derive(seed, "synth-overlay")`` driving the
    topology then the passive draws — so a testbed with the same seed
    builds this very overlay.
    """
    hpv = hpv if hpv is not None else HyParViewConfig()
    if degree is None:
        degree = bootstrap_mod.default_degree(hpv)
    rng = derive(seed, "synth-overlay")
    topo = bootstrap_mod.synthesize_topology_arrays(
        n, degree=degree, max_degree=hpv.max_active, rng=rng
    )
    p_off, p_ent = bootstrap_mod.synthesize_passive_arrays(
        n, topo, size=hpv.passive_size, rng=rng
    )
    offsets, neighbors = topo.offsets, topo.neighbors
    payload = {
        "format": bootstrap_mod.CHECKPOINT_FORMAT,
        "n": n,
        "nodes": [
            {
                "id": i,
                "active": list(neighbors[offsets[i] : offsets[i + 1]]),
                "passive": list(p_ent[p_off[i] : p_off[i + 1]]),
            }
            for i in range(n)
        ],
    }
    path = pathlib.Path(path)
    path.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")
    return path


def live_sources(n: int, streams: int) -> list[int]:
    """Stream sources over node ids 0..n-1; same spread rule as
    ``experiments.scale_runner.spread_sources``."""
    return [(i * n) // streams for i in range(streams)]


# ----------------------------------------------------------------------
# Control-socket helpers (JSON lines)
# ----------------------------------------------------------------------
def _send_obj(sock: socket.socket, obj: dict) -> None:
    sock.sendall(json.dumps(obj, separators=(",", ":")).encode() + b"\n")


class _WorkerConn:
    """Coordinator-side view of one worker's control connection."""

    def __init__(self, sock: socket.socket) -> None:
        self.sock = sock
        self._file = sock.makefile("rb")
        self.worker_id: int = -1
        self.udp_port: int = -1

    def send(self, obj: dict) -> None:
        _send_obj(self.sock, obj)

    def recv(self, expect: str, deadline: float) -> dict:
        self.sock.settimeout(max(0.05, deadline - time.monotonic()))
        line = self._file.readline()
        if not line:
            raise SimulationError(f"worker {self.worker_id} closed the control socket")
        obj = json.loads(line)
        if obj.get("type") != expect:
            raise SimulationError(
                f"worker {self.worker_id}: expected {expect!r}, got {obj.get('type')!r}"
            )
        return obj

    def close(self) -> None:
        try:
            self._file.close()
            self.sock.close()
        except OSError:
            pass


def _partition(n: int, workers: int) -> list[range]:
    """Contiguous node-id blocks, one per worker (sizes differ by <= 1)."""
    return [range((w * n) // workers, ((w + 1) * n) // workers) for w in range(workers)]


# ----------------------------------------------------------------------
# Coordinator
# ----------------------------------------------------------------------
def run_live(spec: LiveSpec, *, json_path: "str | None" = None) -> LiveOutcome:
    """Run one live dissemination; returns the assembled outcome.

    Raises :class:`SimulationError` only on harness-level failures (a
    worker dying mid-protocol); workload failures — missed deliveries,
    incomplete structures, a forced shutdown after the timeout — are
    *reported* in the outcome so callers (CLI, smoke test) can decide.
    """
    started = time.monotonic()
    deadline = started + spec.timeout

    # Overlay checkpoint: synthesize unless restoring an existing one.
    if spec.checkpoint is not None:
        checkpoint_path = pathlib.Path(spec.checkpoint)
        checkpoint = bootstrap_mod.load_overlay(checkpoint_path)
        if checkpoint.n != spec.nodes:
            raise SimulationError(
                f"checkpoint holds {checkpoint.n} nodes, spec asks for {spec.nodes}"
            )
    else:
        checkpoint_path = pathlib.Path(tempfile.mkstemp(
            prefix="brisa-live-overlay-", suffix=".json"
        )[1])
        synthesize_checkpoint(spec.nodes, checkpoint_path, seed=spec.seed)
        checkpoint = bootstrap_mod.load_overlay(checkpoint_path)

    sources = live_sources(spec.nodes, spec.streams)
    stream_cfgs = [
        {
            "stream": i,
            "source": src,
            "count": spec.messages,
            "rate": spec.rate,
            "payload": spec.payload_bytes,
        }
        for i, src in enumerate(sources)
    ]

    listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    listener.bind((spec.control_host, 0))
    listener.listen(spec.workers)
    control_port = listener.getsockname()[1]

    # Fork (not spawn): the coordinator is synchronous — no event loop or
    # threads exist yet, so forking is safe — and spawn would re-execute
    # the parent's ``__main__``, which breaks under pytest and ad-hoc
    # drivers.  Workers build their own loop+sockets post-fork.
    try:
        ctx = multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX fallback
        ctx = multiprocessing.get_context("spawn")
    procs = [
        ctx.Process(
            target=_worker_main,
            args=(w, spec.control_host, control_port),
            daemon=True,
            name=f"live-worker-{w}",
        )
        for w in range(spec.workers)
    ]
    for p in procs:
        p.start()

    conns: list[_WorkerConn] = []
    warnings: list[str] = []
    clean = False
    reports: list[dict] = []
    rx = tx = rx_errors = 0
    try:
        listener.settimeout(max(1.0, spec.timeout / 2))
        by_id: dict[int, _WorkerConn] = {}
        for _ in range(spec.workers):
            sock, _addr = listener.accept()
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            conn = _WorkerConn(sock)
            hello = conn.recv("hello", deadline)
            conn.worker_id = int(hello["worker"])
            conn.udp_port = int(hello["udp_port"])
            by_id[conn.worker_id] = conn
        conns = [by_id[w] for w in range(spec.workers)]

        blocks = _partition(spec.nodes, spec.workers)
        addrs = {}
        for w, block in enumerate(blocks):
            for nid in block:
                addrs[str(nid)] = [spec.control_host, conns[w].udp_port]

        epoch = time.monotonic()
        for w, conn in enumerate(conns):
            conn.send(
                {
                    "type": "config",
                    "seed": spec.seed,
                    "epoch": epoch,
                    "mode": spec.mode,
                    "addrs": addrs,
                    "nodes": {
                        str(nid): {
                            "active": list(checkpoint.active[nid]),
                            "passive": list(checkpoint.passive[nid]),
                        }
                        for nid in blocks[w]
                    },
                    "streams": stream_cfgs,
                }
            )
        for conn in conns:
            conn.recv("ready", deadline)
        for conn in conns:
            conn.send({"type": "go"})

        # Quiescence: all injections done + global rx/tx flat across
        # QUIET_POLLS consecutive polls.
        quiet = 0
        last = None
        while True:
            if time.monotonic() >= deadline:
                warnings.append("timeout waiting for quiescence")
                break
            time.sleep(POLL_PERIOD)
            for conn in conns:
                conn.send({"type": "status"})
            stats = [conn.recv("status", deadline) for conn in conns]
            totals = (
                sum(s["rx"] for s in stats),
                sum(s["tx"] for s in stats),
                all(s["inject_done"] for s in stats),
            )
            if totals[2] and last is not None and totals[:2] == last[:2]:
                quiet += 1
                if quiet >= QUIET_POLLS:
                    break
            else:
                quiet = 0
            last = totals

        for conn in conns:
            conn.send({"type": "report"})
        reports = [conn.recv("report", deadline) for conn in conns]
        for conn in conns:
            conn.send({"type": "exit"})
        clean = True
    except (SimulationError, OSError, socket.timeout, json.JSONDecodeError) as exc:
        warnings.append(f"harness failure: {exc}")
    finally:
        listener.close()
        for conn in conns:
            conn.close()
        join_deadline = max(time.monotonic() + 5.0, deadline)
        for p in procs:
            p.join(timeout=max(0.1, join_deadline - time.monotonic()))
            if p.is_alive():
                clean = False
                warnings.append(f"worker {p.name} killed after timeout")
                p.terminate()
                p.join(timeout=5.0)
        if clean:
            clean = all(p.exitcode == 0 for p in procs)

    # ------------------------------------------------------------------
    # Assemble the outcome from worker reports
    # ------------------------------------------------------------------
    delivered: dict[int, dict[int, int]] = {c["stream"]: {} for c in stream_cfgs}
    parents: dict[int, dict[int, list[int]]] = {c["stream"]: {} for c in stream_cfgs}
    duplicates = 0
    for rep in reports:
        rx += rep["rx"]
        tx += rep["tx"]
        rx_errors += rep["rx_errors"]
        duplicates += rep["duplicates"]
        for stream_str, per_node in rep["delivered"].items():
            delivered[int(stream_str)].update(
                {int(k): v for k, v in per_node.items()}
            )
        for stream_str, per_node in rep["parents"].items():
            parents[int(stream_str)].update(
                {int(k): list(v) for k, v in per_node.items()}
            )

    all_ids = set(range(spec.nodes))
    stream_reports = []
    for cfg in stream_cfgs:
        sid, src = cfg["stream"], cfg["source"]
        got = sum(v for nid, v in delivered[sid].items() if nid != src)
        expected = (spec.nodes - 1) * spec.messages
        g = nx.DiGraph()
        g.add_nodes_from(all_ids)
        for child, plist in parents[sid].items():
            for parent in plist:
                g.add_edge(parent, child)
        if reports:
            ok, reason = is_complete_structure(g, src, all_ids)
        else:
            ok, reason = False, "no worker reports collected"
        stream_reports.append(
            StreamReport(
                stream=sid, source=src, delivered=got, expected=expected,
                structure_ok=ok, structure_reason=reason,
            )
        )

    sim_leg = None
    if spec.cross_check:
        sim_leg = run_sim_leg(spec, checkpoint_path)

    outcome = LiveOutcome(
        spec=spec,
        streams=stream_reports,
        duplicates=duplicates,
        rx_packets=rx,
        tx_packets=tx,
        rx_errors=rx_errors,
        elapsed=time.monotonic() - started,
        clean_shutdown=clean,
        workers=spec.workers,
        checkpoint_path=str(checkpoint_path),
        sim_leg=sim_leg,
        warnings=warnings,
    )
    if json_path:
        pathlib.Path(json_path).write_text(
            json.dumps(outcome.to_json(), indent=1, sort_keys=True) + "\n"
        )
    return outcome


# ----------------------------------------------------------------------
# Simulated cross-check leg
# ----------------------------------------------------------------------
def run_sim_leg(
    spec: LiveSpec, checkpoint_path: "str | pathlib.Path"
) -> dict[int, tuple[float, bool]]:
    """Same seed, same checkpointed overlay, same sources/workload — on
    the simulator under ``ConstantLatency``.  Returns per-stream
    (delivered_fraction, structure_ok), computed from the same per-node
    accessors (``delivered_count`` / ``tree_parents``) the live workers
    report through."""
    from repro.core.structure import extract_structure
    from repro.experiments.common import Testbed, brisa_factory
    from repro.sim.latency import ConstantLatency

    bed = Testbed(
        seed=spec.seed,
        latency=ConstantLatency(0.001, seed=spec.seed),
        record_deliveries=False,
    )
    bed.populate(
        spec.nodes,
        brisa_factory(BrisaConfig(mode=spec.mode), HyParViewConfig()),
        bootstrap=str(checkpoint_path),
        defer_timers=True,
    )
    sources = live_sources(spec.nodes, spec.streams)
    for sid, src_id in enumerate(sources):
        node = bed.network.nodes[src_id]
        node.become_source(sid)
        for seq in range(spec.messages):
            bed.sim.schedule(
                seq / spec.rate, node.inject, sid, seq, spec.payload_bytes
            )
    bed.sim.run_until_idle()

    out: dict[int, tuple[float, bool]] = {}
    for sid, src_id in enumerate(sources):
        receivers = [n for n in bed.nodes if n.node_id != src_id]
        got = sum(n.delivered_count(sid) for n in receivers)
        frac = got / (len(receivers) * spec.messages)
        g = extract_structure(bed.nodes, sid)
        ok, _reason = is_complete_structure(
            g, src_id, {n.node_id for n in bed.nodes}
        )
        out[sid] = (frac, ok)
    return out


# ----------------------------------------------------------------------
# Worker process
# ----------------------------------------------------------------------
def _worker_main(worker_id: int, host: str, port: int) -> None:
    """Entry point of one worker process (spawn context)."""
    import asyncio

    asyncio.run(_worker_async(worker_id, host, port))


async def _worker_async(worker_id: int, host: str, port: int) -> None:
    import asyncio

    from repro.core.brisa import BrisaNode
    from repro.runtime.asyncio_backend import AsyncioClock, UdpTransport

    loop = asyncio.get_running_loop()
    clock = AsyncioClock(loop)
    transport = UdpTransport(clock)
    udp_port = await transport.open()

    reader, writer = await asyncio.open_connection(host, port)

    def reply(obj: dict) -> None:
        writer.write(json.dumps(obj, separators=(",", ":")).encode() + b"\n")

    reply({"type": "hello", "worker": worker_id, "udp_port": udp_port})
    await writer.drain()

    streams: list[dict] = []
    injected = 0
    inject_total = 0

    def _inject(node, stream: int, seq: int, payload: int) -> None:
        nonlocal injected
        node.inject(stream, seq, payload)
        injected += 1

    while True:
        line = await reader.readline()
        if not line:
            break
        msg = json.loads(line)
        mtype = msg["type"]

        if mtype == "config":
            clock.configure(seed=msg["seed"], epoch=msg["epoch"])
            transport.set_peers(
                {int(k): (v[0], v[1]) for k, v in msg["addrs"].items()}
            )
            transport.autostart_timers = False  # static overlay, no shuffles
            cfg = BrisaConfig(mode=msg["mode"])
            hpv = HyParViewConfig()
            streams = msg["streams"]
            for nid_str, views in msg["nodes"].items():
                node = transport.spawn(
                    lambda tr, nid: BrisaNode(tr, nid, cfg, hpv), int(nid_str)
                )
                node.install_overlay(
                    list(views["active"]), list(views["passive"])
                )
            reply({"type": "ready"})
            await writer.drain()

        elif mtype == "go":
            for s in streams:
                node = transport.nodes.get(s["source"])
                if node is None:
                    continue  # another worker hosts this source
                node.become_source(s["stream"])
                inject_total += s["count"]
                for seq in range(s["count"]):
                    clock.call_later(
                        seq / s["rate"], _inject, node, s["stream"], seq, s["payload"]
                    )

        elif mtype == "status":
            reply(
                {
                    "type": "status",
                    "rx": transport.rx_packets,
                    "tx": transport.tx_packets,
                    "inject_done": injected >= inject_total,
                }
            )
            await writer.drain()

        elif mtype == "report":
            local_ids = list(transport.nodes)
            dup_counts = transport.metrics.duplicates_per_node(local_ids)
            reply(
                {
                    "type": "report",
                    "rx": transport.rx_packets,
                    "tx": transport.tx_packets,
                    "rx_errors": transport.rx_errors,
                    "duplicates": sum(dup_counts),
                    "delivered": {
                        str(s["stream"]): {
                            str(nid): node.delivered_count(s["stream"])
                            for nid, node in transport.nodes.items()
                        }
                        for s in streams
                    },
                    "parents": {
                        str(s["stream"]): {
                            str(nid): node.tree_parents(s["stream"])
                            for nid, node in transport.nodes.items()
                        }
                        for s in streams
                    },
                }
            )
            await writer.drain()

        elif mtype == "exit":
            break

    transport.close()
    writer.close()
