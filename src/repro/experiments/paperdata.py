"""Digitized values from the paper's evaluation (§III).

Used by the benches and EXPERIMENTS.md for side-by-side comparison.  We
reproduce *shapes* — who wins, by roughly what factor, where crossovers
fall — not the absolute numbers of the authors' 2011 testbed.
"""

from __future__ import annotations

#: Table I — impact of churn (active view 4).  Keys: (nodes, churn %,
#: mode); values: (parents lost/min, orphans/min, % soft, % hard).
TABLE1 = {
    (128, 3.0, "tree"): (2.3, 2.3, 87.0, 13.0),
    (128, 3.0, "dag"): (4.0, 0.2, 92.5, 7.5),
    (128, 5.0, "tree"): (3.4, 3.4, 79.4, 20.6),
    (128, 5.0, "dag"): (7.0, 0.3, 90.0, 10.0),
    (512, 3.0, "tree"): (22.2, 22.2, 88.2, 11.8),
    (512, 3.0, "dag"): (36.8, 2.3, 94.0, 6.0),
    (512, 5.0, "tree"): (22.2, 22.2, 87.7, 12.3),
    (512, 5.0, "dag"): (32.3, 1.7, 94.1, 5.9),
}

#: Table II — dissemination latency, 512 nodes, 500 x 1 KB at 5/s.
#: Values: (latency seconds, overhead vs SimpleTree).
TABLE2 = {
    "SimpleTree": (100.025, 0.00),
    "BRISA": (106.587, 0.06),
    "SimpleGossip": (128.23, 0.28),
    "TAG": (200.476, 1.00),
}

#: Fig. 2 anchors — duplicates per node, 512-node flooding, 500 msgs:
#: "half of the nodes receive more than one duplicate with a view size of
#: 4, while they receive more than 7 duplicates with a view size of 10."
FIG2_MEDIAN_DUPLICATES = {4: 1.0, 10: 7.0}  # lower bounds on the median

#: Fig. 6 anchors — depth distribution, 512 nodes, first-come:
#: larger views -> shallower trees; DAG depth >= tree depth.
FIG6_MAX_DEPTH_RANGE = {("tree", 4): (6, 18), ("tree", 8): (4, 12)}

#: Fig. 9 anchor — "40% of the nodes reduce the routing delays to half"
#: with delay-aware selection vs first-pick; flood is the worst series.
FIG9_DELAY_AWARE_GAIN_FRACTION = 0.4

#: Fig. 12 expected ordering of total bandwidth at 20 KB payloads
#: (SimpleGossip's duplicates dominate at large messages).
FIG12_ORDER_AT_20KB = ["SimpleTree", "BRISA", "TAG", "SimpleGossip"]

#: Fig. 13 shape — construction time: TAG comparable-or-faster than BRISA
#: on the cluster, but much slower on PlanetLab (per-hop connection
#: setups on wide-area RTTs).
FIG13_PLANETLAB_TAG_SLOWDOWN_MIN = 2.0

#: Fig. 14 shape — BRISA hard-repair recovery is about twice as fast as
#: TAG re-insertion under 3% churn at 128 nodes.
FIG14_TAG_OVER_BRISA_MIN = 1.5

#: Table I qualitative invariants used by the benches:
#: - DAG loses parents at a higher rate than the tree,
#: - DAG orphan rate is at least ~5x lower than the tree's,
#: - soft repairs dominate (>= ~75%) everywhere.
TABLE1_SOFT_REPAIR_MIN = 75.0
TABLE1_DAG_ORPHAN_REDUCTION_MIN = 3.0
