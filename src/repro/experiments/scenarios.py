"""One entry point per paper artifact — the per-experiment index.

========  ==========================================  ==========================
Artifact  Entry point                                 Module
========  ==========================================  ==========================
Fig. 2    :func:`fig2_duplicates`                     experiments.structural
Fig. 6/7  :func:`fig6_fig7_structure`                 experiments.structural
Fig. 8    :func:`fig8_tree_shape`                     experiments.structural
Fig. 9    :func:`fig9_routing_delays`                 experiments.network_props
Fig.10/11 :func:`fig10_fig11_bandwidth`               experiments.network_props
Table I   :func:`table1_churn`                        experiments.robustness
Fig. 12   :func:`fig12_bandwidth_comparison`          experiments.comparison
Fig. 13   :func:`fig13_construction`                  experiments.comparison
Table II  :func:`table2_latency`                      experiments.comparison
Fig. 14   :func:`fig14_recovery`                      experiments.robustness
========  ==========================================  ==========================

Every scenario accepts ``scale`` ('fast' default, 'paper' for published
populations — or set ``REPRO_SCALE=paper``).
"""

from repro.experiments.comparison import (
    Fig12Result,
    Fig13Result,
    Table2Result,
    fig12_bandwidth_comparison,
    fig13_construction,
    table2_latency,
)
from repro.experiments.network_props import (
    BandwidthResult,
    Fig9Result,
    fig9_routing_delays,
    fig10_fig11_bandwidth,
)
from repro.experiments.robustness import (
    Fig14Result,
    Table1Result,
    Table1Row,
    fig14_recovery,
    table1_churn,
)
from repro.experiments.scale import (
    FAST,
    LARGE,
    PAPER,
    XL,
    XXL,
    XXXL,
    Scale,
    get_scale,
)
from repro.experiments.scale_brisa import (
    BootstrapComparison,
    BrisaMicrobenchResult,
    ScaleBrisaResult,
    bootstrap_comparison,
    brisa_slotted_microbench,
    run_scale_brisa,
)
from repro.experiments.scale_flood import (
    MicrobenchResult,
    MultistreamMicrobenchResult,
    OccupancyMicrobenchResult,
    ScaleFloodResult,
    SlottedMicrobenchResult,
    VectorizedMicrobenchResult,
    build_static_flood_overlay,
    engine_microbench,
    multistream_microbench,
    occupancy_microbench,
    run_scale_flood,
    slotted_microbench,
    vectorized_microbench,
)
from repro.experiments.scale_runner import (
    ScaleRunner,
    StreamOutcome,
    merge_json,
    spread_sources,
)
from repro.experiments.structural import (
    Fig2Result,
    Fig8Result,
    RelayLoadSpread,
    StructureDistributions,
    fig2_duplicates,
    fig6_fig7_structure,
    fig8_tree_shape,
    relay_load_spread,
)

__all__ = [
    "BandwidthResult",
    "BootstrapComparison",
    "FAST",
    "Fig12Result",
    "Fig13Result",
    "Fig14Result",
    "Fig2Result",
    "Fig8Result",
    "Fig9Result",
    "LARGE",
    "MicrobenchResult",
    "MultistreamMicrobenchResult",
    "OccupancyMicrobenchResult",
    "PAPER",
    "RelayLoadSpread",
    "Scale",
    "ScaleBrisaResult",
    "ScaleFloodResult",
    "ScaleRunner",
    "SlottedMicrobenchResult",
    "StreamOutcome",
    "slotted_microbench",
    "VectorizedMicrobenchResult",
    "vectorized_microbench",
    "XL",
    "XXL",
    "XXXL",
    "StructureDistributions",
    "BrisaMicrobenchResult",
    "bootstrap_comparison",
    "brisa_slotted_microbench",
    "build_static_flood_overlay",
    "engine_microbench",
    "occupancy_microbench",
    "run_scale_brisa",
    "run_scale_flood",
    "Table1Result",
    "Table1Row",
    "Table2Result",
    "fig10_fig11_bandwidth",
    "fig12_bandwidth_comparison",
    "fig13_construction",
    "fig14_recovery",
    "fig2_duplicates",
    "fig6_fig7_structure",
    "fig8_tree_shape",
    "fig9_routing_delays",
    "get_scale",
    "merge_json",
    "multistream_microbench",
    "relay_load_spread",
    "spread_sources",
    "table1_churn",
    "table2_latency",
]
