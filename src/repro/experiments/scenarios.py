"""One entry point per paper artifact — the per-experiment index.

========  ==========================================  ==========================
Artifact  Entry point                                 Module
========  ==========================================  ==========================
Fig. 2    :func:`fig2_duplicates`                     experiments.structural
Fig. 6/7  :func:`fig6_fig7_structure`                 experiments.structural
Fig. 8    :func:`fig8_tree_shape`                     experiments.structural
Fig. 9    :func:`fig9_routing_delays`                 experiments.network_props
Fig.10/11 :func:`fig10_fig11_bandwidth`               experiments.network_props
Table I   :func:`table1_churn`                        experiments.robustness
Fig. 12   :func:`fig12_bandwidth_comparison`          experiments.comparison
Fig. 13   :func:`fig13_construction`                  experiments.comparison
Table II  :func:`table2_latency`                      experiments.comparison
Fig. 14   :func:`fig14_recovery`                      experiments.robustness
========  ==========================================  ==========================

Every scenario accepts ``scale`` ('fast' default, 'paper' for published
populations — or set ``REPRO_SCALE=paper``).
"""

from repro.experiments.comparison import (
    Fig12Result,
    Fig13Result,
    Table2Result,
    fig12_bandwidth_comparison,
    fig13_construction,
    table2_latency,
)
from repro.experiments.network_props import (
    BandwidthResult,
    Fig9Result,
    fig9_routing_delays,
    fig10_fig11_bandwidth,
)
from repro.experiments.robustness import (
    Fig14Result,
    Table1Result,
    Table1Row,
    fig14_recovery,
    table1_churn,
)
from repro.experiments.scale import (
    FAST,
    LARGE,
    PAPER,
    SMALL,
    XL,
    XXL,
    XXXL,
    Scale,
    get_scale,
)
from repro.experiments.scale_brisa import (
    BootstrapComparison,
    BrisaMicrobenchResult,
    ScaleBrisaResult,
    bootstrap_comparison,
    brisa_slotted_microbench,
    run_scale_brisa,
)
from repro.experiments.scale_flood import (
    MicrobenchResult,
    MultistreamMicrobenchResult,
    OccupancyMicrobenchResult,
    ScaleFloodResult,
    SlottedMicrobenchResult,
    VectorizedMicrobenchResult,
    build_static_flood_overlay,
    engine_microbench,
    multistream_microbench,
    occupancy_microbench,
    run_scale_flood,
    slotted_microbench,
    vectorized_microbench,
)
from repro.experiments.scale_pull import (
    build_static_pull_overlay,
    run_scale_pull,
)
from repro.experiments.scale_runner import (
    RunSpec,
    ScaleRunner,
    StreamOutcome,
    merge_json,
    spread_sources,
)
from repro.experiments.structural import (
    Fig2Result,
    Fig8Result,
    RelayLoadSpread,
    StructureDistributions,
    fig2_duplicates,
    fig6_fig7_structure,
    fig8_tree_shape,
    relay_load_spread,
)

def run_spec(spec: RunSpec):
    """Dispatch one :class:`RunSpec` to the matching stack entry point.

    This is the seam that lets the spec live in ``scale_runner`` (which
    neither stack module may import from without a cycle) while still
    being runnable as a value: validate once, resolve the scale rung,
    then call ``run_scale_brisa`` / ``run_scale_flood`` with the spec's
    knobs and the rung's ramp parameters.
    """
    spec.validate()
    scale = get_scale(spec.size)
    nodes = spec.population(scale)
    if spec.stack == "brisa":
        return run_scale_brisa(
            nodes,
            spec.messages,
            mode=spec.mode if spec.mode is not None else "tree",
            degree=spec.degree,
            rate=spec.rate,
            payload_bytes=spec.payload_bytes,
            seed=spec.seed,
            bootstrap=spec.bootstrap if spec.bootstrap is not None else "synthesized",
            join_spacing=scale.join_spacing,
            settle=scale.settle,
            streams=spec.streams,
            kernel=spec.kernel if spec.kernel is not None else "object",
            topology=spec.topology,
            loss_percent=spec.loss_percent,
        )
    if spec.stack == "pull":
        return run_scale_pull(
            nodes,
            spec.messages,
            degree=spec.degree if spec.degree is not None else 5,
            rate=spec.rate,
            payload_bytes=spec.payload_bytes,
            seed=spec.seed,
            streams=spec.streams,
            topology=spec.topology,
            loss_percent=spec.loss_percent,
        )
    return run_scale_flood(
        nodes,
        spec.messages,
        degree=spec.degree if spec.degree is not None else 5,
        rate=spec.rate,
        payload_bytes=spec.payload_bytes,
        seed=spec.seed,
        kernel=spec.kernel if spec.kernel is not None else "object",
        churn_percent=spec.churn_percent if spec.churn_percent is not None else 0.0,
        streams=spec.streams,
        topology=spec.topology,
        loss_percent=spec.loss_percent,
    )


__all__ = [
    "BandwidthResult",
    "BootstrapComparison",
    "FAST",
    "Fig12Result",
    "Fig13Result",
    "Fig14Result",
    "Fig2Result",
    "Fig8Result",
    "Fig9Result",
    "LARGE",
    "MicrobenchResult",
    "MultistreamMicrobenchResult",
    "OccupancyMicrobenchResult",
    "PAPER",
    "RelayLoadSpread",
    "RunSpec",
    "SMALL",
    "Scale",
    "ScaleBrisaResult",
    "ScaleFloodResult",
    "ScaleRunner",
    "SlottedMicrobenchResult",
    "StreamOutcome",
    "slotted_microbench",
    "VectorizedMicrobenchResult",
    "vectorized_microbench",
    "XL",
    "XXL",
    "XXXL",
    "StructureDistributions",
    "BrisaMicrobenchResult",
    "bootstrap_comparison",
    "brisa_slotted_microbench",
    "build_static_flood_overlay",
    "build_static_pull_overlay",
    "engine_microbench",
    "occupancy_microbench",
    "run_scale_brisa",
    "run_scale_flood",
    "run_scale_pull",
    "Table1Result",
    "Table1Row",
    "Table2Result",
    "fig10_fig11_bandwidth",
    "fig12_bandwidth_comparison",
    "fig13_construction",
    "fig14_recovery",
    "fig2_duplicates",
    "fig6_fig7_structure",
    "fig8_tree_shape",
    "fig9_routing_delays",
    "get_scale",
    "merge_json",
    "multistream_microbench",
    "relay_load_spread",
    "run_spec",
    "spread_sources",
    "table1_churn",
    "table2_latency",
]
