"""Structural-property scenarios: Figs. 2, 6, 7 and 8 (§III-A).

All four study the *shape* of what emerges: flooding duplicate counts
(the motivation), then depth/degree distributions and sample tree shapes
of the structures BRISA builds with the first-come strategy.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.config import BrisaConfig, HyParViewConfig, StreamConfig
from repro.core.structure import extract_structure, structure_summary, to_dot
from repro.experiments.common import build_brisa_testbed, build_flood_testbed
from repro.experiments.scale import Scale, get_scale
from repro.metrics.stats import CDF
from repro.metrics.structure_analysis import degree_distribution, depth_distribution


# ----------------------------------------------------------------------
# Fig. 2 — duplicates per node under pure flooding
# ----------------------------------------------------------------------
@dataclass
class Fig2Result:
    """Duplicates-per-node CDF for each active-view size."""

    by_view: dict[int, CDF] = field(default_factory=dict)
    messages: int = 0
    nodes: int = 0

    def median_duplicates(self, view: int) -> float:
        return self.by_view[view].median


def fig2_duplicates(
    scale: Scale | str | None = None,
    *,
    view_sizes: tuple[int, ...] = (4, 6, 8, 10),
    seed: int = 1,
) -> Fig2Result:
    """CDF of duplicate receptions per node over the whole stream, for
    several HyParView view sizes, under plain flooding (Fig. 2)."""
    sc = scale if isinstance(scale, Scale) else get_scale(scale)
    result = Fig2Result(messages=sc.messages, nodes=sc.cluster_nodes)
    for view in view_sizes:
        hpv = HyParViewConfig(active_size=view)
        bed = build_flood_testbed(
            sc.cluster_nodes,
            seed=seed + view,
            hpv_config=hpv,
            join_spacing=sc.join_spacing,
            settle=sc.settle,
            record_deliveries=False,
        )
        source = bed.choose_source()
        run = bed.run_stream(
            source, StreamConfig(count=sc.messages, rate=5.0, payload_bytes=1024)
        )
        result.by_view[view] = CDF.of(float(d) for d in run.duplicates_per_node())
    return result


# ----------------------------------------------------------------------
# Figs. 6 & 7 — depth and degree distributions of emerged structures
# ----------------------------------------------------------------------
#: The four configurations both figures sweep.
STRUCTURE_CONFIGS: tuple[tuple[str, str, int, int], ...] = (
    ("tree, view=4", "tree", 1, 4),
    ("tree, view=8", "tree", 1, 8),
    ("DAG 2 parents, view=4", "dag", 2, 4),
    ("DAG 2 parents, view=8", "dag", 2, 8),
)


@dataclass
class StructureDistributions:
    depth: dict[str, CDF] = field(default_factory=dict)
    degree: dict[str, CDF] = field(default_factory=dict)
    nodes: int = 0


def _emerged_testbed(sc: Scale, mode: str, parents: int, view: int, seed: int):
    cfg = BrisaConfig(
        mode=mode,
        num_parents=parents,
        cycle_predictor=BrisaConfig.default_predictor(mode),
    )
    hpv = HyParViewConfig(active_size=view)
    bed = build_brisa_testbed(
        sc.cluster_nodes,
        seed=seed,
        config=cfg,
        hpv_config=hpv,
        join_spacing=sc.join_spacing,
        settle=sc.settle,
        record_deliveries=False,
    )
    source = bed.choose_source()
    # Build + let the structure stabilize (§III-A: "after building the
    # respective structure and letting it stabilize").
    stream = StreamConfig(count=max(20, sc.messages // 5), rate=5.0, payload_bytes=1024)
    bed.run_stream(source, stream, drain=20.0)
    return bed, source


def fig6_fig7_structure(
    scale: Scale | str | None = None, *, seed: int = 2
) -> StructureDistributions:
    """Depth (Fig. 6) and degree (Fig. 7) CDFs for the four paper
    configurations, measured on stabilized structures."""
    sc = scale if isinstance(scale, Scale) else get_scale(scale)
    out = StructureDistributions(nodes=sc.cluster_nodes)
    for label, mode, parents, view in STRUCTURE_CONFIGS:
        bed, source = _emerged_testbed(sc, mode, parents, view, seed)
        nodes = bed.alive_nodes()
        out.depth[label] = depth_distribution(nodes, source.node_id, mode)
        out.degree[label] = degree_distribution(nodes)
    return out


# ----------------------------------------------------------------------
# Fig. 8 — sample tree shapes (100 nodes, expansion factor 1)
# ----------------------------------------------------------------------
@dataclass
class Fig8Result:
    dot: dict[int, str] = field(default_factory=dict)
    summary: dict[int, dict] = field(default_factory=dict)


def fig8_tree_shape(
    *, n: int = 100, view_sizes: tuple[int, ...] = (4, 8), seed: int = 3
) -> Fig8Result:
    """Sample trees for view sizes 4 and 8 with expansion factor 1,
    exported as DOT plus shape summaries (Fig. 8)."""
    result = Fig8Result()
    for view in view_sizes:
        hpv = HyParViewConfig(active_size=view, expansion_factor=1.0)
        bed = build_brisa_testbed(
            n, seed=seed + view, hpv_config=hpv, record_deliveries=False
        )
        source = bed.choose_source()
        bed.run_stream(source, StreamConfig(count=20, rate=5.0, payload_bytes=256))
        g = extract_structure(bed.alive_nodes(), 0)
        result.dot[view] = to_dot(g, source.node_id)
        result.summary[view] = structure_summary(g, source.node_id, "tree")
    return result
