"""Structural-property scenarios: Figs. 2, 6, 7 and 8 (§III-A), plus the
§IV relay-load-spread analysis for multi-stream runs.

The paper artifacts study the *shape* of what emerges: flooding duplicate
counts (the motivation), then depth/degree distributions and sample tree
shapes of the structures BRISA builds with the first-come strategy.
:func:`relay_load_spread` measures the §IV *Multiple Trees* claim — that
independent per-stream trees over one overlay spread relay load
SplitStream-style — on any multi-stream run (scale runner, examples).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Iterable, Sequence

from repro.config import BrisaConfig, HyParViewConfig, StreamConfig
from repro.core.structure import extract_structure, out_degrees, structure_summary, to_dot
from repro.experiments.common import build_brisa_testbed, build_flood_testbed
from repro.experiments.scale import Scale, get_scale
from repro.ids import StreamId
from repro.metrics.stats import CDF
from repro.metrics.structure_analysis import degree_distribution, depth_distribution


# ----------------------------------------------------------------------
# Fig. 2 — duplicates per node under pure flooding
# ----------------------------------------------------------------------
@dataclass
class Fig2Result:
    """Duplicates-per-node CDF for each active-view size."""

    by_view: dict[int, CDF] = field(default_factory=dict)
    messages: int = 0
    nodes: int = 0

    def median_duplicates(self, view: int) -> float:
        return self.by_view[view].median


def fig2_duplicates(
    scale: Scale | str | None = None,
    *,
    view_sizes: tuple[int, ...] = (4, 6, 8, 10),
    seed: int = 1,
) -> Fig2Result:
    """CDF of duplicate receptions per node over the whole stream, for
    several HyParView view sizes, under plain flooding (Fig. 2)."""
    sc = scale if isinstance(scale, Scale) else get_scale(scale)
    result = Fig2Result(messages=sc.messages, nodes=sc.cluster_nodes)
    for view in view_sizes:
        hpv = HyParViewConfig(active_size=view)
        bed = build_flood_testbed(
            sc.cluster_nodes,
            seed=seed + view,
            hpv_config=hpv,
            join_spacing=sc.join_spacing,
            settle=sc.settle,
            record_deliveries=False,
        )
        source = bed.choose_source()
        run = bed.run_stream(
            source, StreamConfig(count=sc.messages, rate=5.0, payload_bytes=1024)
        )
        result.by_view[view] = CDF.of(float(d) for d in run.duplicates_per_node())
    return result


# ----------------------------------------------------------------------
# §IV — relay-load spread across concurrent per-stream trees
# ----------------------------------------------------------------------
@dataclass
class RelayLoadSpread:
    """How relay duty distributes over the population when several
    streams emerge independent structures on one shared overlay (§IV,
    *Multiple Trees and Multiple Parents*; SplitStream's load-balancing
    goal).

    A node is *interior* in a stream when it serves at least one child
    in that stream's emerged structure.  ``fan_in`` measures how many
    streams recruit one node as a relay (the relay duties fanning in on
    it); ``children`` measures its total forwarding load — children
    served summed across every stream.
    """

    population: int
    streams: int
    #: stream id -> interior-node count in that stream's structure.
    interior_per_stream: dict[StreamId, int]
    #: Nodes interior in at least one stream.
    interior_any: int
    #: Nodes interior in every stream.
    interior_all: int
    #: Do the interior-node sets actually differ across streams?  (The
    #: §IV claim: every stream emerges its own structure from its own
    #: flood, so the relay sets should not coincide.)
    distinct_sets: bool
    #: Max/mean number of streams a node relays for (mean over nodes
    #: interior in >= 1 stream).
    fan_in_max: int
    fan_in_mean: float
    #: Max/mean total children served across all streams (same support).
    children_max: int
    children_mean: float

    def to_dict(self) -> dict:
        return asdict(self)

    def summary(self) -> str:
        per_stream = "  ".join(
            f"s{stream}:{count}" for stream, count in sorted(self.interior_per_stream.items())
        )
        return "\n".join(
            [
                f"interior nodes per stream: {per_stream}",
                f"interior in >=1 tree: {self.interior_any}/{self.population}   "
                f"in every tree: {self.interior_all}   "
                f"sets differ: {'yes' if self.distinct_sets else 'no'}",
                f"relay fan-in (trees/node): max {self.fan_in_max}  "
                f"mean {self.fan_in_mean:.2f}   "
                f"children/node: max {self.children_max}  "
                f"mean {self.children_mean:.2f}",
            ]
        )


def relay_load_spread(nodes: Iterable, streams: Sequence[StreamId]) -> RelayLoadSpread:
    """Measure relay-load spread over the per-stream structures emerged
    by ``nodes`` for the given ``streams`` (promoted here from the
    ``examples/multi_source.py`` analysis so the scale runner and the
    benchmarks can gate on it)."""
    nodes = list(nodes)
    interior_sets: dict[StreamId, frozenset] = {}
    children: dict = {}
    for stream in streams:
        g = extract_structure(nodes, stream)
        degs = out_degrees(g)
        interior_sets[stream] = frozenset(n for n, d in degs.items() if d > 0)
        for n, d in degs.items():
            if d > 0:
                children[n] = children.get(n, 0) + d
    sets = list(interior_sets.values())
    union = frozenset().union(*sets) if sets else frozenset()
    common = frozenset.intersection(*sets) if sets else frozenset()
    fan_in = {n: sum(1 for s in sets if n in s) for n in union}
    return RelayLoadSpread(
        population=len(nodes),
        streams=len(sets),
        interior_per_stream={stream: len(s) for stream, s in interior_sets.items()},
        interior_any=len(union),
        interior_all=len(common),
        distinct_sets=len(set(sets)) > 1,
        fan_in_max=max(fan_in.values(), default=0),
        fan_in_mean=(sum(fan_in.values()) / len(fan_in)) if fan_in else 0.0,
        children_max=max(children.values(), default=0),
        children_mean=(sum(children.values()) / len(children)) if children else 0.0,
    )


# ----------------------------------------------------------------------
# Figs. 6 & 7 — depth and degree distributions of emerged structures
# ----------------------------------------------------------------------
#: The four configurations both figures sweep.
STRUCTURE_CONFIGS: tuple[tuple[str, str, int, int], ...] = (
    ("tree, view=4", "tree", 1, 4),
    ("tree, view=8", "tree", 1, 8),
    ("DAG 2 parents, view=4", "dag", 2, 4),
    ("DAG 2 parents, view=8", "dag", 2, 8),
)


@dataclass
class StructureDistributions:
    depth: dict[str, CDF] = field(default_factory=dict)
    degree: dict[str, CDF] = field(default_factory=dict)
    nodes: int = 0


def _emerged_testbed(sc: Scale, mode: str, parents: int, view: int, seed: int):
    cfg = BrisaConfig(
        mode=mode,
        num_parents=parents,
        cycle_predictor=BrisaConfig.default_predictor(mode),
    )
    hpv = HyParViewConfig(active_size=view)
    bed = build_brisa_testbed(
        sc.cluster_nodes,
        seed=seed,
        config=cfg,
        hpv_config=hpv,
        join_spacing=sc.join_spacing,
        settle=sc.settle,
        record_deliveries=False,
    )
    source = bed.choose_source()
    # Build + let the structure stabilize (§III-A: "after building the
    # respective structure and letting it stabilize").
    stream = StreamConfig(count=max(20, sc.messages // 5), rate=5.0, payload_bytes=1024)
    bed.run_stream(source, stream, drain=20.0)
    return bed, source


def fig6_fig7_structure(
    scale: Scale | str | None = None, *, seed: int = 2
) -> StructureDistributions:
    """Depth (Fig. 6) and degree (Fig. 7) CDFs for the four paper
    configurations, measured on stabilized structures."""
    sc = scale if isinstance(scale, Scale) else get_scale(scale)
    out = StructureDistributions(nodes=sc.cluster_nodes)
    for label, mode, parents, view in STRUCTURE_CONFIGS:
        bed, source = _emerged_testbed(sc, mode, parents, view, seed)
        nodes = bed.alive_nodes()
        out.depth[label] = depth_distribution(nodes, source.node_id, mode)
        out.degree[label] = degree_distribution(nodes)
    return out


# ----------------------------------------------------------------------
# Fig. 8 — sample tree shapes (100 nodes, expansion factor 1)
# ----------------------------------------------------------------------
@dataclass
class Fig8Result:
    dot: dict[int, str] = field(default_factory=dict)
    summary: dict[int, dict] = field(default_factory=dict)


def fig8_tree_shape(
    *, n: int = 100, view_sizes: tuple[int, ...] = (4, 8), seed: int = 3
) -> Fig8Result:
    """Sample trees for view sizes 4 and 8 with expansion factor 1,
    exported as DOT plus shape summaries (Fig. 8)."""
    result = Fig8Result()
    for view in view_sizes:
        hpv = HyParViewConfig(active_size=view, expansion_factor=1.0)
        bed = build_brisa_testbed(
            n, seed=seed + view, hpv_config=hpv, record_deliveries=False
        )
        source = bed.choose_source()
        bed.run_stream(source, StreamConfig(count=20, rate=5.0, payload_bytes=256))
        g = extract_structure(bed.alive_nodes(), 0)
        result.dot[view] = to_dot(g, source.node_id)
        result.summary[view] = structure_summary(g, source.node_id, "tree")
    return result
