"""Robustness scenarios: Table I and Fig. 14 (§III-C, §III-D).

Both run the Listing-1 churn workload: bootstrap, stabilize, then X% of
the population fails and is replaced every period while a stream is being
disseminated.  Table I aggregates parent losses, orphans and repair kinds
for BRISA trees vs DAGs; Fig. 14 compares the hard-repair recovery delay
of BRISA against TAG's list re-insertion.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.config import BrisaConfig, HyParViewConfig, StreamConfig, TagConfig
from repro.experiments.common import Testbed, build_brisa_testbed, build_tag_testbed
from repro.experiments.scale import Scale, get_scale
from repro.metrics.stats import CDF, rate_per_minute
from repro.sim.churn import ChurnDriver
from repro.sim.trace import ConstChurn, SetReplacementRatio, Stop, Trace


@dataclass
class Table1Row:
    nodes: int
    churn_percent: float
    mode: str
    parents_lost_per_min: float
    orphans_per_min: float
    soft_repair_pct: float
    hard_repair_pct: float
    kills: int
    joins: int


@dataclass
class Table1Result:
    rows: dict[tuple[int, float, str], Table1Row] = field(default_factory=dict)
    churn_window: float = 0.0


def _run_churn(
    bed: Testbed,
    source,
    *,
    churn_percent: float,
    duration: float,
    period: float,
    lead: float = 10.0,
    drain: float = 15.0,
) -> tuple[float, float, ChurnDriver]:
    """Start a continuous stream, apply Listing-1 churn, return the churn
    window (start, end) and the driver."""
    rate = 5.0
    total_secs = lead + duration + drain
    stream = StreamConfig(count=int(math.ceil(rate * total_secs)), rate=rate, payload_bytes=1024)
    bed.start_stream(source, stream)
    bed.sim.run(until=bed.sim.now + lead)

    start = bed.sim.now
    end = start + duration
    # Per-period percentage keeps the paper's per-minute churn rate even
    # when the fast scale shortens the period.
    per_period = churn_percent * period / 60.0
    trace = Trace(
        (
            SetReplacementRatio(start, 1.0),
            ConstChurn(start, end, per_period, period),
            Stop(end),
        )
    )
    driver = ChurnDriver(
        bed.sim, bed.network, trace, bed.spawn_joiner, protected={source.node_id}
    )
    driver.apply()
    bed.sim.run(until=end + drain)
    return start, end, driver


def table1_churn(
    scale: Scale | str | None = None,
    *,
    seed: int = 6,
    populations: tuple[int, ...] | None = None,
    churn_rates: tuple[float, ...] = (3.0, 5.0),
) -> Table1Result:
    """Table I: parents lost/min, orphans/min, % soft and % hard repairs
    for tree vs 2-parent DAG under 3%/5% per-minute churn."""
    sc = scale if isinstance(scale, Scale) else get_scale(scale)
    if populations is None:
        populations = (sc.small_nodes, sc.cluster_nodes)
    result = Table1Result(churn_window=sc.churn_duration)
    for n in populations:
        for pct in churn_rates:
            for mode, parents in (("tree", 1), ("dag", 2)):
                cfg = BrisaConfig(
                    mode=mode,
                    num_parents=parents,
                    cycle_predictor=BrisaConfig.default_predictor(mode),
                )
                bed = build_brisa_testbed(
                    n,
                    seed=seed + n + int(pct),
                    config=cfg,
                    hpv_config=HyParViewConfig(active_size=4),
                    join_spacing=sc.join_spacing,
                    settle=sc.settle,
                    record_deliveries=False,
                )
                source = bed.choose_source()
                start, end, driver = _run_churn(
                    bed,
                    source,
                    churn_percent=pct,
                    duration=sc.churn_duration,
                    period=sc.churn_period,
                )
                window = (start, end)
                m = bed.metrics
                lost = rate_per_minute((t for t, _ in m.parent_losses), window)
                orphans = rate_per_minute((t for t, _ in m.orphan_events), window)
                repairs = [r for r in m.repair_events if start <= r.time < end]
                soft = sum(1 for r in repairs if r.kind == "soft")
                hard = sum(1 for r in repairs if r.kind == "hard")
                total = soft + hard
                result.rows[(n, pct, mode)] = Table1Row(
                    nodes=n,
                    churn_percent=pct,
                    mode=mode,
                    parents_lost_per_min=lost,
                    orphans_per_min=orphans,
                    soft_repair_pct=100.0 * soft / total if total else 100.0,
                    hard_repair_pct=100.0 * hard / total if total else 0.0,
                    kills=driver.stats.kills,
                    joins=driver.stats.joins,
                )
    return result


# ----------------------------------------------------------------------
# Fig. 14 — parent recovery delay, BRISA vs TAG, 3% churn, 128 nodes
# ----------------------------------------------------------------------
@dataclass
class Fig14Result:
    """Per-protocol CDFs of recovery delay in seconds."""

    hard: dict[str, CDF] = field(default_factory=dict)
    soft: dict[str, CDF] = field(default_factory=dict)
    hard_repair_counts: dict[str, int] = field(default_factory=dict)


def fig14_recovery(
    scale: Scale | str | None = None, *, seed: int = 7, churn_percent: float = 3.0
) -> Fig14Result:
    """Hard-repair recovery delays under continuous churn: BRISA's
    flooding fallback vs TAG's list re-insertion (Fig. 14)."""
    sc = scale if isinstance(scale, Scale) else get_scale(scale)
    n = sc.small_nodes
    result = Fig14Result()

    # --- BRISA tree, view 4 -------------------------------------------
    bed = build_brisa_testbed(
        n,
        seed=seed,
        config=BrisaConfig(),
        hpv_config=HyParViewConfig(active_size=4),
        join_spacing=sc.join_spacing,
        settle=sc.settle,
        record_deliveries=False,
    )
    source = bed.choose_source()
    start, end, _ = _run_churn(
        bed, source, churn_percent=churn_percent,
        duration=sc.churn_duration, period=sc.churn_period,
    )
    repairs = [r for r in bed.metrics.repair_events if start <= r.time < end]
    result.hard["BRISA tree"] = CDF.of(r.duration for r in repairs if r.kind == "hard")
    result.soft["BRISA tree"] = CDF.of(r.duration for r in repairs if r.kind == "soft")
    result.hard_repair_counts["BRISA tree"] = len(result.hard["BRISA tree"])

    # --- TAG ------------------------------------------------------------
    bed, tracker = build_tag_testbed(
        n,
        seed=seed,
        tag_config=TagConfig(min_parent_age=min(3.0, sc.settle / 4)),
        join_spacing=sc.join_spacing,
        settle=sc.settle,
        record_deliveries=False,
    )
    root = bed.nodes[0]
    start, end, _ = _run_churn(
        bed, root, churn_percent=churn_percent,
        duration=sc.churn_duration, period=sc.churn_period,
    )
    repairs = [r for r in bed.metrics.repair_events if start <= r.time < end]
    result.hard["TAG"] = CDF.of(r.duration for r in repairs if r.kind == "hard")
    result.soft["TAG"] = CDF.of(r.duration for r in repairs if r.kind == "soft")
    result.hard_repair_counts["TAG"] = len(result.hard["TAG"])
    return result
