"""Large-scale flood dissemination: the simulator hot-path proving ground.

The paper stops at 512 cluster nodes; the interesting epidemic
reliability/efficiency trade-offs appear at populations well beyond that
(cf. Moreno et al. on epidemic dissemination in complex networks).  This
module opens those scenarios: it builds a *static* random overlay —
skipping the HyParView join ramp, which would dominate a benchmark of
the dissemination hot path — floods a stream over it, and reports engine
throughput (events/s, deliveries/s, peak heap backlog, wall time).

It also carries the **engine microbenchmark** used as the performance
baseline of the hot-path overhaul: :func:`engine_microbench` measures,
on the same machine and the same fan-out workload, the pre-overhaul
delivery chain (per-peer message construction and accounting, a fresh
``EventHandle`` per event, ``send → _deliver → _process`` with a node
lookup at every step, the bounded ``run(until=...)`` loop) against the
current fused path (shared fan-out message, batched accounting, pooled
fire-and-forget events, ``run_until_idle``).  Throughput is compared in
*delivery events completed per second* — the unit of useful simulator
work — because the legacy chain spreads one delivery over several heap
events and a raw heap-event rate would flatter it.  See DESIGN.md §2.

Scenario entry points: :func:`run_scale_flood` (library / benchmark) and
the ``repro scale`` CLI subcommand.  The harness spine — source
spreading, multi-stream injection windows, the timed drain and
per-stream delivery accounting — is shared with the BRISA stack through
:mod:`repro.experiments.scale_runner` (DESIGN.md §10).
"""

from __future__ import annotations

import gc
import time
from dataclasses import asdict, dataclass, field
from typing import Optional

from repro.baselines.flood import FloodNode, SlottedFloodKernel, SlottedFloodNode
from repro.core.flood_vectorized import VectorizedFloodKernel
from repro.config import HyParViewConfig
from repro.errors import SimulationError
from repro.ids import NodeId
from repro.sim.churn import ChurnDriver
from repro.sim.engine import Simulator
from repro.sim.latency import ConstantLatency, LatencyModel, OccupancyLatency
from repro.sim.message import Message
from repro.sim.monitor import Metrics
from repro.sim.network import Network
from repro.sim.trace import ConstChurn, Trace
from repro.experiments.scale_runner import (
    ScaleRunner,
    aggregate_outcomes,
    flood_stream_outcomes,
    outcomes_summary,
    spread_sources,
    validate_workload,
)


@dataclass
class ScaleFloodResult:
    """Outcome + engine telemetry of one large-scale flood run."""

    nodes: int
    degree: int
    messages: int
    payload_bytes: int
    seed: int
    #: Simulated seconds the dissemination spanned.
    sim_time: float
    #: Wall-clock seconds of the dissemination run loop.
    wall_time: float
    #: Engine events processed during dissemination.
    events: int
    events_per_sec: float
    #: First-time message receptions across all receivers.
    deliveries: int
    deliveries_per_sec: float
    #: Fraction of (message, receiver) pairs delivered.
    delivered_fraction: float
    #: Largest heap backlog ever observed.
    peak_pending: int
    #: EventHandle free-list high-water mark after the run.
    handle_pool_size: int
    #: Delivery kernel that ran the flood ("object" | "slotted").
    kernel: str = "object"
    #: Total receptions processed (first deliveries + duplicates) — the
    #: unit the slotted-kernel speedup gate is measured in.
    receptions: int = 0
    receptions_per_sec: float = 0.0
    #: Churn applied during the stream (percent of the population).
    churn_percent: float = 0.0
    kills: int = 0
    joins: int = 0
    #: Initial-population receivers still alive at the end of the run
    #: (the delivered_fraction denominator under churn).
    survivors: int = 0
    #: Concurrent publishers (stream ``i`` driven by source ``i``).
    streams: int = 1
    #: Overlay topology class the run disseminated over.
    topology: str = "uniform"
    #: Per-link loss rate applied by the delivery layer (percent).
    loss_percent: float = 0.0
    #: Sends the loss model discarded (``dropped_loss`` counter).
    dropped_loss: int = 0
    #: Per-stream outcomes (``StreamOutcome.to_dict`` rows) when the run
    #: drove more than one stream.
    per_stream: list = field(default_factory=list)

    def to_dict(self) -> dict:
        return asdict(self)

    def summary(self) -> str:
        lines = [
            f"nodes: {self.nodes} (degree ~{self.degree})   kernel: {self.kernel}",
            f"messages: {self.streams} stream(s) x {self.messages} x {self.payload_bytes} B",
            f"delivered: {self.delivered_fraction * 100:.2f}%",
            f"sim time: {self.sim_time:.2f} s   wall time: {self.wall_time:.2f} s",
            f"events: {self.events:,} ({self.events_per_sec:,.0f}/s)",
            f"deliveries: {self.deliveries:,} ({self.deliveries_per_sec:,.0f}/s)",
            f"receptions: {self.receptions:,} ({self.receptions_per_sec:,.0f}/s)",
            f"peak heap: {self.peak_pending:,}   handle pool: {self.handle_pool_size:,}",
        ]
        if self.topology != "uniform" or self.loss_percent:
            line = f"topology: {self.topology}   link loss: {self.loss_percent:g}%"
            if self.loss_percent:
                line += f" ({self.dropped_loss:,} sends dropped)"
            lines.insert(1, line)
        if self.streams > 1:
            lines.append("per-stream delivery:")
            lines.append(outcomes_summary(self.per_stream, indent="  "))
        if self.churn_percent:
            lines.append(
                f"churn: {self.churn_percent:g}%   kills: {self.kills:,}   "
                f"joins: {self.joins:,}   survivors: {self.survivors:,}"
            )
        return "\n".join(lines)


def build_static_flood_overlay(
    n: int,
    *,
    degree: int = 5,
    seed: int = 1,
    latency: Optional[LatencyModel] = None,
    record_deliveries: bool = False,
    shuffles: bool = False,
    kernel: str = "object",
    topology: str = "uniform",
    loss_percent: float = 0.0,
) -> tuple[Simulator, Network, list[FloodNode]]:
    """Spawn ``n`` flood nodes pre-wired into a connected random overlay.

    The topology comes from the shared synthesized-overlay constructor
    (:mod:`repro.experiments.bootstrap`): a Hamiltonian ring plus random
    chords up to an average degree of ``degree`` — the same shape a
    settled HyParView overlay converges to, built in O(n) instead of
    simulating the join ramp.  ``shuffles=False`` (default) stops the
    HyParView shuffle timers: a static overlay has no churn to repair,
    and a drained heap then marks the exact end of dissemination.

    ``kernel`` selects the flood delivery implementation: ``"object"``
    (per-node dict state, the reference), ``"slotted"`` (shared
    flat-array kernel, DESIGN.md §9) or ``"vectorized"`` (numpy slot
    planes draining whole fan-out batches, DESIGN.md §12; requires
    numpy).  All are draw-for-draw equivalent for one seed.
    """
    from repro.experiments.bootstrap import synthesize_overlay

    if n < 3:
        raise ValueError("need at least 3 nodes for a ring overlay")
    if degree < 2:
        raise ValueError("degree must be >= 2 (ring minimum)")
    sim = Simulator(seed=seed)
    net = Network(
        sim,
        latency if latency is not None else ConstantLatency(0.001, seed=seed),
        Metrics(record_deliveries=record_deliveries),
        loss_percent=loss_percent,
    )
    # The static views may exceed HyParView's default cap; size the config
    # so the synthesized wiring is legal under the protocol's own limits.
    hpv = HyParViewConfig(active_size=max(4, degree), passive_size=16)
    factory = flood_node_factory(kernel, net, hpv)
    # Batched materialization (DESIGN.md §8): with shuffles off the
    # timers are never armed, so spawning schedules zero events.
    prior = net.autostart_timers
    net.autostart_timers = shuffles and prior
    try:
        nodes = net.spawn_many(factory, n)
    finally:
        net.autostart_timers = prior
    # Slotted: build the fan-out rows straight from the CSR adjacency
    # arrays — one bulk pass over flat arrays; the per-peer notification
    # appends the install would fire are suppressed meanwhile (contents
    # identical either way, pinned by the parity tests).
    slot_kernel = nodes[0].kernel if kernel in ("slotted", "vectorized") else None
    if slot_kernel is not None:
        slot_kernel.bulk_rows = True
    try:
        topo = synthesize_overlay(
            nodes, net, rng=sim.rng("static-overlay"), degree=degree,
            topology=topology,
        )
    finally:
        if slot_kernel is not None:
            slot_kernel.bulk_rows = False
    if slot_kernel is not None:
        slot_kernel.install_rows([node.node_id for node in nodes], topo)
    return sim, net, nodes


def flood_node_factory(
    kernel: str,
    net: Network,
    hpv: HyParViewConfig,
    *,
    slot_kernel: Optional[SlottedFloodKernel] = None,
):
    """Node factory for one flood delivery kernel (``spawn``-compatible).

    For ``"slotted"`` and ``"vectorized"`` the factory closes over one
    shared kernel (:class:`SlottedFloodKernel` /
    :class:`VectorizedFloodKernel`): a fresh one by default (population
    bootstrap), or the existing kernel passed as ``slot_kernel`` so
    churn joiners land in the same arrays and recycle freed slots.
    """
    if kernel in ("slotted", "vectorized"):
        if slot_kernel is None:
            cls = VectorizedFloodKernel if kernel == "vectorized" else SlottedFloodKernel
            slot_kernel = cls(net)
        return lambda network, nid: SlottedFloodNode(network, nid, hpv, kernel=slot_kernel)
    if kernel == "object":
        return lambda network, nid: FloodNode(network, nid, hpv)
    raise ValueError(
        f"unknown flood kernel {kernel!r} "
        "(expected 'object', 'slotted' or 'vectorized')"
    )


def run_scale_flood(
    nodes: int,
    messages: int,
    *,
    degree: int = 5,
    rate: float = 20.0,
    payload_bytes: int = 1024,
    seed: int = 1,
    drain: float = 10.0,
    latency: Optional[LatencyModel] = None,
    kernel: str = "object",
    churn_percent: float = 0.0,
    churn_replacement: float = 1.0,
    streams: int = 1,
    topology: str = "uniform",
    loss_percent: float = 0.0,
) -> ScaleFloodResult:
    """Disseminate ``streams`` concurrent flood streams of ``messages``
    messages each over a ``nodes``-population static overlay and measure
    engine throughput while doing it.

    ``streams`` > 1 opens the multi-stream scenario (DESIGN.md §10): K
    publishers spread over the population each drive their own stream id
    over the one shared overlay, and delivery is accounted per stream
    (every live node except a stream's own source is its audience).

    ``churn_percent`` > 0 opens the churn-at-scale scenario (DESIGN.md
    §9): one constant-churn period spanning the injection window kills
    that percentage of the live population at random instants (every
    source is protected, as in §III-C) and joins ``churn_replacement``
    times as many fresh nodes through the regular HyParView join
    protocol.  Delivery is then reported over the *surviving* initial
    receivers — joiners cannot observe messages injected before they
    arrived (flooding has no anti-entropy), so they are excluded from
    the denominator.
    """
    validate_workload(messages, rate, streams, population=nodes)
    if not 0.0 <= churn_percent < 100.0:
        raise ValueError("churn_percent must be in [0, 100)")
    if churn_replacement < 0.0:
        raise ValueError("churn_replacement must be >= 0")
    sim, net, flood_nodes = build_static_flood_overlay(
        nodes, degree=degree, seed=seed, latency=latency, kernel=kernel,
        topology=topology, loss_percent=loss_percent,
    )
    sources = spread_sources(flood_nodes, streams)
    runner = ScaleRunner(
        sim, net, sources, messages=messages, rate=rate, payload_bytes=payload_bytes
    )
    driver = None
    start = sim.now
    if churn_percent:
        # Joiners arm no periodic timers (message-driven join only), so
        # the heap still drains exactly when the last repair settles.
        net.autostart_timers = False
        span = messages / rate
        join_factory = flood_node_factory(
            kernel, net, flood_nodes[0].hpv_config,
            slot_kernel=getattr(flood_nodes[0], "kernel", None),
        )
        contact_rng = sim.rng("scale-churn-contacts")
        initial_ids = [node.node_id for node in flood_nodes]

        def join_fn():
            node = net.spawn(join_factory)
            # Rejection-sample a live contact among the initial
            # population (expected O(1) tries; the protected sources
            # guarantee termination).
            while True:
                contact = contact_rng.choice(initial_ids)
                if net.alive(contact):
                    break
            node.join(contact)
            return node

        trace = Trace((ConstChurn(start, start + span, churn_percent, span),))
        driver = ChurnDriver(
            sim, net, trace, join_fn,
            protected=tuple(s.node_id for s in sources), seed_label="scale-churn",
        )
        driver.replacement_ratio = churn_replacement
        driver.apply()
    # The overlay is static and shuffle-free: the heap drains exactly when
    # the last in-flight message lands (under churn: when the last repair
    # exchange settles), so the batched loop needs no bound.
    stats = runner.run()

    alive_initial = [node for node in flood_nodes if node.alive]
    outcomes = flood_stream_outcomes(sources, alive_initial, messages)
    deliveries, delivered_fraction = aggregate_outcomes(outcomes, messages)
    if kernel in ("slotted", "vectorized"):
        receptions = flood_nodes[0].kernel.receptions
    else:
        receptions = sum(
            shard.first_deliveries + shard.duplicate_receptions
            for shard in net.metrics.streams.values()
        )
    wall = stats.wall_time
    return ScaleFloodResult(
        nodes=nodes,
        degree=degree,
        messages=messages,
        payload_bytes=payload_bytes,
        seed=seed,
        sim_time=stats.sim_time,
        wall_time=wall,
        events=stats.events,
        events_per_sec=stats.events / wall,
        deliveries=deliveries,
        deliveries_per_sec=deliveries / wall,
        delivered_fraction=delivered_fraction,
        peak_pending=sim.peak_pending,
        handle_pool_size=sim.pool_size,
        kernel=kernel,
        receptions=receptions,
        receptions_per_sec=receptions / wall,
        churn_percent=churn_percent,
        kills=driver.stats.kills if driver else 0,
        joins=driver.stats.joins if driver else 0,
        survivors=outcomes[0].receivers,
        streams=streams,
        topology=topology,
        loss_percent=loss_percent,
        dropped_loss=net.metrics.counters.get("dropped_loss", 0),
        per_stream=[o.to_dict() for o in outcomes],
    )


# ----------------------------------------------------------------------
# Engine microbenchmark: pre-overhaul delivery chain vs the fused path
# ----------------------------------------------------------------------
class _BenchPayload(Message):
    """Fixed-size payload used by both microbench sides."""

    kind = "bench_payload"
    __slots__ = ("seq",)

    def __init__(self, seq: int = 0) -> None:
        self.seq = seq

    def body_bytes(self) -> int:
        return 1024


class _SinkNode:
    """Terminal receiver: counts deliveries, forwards nothing."""

    __slots__ = ("node_id", "alive", "received")

    def __init__(self, node_id: NodeId) -> None:
        self.node_id = node_id
        self.alive = True
        self.received = 0

    def handle_message(self, src: NodeId, msg: Message) -> None:
        self.received += 1


class _LegacyNetwork:
    """The pre-overhaul delivery chain, preserved for baseline runs.

    Faithful to the seed implementation: every event allocates a fresh
    cancellable ``EventHandle`` through ``schedule_at``, delivery walks
    ``send → _deliver → _process`` with a ``nodes`` lookup at each step
    and an ``rx_cost`` probe per message, and fan-out callers construct
    one message *per peer* with one accounting call per send.
    """

    def __init__(self, sim: Simulator, latency: LatencyModel, metrics: Metrics) -> None:
        self.sim = sim
        self.latency = latency
        self.metrics = metrics
        self.nodes: dict[NodeId, _SinkNode] = {}
        self._busy: dict[NodeId, float] = {}

    def send(self, src: NodeId, dst: NodeId, msg: Message) -> None:
        sender = self.nodes.get(src)
        if sender is None or not sender.alive:
            return
        size = msg.size_bytes()
        self.metrics.account_send(src, msg.kind, size)
        now = self.sim.now
        tx_cost = self.latency.tx_cost(src, size)
        if tx_cost > 0.0:
            tx_done = max(now, self._busy.get(src, now)) + tx_cost
            self._busy[src] = tx_done
        else:
            tx_done = now
        arrival = tx_done + self.latency.sample(src, dst)
        self.sim.schedule_at(arrival, self._deliver, src, dst, msg, size)

    def _deliver(self, src: NodeId, dst: NodeId, msg: Message, size: int) -> None:
        node = self.nodes.get(dst)
        if node is None or not node.alive:
            return
        rx_cost = self.latency.rx_cost(dst, size)
        if rx_cost > 0.0:
            now = self.sim.now
            ready = max(now, self._busy.get(dst, now)) + rx_cost
            self._busy[dst] = ready
            self.sim.schedule_at(ready, self._process, src, dst, msg, size)
        else:
            self._process(src, dst, msg, size)

    def _process(self, src: NodeId, dst: NodeId, msg: Message, size: int) -> None:
        node = self.nodes.get(dst)
        if node is None or not node.alive:
            return
        self.metrics.account_receive(dst, size)
        node.handle_message(src, msg)


@dataclass
class MicrobenchResult:
    """Same-machine engine throughput: legacy chain vs fused fast path."""

    fanout: int
    rounds: int
    legacy_deliveries_per_sec: float
    legacy_events_per_sec: float
    fast_deliveries_per_sec: float
    fast_events_per_sec: float

    @property
    def speedup(self) -> float:
        """Delivery-event throughput ratio (the acceptance metric)."""
        return self.fast_deliveries_per_sec / max(self.legacy_deliveries_per_sec, 1e-9)

    def to_dict(self) -> dict:
        d = asdict(self)
        d["speedup"] = self.speedup
        return d

    def summary(self) -> str:
        return "\n".join(
            [
                f"workload: {self.rounds} rounds x fanout {self.fanout}",
                f"legacy (pre-overhaul): {self.legacy_deliveries_per_sec:,.0f} deliveries/s "
                f"({self.legacy_events_per_sec:,.0f} heap events/s)",
                f"fast (fused + pooled): {self.fast_deliveries_per_sec:,.0f} deliveries/s "
                f"({self.fast_events_per_sec:,.0f} heap events/s)",
                f"speedup: {self.speedup:.2f}x",
            ]
        )


def engine_microbench(
    rounds: int = 20_000, fanout: int = 5, nodes: int = 512, *, seed: int = 7,
    repeats: int = 3,
) -> MicrobenchResult:
    """Measure the legacy delivery chain against the fused fast path.

    Both sides run the identical workload — ``rounds`` fan-outs of
    ``fanout`` 1 KB messages over ``nodes`` sinks with the same constant
    latency — and report delivery throughput.  The best of ``repeats``
    runs is kept per side (standard microbench practice: the minimum-
    noise sample).
    """

    def run_legacy() -> tuple[float, float]:
        sim = Simulator(seed=seed)
        net = _LegacyNetwork(sim, ConstantLatency(0.001, seed=seed), Metrics(record_deliveries=False))
        for i in range(nodes):
            net.nodes[i] = _SinkNode(i)

        def fan_out(src: NodeId, base: int) -> None:
            # Pre-overhaul fan-out idiom: a fresh message per peer.
            for k in range(fanout):
                net.send(src, (base + k) % nodes, _BenchPayload(base))

        for r in range(rounds):
            sim.schedule_at(r * 1e-5, fan_out, r % nodes, (r + 1) % nodes)
        t0 = time.perf_counter()
        sim.run(until=rounds * 1e-5 + 1.0)
        wall = max(time.perf_counter() - t0, 1e-9)
        delivered = sum(s.received for s in net.nodes.values())
        return delivered / wall, sim.events_processed / wall

    def run_fast() -> tuple[float, float]:
        sim = Simulator(seed=seed)
        net = Network(sim, ConstantLatency(0.001, seed=seed), Metrics(record_deliveries=False))
        for i in range(nodes):
            net.nodes[i] = _SinkNode(i)  # type: ignore[assignment]

        def fan_out(src: NodeId, base: int) -> None:
            dsts = [(base + k) % nodes for k in range(fanout)]
            net.send_many(src, dsts, _BenchPayload(base))

        for r in range(rounds):
            sim.call_at(r * 1e-5, fan_out, r % nodes, (r + 1) % nodes)
        t0 = time.perf_counter()
        sim.run_until_idle()
        wall = max(time.perf_counter() - t0, 1e-9)
        delivered = sum(s.received for s in net.nodes.values())  # type: ignore[union-attr]
        return delivered / wall, sim.events_processed / wall

    legacy = max((run_legacy() for _ in range(repeats)), key=lambda t: t[0])
    fast = max((run_fast() for _ in range(repeats)), key=lambda t: t[0])
    return MicrobenchResult(
        fanout=fanout,
        rounds=rounds,
        legacy_deliveries_per_sec=legacy[0],
        legacy_events_per_sec=legacy[1],
        fast_deliveries_per_sec=fast[0],
        fast_events_per_sec=fast[1],
    )


# ----------------------------------------------------------------------
# Occupancy microbenchmark: per-message charging vs the fused fan-out
# ----------------------------------------------------------------------
@dataclass
class OccupancyMicrobenchResult:
    """Same-machine fan-out throughput under an occupancy-charging model:
    the per-message queueing chain vs the fused path (DESIGN.md §8)."""

    fanout: int
    rounds: int
    per_message_deliveries_per_sec: float
    per_message_events_per_sec: float
    fused_deliveries_per_sec: float
    fused_events_per_sec: float

    @property
    def speedup(self) -> float:
        """Delivery-event throughput ratio (the acceptance metric)."""
        return self.fused_deliveries_per_sec / max(
            self.per_message_deliveries_per_sec, 1e-9
        )

    def to_dict(self) -> dict:
        d = asdict(self)
        d["speedup"] = self.speedup
        return d

    def summary(self) -> str:
        return "\n".join(
            [
                f"workload: {self.rounds} rounds x fanout {self.fanout} "
                f"(occupancy-charging latency)",
                f"per-message path: {self.per_message_deliveries_per_sec:,.0f} "
                f"deliveries/s ({self.per_message_events_per_sec:,.0f} heap events/s)",
                f"fused fan-out:    {self.fused_deliveries_per_sec:,.0f} "
                f"deliveries/s ({self.fused_events_per_sec:,.0f} heap events/s)",
                f"speedup: {self.speedup:.2f}x",
            ]
        )


def occupancy_microbench(
    rounds: int = 20_000, fanout: int = 5, nodes: int = 512, *, seed: int = 7,
    repeats: int = 3,
) -> OccupancyMicrobenchResult:
    """Measure the per-message occupancy chain against the fused fan-out.

    Both sides run the identical workload — ``rounds`` fan-outs of
    ``fanout`` 1 KB messages over ``nodes`` sinks under the same
    receive-bound :class:`OccupancyLatency` — and produce bit-identical
    delivery schedules (the fused path is an exact-arithmetic
    reformulation, pinned by tests).  Receiver sets rotate disjointly and
    the pacing lets each receive horizon drain between hits, matching
    the scale scenarios' regime (per-message occupancy far below the
    stream inter-arrival time) where a fan-out's queue completions
    coincide and fuse.  The per-message side is the pre-overhaul idiom
    preserved in :class:`_LegacyNetwork`: one message per peer, one
    accounting call per send, a fresh handle per event and the full
    ``send → _deliver → _process`` chain.  The best of ``repeats`` runs
    is kept per side."""
    half = nodes // 2

    def model() -> OccupancyLatency:
        # Receive-bound occupancy: the buffer-occupancy regime where the
        # fused path's one-event fan-outs matter most.
        return OccupancyLatency(0.001, tx_overhead=0.0, rx_overhead=0.0005, seed=seed)

    def run_per_message() -> tuple[float, float]:
        sim = Simulator(seed=seed)
        net = _LegacyNetwork(sim, model(), Metrics(record_deliveries=False))
        for i in range(nodes):
            net.nodes[i] = _SinkNode(i)

        def fan_out(src: NodeId, base: int) -> None:
            for k in range(fanout):
                net.send(src, half + (base + k) % half, _BenchPayload(base))

        for r in range(rounds):
            sim.schedule_at(r * 1e-4, fan_out, r % half, (r * fanout) % half)
        t0 = time.perf_counter()
        sim.run_until_idle()
        wall = max(time.perf_counter() - t0, 1e-9)
        delivered = sum(s.received for s in net.nodes.values())
        return delivered / wall, sim.events_processed / wall

    def run_fused() -> tuple[float, float]:
        sim = Simulator(seed=seed)
        net = Network(sim, model(), Metrics(record_deliveries=False))
        for i in range(nodes):
            net.nodes[i] = _SinkNode(i)  # type: ignore[assignment]

        def fan_out(src: NodeId, base: int) -> None:
            dsts = [half + (base + k) % half for k in range(fanout)]
            net.send_many(src, dsts, _BenchPayload(base))

        for r in range(rounds):
            sim.call_at(r * 1e-4, fan_out, r % half, (r * fanout) % half)
        t0 = time.perf_counter()
        sim.run_until_idle()
        wall = max(time.perf_counter() - t0, 1e-9)
        delivered = sum(s.received for s in net.nodes.values())  # type: ignore[union-attr]
        return delivered / wall, sim.events_processed / wall

    per_message = max((run_per_message() for _ in range(repeats)), key=lambda t: t[0])
    fused = max((run_fused() for _ in range(repeats)), key=lambda t: t[0])
    return OccupancyMicrobenchResult(
        fanout=fanout,
        rounds=rounds,
        per_message_deliveries_per_sec=per_message[0],
        per_message_events_per_sec=per_message[1],
        fused_deliveries_per_sec=fused[0],
        fused_events_per_sec=fused[1],
    )


# ----------------------------------------------------------------------
# Slotted microbenchmark: object kernel vs slotted kernel at scale
# ----------------------------------------------------------------------
@dataclass
class SlottedMicrobenchResult:
    """Same-machine flood delivery throughput at scale: the object
    (per-node dict state) kernel vs the slotted (flat-array) kernel
    (DESIGN.md §9).  Throughput is *receptions* completed per second —
    first deliveries plus duplicates, the unit of per-delivery handler
    work the slotted kernel exists to cut — over the full ``repro
    scale``-shaped run (overlay synthesis excluded, dissemination loop
    only is what ``wall_time`` measures on both sides)."""

    nodes: int
    messages: int
    #: Receptions processed per run — identical on both sides by the
    #: kernel-parity guarantee (checked at measurement time).
    receptions: int
    object_receptions_per_sec: float
    slotted_receptions_per_sec: float

    @property
    def speedup(self) -> float:
        """Per-delivery throughput ratio (the acceptance metric)."""
        return self.slotted_receptions_per_sec / max(
            self.object_receptions_per_sec, 1e-9
        )

    def to_dict(self) -> dict:
        d = asdict(self)
        d["speedup"] = self.speedup
        return d

    def summary(self) -> str:
        return "\n".join(
            [
                f"workload: {self.nodes} nodes x {self.messages} messages "
                f"({self.receptions:,} receptions)",
                f"object kernel:  {self.object_receptions_per_sec:,.0f} receptions/s",
                f"slotted kernel: {self.slotted_receptions_per_sec:,.0f} receptions/s",
                f"speedup: {self.speedup:.2f}x",
            ]
        )


def slotted_microbench(
    nodes: int = 10_000, messages: int = 20, *,
    degree: int = 5, rate: float = 20.0, seed: int = 3, repeats: int = 2,
) -> SlottedMicrobenchResult:
    """Measure the object flood kernel against the slotted kernel.

    Both sides run the *identical* xl-shaped scenario — same seed, same
    synthesized overlay, same injection schedule, draw-for-draw the same
    simulation — so the reception count must match exactly (verified
    here; the full parity surface is pinned by
    tests/test_slotted_parity.py).  The best of ``repeats`` runs is kept
    per side.  The timed runs freeze the caller's surviving heap out of
    the collector, for the same ratio-deflation reason documented on
    :func:`vectorized_microbench`.
    """

    def one(kernel: str) -> ScaleFloodResult:
        gc.collect()
        gc.freeze()
        try:
            return run_scale_flood(
                nodes, messages, degree=degree, rate=rate, seed=seed,
                kernel=kernel,
            )
        finally:
            gc.unfreeze()

    def best(kernel: str) -> ScaleFloodResult:
        return max(
            (one(kernel) for _ in range(repeats)),
            key=lambda r: r.receptions_per_sec,
        )

    obj = best("object")
    slotted = best("slotted")
    if obj.receptions != slotted.receptions:
        raise SimulationError(
            f"kernel parity violated: object kernel processed "
            f"{obj.receptions} receptions, slotted {slotted.receptions}"
        )
    return SlottedMicrobenchResult(
        nodes=nodes,
        messages=messages,
        receptions=obj.receptions,
        object_receptions_per_sec=obj.receptions_per_sec,
        slotted_receptions_per_sec=slotted.receptions_per_sec,
    )


# ----------------------------------------------------------------------
# Vectorized microbenchmark: slotted kernel vs numpy batch kernel
# ----------------------------------------------------------------------
@dataclass
class VectorizedMicrobenchResult:
    """Same-machine flood delivery throughput at scale: the slotted
    (pure-python flat-array) kernel vs the vectorized (numpy batch-drain)
    kernel (DESIGN.md §12).  Like :class:`SlottedMicrobenchResult`, the
    unit is *receptions* per second over the full ``repro scale``-shaped
    dissemination loop."""

    nodes: int
    messages: int
    #: Receptions processed per run — identical on both sides by the
    #: kernel-parity guarantee (checked at measurement time).
    receptions: int
    slotted_receptions_per_sec: float
    vectorized_receptions_per_sec: float

    @property
    def speedup(self) -> float:
        """Per-reception throughput ratio (the acceptance metric)."""
        return self.vectorized_receptions_per_sec / max(
            self.slotted_receptions_per_sec, 1e-9
        )

    def to_dict(self) -> dict:
        d = asdict(self)
        d["speedup"] = self.speedup
        return d

    def summary(self) -> str:
        return "\n".join(
            [
                f"workload: {self.nodes} nodes x {self.messages} messages "
                f"({self.receptions:,} receptions)",
                f"slotted kernel:    {self.slotted_receptions_per_sec:,.0f} receptions/s",
                f"vectorized kernel: {self.vectorized_receptions_per_sec:,.0f} receptions/s",
                f"speedup: {self.speedup:.2f}x",
            ]
        )


def vectorized_microbench(
    nodes: int = 10_000, messages: int = 20, *,
    degree: int = 5, rate: float = 20.0, seed: int = 3, repeats: int = 2,
) -> VectorizedMicrobenchResult:
    """Measure the slotted flood kernel against the vectorized kernel.

    Both sides run the *identical* xl-shaped scenario — same seed, same
    synthesized overlay, same injection schedule, draw-for-draw the same
    simulation — so the reception count must match exactly (verified
    here; the full parity surface is pinned by
    tests/test_slotted_parity.py).  The best of ``repeats`` runs is kept
    per side.  Requires numpy (the vectorized side raises a
    :class:`SimulationError` without it).

    The timed runs execute with the caller's surviving heap frozen out
    of the collector (``gc.freeze``): gen-2 scans cost the same
    *absolute* time in either kernel, so a long-lived process full of
    unrelated objects (a pytest session deep into the suite) taxes the
    faster side proportionally more and deflates the ratio.  GC stays
    enabled, so garbage the run itself creates is still collected.
    """

    def one(kernel: str) -> ScaleFloodResult:
        gc.collect()
        gc.freeze()
        try:
            return run_scale_flood(
                nodes, messages, degree=degree, rate=rate, seed=seed,
                kernel=kernel,
            )
        finally:
            gc.unfreeze()

    def best(kernel: str) -> ScaleFloodResult:
        return max(
            (one(kernel) for _ in range(repeats)),
            key=lambda r: r.receptions_per_sec,
        )

    slotted = best("slotted")
    vectorized = best("vectorized")
    if slotted.receptions != vectorized.receptions:
        raise SimulationError(
            f"kernel parity violated: slotted kernel processed "
            f"{slotted.receptions} receptions, vectorized {vectorized.receptions}"
        )
    return VectorizedMicrobenchResult(
        nodes=nodes,
        messages=messages,
        receptions=slotted.receptions,
        slotted_receptions_per_sec=slotted.receptions_per_sec,
        vectorized_receptions_per_sec=vectorized.receptions_per_sec,
    )


# ----------------------------------------------------------------------
# Multi-stream microbenchmark: K concurrent streams vs one (DESIGN.md §10)
# ----------------------------------------------------------------------
@dataclass
class MultistreamMicrobenchResult:
    """Per-reception efficiency of the slotted kernel under concurrent
    sources: aggregate receptions/s with ``streams`` publishers active
    vs a single publisher on the identical overlay and stream shape.

    Per-stream slot planes exist so K streams stay on the array path; if
    they do, the cost of a reception must not depend on how many other
    streams are in flight, and ``efficiency`` — the aggregate-throughput
    ratio — stays near 1.0 (the acceptance gate is >= 0.5).
    """

    nodes: int
    messages: int
    streams: int
    single_receptions: int
    multi_receptions: int
    single_receptions_per_sec: float
    multi_receptions_per_sec: float

    #: The K-stream run kept for BENCH reporting (not part of to_dict).
    multi_result: Optional[ScaleFloodResult] = None

    @property
    def efficiency(self) -> float:
        """Per-reception throughput retained at K streams (the
        acceptance metric): aggregate multi-stream receptions/s over the
        single-stream rate."""
        return self.multi_receptions_per_sec / max(
            self.single_receptions_per_sec, 1e-9
        )

    def to_dict(self) -> dict:
        return {
            "nodes": self.nodes,
            "messages": self.messages,
            "streams": self.streams,
            "single_receptions": self.single_receptions,
            "multi_receptions": self.multi_receptions,
            "single_receptions_per_sec": self.single_receptions_per_sec,
            "multi_receptions_per_sec": self.multi_receptions_per_sec,
            "efficiency": self.efficiency,
        }

    def summary(self) -> str:
        return "\n".join(
            [
                f"workload: {self.nodes} nodes x {self.messages} messages/stream "
                f"(slotted kernel)",
                f"1 stream:  {self.single_receptions_per_sec:,.0f} receptions/s "
                f"({self.single_receptions:,} receptions)",
                f"{self.streams} streams: {self.multi_receptions_per_sec:,.0f} "
                f"receptions/s aggregate ({self.multi_receptions:,} receptions)",
                f"per-stream efficiency: {self.efficiency:.2f}x",
            ]
        )


def multistream_microbench(
    nodes: int = 10_000, messages: int = 10, *,
    streams: int = 8, degree: int = 5, rate: float = 20.0, seed: int = 3,
    repeats: int = 2,
) -> MultistreamMicrobenchResult:
    """Measure the slotted kernel's per-reception throughput at
    ``streams`` concurrent publishers against a single publisher.

    Both sides run the same seed, overlay and per-stream injection
    schedule — the K-stream side simply drives K sources spread over the
    population — so the comparison isolates the cost of concurrent
    slot planes.  The best of ``repeats`` runs is kept per side.
    """

    def best(k: int) -> ScaleFloodResult:
        return max(
            (
                run_scale_flood(
                    nodes, messages, degree=degree, rate=rate, seed=seed,
                    kernel="slotted", streams=k,
                )
                for _ in range(repeats)
            ),
            key=lambda r: r.receptions_per_sec,
        )

    single = best(1)
    multi = best(streams)
    return MultistreamMicrobenchResult(
        nodes=nodes,
        messages=messages,
        streams=streams,
        single_receptions=single.receptions,
        multi_receptions=multi.receptions,
        single_receptions_per_sec=single.receptions_per_sec,
        multi_receptions_per_sec=multi.receptions_per_sec,
        multi_result=multi,
    )
