"""Network-property scenarios: routing delays and bandwidth (§III-B).

Fig. 9 compares per-node cumulative routing delays on PlanetLab for a
point-to-point ideal, the two parent-selection strategies and plain
flooding.  Figs. 10–11 measure per-node download/upload rates for the
four structure configurations across payload sizes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.config import BrisaConfig, HyParViewConfig, StreamConfig
from repro.experiments.common import build_brisa_testbed, build_flood_testbed
from repro.experiments.scale import Scale, get_scale
from repro.experiments.structural import STRUCTURE_CONFIGS
from repro.metrics.bandwidth import phase_bandwidth_summary
from repro.metrics.stats import CDF
from repro.sim.latency import PlanetLabLatency
from repro.sim.monitor import DISSEMINATION


# ----------------------------------------------------------------------
# Fig. 9 — routing delays on PlanetLab
# ----------------------------------------------------------------------
@dataclass
class Fig9Result:
    """Per-series CDF of routing delays (seconds)."""

    series: dict[str, CDF] = field(default_factory=dict)
    nodes: int = 0


def _delay_cdf(bed, source, stream_count: int) -> CDF:
    """Cumulative per-hop delay of each node's deliveries (Fig. 9 uses the
    sum of hop RTT measurements from root to node)."""
    delays = []
    for seq in range(stream_count):
        for nid, rec in bed.metrics.deliveries.get((0, seq), {}).items():
            if nid != source.node_id:
                delays.append(rec.path_delay)
    return CDF.of(delays)


def fig9_routing_delays(
    scale: Scale | str | None = None, *, seed: int = 4
) -> Fig9Result:
    """Routing-delay CDFs for point-to-point, delay-aware, first-pick and
    flooding on the synthetic PlanetLab model (Fig. 9: 150 nodes, tree,
    view 4, 200 x 1 KB messages)."""
    sc = scale if isinstance(scale, Scale) else get_scale(scale)
    n = sc.planetlab_nodes
    messages = min(200, sc.messages * 2)
    hpv = HyParViewConfig(active_size=4)
    stream = StreamConfig(count=messages, rate=5.0, payload_bytes=1024)
    result = Fig9Result(nodes=n)

    for label, strategy in (("first-pick", "first-come"), ("delay-aware", "delay-aware")):
        latency = PlanetLabLatency(seed=seed)
        cfg = BrisaConfig(strategy=strategy)
        bed = build_brisa_testbed(
            n,
            seed=seed,
            config=cfg,
            hpv_config=hpv,
            latency=latency,
            join_spacing=sc.join_spacing,
            settle=sc.settle,
        )
        source = bed.choose_source()
        bed.run_stream(source, stream, drain=30.0)
        result.series[label] = _delay_cdf(bed, source, messages)
        if "point-to-point" not in result.series:
            # Ideal: the direct one-way delay from the source to each node.
            result.series["point-to-point"] = CDF.of(
                latency.expected_owd(source.node_id, node.node_id)
                for node in bed.alive_nodes()
                if node is not source
            )

    latency = PlanetLabLatency(seed=seed)
    bed = build_flood_testbed(
        n,
        seed=seed,
        hpv_config=hpv,
        latency=latency,
        join_spacing=sc.join_spacing,
        settle=sc.settle,
    )
    source = bed.choose_source()
    bed.run_stream(source, stream, drain=30.0)
    result.series["flood"] = _delay_cdf(bed, source, messages)
    return result


# ----------------------------------------------------------------------
# Figs. 10 & 11 — bandwidth percentiles per configuration x payload
# ----------------------------------------------------------------------
@dataclass
class BandwidthResult:
    """(configuration label, payload KB) -> percentile dict (KB/s)."""

    download: dict[tuple[str, int], dict[int, float]] = field(default_factory=dict)
    upload: dict[tuple[str, int], dict[int, float]] = field(default_factory=dict)
    nodes: int = 0


def fig10_fig11_bandwidth(
    scale: Scale | str | None = None,
    *,
    payload_kb: tuple[int, ...] = (1, 10, 50, 100),
    seed: int = 5,
) -> BandwidthResult:
    """Per-node download (Fig. 10) and upload (Fig. 11) rates during
    dissemination, as the 5/25/50/75/90th percentile stacks."""
    sc = scale if isinstance(scale, Scale) else get_scale(scale)
    result = BandwidthResult(nodes=sc.cluster_nodes)
    messages = max(50, sc.messages // 2)
    for label, mode, parents, view in STRUCTURE_CONFIGS:
        for kb in payload_kb:
            cfg = BrisaConfig(
                mode=mode,
                num_parents=parents,
                cycle_predictor=BrisaConfig.default_predictor(mode),
            )
            hpv = HyParViewConfig(active_size=view)
            bed = build_brisa_testbed(
                sc.cluster_nodes,
                seed=seed,
                config=cfg,
                hpv_config=hpv,
                join_spacing=sc.join_spacing,
                settle=sc.settle,
                record_deliveries=False,
            )
            source = bed.choose_source()
            stream = StreamConfig(count=messages, rate=5.0, payload_bytes=kb * 1024)
            bed.run_stream(source, stream)
            receivers = [x for x in bed.alive_ids() if x != source.node_id]
            result.download[(label, kb)] = phase_bandwidth_summary(
                bed.metrics, receivers, DISSEMINATION, "received"
            )
            result.upload[(label, kb)] = phase_bandwidth_summary(
                bed.metrics, receivers, DISSEMINATION, "sent"
            )
    return result
