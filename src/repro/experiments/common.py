"""Testbed builder and stream driver shared by all experiments.

The shape of every experiment in §III is the same: bootstrap ``n`` nodes
(Listing 1's join ramp), let the overlay stabilize, pick a source, switch
the metrics phase to *dissemination*, inject ``count`` messages at
``rate``/s, and run until the stream drains.  :class:`Testbed` implements
that shape once, for any protocol stack exposing the common node API
(``join(contact)`` + ``inject(stream, seq, payload_bytes)``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.config import BrisaConfig, HyParViewConfig, StreamConfig
from repro.core.brisa import BrisaNode
from repro.errors import SimulationError
from repro.experiments import bootstrap as bootstrap_mod
from repro.core.structure import extract_structure, is_complete_structure
from repro.ids import NodeId, StreamId
from repro.sim.engine import Simulator
from repro.sim.latency import ClusterLatency, LatencyModel
from repro.sim.monitor import DISSEMINATION, STABILIZATION, Metrics
from repro.sim.network import Network

NodeFactory = Callable[[Network, NodeId], object]


class Testbed:
    """A populated simulation ready to disseminate streams."""

    def __init__(
        self,
        *,
        seed: int = 1,
        latency: Optional[LatencyModel] = None,
        keepalive_period: float = 1.0,
        record_deliveries: bool = True,
        loss_percent: float = 0.0,
    ) -> None:
        self.sim = Simulator(seed=seed)
        self.metrics = Metrics(record_deliveries=record_deliveries)
        self.network = Network(
            self.sim,
            latency if latency is not None else ClusterLatency(seed=seed),
            self.metrics,
            keepalive_period=keepalive_period,
            loss_percent=loss_percent,
        )
        self.nodes: list = []
        #: CSRTopology of the last synthesized bootstrap (None otherwise);
        #: array-backed kernels bulk-install their adjacency rows from it
        #: instead of re-deriving per-node views (DESIGN.md §9/§11).
        self.last_topology = None
        self._factory: Optional[NodeFactory] = None
        self._join_rng = self.sim.rng("testbed-joins")

    # ------------------------------------------------------------------
    # Population
    # ------------------------------------------------------------------
    def populate(
        self,
        n: int,
        factory: NodeFactory,
        *,
        join_spacing: float = 0.05,
        settle: float = 30.0,
        join_first: bool = False,
        bootstrap: "str | object" = "simulated",
        degree: Optional[int] = None,
        topology: str = "uniform",
        validate: bool = False,
        defer_timers: bool = False,
    ) -> "Testbed":
        """Bootstrap ``n`` nodes into an overlay.

        ``bootstrap`` selects how (DESIGN.md §7):

        - ``"simulated"`` (default) — Listing 1's join ramp: the first
          node stands alone, the rest join through uniformly random
          existing contacts, one every ``join_spacing`` seconds, then
          ``settle`` seconds of quiet.  The settle deadline is relative
          to the *current* clock, so repeated ``populate`` calls (or one
          after a prior ``run``) settle fully instead of under-running.
        - ``"synthesized"`` — wire a HyParView-convergent topology
          directly into node state in O(n), no simulated joins.  Only
          valid for HyParView stacks; ``degree`` overrides the target
          mean degree, ``validate`` audits the result.
        - a path (``str``/``Path`` naming a file) — rehydrate a
          checkpoint written by :meth:`save_overlay`.

        ``join_first`` also runs the join procedure for the very first
        node — needed by protocols with an explicit registry (SimpleTree's
        coordinator, TAG's tracker); it is incompatible with synthesized
        bootstraps, which never touch a registry.

        ``defer_timers`` (synthesized/checkpoint bootstraps only) spawns
        the nodes with their periodic timers created but not armed, so
        wiring a 100k-node benchmark overlay schedules zero shuffle
        events (DESIGN.md §8); arm them later with :meth:`start_timers`
        if the run needs live shuffles."""
        if n < 1:
            raise ValueError("need at least one node")
        self._factory = factory
        if bootstrap == "simulated" and degree is not None:
            raise ValueError(
                "degree only applies to synthesized bootstraps; the "
                "simulated join ramp converges on HyParViewConfig alone"
            )
        if bootstrap == "simulated" and topology != "uniform":
            raise ValueError(
                "--topology applies to synthesized bootstraps only; the "
                "simulated join ramp always converges on the HyParView-"
                "uniform overlay"
            )
        if bootstrap != "simulated":
            if join_first:
                raise ValueError(
                    "synthesized/checkpointed bootstrap cannot run registry "
                    "joins (join_first)"
                )
            return self._populate_direct(
                n, factory, bootstrap, degree, topology, validate, defer_timers
            )
        if defer_timers:
            # The ramp needs live timers: shuffle integration re-arms
            # promotion episodes during convergence (DESIGN.md §7).
            raise ValueError("defer_timers requires a synthesized/checkpoint bootstrap")
        start = 0
        if not self.nodes:
            # Only the very first node of an *empty* testbed stands alone;
            # later populate calls join every new node through existing
            # contacts (a second batch's first node must not end up
            # isolated from the overlay).
            first = self.network.spawn(factory)
            self.nodes.append(first)
            if join_first:
                first.join(first.node_id)
            start = 1
        for i in range(start, n):
            self.sim.schedule(i * join_spacing, self._join_one)
        self.sim.run(until=self.sim.now + n * join_spacing + settle)
        if validate:
            bootstrap_mod.assert_valid_overlay(self.nodes)
        return self

    def _populate_direct(
        self,
        n: int,
        factory: NodeFactory,
        bootstrap: "str | object",
        degree: Optional[int],
        topology: str,
        validate: bool,
        defer_timers: bool,
    ) -> "Testbed":
        """Synthesized or checkpoint-restored population (no join ramp)."""
        checkpoint = None
        if bootstrap != "synthesized":
            if topology != "uniform":
                raise ValueError(
                    "--topology applies to synthesized bootstraps only; a "
                    "checkpoint already fixes the overlay shape"
                )
            # Load (and size-check) before spawning anything: a bad
            # checkpoint must not leave orphan nodes with live shuffle
            # timers registered in the network.
            checkpoint = bootstrap_mod.load_overlay(bootstrap)
            if checkpoint.n != n:
                raise SimulationError(
                    f"checkpoint holds {checkpoint.n} nodes, populate asked for {n}"
                )
        network = self.network
        if defer_timers:
            prior = network.autostart_timers
            network.autostart_timers = False
            try:
                spawned = network.spawn_many(factory, n)
            finally:
                network.autostart_timers = prior
        else:
            spawned = network.spawn_many(factory, n)
        if checkpoint is None:
            self.last_topology = bootstrap_mod.synthesize_overlay(
                spawned, network, rng=self.sim.rng("synth-overlay"),
                degree=degree, topology=topology,
            )
        else:
            bootstrap_mod.install_checkpoint(spawned, network, checkpoint)
        self.nodes.extend(spawned)
        if validate:
            bootstrap_mod.assert_valid_overlay(spawned)
        return self

    def save_overlay(self, path) -> None:
        """Checkpoint the current overlay (active/passive views) to JSON;
        rehydrate with ``populate(n, factory, bootstrap=path)``."""
        bootstrap_mod.save_overlay(self.alive_nodes(), path)

    def start_timers(self) -> "Testbed":
        """Arm every node's periodic timers — the counterpart of a
        ``populate(..., defer_timers=True)`` bootstrap when the run does
        need live shuffles after all.  ``PeriodicTask.start`` is
        idempotent, so already-armed timers are untouched."""
        for node in self.nodes:
            node.start_timers()
        return self

    def stop_shuffles(self) -> "Testbed":
        """Stop every node's passive-view shuffle timer.  Static-overlay
        benchmark runs use this so a drained heap marks the exact end of
        dissemination (there is no churn for shuffles to repair)."""
        for node in self.nodes:
            task = getattr(node, "_shuffle_task", None)
            if task is not None:
                task.stop()
        return self

    def _join_one(self):
        node = self.network.spawn(self._factory)
        contacts = [x.node_id for x in self.nodes if x.alive]
        if contacts:
            node.join(self._join_rng.choice(contacts))
        self.nodes.append(node)
        return node

    def spawn_joiner(self):
        """Create + join one more node (used as ChurnDriver's join_fn)."""
        return self._join_one()

    # ------------------------------------------------------------------
    # Views over the population
    # ------------------------------------------------------------------
    def alive_nodes(self) -> list:
        return [n for n in self.nodes if n.alive]

    def alive_ids(self) -> list[NodeId]:
        return [n.node_id for n in self.nodes if n.alive]

    def node(self, node_id: NodeId):
        return self.network.nodes[node_id]

    def choose_source(self, label: str = "source"):
        """Pick the stream source uniformly at random (§III: "randomly
        choose a node to be the source across all the experiment")."""
        rng = self.sim.rng(label)
        return rng.choice(self.alive_nodes())

    # ------------------------------------------------------------------
    # Stream driving
    # ------------------------------------------------------------------
    def start_stream(
        self,
        source,
        stream_cfg: StreamConfig,
        *,
        mark_phase: bool = True,
    ) -> None:
        """Schedule the injections of one stream starting now."""
        if mark_phase:
            self.metrics.set_phase(DISSEMINATION, self.sim.now)
        if hasattr(source, "become_source"):
            source.become_source(stream_cfg.stream_id)
        for seq in range(stream_cfg.count):
            self.sim.schedule(
                seq / stream_cfg.rate,
                source.inject,
                stream_cfg.stream_id,
                seq,
                stream_cfg.payload_bytes,
            )

    def run_stream(
        self,
        source,
        stream_cfg: StreamConfig,
        *,
        drain: float = 10.0,
        account_keepalives: bool = True,
    ) -> "RunResult":
        """Inject a full stream and run until it drains."""
        start = self.sim.now
        self.start_stream(source, stream_cfg)
        self.sim.run(until=start + stream_cfg.duration + drain)
        self.metrics.close(self.sim.now)
        if account_keepalives:
            self.network.account_keepalives(DISSEMINATION, self.sim.now - start)
        return RunResult(self, source, stream_cfg)

    def run(self, until: float) -> None:
        self.sim.run(until=until)


@dataclass
class RunResult:
    """Outcome of one stream dissemination over a testbed."""

    testbed: Testbed
    source: object
    stream_cfg: StreamConfig

    # ------------------------------------------------------------------
    @property
    def metrics(self) -> Metrics:
        return self.testbed.metrics

    def receivers(self) -> list[NodeId]:
        """All live nodes except the source."""
        src = self.source.node_id
        return [n for n in self.testbed.alive_ids() if n != src]

    def delivered_fraction(self) -> float:
        """Fraction of (message, receiver) pairs delivered."""
        return self.metrics.delivered_fraction(
            self.stream_cfg.stream_id,
            self.receivers(),
            window=(0, self.stream_cfg.count),
        )

    def duplicates_per_node(self) -> list[int]:
        return self.metrics.duplicates_per_node(self.receivers())

    def structure(self):
        """The emerged parent->child structure (BRISA stacks only)."""
        return extract_structure(self.testbed.alive_nodes(), self.stream_cfg.stream_id)

    def structure_ok(self) -> tuple[bool, str]:
        g = self.structure()
        return is_complete_structure(
            g, self.source.node_id, set(self.testbed.alive_ids())
        )

    def summary(self) -> str:
        frac = self.delivered_fraction()
        dups = self.duplicates_per_node()
        mean_dups = sum(dups) / len(dups) if dups else 0.0
        lines = [
            f"nodes: {len(self.testbed.alive_ids())}",
            f"messages: {self.stream_cfg.count} x {self.stream_cfg.payload_bytes} B",
            f"delivered: {frac * 100:.2f}%",
            f"duplicates/node (mean): {mean_dups:.2f}",
        ]
        if isinstance(self.source, BrisaNode):
            ok, reason = self.structure_ok()
            lines.append(f"structure: {'complete/acyclic' if ok else reason}")
        return "\n".join(lines)


def brisa_factory(
    config: Optional[BrisaConfig] = None,
    hpv_config: Optional[HyParViewConfig] = None,
    *,
    kernel=None,
) -> NodeFactory:
    """Node factory for BRISA stacks.

    ``kernel`` (a :class:`~repro.core.brisa_slotted.SlottedBrisaKernel`
    bound to the testbed's network) switches the stack to the slotted
    array kernel; nodes attach to its slot planes at spawn."""
    cfg = config if config is not None else BrisaConfig()
    hpv = hpv_config if hpv_config is not None else HyParViewConfig()
    if kernel is not None:
        from repro.core.brisa_slotted import SlottedBrisaNode

        return lambda network, nid: SlottedBrisaNode(
            network, nid, cfg, hpv, kernel=kernel
        )
    return lambda network, nid: BrisaNode(network, nid, cfg, hpv)


def build_brisa_testbed(
    n: int,
    *,
    seed: int = 1,
    config: Optional[BrisaConfig] = None,
    hpv_config: Optional[HyParViewConfig] = None,
    latency: Optional[LatencyModel] = None,
    join_spacing: float = 0.05,
    settle: float = 30.0,
    record_deliveries: bool = True,
    bootstrap: "str | object" = "simulated",
) -> Testbed:
    """One-call BRISA testbed used by most scenarios and tests."""
    bed = Testbed(seed=seed, latency=latency, record_deliveries=record_deliveries)
    bed.populate(
        n,
        brisa_factory(config, hpv_config),
        join_spacing=join_spacing,
        settle=settle,
        bootstrap=bootstrap,
    )
    return bed


def build_flood_testbed(
    n: int,
    *,
    seed: int = 1,
    hpv_config: Optional[HyParViewConfig] = None,
    latency: Optional[LatencyModel] = None,
    join_spacing: float = 0.05,
    settle: float = 30.0,
    record_deliveries: bool = True,
    bootstrap: "str | object" = "simulated",
) -> Testbed:
    """Pure-flooding stack over HyParView (Fig. 2 baseline)."""
    from repro.baselines.flood import FloodNode

    hpv = hpv_config if hpv_config is not None else HyParViewConfig()
    bed = Testbed(seed=seed, latency=latency, record_deliveries=record_deliveries)
    bed.populate(
        n,
        lambda network, nid: FloodNode(network, nid, hpv),
        join_spacing=join_spacing,
        settle=settle,
        bootstrap=bootstrap,
    )
    return bed


def build_gossip_testbed(
    n: int,
    *,
    seed: int = 1,
    gossip_config=None,
    anti_entropy_period: float = 0.1,
    latency: Optional[LatencyModel] = None,
    join_spacing: float = 0.05,
    settle: float = 60.0,
    record_deliveries: bool = True,
) -> Testbed:
    """SimpleGossip stack (Cyclon + rumor mongering + anti-entropy)."""
    from repro.baselines.simplegossip import SimpleGossipNode
    from repro.config import GossipConfig

    cfg = gossip_config if gossip_config is not None else GossipConfig()
    bed = Testbed(seed=seed, latency=latency, record_deliveries=record_deliveries)
    bed.populate(
        n,
        lambda network, nid: SimpleGossipNode(
            network, nid, cfg, anti_entropy_period=anti_entropy_period
        ),
        join_spacing=join_spacing,
        settle=settle,
    )
    return bed


def build_simpletree_testbed(
    n: int,
    *,
    seed: int = 1,
    tree_config=None,
    latency: Optional[LatencyModel] = None,
    join_spacing: float = 0.05,
    settle: float = 10.0,
    record_deliveries: bool = True,
):
    """SimpleTree stack; returns (testbed, coordinator node)."""
    from repro.baselines.simpletree import SimpleTreeCoordinator, SimpleTreeNode
    from repro.config import SimpleTreeConfig

    cfg = tree_config if tree_config is not None else SimpleTreeConfig()
    bed = Testbed(seed=seed, latency=latency, record_deliveries=record_deliveries)
    coordinator = bed.network.spawn(
        lambda network, nid: SimpleTreeCoordinator(network, nid, cfg)
    )
    bed.populate(
        n,
        lambda network, nid: SimpleTreeNode(network, nid, coordinator.node_id),
        join_spacing=join_spacing,
        settle=settle,
        join_first=True,
    )
    return bed, coordinator


def build_tag_testbed(
    n: int,
    *,
    seed: int = 1,
    tag_config=None,
    latency: Optional[LatencyModel] = None,
    join_spacing: float = 0.1,
    settle: float = 30.0,
    record_deliveries: bool = True,
):
    """TAG stack; returns (testbed, tracker).  The natural stream source
    is the list head / tree root: ``bed.nodes[0]``."""
    from repro.baselines.tag import TagNode, TagTracker
    from repro.config import TagConfig

    cfg = tag_config if tag_config is not None else TagConfig()
    tracker = TagTracker()
    bed = Testbed(seed=seed, latency=latency, record_deliveries=record_deliveries)
    bed.populate(
        n,
        lambda network, nid: TagNode(network, nid, tracker, cfg),
        join_spacing=join_spacing,
        settle=settle,
        join_first=True,
    )
    return bed, tracker


def quick_brisa_run(
    n: int = 64,
    messages: int = 50,
    *,
    seed: int = 1,
    payload_bytes: int = 1024,
    rate: float = 5.0,
    config: Optional[BrisaConfig] = None,
) -> RunResult:
    """Library quickstart: bootstrap, disseminate, return the result."""
    bed = build_brisa_testbed(n, seed=seed, config=config)
    source = bed.choose_source()
    stream = StreamConfig(count=messages, rate=rate, payload_bytes=payload_bytes)
    return bed.run_stream(source, stream)
