"""Cross-protocol comparison scenarios: Figs. 12–13, Table II (§III-D).

Four protocols spanning the design spectrum — SimpleTree (efficiency),
SimpleGossip (robustness), TAG (hybrid, pull) and BRISA (hybrid, push) —
measured for total bandwidth, structure construction time and
dissemination latency.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

from repro.config import (
    BrisaConfig,
    GossipConfig,
    HyParViewConfig,
    StreamConfig,
    TagConfig,
)
from repro.experiments.common import (
    build_brisa_testbed,
    build_gossip_testbed,
    build_simpletree_testbed,
    build_tag_testbed,
)
from repro.experiments.scale import Scale, get_scale
from repro.metrics.bandwidth import stacked_phases_mb
from repro.metrics.stats import CDF
from repro.sim.latency import ClusterLatency, PlanetLabLatency
from repro.sim.monitor import DISSEMINATION, STABILIZATION

PROTOCOLS = ("SimpleTree", "BRISA", "SimpleGossip", "TAG")

#: TAG's pull capacity is pull_batch/pull_period + gossip prefetch; the
#: paper's 2x latency comes from that capacity sitting *below* the 5/s
#: injection rate, so the backlog drains only after injection ends.
_TAG_CFG = TagConfig(pull_period=0.4, pull_batch=1, gossip_pull_period=2.0)


def _tag_drain(messages: int) -> float:
    capacity = (
        _TAG_CFG.pull_batch / _TAG_CFG.pull_period
        + _TAG_CFG.pull_batch / _TAG_CFG.gossip_pull_period
    )
    return messages / capacity + 30.0


def _build(protocol: str, n: int, seed: int, sc: Scale, latency=None):
    """Build one protocol stack; returns (testbed, source)."""
    if protocol == "SimpleTree":
        bed, coord = build_simpletree_testbed(
            n, seed=seed, latency=latency,
            join_spacing=sc.join_spacing, settle=sc.settle / 2,
        )
        return bed, bed.choose_source()
    if protocol == "BRISA":
        bed = build_brisa_testbed(
            n, seed=seed, config=BrisaConfig(),
            hpv_config=HyParViewConfig(active_size=4), latency=latency,
            join_spacing=sc.join_spacing, settle=sc.settle,
        )
        return bed, bed.choose_source()
    if protocol == "SimpleGossip":
        bed = build_gossip_testbed(
            n, seed=seed, gossip_config=GossipConfig(),
            anti_entropy_period=1.0 / (2 * 5.0), latency=latency,
            join_spacing=sc.join_spacing, settle=sc.settle,
        )
        return bed, bed.choose_source()
    if protocol == "TAG":
        bed, tracker = build_tag_testbed(
            n, seed=seed,
            tag_config=_TAG_CFG, latency=latency,
            join_spacing=max(sc.join_spacing, 0.1), settle=sc.settle,
        )
        return bed, bed.nodes[0]  # TAG pulls flow child->parent: root source
    raise ValueError(f"unknown protocol {protocol!r}")


# ----------------------------------------------------------------------
# Fig. 12 — stabilization + dissemination bandwidth per protocol
# ----------------------------------------------------------------------
@dataclass
class Fig12Result:
    """protocol -> payload KB -> {'stabilization': MB, 'dissemination': MB}."""

    data: dict[str, dict[int, dict[str, float]]] = field(default_factory=dict)
    nodes: int = 0

    def total(self, protocol: str, kb: int) -> float:
        d = self.data[protocol][kb]
        return d[STABILIZATION] + d[DISSEMINATION]


def fig12_bandwidth_comparison(
    scale: Scale | str | None = None,
    *,
    payload_kb: tuple[int, ...] = (0, 1, 10, 20),
    seed: int = 8,
) -> Fig12Result:
    """Average data transmitted per node, split into stabilization and
    dissemination phases, per protocol and payload size (Fig. 12)."""
    sc = scale if isinstance(scale, Scale) else get_scale(scale)
    n = sc.cluster_nodes
    messages = sc.messages
    result = Fig12Result(nodes=n)
    for protocol in PROTOCOLS:
        per_payload: dict[int, dict[str, float]] = {}
        for kb in payload_kb:
            bed, source = _build(protocol, n, seed, sc)
            stream = StreamConfig(count=messages, rate=5.0, payload_bytes=kb * 1024)
            drain = _tag_drain(messages) if protocol == "TAG" else 20.0
            bed.run_stream(source, stream, drain=drain)
            nodes = [x for x in bed.alive_ids()]
            stacked = stacked_phases_mb(bed.metrics, nodes)
            if protocol == "SimpleGossip":
                # §III-D: "As SimpleGossip does not use any structure we
                # represent all the bandwidth consumed under dissemination."
                stacked = {
                    STABILIZATION: 0.0,
                    DISSEMINATION: stacked[STABILIZATION] + stacked[DISSEMINATION],
                }
            per_payload[kb] = stacked
        result.data[protocol] = per_payload
    return result


# ----------------------------------------------------------------------
# Fig. 13 — construction time on cluster and PlanetLab
# ----------------------------------------------------------------------
@dataclass
class Fig13Result:
    """(protocol, environment) -> CDF of construction time (seconds)."""

    series: dict[tuple[str, str], CDF] = field(default_factory=dict)


def fig13_construction(
    scale: Scale | str | None = None, *, seed: int = 9
) -> Fig13Result:
    """Structure construction time for BRISA (first deactivation until all
    inbound links but one are deactivated) vs TAG (join until the list
    position settles), on both testbeds (Fig. 13)."""
    sc = scale if isinstance(scale, Scale) else get_scale(scale)
    result = Fig13Result()
    environments = (
        ("cluster", sc.cluster_nodes, lambda: ClusterLatency(seed=seed)),
        ("PlanetLab", sc.planetlab_nodes_large, lambda: PlanetLabLatency(seed=seed)),
    )
    for env, n, latency_factory in environments:
        # BRISA: run a short stream so the structure emerges.
        bed = build_brisa_testbed(
            n, seed=seed, config=BrisaConfig(),
            hpv_config=HyParViewConfig(active_size=4),
            latency=latency_factory(),
            join_spacing=sc.join_spacing, settle=sc.settle,
            record_deliveries=False,
        )
        source = bed.choose_source()
        bed.run_stream(source, StreamConfig(count=30, rate=5.0, payload_bytes=1024))
        result.series[("BRISA", env)] = CDF.of(
            p.duration for p in bed.metrics.construction_probes
        )
        # TAG: probes are recorded during the join traversal itself.  The
        # content-readiness age is expressed in join periods so the
        # traversal length (age / spacing) matches the paper's trace
        # (1 join/s with a ~3 s readiness horizon => a few hops back).
        tag_spacing = max(sc.join_spacing, 0.1)
        tag_cfg = TagConfig(
            pull_period=_TAG_CFG.pull_period,
            pull_batch=_TAG_CFG.pull_batch,
            gossip_pull_period=_TAG_CFG.gossip_pull_period,
            min_parent_age=8 * tag_spacing,
        )
        bed, tracker = build_tag_testbed(
            n, seed=seed, tag_config=tag_cfg, latency=latency_factory(),
            join_spacing=tag_spacing, settle=sc.settle,
            record_deliveries=False,
        )
        result.series[("TAG", env)] = CDF.of(
            p.duration for p in bed.metrics.construction_probes
        )
    return result


# ----------------------------------------------------------------------
# Table II — dissemination latency
# ----------------------------------------------------------------------
@dataclass
class Table2Result:
    """protocol -> mean per-node dissemination span (seconds)."""

    latency: dict[str, float] = field(default_factory=dict)
    delivered: dict[str, float] = field(default_factory=dict)
    ideal: float = 0.0

    def overhead(self, protocol: str) -> float:
        base = self.latency.get("SimpleTree")
        if not base:
            return math.nan
        return self.latency[protocol] / base - 1.0


def _mean_span(bed, source, stream: StreamConfig) -> tuple[float, float]:
    """Mean over nodes of (last reception - first reception); §III-D's
    dissemination latency.  Also returns the delivered fraction
    (via the sharded :meth:`Metrics.delivered_fraction`)."""
    spans = []
    receivers = [nid for nid in bed.alive_ids() if nid != source.node_id]
    for nid in receivers:
        times = [
            rec.time
            for seq in range(stream.count)
            for rec in [bed.metrics.deliveries.get((stream.stream_id, seq), {}).get(nid)]
            if rec is not None
        ]
        if len(times) >= 2:
            spans.append(max(times) - min(times))
    mean_span = sum(spans) / len(spans) if spans else 0.0
    delivered = bed.metrics.delivered_fraction(
        stream.stream_id, receivers, window=(0, stream.count)
    )
    return mean_span, delivered


def table2_latency(
    scale: Scale | str | None = None, *, seed: int = 10
) -> Table2Result:
    """Table II: mean dissemination latency per protocol for the 1 KB
    stream (500 x 1 KB at 5/s at paper scale)."""
    sc = scale if isinstance(scale, Scale) else get_scale(scale)
    n = sc.cluster_nodes
    stream = StreamConfig(count=sc.messages, rate=5.0, payload_bytes=1024)
    result = Table2Result(ideal=stream.duration)
    for protocol in PROTOCOLS:
        bed, source = _build(protocol, n, seed, sc)
        drain = _tag_drain(stream.count) if protocol == "TAG" else 60.0
        bed.run_stream(source, stream, drain=drain)
        span, delivered = _mean_span(bed, source, stream)
        result.latency[protocol] = span
        result.delivered[protocol] = delivered
    return result
