"""Experiment scales: paper-faithful population sizes vs fast CI sizes.

``paper`` reproduces the published populations and message counts (§III:
512 cluster nodes, 150–200 PlanetLab nodes, 500 messages at 5/s, 10 min
of churn).  ``fast`` shrinks everything shape-preservingly so the whole
bench suite completes in minutes.  ``large`` (2k), ``xl`` (10k) and
``xxl`` (100k) and ``xxxl`` (1M) go beyond the paper for the scale
benchmarks enabled by the simulator hot-path overhaul, the array-backed
bootstrap and the vectorized batch-drain kernel.  Select with
``REPRO_SCALE=paper`` etc.
"""

from __future__ import annotations

import os
from dataclasses import dataclass


@dataclass(frozen=True)
class Scale:
    name: str
    #: Cluster-testbed population (paper: 512).
    cluster_nodes: int
    #: PlanetLab-testbed population for Fig. 9 (paper: 150).
    planetlab_nodes: int
    #: PlanetLab population for Fig. 13 (paper: 200).
    planetlab_nodes_large: int
    #: Small-population churn experiments (paper: 128).
    small_nodes: int
    #: Stream length (paper: 500).
    messages: int
    #: Seconds of churn (paper: 600).
    churn_duration: float
    #: Churn period (paper: 60).
    churn_period: float
    #: Overlay settle time after the join ramp.
    settle: float
    #: Spacing between bootstrap joins (paper trace: 1/s).
    join_spacing: float


PAPER = Scale(
    name="paper",
    cluster_nodes=512,
    planetlab_nodes=150,
    planetlab_nodes_large=200,
    small_nodes=128,
    messages=500,
    churn_duration=600.0,
    churn_period=60.0,
    settle=60.0,
    join_spacing=0.25,
)

FAST = Scale(
    name="fast",
    cluster_nodes=128,
    planetlab_nodes=48,
    planetlab_nodes_large=64,
    small_nodes=64,
    messages=100,
    churn_duration=180.0,
    churn_period=30.0,
    settle=30.0,
    join_spacing=0.05,
)

#: The live-runner smoke rung (DESIGN.md §13): 64 nodes is small enough
#: for a multi-process localhost UDP run to finish in seconds while
#: still forcing real cross-process traffic with two or more workers.
SMALL = Scale(
    name="small",
    cluster_nodes=64,
    planetlab_nodes=24,
    planetlab_nodes_large=24,
    small_nodes=32,
    messages=10,
    churn_duration=60.0,
    churn_period=15.0,
    settle=20.0,
    join_spacing=0.05,
)

TINY = Scale(
    name="tiny",
    cluster_nodes=32,
    planetlab_nodes=24,
    planetlab_nodes_large=24,
    small_nodes=24,
    messages=30,
    churn_duration=60.0,
    churn_period=15.0,
    settle=20.0,
    join_spacing=0.05,
)

#: Beyond-paper populations opened by the hot-path overhaul (DESIGN.md §6).
#: ``large`` is the CI smoke size for the scale benchmark; ``xl`` is the
#: 10k-node target every scaling PR is measured against.
LARGE = Scale(
    name="large",
    cluster_nodes=2048,
    planetlab_nodes=150,
    planetlab_nodes_large=200,
    small_nodes=256,
    messages=200,
    churn_duration=300.0,
    churn_period=60.0,
    settle=45.0,
    join_spacing=0.05,
)

XL = Scale(
    name="xl",
    cluster_nodes=10_000,
    planetlab_nodes=150,
    planetlab_nodes_large=200,
    small_nodes=512,
    messages=100,
    churn_duration=300.0,
    churn_period=60.0,
    settle=60.0,
    join_spacing=0.01,
)

#: The 100k rung: only reachable through the array-backed bootstrap
#: (DESIGN.md §8) — the simulated join ramp is rejected outright at this
#: population by wall-clock.  Exercised by the nightly CI workflow and
#: ``REPRO_XXL=1`` benchmark runs, not by per-push CI.
XXL = Scale(
    name="xxl",
    cluster_nodes=100_000,
    planetlab_nodes=150,
    planetlab_nodes_large=200,
    small_nodes=512,
    messages=10,
    churn_duration=300.0,
    churn_period=60.0,
    settle=60.0,
    join_spacing=0.01,
)

#: The 1M rung (DESIGN.md §12): only reachable through the vectorized
#: batch-drain kernel — at this population even the pure-python slotted
#: per-reception loop is the wall.  Exercised by the nightly CI workflow
#: behind ``REPRO_XXXL=1``, not by per-push CI.
XXXL = Scale(
    name="xxxl",
    cluster_nodes=1_000_000,
    planetlab_nodes=150,
    planetlab_nodes_large=200,
    small_nodes=512,
    messages=10,
    churn_duration=300.0,
    churn_period=60.0,
    settle=60.0,
    join_spacing=0.01,
)

SCALES = {
    "paper": PAPER,
    "fast": FAST,
    "small": SMALL,
    "tiny": TINY,
    "large": LARGE,
    "xl": XL,
    "xxl": XXL,
    "xxxl": XXXL,
}


def get_scale(name: str | None = None) -> Scale:
    """Resolve a scale by name, defaulting to ``$REPRO_SCALE`` or fast."""
    if name is None:
        name = os.environ.get("REPRO_SCALE", "fast")
    try:
        return SCALES[name]
    except KeyError:
        raise ValueError(f"unknown scale {name!r}; known: {sorted(SCALES)}") from None
