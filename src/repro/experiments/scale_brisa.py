"""Large-scale BRISA dissemination over synthesized overlays.

PR 1 opened 10k-node scenarios for the flood baseline only; the
synthesized-overlay bootstrap (:mod:`repro.experiments.bootstrap`,
DESIGN.md §7) makes the *full* BRISA stack — membership + emergence +
repair, §II — affordable at those populations by skipping the simulated
HyParView join ramp.  This module carries the scenario entry point
(:func:`run_scale_brisa`, also behind ``repro scale --stack brisa``) and
the bootstrap benchmark (:func:`bootstrap_comparison`) that gates the
synthesized path against the simulated ramp it replaces.  The harness
spine (multi-stream injection windows, timed drain, per-stream
accounting) is shared with the flood stack through
:mod:`repro.experiments.scale_runner` (DESIGN.md §10).
"""

from __future__ import annotations

import gc
import time
from dataclasses import asdict, dataclass, field
from typing import Optional

from repro.config import BrisaConfig, HyParViewConfig
from repro.errors import SimulationError
from repro.experiments.common import Testbed, brisa_factory
from repro.experiments.scale_runner import (
    ScaleRunner,
    aggregate_outcomes,
    brisa_stream_outcomes,
    outcomes_summary,
    spread_sources,
    validate_workload,
)
from repro.sim.latency import ConstantLatency, LatencyModel


@dataclass
class ScaleBrisaResult:
    """Outcome + engine telemetry of one large-scale BRISA run."""

    nodes: int
    messages: int
    payload_bytes: int
    seed: int
    mode: str
    bootstrap: str
    #: Delivery kernel: ``object`` (per-node dict state) or ``slotted``
    #: (flat-array slot planes, DESIGN.md §11).
    kernel: str
    #: Wall-clock seconds spent building the overlay (the ramp replacement).
    bootstrap_wall: float
    #: Simulated seconds the dissemination spanned.
    sim_time: float
    #: Wall-clock seconds of the dissemination run loop.
    wall_time: float
    events: int
    events_per_sec: float
    #: First-time message receptions across all receivers.
    deliveries: int
    deliveries_per_sec: float
    delivered_fraction: float
    #: Data receptions processed (first deliveries + duplicates) — the
    #: unit of per-delivery handler work the slotted kernel cuts.
    receptions: int
    receptions_per_sec: float
    #: §II-B correctness: the emerged structure covers every node, acyclically.
    structure_complete: bool
    structure_reason: str
    #: Mean duplicate receptions per receiver (the Fig. 2 quantity BRISA
    #: drives toward zero once the structure emerges).
    duplicates_per_node: float
    peak_pending: int
    handle_pool_size: int
    #: Concurrent publishers (stream ``i`` driven by source ``i``).
    streams: int = 1
    #: Overlay topology class the run disseminated over.
    topology: str = "uniform"
    #: Per-link loss rate applied by the delivery layer (percent).
    loss_percent: float = 0.0
    #: Sends the loss model discarded (0 on lossless links).
    dropped_loss: int = 0
    #: Per-stream outcomes (``StreamOutcome.to_dict`` rows), including
    #: each stream's §II-B structure invariant.
    per_stream: list = field(default_factory=list)
    #: §IV relay-load-spread report (``RelayLoadSpread.to_dict``) for
    #: multi-stream runs; None when a single stream ran.
    relay_spread: Optional[dict] = None

    def to_dict(self) -> dict:
        return asdict(self)

    def summary(self) -> str:
        structure = "complete/acyclic" if self.structure_complete else self.structure_reason
        lines = [
            f"nodes: {self.nodes} ({self.mode} mode, {self.bootstrap} bootstrap, "
            f"{self.kernel} kernel)",
            f"messages: {self.streams} stream(s) x {self.messages} x {self.payload_bytes} B",
            f"delivered: {self.delivered_fraction * 100:.2f}%",
            f"structure: {structure}",
            f"duplicates/node (mean): {self.duplicates_per_node:.2f}",
            f"bootstrap: {self.bootstrap_wall:.2f} s wall",
            f"sim time: {self.sim_time:.2f} s   wall time: {self.wall_time:.2f} s",
            f"events: {self.events:,} ({self.events_per_sec:,.0f}/s)",
            f"deliveries: {self.deliveries:,} ({self.deliveries_per_sec:,.0f}/s)",
            f"receptions: {self.receptions:,} ({self.receptions_per_sec:,.0f}/s)",
            f"peak heap: {self.peak_pending:,}   handle pool: {self.handle_pool_size:,}",
        ]
        if self.topology != "uniform" or self.loss_percent:
            line = f"topology: {self.topology}   link loss: {self.loss_percent:g}%"
            if self.loss_percent:
                line += f" ({self.dropped_loss:,} sends dropped)"
            lines.insert(1, line)
        if self.streams > 1:
            lines.append("per-stream delivery + structure:")
            lines.append(outcomes_summary(self.per_stream, indent="  "))
        if self.relay_spread is not None:
            rs = self.relay_spread
            lines.append(
                f"relay-load spread: interior >=1 tree "
                f"{rs['interior_any']}/{rs['population']}   every tree "
                f"{rs['interior_all']}   sets differ: "
                f"{'yes' if rs['distinct_sets'] else 'no'}   "
                f"fan-in max {rs['fan_in_max']} mean {rs['fan_in_mean']:.2f}"
            )
        return "\n".join(lines)


def run_scale_brisa(
    nodes: int,
    messages: int,
    *,
    mode: str = "tree",
    rate: float = 20.0,
    payload_bytes: int = 1024,
    seed: int = 1,
    bootstrap: str = "synthesized",
    degree: Optional[int] = None,
    config: Optional[BrisaConfig] = None,
    hpv_config: Optional[HyParViewConfig] = None,
    latency: Optional[LatencyModel] = None,
    join_spacing: float = 0.05,
    settle: float = 45.0,
    streams: int = 1,
    kernel: str = "object",
    topology: str = "uniform",
    loss_percent: float = 0.0,
) -> ScaleBrisaResult:
    """Run the full BRISA stack over a ``nodes``-population overlay.

    ``bootstrap`` is the :meth:`Testbed.populate` switch: ``synthesized``
    (default — the O(n) constructor), ``simulated`` (the join ramp, for
    baseline comparisons) or a checkpoint path.  The overlay is static
    during dissemination (shuffles stopped), so the heap drains exactly
    when the structure settles and the last message lands.

    ``streams`` > 1 opens the paper's §IV workload at scale (DESIGN.md
    §10): K publishers spread over the population emerge K independent
    trees over the one overlay, each checked for the §II-B invariant,
    with a relay-load-spread report on how interior duty distributes.

    ``kernel`` selects the delivery + tree-maintenance representation:
    ``object`` (the reference per-node dict state) or ``slotted`` (the
    flat-array slot planes of :class:`SlottedBrisaKernel`, DESIGN.md
    §11).  Both run draw-for-draw identical simulations — pinned by
    tests/test_slotted_parity.py — so the choice is purely a throughput
    lever.
    """
    validate_workload(messages, rate, streams, population=nodes)
    if kernel not in ("object", "slotted"):
        raise ValueError(
            f"unknown BRISA kernel {kernel!r} (expected 'object' or 'slotted')"
        )
    # Lossy links make §II-F's blind spot real: a lost final message
    # orphans a subtree with no later traffic to reveal the gap.  The
    # quiescence tail probe (DESIGN.md §14) closes it, so lossy runs get
    # it by default; lossless runs skip the extra probe traffic.
    cfg = (
        config
        if config is not None
        else BrisaConfig(mode=mode, tail_probe=loss_percent > 0)
    )
    if degree is not None and hpv_config is None:
        # Same idiom as build_static_flood_overlay: size the membership
        # config so the requested degree is legal under the protocol's
        # own view cap, instead of silently building a sparser overlay.
        hpv_config = HyParViewConfig(active_size=max(4, degree), passive_size=16)
    bed = Testbed(
        seed=seed,
        latency=latency if latency is not None else ConstantLatency(0.001, seed=seed),
        record_deliveries=False,
        loss_percent=loss_percent,
    )
    slot_kernel = None
    if kernel == "slotted":
        from repro.core.brisa_slotted import SlottedBrisaKernel

        slot_kernel = SlottedBrisaKernel(bed.network, cfg)
    t0 = time.perf_counter()
    # Synthesized bootstraps build the slotted relay rows straight from
    # the CSR adjacency arrays — one bulk pass instead of one append per
    # neighbour-up notification (contents identical either way, same
    # idiom as build_static_flood_overlay).  Simulated/checkpoint
    # bootstraps keep the incremental path: install_overlay and the join
    # ramp both fire per-peer notifications.
    bulk = slot_kernel is not None and bootstrap == "synthesized"
    if bulk:
        slot_kernel.bulk_rows = True
    try:
        bed.populate(
            nodes,
            brisa_factory(cfg, hpv_config, kernel=slot_kernel),
            bootstrap=bootstrap,
            degree=degree,
            topology=topology,
            join_spacing=join_spacing,
            settle=settle,
            validate=True,
            # The overlay is static during dissemination, so shuffle timers
            # are never armed — at xxl populations this is the difference
            # between spawning 100k nodes and spawning 100k nodes plus 100k
            # scheduled shuffle events (DESIGN.md §8).
            defer_timers=bootstrap != "simulated",
        )
    finally:
        if bulk:
            slot_kernel.bulk_rows = False
    if bulk:
        slot_kernel.install_rows(
            [node.node_id for node in bed.nodes], bed.last_topology
        )
    bootstrap_wall = time.perf_counter() - t0
    bed.stop_shuffles()

    sources = spread_sources(bed.nodes, streams)
    runner = ScaleRunner(
        bed.sim, bed.network, sources,
        messages=messages, rate=rate, payload_bytes=payload_bytes,
    )
    stats = runner.run()
    wall = stats.wall_time

    alive_nodes = bed.alive_nodes()
    outcomes = brisa_stream_outcomes(sources, alive_nodes, messages)
    deliveries, delivered_fraction = aggregate_outcomes(outcomes, messages)
    complete = all(o.structure_complete for o in outcomes)
    reason = next(
        (o.structure_reason for o in outcomes if not o.structure_complete), ""
    )
    source_ids = {s.node_id for s in sources}
    receivers = set(bed.alive_ids()) - source_ids
    if slot_kernel is not None:
        # Duplicate counts live in the slot planes; Metrics.duplicates is
        # only fed by the object kernel's per-message handler.  Source
        # nodes are excluded to match the object walk below (per-node
        # counters cannot split a publisher's counts by stream).
        dup_total = slot_kernel.duplicate_receptions(exclude_nodes=source_ids)
    else:
        dup_total = sum(bed.metrics.duplicates.get(n, 0) for n in receivers)
    receptions = deliveries + dup_total
    relay_spread = None
    if streams > 1:
        from repro.experiments.structural import relay_load_spread

        relay_spread = relay_load_spread(alive_nodes, range(streams)).to_dict()
    return ScaleBrisaResult(
        nodes=nodes,
        messages=messages,
        payload_bytes=payload_bytes,
        seed=seed,
        mode=cfg.mode,
        bootstrap=bootstrap if bootstrap in ("simulated", "synthesized") else "checkpoint",
        kernel=kernel,
        bootstrap_wall=bootstrap_wall,
        sim_time=stats.sim_time,
        wall_time=wall,
        events=stats.events,
        events_per_sec=stats.events / wall,
        deliveries=deliveries,
        deliveries_per_sec=deliveries / wall,
        delivered_fraction=delivered_fraction,
        receptions=receptions,
        receptions_per_sec=receptions / wall,
        structure_complete=complete,
        structure_reason=reason,
        duplicates_per_node=dup_total / len(receivers) if receivers else 0.0,
        peak_pending=bed.sim.peak_pending,
        handle_pool_size=bed.sim.pool_size,
        streams=streams,
        topology=topology,
        loss_percent=loss_percent,
        dropped_loss=bed.metrics.counters.get("dropped_loss", 0),
        per_stream=[o.to_dict() for o in outcomes],
        relay_spread=relay_spread,
    )


# ----------------------------------------------------------------------
# Bootstrap benchmark: synthesized constructor vs the simulated ramp
# ----------------------------------------------------------------------
@dataclass
class BootstrapComparison:
    """Wall-clock cost of populating one BRISA testbed, both ways."""

    nodes: int
    seed: int
    simulated_wall: float
    synthesized_wall: float
    #: Simulator events the join ramp burned (the synthesized path: zero).
    simulated_events: int

    @property
    def speedup(self) -> float:
        """Ramp-replacement factor (the acceptance metric)."""
        return self.simulated_wall / max(self.synthesized_wall, 1e-9)

    def to_dict(self) -> dict:
        d = asdict(self)
        d["speedup"] = self.speedup
        return d

    def summary(self) -> str:
        return "\n".join(
            [
                f"population: {self.nodes} BRISA nodes",
                f"simulated join ramp: {self.simulated_wall:.2f} s wall "
                f"({self.simulated_events:,} events)",
                f"synthesized overlay: {self.synthesized_wall:.4f} s wall (0 events)",
                f"speedup: {self.speedup:.1f}x",
            ]
        )


def bootstrap_comparison(
    nodes: int,
    *,
    seed: int = 1,
    join_spacing: float = 0.05,
    settle: float = 45.0,
    config: Optional[BrisaConfig] = None,
    hpv_config: Optional[HyParViewConfig] = None,
    repeats: int = 3,
) -> BootstrapComparison:
    """Measure the synthesized bootstrap against the simulated join ramp
    it replaces, on identical populations.  Both overlays are validated,
    so the comparison cannot quietly trade correctness for speed.

    The garbage collector is drained before each timed region (a prior
    large-population run otherwise taxes the measured allocations with
    its collection debt), and the cheap synthesized side keeps the best
    of ``repeats`` runs — the minimum-noise sample, as in
    :func:`repro.experiments.scale_flood.engine_microbench`."""
    import gc

    def populate(bootstrap: str) -> tuple[float, int]:
        bed = Testbed(
            seed=seed,
            latency=ConstantLatency(0.001, seed=seed),
            record_deliveries=False,
        )
        gc.collect()
        t0 = time.perf_counter()
        bed.populate(
            nodes,
            brisa_factory(config, hpv_config),
            bootstrap=bootstrap,
            join_spacing=join_spacing,
            settle=settle,
            validate=True,
        )
        return time.perf_counter() - t0, bed.sim.events_processed

    simulated_wall, simulated_events = populate("simulated")
    synthesized_wall = min(populate("synthesized")[0] for _ in range(max(1, repeats)))
    return BootstrapComparison(
        nodes=nodes,
        seed=seed,
        simulated_wall=simulated_wall,
        synthesized_wall=synthesized_wall,
        simulated_events=simulated_events,
    )


# ----------------------------------------------------------------------
# Kernel microbenchmark: object vs slotted BRISA at scale (DESIGN.md §11)
# ----------------------------------------------------------------------
@dataclass
class BrisaMicrobenchResult:
    """Same-machine BRISA delivery throughput at scale: the object
    (per-node dict state) kernel vs the slotted (flat-array) kernel.

    Throughput is the *steady-state* rate of receptions (first
    deliveries plus duplicates — the unit of per-delivery handler +
    maintenance work the slotted fast path cuts), measured
    differentially: each kernel runs the identical scenario at two
    stream lengths and the marginal rate is the reception delta over the
    wall-clock delta.  Differencing cancels the fixed costs both kernels
    share — overlay synthesis, the bootstrap flood, the §II-C
    deactivation wave — and isolates the post-stabilization per-delivery
    regime the kernel exists for (a long-lived stream spends its life
    there; the emergence transient is paid once).  Runs are interleaved
    object/slotted so machine drift hits both sides alike, and the best
    wall per (kernel, length) over ``repeats`` is kept.
    """

    nodes: int
    #: The two stream lengths of the differential measurement.
    messages_lo: int
    messages_hi: int
    mode: str
    #: Marginal receptions between the two lengths — identical on both
    #: sides by the kernel-parity guarantee (checked at measurement time).
    receptions: int
    object_receptions_per_sec: float
    slotted_receptions_per_sec: float

    @property
    def speedup(self) -> float:
        """Steady-state per-delivery throughput ratio (the acceptance
        metric)."""
        return self.slotted_receptions_per_sec / max(
            self.object_receptions_per_sec, 1e-9
        )

    def to_dict(self) -> dict:
        d = asdict(self)
        d["speedup"] = self.speedup
        return d

    def summary(self) -> str:
        return "\n".join(
            [
                f"workload: {self.nodes} nodes, messages "
                f"{self.messages_lo} -> {self.messages_hi} ({self.mode} mode, "
                f"{self.receptions:,} marginal receptions)",
                f"object kernel:  {self.object_receptions_per_sec:,.0f} "
                f"steady-state receptions/s",
                f"slotted kernel: {self.slotted_receptions_per_sec:,.0f} "
                f"steady-state receptions/s",
                f"speedup: {self.speedup:.2f}x",
            ]
        )


def brisa_slotted_microbench(
    nodes: int = 10_000, messages: int = 50, *,
    messages_lo: int = 10,
    mode: str = "tree", degree: int = 5, rate: float = 20.0,
    seed: int = 3, repeats: int = 2,
) -> BrisaMicrobenchResult:
    """Measure the object BRISA kernel against the slotted kernel.

    Both kernels run the *identical* xl-shaped scenario — same seed,
    same synthesized overlay, same injection schedule, draw-for-draw the
    same simulation — at two stream lengths (``messages_lo`` and
    ``messages``), and the steady-state rate is the marginal receptions
    over the marginal wall time (see :class:`BrisaMicrobenchResult`).
    Reception counts must match across kernels at both lengths (verified
    here; the full parity surface — delivery sets, tree edges, levels,
    byte totals — is pinned by tests/test_slotted_parity.py).

    Each timed run executes with the caller's surviving heap frozen out
    of the collector (``gc.freeze``): gen-2 scans cost the same
    *absolute* time in either kernel, so a long-lived process full of
    unrelated objects taxes the faster side proportionally more and
    deflates the ratio.  GC stays enabled for the run's own garbage.
    """
    if messages <= messages_lo:
        raise ValueError("messages must exceed messages_lo for the "
                         "differential measurement")

    walls: dict[tuple[str, int], float] = {}
    rx: dict[tuple[str, int], int] = {}
    for _ in range(max(1, repeats)):
        for length in (messages_lo, messages):
            for kernel in ("object", "slotted"):
                gc.collect()
                gc.freeze()
                try:
                    r = run_scale_brisa(
                        nodes, length, mode=mode, degree=degree, rate=rate,
                        seed=seed, kernel=kernel,
                    )
                finally:
                    gc.unfreeze()
                key = (kernel, length)
                walls[key] = min(walls.get(key, float("inf")), r.wall_time)
                rx[key] = r.receptions
    for length in (messages_lo, messages):
        if rx[("object", length)] != rx[("slotted", length)]:
            raise SimulationError(
                f"kernel parity violated at {length} messages: object "
                f"kernel processed {rx[('object', length)]} receptions, "
                f"slotted {rx[('slotted', length)]}"
            )

    def marginal(kernel: str) -> float:
        drx = rx[(kernel, messages)] - rx[(kernel, messages_lo)]
        dwall = walls[(kernel, messages)] - walls[(kernel, messages_lo)]
        return drx / max(dwall, 1e-9)

    return BrisaMicrobenchResult(
        nodes=nodes,
        messages_lo=messages_lo,
        messages_hi=messages,
        mode=mode,
        receptions=rx[("object", messages)] - rx[("object", messages_lo)],
        object_receptions_per_sec=marginal("object"),
        slotted_receptions_per_sec=marginal("slotted"),
    )
