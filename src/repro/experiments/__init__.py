"""Experiment harness: scenarios for every paper figure/table.

:mod:`repro.experiments.common` builds populated testbeds and drives
streams; :mod:`repro.experiments.scenarios` contains one entry point per
paper artifact (Fig. 2–14, Tables I–II); :mod:`repro.experiments.report`
renders the paper-style rows; :mod:`repro.experiments.paperdata` holds the
digitized published numbers for side-by-side comparison.
"""

from repro.experiments.common import RunResult, Testbed, quick_brisa_run

__all__ = ["RunResult", "Testbed", "quick_brisa_run"]
