"""Large-scale lazy-push/pull dissemination (the recovery baseline).

The pull stack (:mod:`repro.baselines.pullgossip`) is the literature-
standard comparator for BRISA's repair machinery under lossy links:
probabilistic eager push bounded by a hop TTL, completed by gap-driven
pull recovery with bounded retry rounds.  This module carries its scale
entry point (:func:`run_scale_pull`, behind ``repro scale --stack
pull``) on the same harness spine as the flood and BRISA stacks
(:mod:`repro.experiments.scale_runner`): synthesized static overlay,
multi-stream injection windows, timed drain-to-idle, per-stream
delivery accounting.

The stack runs on the object kernel only — recovery is timer- and
request-driven, far off the fan-out hot path the slotted/vectorized
kernels exist for — and reuses :class:`ScaleFloodResult` so CLI/JSON
reporting stays uniform across stacks.
"""

from __future__ import annotations

from typing import Optional

from repro.baselines.pullgossip import PullGossipNode
from repro.config import HyParViewConfig
from repro.sim.engine import Simulator
from repro.sim.latency import ConstantLatency, LatencyModel
from repro.sim.monitor import Metrics
from repro.sim.network import Network
from repro.experiments.scale_flood import ScaleFloodResult
from repro.experiments.scale_runner import (
    ScaleRunner,
    aggregate_outcomes,
    flood_stream_outcomes,
    spread_sources,
    validate_workload,
)


def build_static_pull_overlay(
    n: int,
    *,
    degree: int = 5,
    seed: int = 1,
    latency: Optional[LatencyModel] = None,
    topology: str = "uniform",
    loss_percent: float = 0.0,
) -> tuple[Simulator, Network, list[PullGossipNode]]:
    """Spawn ``n`` pull-gossip nodes pre-wired into a static overlay.

    Same construction discipline as
    :func:`~repro.experiments.scale_flood.build_static_flood_overlay`:
    synthesized topology (any :data:`TOPOLOGY_BUILDERS` class), shuffle
    timers never armed, so the heap drains exactly when the last pull
    round settles.
    """
    from repro.experiments.bootstrap import synthesize_overlay

    if n < 3:
        raise ValueError("need at least 3 nodes for a ring overlay")
    if degree < 2:
        raise ValueError("degree must be >= 2 (ring minimum)")
    sim = Simulator(seed=seed)
    net = Network(
        sim,
        latency if latency is not None else ConstantLatency(0.001, seed=seed),
        Metrics(record_deliveries=False),
        loss_percent=loss_percent,
    )
    hpv = HyParViewConfig(active_size=max(4, degree), passive_size=16)
    prior = net.autostart_timers
    net.autostart_timers = False
    try:
        nodes = net.spawn_many(
            lambda network, nid: PullGossipNode(network, nid, hpv), n
        )
    finally:
        net.autostart_timers = prior
    synthesize_overlay(
        nodes, net, rng=sim.rng("static-overlay"), degree=degree, topology=topology
    )
    return sim, net, nodes


def run_scale_pull(
    nodes: int,
    messages: int,
    *,
    degree: int = 5,
    rate: float = 20.0,
    payload_bytes: int = 1024,
    seed: int = 1,
    latency: Optional[LatencyModel] = None,
    streams: int = 1,
    topology: str = "uniform",
    loss_percent: float = 0.0,
) -> ScaleFloodResult:
    """Disseminate ``streams`` concurrent streams through the lazy-push/
    pull stack over a static overlay and measure engine throughput.

    Unlike flooding, delivery converges *below* 1.0 even on lossless
    links (tail blindness — see :mod:`repro.baselines.pullgossip`); the
    quantity of interest is how far pull recovery closes the gap the
    probabilistic push leaves, per topology class and loss rate.
    """
    validate_workload(messages, rate, streams, population=nodes)
    sim, net, pull_nodes = build_static_pull_overlay(
        nodes, degree=degree, seed=seed, latency=latency,
        topology=topology, loss_percent=loss_percent,
    )
    sources = spread_sources(pull_nodes, streams)
    runner = ScaleRunner(
        sim, net, sources, messages=messages, rate=rate, payload_bytes=payload_bytes
    )
    stats = runner.run()
    outcomes = flood_stream_outcomes(sources, pull_nodes, messages)
    deliveries, delivered_fraction = aggregate_outcomes(outcomes, messages)
    receptions = sum(
        shard.first_deliveries + shard.duplicate_receptions
        for shard in net.metrics.streams.values()
    )
    wall = stats.wall_time
    return ScaleFloodResult(
        nodes=nodes,
        degree=degree,
        messages=messages,
        payload_bytes=payload_bytes,
        seed=seed,
        sim_time=stats.sim_time,
        wall_time=wall,
        events=stats.events,
        events_per_sec=stats.events / wall,
        deliveries=deliveries,
        deliveries_per_sec=deliveries / wall,
        delivered_fraction=delivered_fraction,
        peak_pending=sim.peak_pending,
        handle_pool_size=sim.pool_size,
        kernel="object",
        receptions=receptions,
        receptions_per_sec=receptions / wall,
        survivors=outcomes[0].receivers,
        streams=streams,
        topology=topology,
        loss_percent=loss_percent,
        dropped_loss=net.metrics.counters.get("dropped_loss", 0),
        per_stream=[o.to_dict() for o in outcomes],
    )
