"""Synthesized-overlay bootstrap: HyParView-convergent topologies in O(n).

Simulating the join ramp costs hundreds of thousands of simulator events
at 2k nodes and dominates every large-population scenario (ROADMAP: "the
join ramp is now the scale bottleneck").  But the ramp's *outcome* is
statistically simple: a settled HyParView overlay is a connected,
bidirectional random graph whose degrees sit between ``active_size`` and
the expanded cap ``active_size * expansion_factor``, with full passive
views (§II-A).  This module synthesizes that converged state directly —
a Hamiltonian ring (connectivity guarantee) plus random chords up to the
empirical settled degree, capped per node at ``max_active`` — and wires
it into node state through :meth:`HyParViewNode.install_overlay` without
a single simulated message.

The production synthesizer is **array-backed** (DESIGN.md §8): the
ring+chords overlay is produced as flat integer arrays — a CSR-style
adjacency (``offsets``/``neighbors``) plus a degree vector — instead of
per-node dicts/objects, and installed in bulk through
:meth:`HyParViewNode.install_overlay` and
:meth:`Network.register_links_csr`.  The original dict-of-sets
primitives (:func:`synthesize_topology`, :func:`synthesize_passive`)
are kept as the readable reference implementation; both consume the RNG
identically, so they produce the *same* overlay for the same seed —an
equivalence pinned by property tests.

Three entry points:

- :func:`synthesize_overlay` — build + install a fresh topology over
  already-spawned nodes (any :class:`HyParViewNode` stack, including
  :class:`BrisaNode`, whose §II-C stream-state consistency rides the
  ``neighbor_up`` notifications that ``install_overlay`` fires).
- :func:`save_overlay` / :func:`load_overlay` / :func:`install_checkpoint`
  — JSON checkpoints of active/passive views, so repeated benchmark runs
  skip construction entirely.  Checkpoints store node ids and are
  rehydrated through an id map, robust to fresh testbeds allocating
  different ids.
- :func:`audit_overlay` / :func:`assert_valid_overlay` — the validation
  mode: checks the invariants under which a synthesized overlay is
  indistinguishable from a settled simulated one (bidirectionality,
  connectivity, degree bounds).  Degree-distribution closeness between
  the two bootstrap kinds is asserted in tests/test_bootstrap.py.
"""

from __future__ import annotations

import json
import pathlib
from array import array
from dataclasses import dataclass

from repro.config import HyParViewConfig
from repro.errors import SimulationError
from repro.ids import NodeId
from repro.membership.hyparview import HyParViewNode

#: Version tag of the checkpoint JSON format.
CHECKPOINT_FORMAT = "brisa-overlay/1"


# ----------------------------------------------------------------------
# Topology synthesis
# ----------------------------------------------------------------------
def default_degree(hpv: HyParViewConfig) -> int:
    """Target mean degree of a synthesized overlay.

    Empirically a settled simulated ramp converges just under the
    expanded cap (mean ~7.0 for the paper's active_size=4, factor=2
    defaults, cap 8): joins grow views up to ``max_active`` and evictions
    between target and cap trigger no replacements, so views drift high.
    """
    return max(2, hpv.max_active - 1)


def synthesize_topology(
    n: int, *, degree: int, max_degree: int, rng
) -> list[set[int]]:
    """Ring + random chords adjacency (indices ``0..n-1``).

    The ring guarantees connectivity; chords are added uniformly at
    random up to a mean degree of ``degree``, never pushing any node past
    ``max_degree`` (HyParView's expanded active-view cap).  O(n * degree)
    expected time.
    """
    if n < 3:
        raise ValueError("need at least 3 nodes for a ring overlay")
    if degree < 2:
        raise ValueError("degree must be >= 2 (ring minimum)")
    if max_degree < degree:
        raise ValueError("max_degree must be >= degree")
    adj: list[set[int]] = [set() for _ in range(n)]
    for i in range(n):
        j = (i + 1) % n
        adj[i].add(j)
        adj[j].add(i)
    edges = n  # the ring
    target_edges = (n * degree) // 2
    attempts = 0
    max_attempts = 20 * max(target_edges, 1)
    randrange = rng.randrange
    while edges < target_edges and attempts < max_attempts:
        attempts += 1
        a = randrange(n)
        b = randrange(n)
        if a == b or b in adj[a]:
            continue
        if len(adj[a]) >= max_degree or len(adj[b]) >= max_degree:
            continue
        adj[a].add(b)
        adj[b].add(a)
        edges += 1
    return adj


def synthesize_passive(
    n: int, adj: list[set[int]], *, size: int, rng
) -> list[set[int]]:
    """Random passive views (indices), excluding self and active peers.

    A settled overlay has full passive views (shuffles saturate them);
    uniformly random entries reproduce that reservoir.  Rejection
    sampling is attempt-bounded so tiny populations (where ``size``
    exceeds the available peers) terminate with partial views.
    """
    views: list[set[int]] = []
    randrange = rng.randrange
    for i in range(n):
        neigh = adj[i]
        view: set[int] = set()
        want = min(size, max(0, n - 1 - len(neigh)))
        attempts = 0
        max_attempts = 8 * max(size, 1)
        while len(view) < want and attempts < max_attempts:
            attempts += 1
            p = randrange(n)
            if p == i or p in neigh or p in view:
                continue
            view.add(p)
        views.append(view)
    return views


# ----------------------------------------------------------------------
# Array-backed topology synthesis (DESIGN.md §8)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CSRTopology:
    """Ring+chords overlay as flat integer arrays.

    Row ``i``'s neighbours are the index slice
    ``neighbors[offsets[i]:offsets[i+1]]``; ``degrees[i]`` is its length.
    Entries are node *indices* (``0..n-1``) — id translation happens at
    install time — so one topology is reusable across testbeds.
    """

    n: int
    #: Row starts, ``n + 1`` entries ('q': edge counts exceed 'i' range
    #: long before populations do).
    offsets: array
    #: Concatenated adjacency rows, ``2 * edges`` entries.
    neighbors: array
    #: Per-node degree vector (``offsets[i+1] - offsets[i]``).
    degrees: array

    @property
    def edges(self) -> int:
        return len(self.neighbors) // 2


def synthesize_topology_arrays(
    n: int, *, degree: int, max_degree: int, rng
) -> CSRTopology:
    """Array-backed :func:`synthesize_topology`: same draws, same graph.

    Both synthesizers consume ``rng`` identically (one ``randrange`` pair
    per chord attempt, identical accept/reject decisions), so for the
    same seed they produce the same edge set — the property the
    bootstrap equivalence tests pin.  This one builds the overlay as an
    edge list plus a degree vector and assembles the CSR adjacency with
    a counting sort: O(n·degree) time with no per-node Python
    containers.
    """
    if n < 3:
        raise ValueError("need at least 3 nodes for a ring overlay")
    if degree < 2:
        raise ValueError("degree must be >= 2 (ring minimum)")
    if max_degree < degree:
        raise ValueError("max_degree must be >= degree")
    degrees = array("i", bytes(4 * n))  # zero-initialised
    edge_a = array("i")
    edge_b = array("i")
    # The Hamiltonian ring (connectivity guarantee).
    for i in range(n):
        j = i + 1 if i + 1 < n else 0
        edge_a.append(i)
        edge_b.append(j)
        degrees[i] += 1
        degrees[j] += 1
    # Membership set of packed undirected edge keys (min * n + max).
    edge_keys = {i * n + (i + 1) for i in range(n - 1)}
    edge_keys.add(n - 1)  # the wrap-around edge (0, n-1)
    edges = n
    target_edges = (n * degree) // 2
    attempts = 0
    max_attempts = 20 * max(target_edges, 1)
    randrange = rng.randrange
    while edges < target_edges and attempts < max_attempts:
        attempts += 1
        a = randrange(n)
        b = randrange(n)
        if a == b or (a * n + b if a < b else b * n + a) in edge_keys:
            continue
        if degrees[a] >= max_degree or degrees[b] >= max_degree:
            continue
        edge_keys.add(a * n + b if a < b else b * n + a)
        edge_a.append(a)
        edge_b.append(b)
        degrees[a] += 1
        degrees[b] += 1
        edges += 1
    return _assemble_csr(n, degrees, edge_a, edge_b)


def _assemble_csr(n: int, degrees: array, edge_a: array, edge_b: array) -> CSRTopology:
    """Counting-sort an undirected edge list into CSR rows (shared by
    every array-backed topology synthesizer)."""
    offsets = array("q", bytes(8 * (n + 1)))
    for i in range(n):
        offsets[i + 1] = offsets[i] + degrees[i]
    neighbors = array("i", bytes(4 * offsets[n]))
    cursor = array("q", offsets[:n])
    for a, b in zip(edge_a, edge_b):
        neighbors[cursor[a]] = b
        cursor[a] += 1
        neighbors[cursor[b]] = a
        cursor[b] += 1
    return CSRTopology(n=n, offsets=offsets, neighbors=neighbors, degrees=degrees)


def _ring_edges(n: int) -> tuple[array, array, array, set[int]]:
    """The Hamiltonian ring every synthesizer starts from: edge arrays, a
    degree vector, and the packed undirected edge-key set (min*n+max)."""
    degrees = array("i", bytes(4 * n))  # zero-initialised
    edge_a = array("i")
    edge_b = array("i")
    for i in range(n):
        j = i + 1 if i + 1 < n else 0
        edge_a.append(i)
        edge_b.append(j)
        degrees[i] += 1
        degrees[j] += 1
    edge_keys = {i * n + (i + 1) for i in range(n - 1)}
    edge_keys.add(n - 1)  # the wrap-around edge (0, n-1)
    return edge_a, edge_b, degrees, edge_keys


def synthesize_powerlaw_arrays(
    n: int, *, degree: int, max_degree: int, rng
) -> CSRTopology:
    """Ring + *preferential* chords: a Barabási–Albert-style heavy-tailed
    overlay, cap-clamped so the HyParView invariants still hold.

    The Hamiltonian ring supplies connectivity and the min-degree floor
    exactly as in :func:`synthesize_topology_arrays`; chords then attach
    both endpoints with probability proportional to current degree (a
    uniform draw from the edge-endpoint multiset — the classic BA
    construction), so early hubs keep attracting edges and the degree
    distribution grows a heavy tail *up to* ``max_degree``, where the
    active-view cap clamps it.  One ``randrange`` pair per chord attempt,
    identical accept/reject structure to the uniform builder, so the
    graph is draw-for-draw deterministic in ``rng``.
    """
    if n < 3:
        raise ValueError("need at least 3 nodes for a ring overlay")
    if degree < 2:
        raise ValueError("degree must be >= 2 (ring minimum)")
    if max_degree < degree:
        raise ValueError("max_degree must be >= degree")
    edge_a, edge_b, degrees, edge_keys = _ring_edges(n)
    # Every edge endpoint, once per incidence: drawing a uniform index
    # here selects a node with probability proportional to its degree.
    endpoints = array("i")
    for a, b in zip(edge_a, edge_b):
        endpoints.append(a)
        endpoints.append(b)
    edges = n
    target_edges = (n * degree) // 2
    attempts = 0
    max_attempts = 20 * max(target_edges, 1)
    randrange = rng.randrange
    while edges < target_edges and attempts < max_attempts:
        attempts += 1
        a = endpoints[randrange(len(endpoints))]
        b = endpoints[randrange(len(endpoints))]
        if a == b or (a * n + b if a < b else b * n + a) in edge_keys:
            continue
        if degrees[a] >= max_degree or degrees[b] >= max_degree:
            continue
        edge_keys.add(a * n + b if a < b else b * n + a)
        edge_a.append(a)
        edge_b.append(b)
        endpoints.append(a)
        endpoints.append(b)
        degrees[a] += 1
        degrees[b] += 1
        edges += 1
    return _assemble_csr(n, degrees, edge_a, edge_b)


#: Watts–Strogatz rewiring probability: the small-world sweet spot where
#: path lengths have collapsed but clustering is still near-lattice.
SMALLWORLD_BETA = 0.1


def synthesize_smallworld_arrays(
    n: int, *, degree: int, max_degree: int, rng
) -> CSRTopology:
    """Ring lattice + rewired shortcuts: a Watts–Strogatz-style overlay.

    Each node starts connected to its ``k/2`` nearest neighbours per side
    (``k`` = ``degree`` rounded down to even); every chord of span ≥ 2 is
    then rewired to a uniform random endpoint with probability
    :data:`SMALLWORLD_BETA`.  The span-1 Hamiltonian ring is *never*
    rewired, so connectivity and the min-degree floor survive any coin
    sequence; rewiring targets that would break the ``max_degree`` cap or
    duplicate an edge are redrawn a bounded number of times and fall back
    to the lattice edge.  Draw-for-draw deterministic in ``rng`` (one
    coin per lattice chord, bounded redraws per rewire).
    """
    k = degree - (degree % 2)
    if k < 4:
        raise ValueError(
            "smallworld topology needs degree >= 4 (an even lattice degree "
            "of at least 4; the span-1 ring alone is not small-world)"
        )
    if max_degree < degree:
        raise ValueError("max_degree must be >= degree")
    if n <= k:
        raise ValueError(f"need more than degree={k} nodes for a ring lattice")
    edge_a, edge_b, degrees, edge_keys = _ring_edges(n)
    random_ = rng.random
    randrange = rng.randrange
    for span in range(2, k // 2 + 1):
        for i in range(n):
            b = i + span if i + span < n else i + span - n
            if random_() < SMALLWORLD_BETA:
                for _ in range(8):
                    t = randrange(n)
                    if (
                        t == i
                        or (i * n + t if i < t else t * n + i) in edge_keys
                        or degrees[t] >= max_degree
                    ):
                        continue
                    b = t
                    break
            key = i * n + b if i < b else b * n + i
            if key in edge_keys or degrees[i] >= max_degree or degrees[b] >= max_degree:
                # A shortcut landed here first and used up the headroom;
                # dropping the lattice edge is the cap-respecting choice.
                continue
            edge_keys.add(key)
            edge_a.append(i)
            edge_b.append(b)
            degrees[i] += 1
            degrees[b] += 1
    return _assemble_csr(n, degrees, edge_a, edge_b)


#: Topology classes selectable through ``repro scale --topology`` — all
#: cap-clamped, ring-seeded (connected, min degree ≥ 2) and draw-for-draw
#: deterministic, so they are interchangeable under one HyParView config.
TOPOLOGY_BUILDERS = {
    "uniform": synthesize_topology_arrays,
    "powerlaw": synthesize_powerlaw_arrays,
    "smallworld": synthesize_smallworld_arrays,
}


def synthesize_passive_arrays(
    n: int, topo: CSRTopology, *, size: int, rng
) -> tuple[array, array]:
    """Array-backed :func:`synthesize_passive`: same draws, same views.

    Returns ``(offsets, entries)`` — node ``i``'s passive view is the
    index slice ``entries[offsets[i]:offsets[i+1]]``.  One small scratch
    set is reused across nodes; adjacency membership scans the CSR row
    (degree ≤ the expanded cap, so the scan beats set construction).
    """
    offsets = array("q", bytes(8 * (n + 1)))
    entries = array("i")
    extend = entries.extend
    t_offsets = topo.offsets
    t_neighbors = topo.neighbors
    randrange = rng.randrange
    max_attempts = 8 * max(size, 1)
    view: set[int] = set()
    for i in range(n):
        row = t_neighbors[t_offsets[i] : t_offsets[i + 1]]
        view.clear()
        want = min(size, max(0, n - 1 - len(row)))
        attempts = 0
        while len(view) < want and attempts < max_attempts:
            attempts += 1
            p = randrange(n)
            if p == i or p in row or p in view:
                continue
            view.add(p)
        extend(view)
        offsets[i + 1] = len(entries)
    return offsets, entries


# ----------------------------------------------------------------------
# Installation
# ----------------------------------------------------------------------
def _require_hyparview(nodes) -> None:
    for node in nodes:
        if not isinstance(node, HyParViewNode):
            raise SimulationError(
                f"synthesized bootstrap requires HyParView stacks; "
                f"got {type(node).__name__}"
            )


def synthesize_overlay(
    nodes, network, *, rng, degree: int | None = None, topology: str = "uniform"
) -> CSRTopology:
    """Build and install a HyParView-convergent overlay over ``nodes``.

    ``nodes`` are already-spawned (fresh, empty-view) HyParView-stack
    nodes; ``rng`` drives the topology draw (derive it from the
    simulation seed for reproducible overlays).  The topology comes from
    the array-backed synthesizer for ``topology`` (one of
    :data:`TOPOLOGY_BUILDERS` — uniform ring+chords, Barabási–Albert-style
    power-law, or Watts–Strogatz-style small-world; flat CSR arrays,
    DESIGN.md §8/§14) and is wired in bulk: per-node view installation
    through :meth:`HyParViewNode.install_overlay`'s fresh-node fast path,
    link registration through one :meth:`Network.register_links_csr` pass.

    Returns the installed :class:`CSRTopology` so array-backed consumers
    (the slotted flood kernel's fan-out rows, DESIGN.md §9) can reuse the
    adjacency arrays instead of re-deriving them from node views.
    """
    _require_hyparview(nodes)
    n = len(nodes)
    hpv = nodes[0].hpv_config
    if degree is None:
        degree = default_degree(hpv)
    elif degree > hpv.max_active:
        # Silently clamping would hand back a different topology than the
        # caller asked for; make the config mismatch explicit instead.
        raise ValueError(
            f"degree {degree} exceeds the expanded active-view cap "
            f"{hpv.max_active}; size HyParViewConfig.active_size/"
            f"expansion_factor accordingly"
        )
    builder = TOPOLOGY_BUILDERS.get(topology)
    if builder is None:
        raise ValueError(
            f"unknown topology {topology!r} "
            f"(choose from {', '.join(sorted(TOPOLOGY_BUILDERS))})"
        )
    topo = builder(n, degree=degree, max_degree=hpv.max_active, rng=rng)
    p_offsets, p_entries = synthesize_passive_arrays(
        n, topo, size=hpv.passive_size, rng=rng
    )
    ids = [node.node_id for node in nodes]
    offsets = topo.offsets
    neighbors = topo.neighbors
    for i, node in enumerate(nodes):
        node.install_overlay(
            [ids[j] for j in neighbors[offsets[i] : offsets[i + 1]]],
            [ids[j] for j in p_entries[p_offsets[i] : p_offsets[i + 1]]],
            register_links=False,
        )
    # The synthesizer emits every edge in both rows by construction
    # (property-tested), so the symmetry validation pass is skipped.
    network.register_links_csr(ids, offsets, neighbors, validate=False)
    return topo


# ----------------------------------------------------------------------
# Checkpoints
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class OverlayCheckpoint:
    """Parsed overlay checkpoint: per-node active/passive views by id."""

    ids: tuple[NodeId, ...]
    active: dict[NodeId, tuple[NodeId, ...]]
    passive: dict[NodeId, tuple[NodeId, ...]]

    @property
    def n(self) -> int:
        return len(self.ids)


def save_overlay(nodes, path: "str | pathlib.Path") -> pathlib.Path:
    """Serialize the nodes' active/passive views to a JSON checkpoint."""
    _require_hyparview(nodes)
    payload = {
        "format": CHECKPOINT_FORMAT,
        "n": len(nodes),
        "nodes": [node.overlay_snapshot() for node in nodes],
    }
    path = pathlib.Path(path)
    path.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")
    return path


def load_overlay(path: "str | pathlib.Path") -> OverlayCheckpoint:
    """Parse a checkpoint written by :func:`save_overlay`."""
    try:
        payload = json.loads(pathlib.Path(path).read_text())
    except (OSError, ValueError) as exc:
        raise SimulationError(f"cannot read overlay checkpoint {path}: {exc}") from exc
    if payload.get("format") != CHECKPOINT_FORMAT:
        raise SimulationError(
            f"unsupported overlay checkpoint format {payload.get('format')!r} "
            f"(expected {CHECKPOINT_FORMAT!r})"
        )
    entries = payload.get("nodes", [])
    if len(entries) != payload.get("n"):
        raise SimulationError("overlay checkpoint is corrupt: node count mismatch")
    ids = tuple(e["id"] for e in entries)
    active = {e["id"]: tuple(e["active"]) for e in entries}
    passive = {e["id"]: tuple(e["passive"]) for e in entries}
    return OverlayCheckpoint(ids=ids, active=active, passive=passive)


def install_checkpoint(nodes, network, checkpoint: OverlayCheckpoint) -> None:
    """Rehydrate a checkpointed overlay into freshly-spawned ``nodes``.

    The i-th checkpointed node maps onto the i-th fresh node; view
    entries are translated through that map, so restored testbeds do not
    depend on the fresh network allocating the same ids.
    """
    _require_hyparview(nodes)
    if len(nodes) != checkpoint.n:
        raise SimulationError(
            f"checkpoint holds {checkpoint.n} nodes, testbed spawned {len(nodes)}"
        )
    remap = {old: node.node_id for old, node in zip(checkpoint.ids, nodes)}
    edges: set[tuple[NodeId, NodeId]] = set()
    for old_id, node in zip(checkpoint.ids, nodes):
        try:
            act = [remap[p] for p in checkpoint.active[old_id]]
            pas = [remap[p] for p in checkpoint.passive[old_id]]
        except KeyError as exc:
            raise SimulationError(
                f"overlay checkpoint references unknown node id {exc.args[0]}"
            ) from exc
        node.install_overlay(act, pas, register_links=False)
        nid = node.node_id
        for p in act:
            edges.add((nid, p) if nid < p else (p, nid))
    network.register_links(edges)


# ----------------------------------------------------------------------
# Validation
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class OverlayAudit:
    """Invariant audit of one overlay (synthesized or simulated)."""

    n: int
    bidirectional: bool
    connected: bool
    min_degree: int
    max_degree: int
    mean_degree: float

    def check(self, hpv: HyParViewConfig) -> tuple[bool, str]:
        """Is this overlay indistinguishable (by invariant) from a
        settled simulated one under ``hpv``?"""
        if not self.bidirectional:
            return False, "active views are not mutual"
        if not self.connected:
            return False, "overlay is not connected"
        if self.min_degree < 2:
            return False, f"min degree {self.min_degree} below ring minimum 2"
        if self.max_degree > hpv.max_active:
            return False, (
                f"max degree {self.max_degree} exceeds expanded cap {hpv.max_active}"
            )
        if not hpv.active_size - 1 <= self.mean_degree <= hpv.max_active:
            return False, (
                f"mean degree {self.mean_degree:.2f} outside "
                f"[{hpv.active_size - 1}, {hpv.max_active}]"
            )
        return True, "ok"


def audit_overlay(nodes) -> OverlayAudit:
    """Measure the invariants a settled HyParView overlay guarantees."""
    _require_hyparview(nodes)
    views = {node.node_id: node.active for node in nodes}
    bidirectional = all(
        nid in views.get(peer, ()) for nid, view in views.items() for peer in view
    )
    degrees = [len(view) for view in views.values()]
    # BFS over active views (cheaper than building a networkx graph).
    start = nodes[0].node_id
    seen = {start}
    frontier = [start]
    while frontier:
        nxt = []
        for nid in frontier:
            for peer in views.get(nid, ()):
                if peer not in seen:
                    seen.add(peer)
                    nxt.append(peer)
        frontier = nxt
    return OverlayAudit(
        n=len(nodes),
        bidirectional=bidirectional,
        connected=len(seen) == len(nodes),
        min_degree=min(degrees) if degrees else 0,
        max_degree=max(degrees) if degrees else 0,
        mean_degree=sum(degrees) / len(degrees) if degrees else 0.0,
    )


def assert_valid_overlay(nodes, hpv: HyParViewConfig | None = None) -> OverlayAudit:
    """Validation mode of ``Testbed.populate``: raise unless the overlay
    satisfies every settled-ramp invariant."""
    _require_hyparview(nodes)
    if hpv is None:
        hpv = nodes[0].hpv_config
    audit = audit_overlay(nodes)
    ok, reason = audit.check(hpv)
    if not ok:
        raise SimulationError(f"overlay validation failed: {reason}")
    return audit
