"""Configuration dataclasses for every subsystem.

All defaults mirror the paper's evaluation setup (§III): active view size 4,
expansion factor 2, 500 messages at 5/s, first-come first-picked strategy.
Configs are frozen so that experiment descriptions are hashable and cannot
be mutated mid-run; use :func:`dataclasses.replace` to derive variants.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass, field

from repro.errors import ConfigError


def _require(cond: bool, msg: str) -> None:
    if not cond:
        raise ConfigError(msg)


@dataclass(frozen=True)
class HyParViewConfig:
    """HyParView peer sampling service parameters (§II-A).

    ``active_size`` is the *target* active-view size; the view may grow up
    to ``active_size * expansion_factor`` before joins start evicting
    neighbours, and evictions between the target and the expanded maximum
    do not trigger replacements (the join-storm damper of §II-A).
    """

    active_size: int = 4
    passive_size: int = 16
    expansion_factor: float = 2.0
    #: Active Random Walk Length for ForwardJoin propagation.
    arwl: int = 6
    #: Passive Random Walk Length: the TTL at which a walking join is
    #: recorded into a passive view.
    prwl: int = 3
    #: Period of passive-view shuffles (seconds).
    shuffle_period: float = 10.0
    #: Number of active-view entries contributed to a shuffle.
    shuffle_active: int = 3
    #: Number of passive-view entries contributed to a shuffle.
    shuffle_passive: int = 4
    #: Keep-alive period on active-view TCP connections (seconds).
    keepalive_period: float = 1.0

    def __post_init__(self) -> None:
        _require(self.active_size >= 1, "active_size must be >= 1")
        _require(self.passive_size >= 0, "passive_size must be >= 0")
        _require(self.expansion_factor >= 1.0, "expansion_factor must be >= 1")
        _require(self.arwl >= self.prwl >= 0, "need arwl >= prwl >= 0")
        _require(self.shuffle_period > 0, "shuffle_period must be positive")
        _require(self.keepalive_period > 0, "keepalive_period must be positive")

    @property
    def max_active(self) -> int:
        """Hard cap on the active view: target size times expansion factor."""
        return max(self.active_size, int(math.ceil(self.active_size * self.expansion_factor)))


@dataclass(frozen=True)
class CyclonConfig:
    """Cyclon proactive PSS parameters (used by SimpleGossip, §III-D)."""

    view_size: int = 8
    shuffle_period: float = 2.0
    #: Entries exchanged per shuffle (including the sender's own entry).
    shuffle_length: int = 4

    def __post_init__(self) -> None:
        _require(self.view_size >= 1, "view_size must be >= 1")
        _require(0 < self.shuffle_length <= self.view_size, "0 < shuffle_length <= view_size")
        _require(self.shuffle_period > 0, "shuffle_period must be positive")


#: Valid structure modes for BRISA.
BRISA_MODES = ("tree", "dag")

#: Valid cycle predictors (§II-D, §II-G and the Bloom-filter comparison).
CYCLE_PREDICTORS = ("path", "depth", "bloom")

#: Registered parent-selection strategies (§II-E + §IV perspectives).
STRATEGY_NAMES = (
    "first-come",
    "delay-aware",
    "gerontocratic",
    "load-balancing",
    "heterogeneity",
)


@dataclass(frozen=True)
class BrisaConfig:
    """BRISA protocol parameters (§II).

    ``mode='tree'`` keeps exactly one parent per stream; ``mode='dag'``
    keeps ``num_parents`` parents and switches cycle prevention from exact
    path embedding to approximate depth labels (§II-G) unless overridden
    through ``cycle_predictor``.
    """

    mode: str = "tree"
    num_parents: int = 1
    strategy: str = "first-come"
    #: 'path' (exact, tree default), 'depth' (approximate, DAG default) or
    #: 'bloom' (probabilistic baseline used in the §II-D cost comparison).
    cycle_predictor: str = ""
    #: Whether first-come deactivation is applied symmetrically (§II-E).
    symmetric_deactivation: bool = True
    #: Messages buffered per stream for post-repair retransmission (§II-F).
    buffer_size: int = 64
    #: Probe a parent when a stream goes quiet (lossy-link deployments).
    #: §II-F gap recovery only fires when a *later* seq arrives, so a lost
    #: final message orphans its whole subtree with no traffic left to
    #: reveal the gap.  With this enabled, each node asks one parent for
    #: anything beyond its contiguous prefix after the stream quiesces;
    #: recovered data re-enters the normal first-reception forwarding path
    #: and cascades down the subtree.
    tail_probe: bool = False
    #: Bloom-filter size in bits (only used with cycle_predictor='bloom').
    bloom_bits: int = 1024
    bloom_hashes: int = 4

    def __post_init__(self) -> None:
        _require(self.mode in BRISA_MODES, f"mode must be one of {BRISA_MODES}")
        _require(self.num_parents >= 1, "num_parents must be >= 1")
        if self.mode == "tree":
            _require(self.num_parents == 1, "tree mode implies num_parents == 1")
        _require(self.strategy in STRATEGY_NAMES, f"unknown strategy {self.strategy!r}")
        predictor = self.cycle_predictor or self.default_predictor(self.mode)
        _require(predictor in CYCLE_PREDICTORS, f"unknown cycle predictor {predictor!r}")
        # §II-G: a single embedded path cannot express the ancestor set of
        # a multi-parent node; DAGs need depth labels or Bloom filters.
        _require(
            not (self.mode == "dag" and predictor == "path"),
            "path embedding is tree-only; use 'depth' or 'bloom' for DAGs",
        )
        if not self.cycle_predictor:
            object.__setattr__(self, "cycle_predictor", predictor)
        _require(self.buffer_size >= 0, "buffer_size must be >= 0")
        _require(self.bloom_bits > 0 and self.bloom_hashes > 0, "bloom params must be positive")

    @staticmethod
    def default_predictor(mode: str) -> str:
        return "path" if mode == "tree" else "depth"

    def with_(self, **kwargs) -> "BrisaConfig":
        """Return a copy with fields replaced (convenience for sweeps)."""
        return dataclasses.replace(self, **kwargs)


@dataclass(frozen=True)
class StreamConfig:
    """Workload of one dissemination stream (§III: 500 msgs at 5/s)."""

    count: int = 500
    rate: float = 5.0
    payload_bytes: int = 1024
    stream_id: int = 0

    def __post_init__(self) -> None:
        _require(self.count >= 1, "count must be >= 1")
        _require(self.rate > 0, "rate must be positive")
        _require(self.payload_bytes >= 0, "payload_bytes must be >= 0")

    @property
    def duration(self) -> float:
        """Time spanned by the injections (first message goes out at t+0)."""
        return (self.count - 1) / self.rate


@dataclass(frozen=True)
class GossipConfig:
    """SimpleGossip baseline (§III-D): Cyclon + push rumor mongering with
    fanout ``ln(N)`` + anti-entropy pull at twice the message creation rate."""

    #: Explicit fanout; ``0`` means ``ceil(ln(N))`` evaluated at runtime.
    fanout: int = 0
    #: Anti-entropy frequency as a multiple of the stream message rate.
    anti_entropy_rate_factor: float = 2.0
    cyclon: CyclonConfig = field(default_factory=CyclonConfig)

    def __post_init__(self) -> None:
        _require(self.fanout >= 0, "fanout must be >= 0 (0 = ln N)")
        _require(self.anti_entropy_rate_factor > 0, "anti_entropy_rate_factor must be positive")

    def effective_fanout(self, n: int) -> int:
        if self.fanout:
            return self.fanout
        return max(1, int(math.ceil(math.log(max(2, n)))))


@dataclass(frozen=True)
class SimpleTreeConfig:
    """SimpleTree baseline (§III-D): centralized random tree, push."""

    #: Maximum children per node; 0 = unbounded (the paper's tree is
    #: random over all previously-joined nodes, unbounded degree).
    max_children: int = 0

    def __post_init__(self) -> None:
        _require(self.max_children >= 0, "max_children must be >= 0")


@dataclass(frozen=True)
class TagConfig:
    """TAG baseline (§III-D, after Liu & Zhou 2006).

    Nodes sit in a linked list sorted by join time with 2-hop
    predecessor/successor knowledge; new nodes traverse the list backwards,
    collect ``gossip_partners`` random peers, and stop at the first node
    with spare tree capacity.  Dissemination is pull-based from the tree
    parent, with gossip partners used to prefetch.
    """

    #: Random peers collected during the join traversal.
    gossip_partners: int = 4
    #: Tree fan-out limit that ends the join traversal.
    max_children: int = 4
    #: Period between pulls to the tree parent (seconds).
    pull_period: float = 0.4
    #: Messages fetched per pull round (media-streaming segment model).
    pull_batch: int = 1
    #: Period between prefetch pulls to a random gossip partner.
    gossip_pull_period: float = 2.0
    #: Hops of predecessor/successor knowledge kept.
    list_horizon: int = 2
    #: TCP connection setup cost in RTTs (TAG tears connections down
    #: between traversal hops — §III-D construction-time discussion).
    connection_setup_rtts: float = 1.5
    #: Minimum uptime before a node may accept tree children — the proxy
    #: for TAG's "application specific condition" (a media-streaming node
    #: must have content buffered ahead of the joiner's play position).
    #: Without it every joiner attaches to the freshest predecessor and
    #: the tree degenerates into a chain.
    min_parent_age: float = 3.0

    def __post_init__(self) -> None:
        _require(self.gossip_partners >= 0, "gossip_partners must be >= 0")
        _require(self.max_children >= 1, "max_children must be >= 1")
        _require(self.pull_period > 0, "pull_period must be positive")
        _require(self.pull_batch >= 1, "pull_batch must be >= 1")
        _require(self.gossip_pull_period > 0, "gossip_pull_period must be positive")
        _require(self.list_horizon >= 1, "list_horizon must be >= 1")
        _require(self.connection_setup_rtts >= 0, "connection_setup_rtts must be >= 0")
        _require(self.min_parent_age >= 0, "min_parent_age must be >= 0")
