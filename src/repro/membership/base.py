"""Peer-sampling-service interface.

The dissemination layers (BRISA and the baselines) consume membership
through this narrow interface: a ``neighbors()`` view plus up/down
callbacks.  Both HyParView and Cyclon implement it, so protocol code never
depends on a concrete PSS — mirroring the paper's layering, where BRISA
only assumes "a view of non-faulty nodes chosen at random" with
connectivity and bidirectionality guarantees supplied by HyParView.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

from repro.ids import NodeId
from repro.sim.node import ProtocolNode


@runtime_checkable
class MembershipListener(Protocol):
    """Callbacks a dissemination layer registers with its PSS."""

    def neighbor_up(self, peer: NodeId) -> None:
        """``peer`` entered the exposed view."""

    def neighbor_down(self, peer: NodeId, failure: bool) -> None:
        """``peer`` left the view; ``failure`` distinguishes crashes from
        graceful evictions/disconnects."""


class PeerSamplingNode(ProtocolNode):
    """Base class for nodes that expose a peer-sampling view."""

    def __init__(self, network, node_id: NodeId) -> None:
        super().__init__(network, node_id)
        self._listeners: list[MembershipListener] = []

    # -- view ------------------------------------------------------------
    def neighbors(self) -> list[NodeId]:
        """The current exposed view (HyParView: the active view)."""
        raise NotImplementedError

    def join(self, contact: NodeId) -> None:
        """Start the join procedure through an existing system node."""
        raise NotImplementedError

    # -- listeners ---------------------------------------------------------
    def add_membership_listener(self, listener: MembershipListener) -> None:
        self._listeners.append(listener)

    def _notify_up(self, peer: NodeId) -> None:
        self.neighbor_up(peer)
        for listener in self._listeners:
            listener.neighbor_up(peer)

    def _notify_down(self, peer: NodeId, failure: bool) -> None:
        self.neighbor_down(peer, failure)
        for listener in self._listeners:
            listener.neighbor_down(peer, failure)

    # -- overridable hooks (for subclass layering, e.g. BrisaNode) --------
    def neighbor_up(self, peer: NodeId) -> None:
        """Subclass hook; called before external listeners."""

    def neighbor_down(self, peer: NodeId, failure: bool) -> None:
        """Subclass hook; called before external listeners."""
