"""Peer sampling services (§II-A).

Two PSS families back the paper's protocols:

- :class:`repro.membership.hyparview.HyParViewNode` — the *reactive* PSS
  BRISA builds on: a small active view of bidirectional TCP links plus a
  larger passive view refreshed by shuffles; active entries change only on
  failure or join, giving BRISA the stability it needs to keep emerged
  structures intact.
- :class:`repro.membership.cyclon.CyclonNode` — the *proactive* PSS used
  by the SimpleGossip baseline (§III-D): the view is a continuous stream
  of fresh samples produced by age-based shuffles.
"""

from repro.membership.base import MembershipListener, PeerSamplingNode
from repro.membership.cyclon import CyclonNode
from repro.membership.hyparview import HyParViewNode

__all__ = [
    "CyclonNode",
    "HyParViewNode",
    "MembershipListener",
    "PeerSamplingNode",
]
