"""Wire messages of the membership layer (HyParView + Cyclon).

Message kinds are prefixed (``hpv_``, ``cyc_``) so that several protocol
layers can coexist on one node without handler collisions.  Sizes follow
the id-size accounting of :mod:`repro.ids`.
"""

from __future__ import annotations

from repro.ids import NODE_ID_BYTES, NodeId
from repro.sim.message import Message

#: Bytes per (id, age) entry exchanged in view shuffles.
ENTRY_BYTES = NODE_ID_BYTES + 2


class Join(Message):
    """New node announces itself to its contact point."""

    kind = "hpv_join"
    __slots__ = ()


class ForwardJoin(Message):
    """Random-walk propagation of a join through the overlay."""

    kind = "hpv_forward_join"
    __slots__ = ("joiner", "ttl")

    def __init__(self, joiner: NodeId, ttl: int) -> None:
        self.joiner = joiner
        self.ttl = ttl

    def body_bytes(self) -> int:
        return NODE_ID_BYTES + 1


class Neighbor(Message):
    """Request to establish a (bidirectional) active-view link."""

    kind = "hpv_neighbor"
    __slots__ = ("priority",)

    def __init__(self, priority: bool) -> None:
        self.priority = priority

    def body_bytes(self) -> int:
        return 1


class NeighborAccept(Message):
    kind = "hpv_neighbor_accept"
    __slots__ = ()


class NeighborReject(Message):
    kind = "hpv_neighbor_reject"
    __slots__ = ()


class Disconnect(Message):
    """Graceful removal from the active view (eviction, not failure)."""

    kind = "hpv_disconnect"
    __slots__ = ()


class Shuffle(Message):
    """Passive-view shuffle walking ``ttl`` hops from ``origin``."""

    kind = "hpv_shuffle"
    __slots__ = ("origin", "entries", "ttl")

    def __init__(self, origin: NodeId, entries: tuple[NodeId, ...], ttl: int) -> None:
        self.origin = origin
        self.entries = entries
        self.ttl = ttl

    def body_bytes(self) -> int:
        return NODE_ID_BYTES + 1 + len(self.entries) * ENTRY_BYTES


class ShuffleReply(Message):
    kind = "hpv_shuffle_reply"
    __slots__ = ("entries",)

    def __init__(self, entries: tuple[NodeId, ...]) -> None:
        self.entries = entries

    def body_bytes(self) -> int:
        return len(self.entries) * ENTRY_BYTES


class CyclonShuffle(Message):
    """Cyclon shuffle request: (peer, age) descriptors incl. the sender."""

    kind = "cyc_shuffle"
    __slots__ = ("entries",)

    def __init__(self, entries: tuple[tuple[NodeId, int], ...]) -> None:
        self.entries = entries

    def body_bytes(self) -> int:
        return len(self.entries) * ENTRY_BYTES


class CyclonShuffleReply(Message):
    kind = "cyc_shuffle_reply"
    __slots__ = ("entries",)

    def __init__(self, entries: tuple[tuple[NodeId, int], ...]) -> None:
        self.entries = entries

    def body_bytes(self) -> int:
        return len(self.entries) * ENTRY_BYTES


class CyclonJoin(Message):
    """Join request to a contact node."""

    kind = "cyc_join"
    __slots__ = ()


class CyclonJoinReply(Message):
    """Contact seeds the joiner with a sample of its view."""

    kind = "cyc_join_reply"
    __slots__ = ("entries",)

    def __init__(self, entries: tuple[tuple[NodeId, int], ...]) -> None:
        self.entries = entries

    def body_bytes(self) -> int:
        return len(self.entries) * ENTRY_BYTES
