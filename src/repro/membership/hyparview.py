"""HyParView: hybrid partial view membership (Leitão et al., DSN'07).

The reactive PSS BRISA builds on (§II-A):

- a small **active view** of bidirectional links backed by open TCP
  connections with heartbeat failure detection — only this view is exposed
  to the dissemination layer;
- a larger **passive view** maintained proactively by periodic shuffles,
  used as a reservoir of replacements when active entries fail.

Two paper-specific behaviours are implemented faithfully:

- **Expansion factor** (§II-A): the active view may grow up to
  ``active_size * expansion_factor`` before a join evicts somebody, and an
  eviction does *not* trigger a replacement while the view is still at or
  above the target size.  This damps the eviction chain reactions seen
  when bootstrapping with full views.
- **Bidirectionality**: every active link is mutual, which is what makes
  flooding complete without anti-entropy (§II-A) — the property BRISA's
  correctness rests on.
"""

from __future__ import annotations

from repro.config import HyParViewConfig
from repro.ids import NodeId
from repro.membership import messages as m
from repro.membership.base import PeerSamplingNode


class HyParViewNode(PeerSamplingNode):
    """One HyParView participant."""

    def __init__(
        self,
        network,
        node_id: NodeId,
        config: HyParViewConfig | None = None,
    ) -> None:
        super().__init__(network, node_id)
        self.hpv_config = config if config is not None else HyParViewConfig()
        #: Active view: insertion-ordered for deterministic iteration.
        self.active: dict[NodeId, None] = {}
        #: Passive view.
        self.passive: set[NodeId] = set()
        #: Peers we have sent a Neighbor request to and not heard back
        #: from, mapped to the attempt token of that request (stale
        #: timeouts must not cancel a newer in-flight request).
        self._pending_neighbor: dict[NodeId, int] = {}
        self._neighbor_seq = 0
        #: Candidates that rejected a Neighbor request in the current
        #: promotion episode.  They stay in the passive view (they are
        #: alive, just full — a later episode may find them with room),
        #: but are not re-asked until the episode exhausts the reservoir:
        #: without this, an under-full node whose reachable candidates
        #: all sit at their cap livelocks in a Neighbor/Reject ping-pong.
        self._promotion_rejected: set[NodeId] = set()
        self._shuffle_task = self.periodic(
            self.hpv_config.shuffle_period, self._shuffle, jitter=0.2
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def neighbors(self) -> list[NodeId]:
        return list(self.active)

    @property
    def degree(self) -> int:
        return len(self.active)

    def is_active(self, peer: NodeId) -> bool:
        return peer in self.active

    # ------------------------------------------------------------------
    # Synthesized / checkpointed bootstrap (DESIGN.md §7)
    # ------------------------------------------------------------------
    def install_overlay(
        self,
        active: "list[NodeId] | tuple[NodeId, ...] | set[NodeId]",
        passive: "list[NodeId] | tuple[NodeId, ...] | set[NodeId]",
        *,
        register_links: bool = True,
    ) -> None:
        """Wire a pre-built view directly into this node's state without
        simulating the join protocol.

        The caller owns the global invariants a settled join ramp would
        have produced — mutual active links, connectivity, view sizes
        within ``active_size``/``expansion_factor`` — and this method
        installs the local state exactly as the protocol would have left
        it: active entries with neighbour-up notifications, passive
        entries subject to the usual exclusion rules.  ``register_links=
        False`` lets a bulk bootstrap register all TCP links in one
        :meth:`Network.register_links` pass instead of twice per edge.

        A fresh node (both views empty — the bulk-bootstrap case) takes
        a batched path: the views are built with the bulk constructors
        instead of per-peer inserts, leaving only the neighbour-up
        notifications as per-peer work (DESIGN.md §8).
        """
        if not self.active and not self.passive:
            fresh = dict.fromkeys(active)
            fresh.pop(self.node_id, None)
            self.active = fresh
            if register_links:
                register = self.transport.register_link
                for peer in fresh:
                    register(self.node_id, peer)
            for peer in fresh:
                self._notify_up(peer)
            self.passive = {
                p for p in passive if p != self.node_id and p not in fresh
            }
            return
        for peer in active:
            if peer == self.node_id or peer in self.active:
                continue
            self.passive.discard(peer)
            self.active[peer] = None
            if register_links:
                self.transport.register_link(self.node_id, peer)
            self._notify_up(peer)
        for peer in passive:
            if peer != self.node_id and peer not in self.active:
                self.passive.add(peer)

    def overlay_snapshot(self) -> dict:
        """Serializable view state for overlay checkpoints."""
        return {
            "id": self.node_id,
            "active": list(self.active),
            "passive": sorted(self.passive),
        }

    # ------------------------------------------------------------------
    # Join protocol
    # ------------------------------------------------------------------
    def join(self, contact: NodeId) -> None:
        """Join the overlay through ``contact`` (§II-F: the new node is
        provided with an active view via its contact point)."""
        self.send(contact, m.Join())

    def on_hpv_join(self, src: NodeId, msg: m.Join) -> None:
        self._add_active(src)
        # Confirm the mutual link so the joiner installs us symmetrically.
        self.send(src, m.NeighborAccept())
        ttl = self.hpv_config.arwl
        for peer in list(self.active):
            if peer != src:
                self.send(peer, m.ForwardJoin(src, ttl))

    def on_hpv_forward_join(self, src: NodeId, msg: m.ForwardJoin) -> None:
        joiner, ttl = msg.joiner, msg.ttl
        if joiner == self.node_id or joiner in self.active:
            return
        if ttl <= 0 or len(self.active) <= 1:
            self._request_neighbor(joiner, priority=True)
            return
        if ttl == self.hpv_config.prwl:
            self._add_passive(joiner)
        candidates = [p for p in self.active if p not in (src, joiner)]
        if candidates:
            target = self._rng.choice(candidates)
            self.send(target, m.ForwardJoin(joiner, ttl - 1))
        else:
            self._request_neighbor(joiner, priority=True)

    # ------------------------------------------------------------------
    # Active-view management
    # ------------------------------------------------------------------
    def _add_active(self, peer: NodeId) -> None:
        """Insert ``peer`` into the active view, evicting if at the cap."""
        if peer == self.node_id or peer in self.active:
            return
        if len(self.active) >= self.hpv_config.max_active:
            victim = self._rng.choice(list(self.active))
            # Room is being made for an immediate insertion: do not seek a
            # replacement, or the freed slot gets re-filled and the new
            # peer evicted right back out.
            self._drop_active(victim, failure=False, notify_peer=True, replace=False)
        self.passive.discard(peer)
        self._pending_neighbor.pop(peer, None)
        self._promotion_rejected.discard(peer)
        self.active[peer] = None
        self.transport.register_link(self.node_id, peer)
        self._notify_up(peer)

    def _drop_active(
        self, peer: NodeId, *, failure: bool, notify_peer: bool, replace: bool = True
    ) -> None:
        if peer not in self.active:
            return
        del self.active[peer]
        self.transport.unregister_link(self.node_id, peer)
        if notify_peer:
            self.send(peer, m.Disconnect())
        if not failure:
            # Evicted peers stay reachable through the passive view.
            self._add_passive(peer)
        self._notify_down(peer, failure)
        if replace:
            self._maybe_replace()

    def _maybe_replace(self) -> None:
        """Promote from the passive view only below the *target* size —
        between target and target×expansion no replacement happens (§II-A)."""
        if len(self.active) + len(self._pending_neighbor) >= self.hpv_config.active_size:
            return
        candidates = [
            p
            for p in self.passive
            if p not in self._pending_neighbor and p not in self._promotion_rejected
        ]
        if not candidates:
            # Episode over: every reachable candidate was tried.  Clear
            # the rejection memory so the next membership event (or a
            # shuffle refilling the reservoir) re-arms promotion.
            self._promotion_rejected.clear()
            return
        candidate = self._rng.choice(candidates)
        self._request_neighbor(candidate, priority=len(self.active) == 0)

    def _request_neighbor(self, peer: NodeId, priority: bool) -> None:
        if peer == self.node_id or peer in self.active or peer in self._pending_neighbor:
            return
        self._neighbor_seq += 1
        self._pending_neighbor[peer] = self._neighbor_seq
        self.send(peer, m.Neighbor(priority))
        timeout = max(0.05, 6.0 * self.transport.rtt(self.node_id, peer))
        self.after(timeout, self._neighbor_timeout, peer, self._neighbor_seq)

    def _neighbor_timeout(self, peer: NodeId, attempt: int) -> None:
        if self._pending_neighbor.get(peer) != attempt:
            return  # answered in time, or a newer request is in flight
        # No answer: the candidate is unreachable.  Remove it from the
        # passive view (stale entries otherwise pin a pending slot
        # forever and shuffles keep re-spreading them) and move on.
        del self._pending_neighbor[peer]
        self.passive.discard(peer)
        self._maybe_replace()

    def on_hpv_neighbor(self, src: NodeId, msg: m.Neighbor) -> None:
        # Priority requests (orphaned/forced joins) are always accepted;
        # normal requests only when below the expanded cap.
        if msg.priority or len(self.active) < self.hpv_config.max_active:
            self._add_active(src)
            self.send(src, m.NeighborAccept())
        else:
            self.send(src, m.NeighborReject())

    def on_hpv_neighbor_accept(self, src: NodeId, msg: m.NeighborAccept) -> None:
        self._pending_neighbor.pop(src, None)
        self._add_active(src)

    def on_hpv_neighbor_reject(self, src: NodeId, msg: m.NeighborReject) -> None:
        self._pending_neighbor.pop(src, None)
        # The candidate is alive but full: remember the rejection for
        # this episode and try another candidate.
        self._promotion_rejected.add(src)
        self._maybe_replace()

    def on_hpv_disconnect(self, src: NodeId, msg: m.Disconnect) -> None:
        if src in self.active:
            self._drop_active(src, failure=False, notify_peer=False)

    # ------------------------------------------------------------------
    # Failure handling
    # ------------------------------------------------------------------
    def on_link_failed(self, peer: NodeId) -> None:
        """Heartbeat/TCP failure detection on an active-view connection
        (§II-A): replace the failed neighbour from the passive view."""
        self.passive.discard(peer)
        self._pending_neighbor.pop(peer, None)
        self._promotion_rejected.discard(peer)
        if peer in self.active:
            del self.active[peer]
            self.transport.unregister_link(self.node_id, peer)
            self._notify_down(peer, failure=True)
        self._maybe_replace()

    # ------------------------------------------------------------------
    # Passive view maintenance (shuffles)
    # ------------------------------------------------------------------
    def _add_passive(self, peer: NodeId, sent_away: set[NodeId] | None = None) -> None:
        if peer == self.node_id or peer in self.active or peer in self.passive:
            return
        if len(self.passive) >= self.hpv_config.passive_size:
            # Prefer dropping entries we just shipped out in a shuffle.
            droppable = list(sent_away & self.passive) if sent_away else []
            victim = (
                self._rng.choice(droppable)
                if droppable
                else self._rng.choice(list(self.passive))
            )
            self.passive.discard(victim)
        self.passive.add(peer)

    def _shuffle_sample(self) -> tuple[NodeId, ...]:
        cfg = self.hpv_config
        active_sample = self._rng.sample(
            list(self.active), min(cfg.shuffle_active, len(self.active))
        )
        passive_sample = self._rng.sample(
            list(self.passive), min(cfg.shuffle_passive, len(self.passive))
        )
        return tuple({self.node_id, *active_sample, *passive_sample})

    def _shuffle(self) -> None:
        if not self.active:
            return
        target = self._rng.choice(list(self.active))
        self.send(target, m.Shuffle(self.node_id, self._shuffle_sample(), self.hpv_config.prwl))

    def on_hpv_shuffle(self, src: NodeId, msg: m.Shuffle) -> None:
        if msg.ttl > 0 and len(self.active) > 1:
            candidates = [p for p in self.active if p not in (src, msg.origin)]
            if candidates:
                target = self._rng.choice(candidates)
                self.send(target, m.Shuffle(msg.origin, msg.entries, msg.ttl - 1))
                return
        # Walk ended here: integrate and answer the origin with our sample.
        reply_sample = self._shuffle_sample()
        if msg.origin != self.node_id:
            self.send(msg.origin, m.ShuffleReply(reply_sample))
        self._integrate(msg.entries, sent_away=set(reply_sample))

    def on_hpv_shuffle_reply(self, src: NodeId, msg: m.ShuffleReply) -> None:
        self._integrate(msg.entries, sent_away=None)

    def _integrate(self, entries: tuple[NodeId, ...], sent_away: set[NodeId] | None) -> None:
        for peer in entries:
            self._add_passive(peer, sent_away)
        # A refreshed reservoir re-arms promotion: an under-full view
        # whose last episode exhausted its candidates retries at shuffle
        # cadence instead of never (live overlays) — while shuffle-free
        # static benchmark overlays stay quiescent so their heaps drain.
        self._maybe_replace()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def on_crash(self) -> None:
        super().on_crash()
        self.active.clear()
        self.passive.clear()
        self._pending_neighbor.clear()
        self._promotion_rejected.clear()
