"""Cyclon: inexpensive membership by age-based shuffles (Voulgaris et al.).

The *proactive* PSS used by the SimpleGossip baseline (§III-D): the view
is refreshed continuously by periodic exchanges, giving a stream of fresh
random samples but no stable neighbour set.  Crucially — and the paper
leans on this in the Fig. 12 discussion — Cyclon has **no explicit
failure detection**: dead entries simply age out when a shuffle towards
them goes unanswered.

Join is implemented as contact seeding (the joiner receives a sample of
the contact's view and the contact inserts the joiner), a standard
simplification of Cyclon's random-walk join that preserves the steady
state the baseline needs; see DESIGN.md.
"""

from __future__ import annotations

from repro.config import CyclonConfig
from repro.ids import NodeId
from repro.membership import messages as m
from repro.membership.base import PeerSamplingNode


class CyclonNode(PeerSamplingNode):
    """One Cyclon participant."""

    def __init__(
        self,
        network,
        node_id: NodeId,
        config: CyclonConfig | None = None,
    ) -> None:
        super().__init__(network, node_id)
        self.cyclon_config = config if config is not None else CyclonConfig()
        #: peer -> age
        self.view: dict[NodeId, int] = {}
        #: Entries shipped in an in-flight shuffle towards each peer.
        self._in_flight: dict[NodeId, tuple[tuple[NodeId, int], ...]] = {}
        self._shuffle_task = self.periodic(
            self.cyclon_config.shuffle_period, self._shuffle, jitter=0.2
        )

    # ------------------------------------------------------------------
    def neighbors(self) -> list[NodeId]:
        return list(self.view)

    def join(self, contact: NodeId) -> None:
        self.send(contact, m.CyclonJoin())

    def on_cyc_join(self, src: NodeId, msg: m.CyclonJoin) -> None:
        sample = tuple(
            (p, a)
            for p, a in self._rng.sample(
                list(self.view.items()), min(len(self.view), self.cyclon_config.view_size - 1)
            )
            if p != src
        )
        self.send(src, m.CyclonJoinReply(sample + ((self.node_id, 0),)))
        self._insert(src, 0)

    def on_cyc_join_reply(self, src: NodeId, msg: m.CyclonJoinReply) -> None:
        for peer, age in msg.entries:
            self._insert(peer, age)

    # ------------------------------------------------------------------
    # Shuffle
    # ------------------------------------------------------------------
    def _shuffle(self) -> None:
        if not self.view:
            return
        for peer in self.view:
            self.view[peer] += 1
        # Contact the oldest entry (most likely to be stale).
        oldest = max(self.view, key=lambda p: (self.view[p], p))
        self.view.pop(oldest)
        sample = self._sample_entries(self.cyclon_config.shuffle_length - 1, exclude=oldest)
        entries = sample + ((self.node_id, 0),)
        self._in_flight[oldest] = entries
        self.send(oldest, m.CyclonShuffle(entries))

    def _sample_entries(
        self, count: int, exclude: NodeId | None = None
    ) -> tuple[tuple[NodeId, int], ...]:
        pool = [(p, a) for p, a in self.view.items() if p != exclude]
        picked = self._rng.sample(pool, min(count, len(pool)))
        return tuple(picked)

    def on_cyc_shuffle(self, src: NodeId, msg: m.CyclonShuffle) -> None:
        reply = self._sample_entries(self.cyclon_config.shuffle_length, exclude=src)
        self.send(src, m.CyclonShuffleReply(reply))
        self._merge(msg.entries, replaceable={p for p, _ in reply})

    def on_cyc_shuffle_reply(self, src: NodeId, msg: m.CyclonShuffleReply) -> None:
        sent = self._in_flight.pop(src, ())
        self._merge(msg.entries, replaceable={p for p, _ in sent})

    def _merge(
        self, entries: tuple[tuple[NodeId, int], ...], replaceable: set[NodeId]
    ) -> None:
        for peer, age in entries:
            if peer == self.node_id:
                continue
            if peer in self.view:
                self.view[peer] = min(self.view[peer], age)
                continue
            if len(self.view) < self.cyclon_config.view_size:
                self._insert(peer, age)
                continue
            # Replace entries we shipped out, else the oldest entry.
            victims = [p for p in replaceable if p in self.view]
            victim = victims[0] if victims else max(self.view, key=lambda p: (self.view[p], p))
            self.view.pop(victim)
            replaceable.discard(victim)
            self._insert(peer, age)

    def _insert(self, peer: NodeId, age: int) -> None:
        if peer == self.node_id:
            return
        if peer in self.view:
            self.view[peer] = min(self.view[peer], age)
            return
        if len(self.view) >= self.cyclon_config.view_size:
            victim = max(self.view, key=lambda p: (self.view[p], p))
            self.view.pop(victim)
        self.view[peer] = age
        self._notify_up(peer)

    # ------------------------------------------------------------------
    def on_crash(self) -> None:
        super().on_crash()
        self.view.clear()
        self._in_flight.clear()
