"""Node/stream identifiers and wire-size constants.

The paper assumes 48-bit ``ip:port`` pairs as unique node identifiers
(§II-D: a 7-hop embedded path costs ``7 * 48 = 336`` bits).  We keep node
ids as plain integers inside the simulator but account for their wire size
with :data:`NODE_ID_BYTES` so that the metadata-overhead numbers (path
embedding vs. Bloom filters, Fig. 10–12 bandwidth) stay faithful.
"""

from __future__ import annotations

# Type aliases used across the code base.  Node ids are dense small integers
# assigned by the :class:`repro.sim.network.Network`; stream ids identify
# independent dissemination streams (the paper uses a single stream; the
# multi-stream extension of §IV keys all per-stream state by StreamId).
NodeId = int
StreamId = int

#: Wire size of one node identifier: 48-bit ip:port pair (§II-D).
NODE_ID_BYTES = 6

#: Wire size of a sequence number.
SEQ_BYTES = 4

#: Wire size of a DAG depth label — "a single integer" (§II-G).
DEPTH_BYTES = 4

#: Fixed per-message framing overhead (TCP/IP + protocol header estimate).
#: Splay messages carry a small type+length header; 40 bytes of TCP/IP
#: headers dominate.  The exact value only shifts all bandwidth figures by
#: a constant, which is irrelevant for the shapes we reproduce.
HEADER_BYTES = 48

#: Size of one keep-alive probe (header only, empty payload).
KEEPALIVE_BYTES = HEADER_BYTES


def path_metadata_bytes(path_len: int) -> int:
    """Bytes consumed by an embedded path of ``path_len`` identifiers."""
    return path_len * NODE_ID_BYTES
