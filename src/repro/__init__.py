"""BRISA reproduction — efficient & reliable epidemic data dissemination.

This package reproduces *BRISA: Combining Efficiency and Reliability in
Epidemic Data Dissemination* (Matos, Schiavoni, Felber, Oliveira, Rivière —
IEEE IPDPS 2012) as a self-contained, deterministic discrete-event system:

- :mod:`repro.sim` — the simulation substrate standing in for the paper's
  Splay deployments (cluster + PlanetLab): event engine, latency models,
  network, churn traces, metrics.
- :mod:`repro.membership` — peer sampling services: HyParView (reactive,
  used by BRISA) and Cyclon (proactive, used by the SimpleGossip baseline).
- :mod:`repro.core` — the BRISA protocol itself: flood-bootstrapped
  emergence of trees and DAGs, parent-selection strategies, cycle
  predictors, soft/hard repair, message recovery, stream splitting.
- :mod:`repro.baselines` — the comparison protocols of §III-D: flooding,
  SimpleGossip, SimpleTree and TAG.
- :mod:`repro.experiments` — one scenario per paper figure/table plus the
  reporting harness.

Top-level names are loaded lazily (PEP 562) so that ``import repro`` stays
cheap and subpackages have no import-order coupling.

Quickstart::

    from repro import quick_brisa_run
    result = quick_brisa_run(n=64, messages=50, seed=1)
    print(result.summary())
"""

from __future__ import annotations

import importlib
from typing import TYPE_CHECKING

__version__ = "1.0.0"

#: attribute name -> module providing it
_EXPORTS = {
    "BrisaConfig": "repro.config",
    "CyclonConfig": "repro.config",
    "GossipConfig": "repro.config",
    "HyParViewConfig": "repro.config",
    "SimpleTreeConfig": "repro.config",
    "StreamConfig": "repro.config",
    "TagConfig": "repro.config",
    "NodeId": "repro.ids",
    "StreamId": "repro.ids",
    "Simulator": "repro.sim.engine",
    "ClusterLatency": "repro.sim.latency",
    "ConstantLatency": "repro.sim.latency",
    "LatencyModel": "repro.sim.latency",
    "PlanetLabLatency": "repro.sim.latency",
    "Network": "repro.sim.network",
    "Metrics": "repro.sim.monitor",
    "HyParViewNode": "repro.membership.hyparview",
    "CyclonNode": "repro.membership.cyclon",
    "BrisaNode": "repro.core.brisa",
    "DelayAwareStrategy": "repro.core.strategies",
    "FirstComeStrategy": "repro.core.strategies",
    "GerontocraticStrategy": "repro.core.strategies",
    "HeterogeneityAwareStrategy": "repro.core.strategies",
    "LoadBalancingStrategy": "repro.core.strategies",
    "make_strategy": "repro.core.strategies",
    "Testbed": "repro.experiments.common",
    "quick_brisa_run": "repro.experiments.common",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str):
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    module = importlib.import_module(module_name)
    value = getattr(module, name)
    globals()[name] = value  # cache for subsequent lookups
    return value


def __dir__():
    return sorted(set(globals()) | set(_EXPORTS))


if TYPE_CHECKING:  # pragma: no cover - static-analysis imports only
    from repro.config import (  # noqa: F401
        BrisaConfig,
        CyclonConfig,
        GossipConfig,
        HyParViewConfig,
        SimpleTreeConfig,
        StreamConfig,
        TagConfig,
    )
    from repro.core.brisa import BrisaNode  # noqa: F401
    from repro.core.strategies import (  # noqa: F401
        DelayAwareStrategy,
        FirstComeStrategy,
        GerontocraticStrategy,
        HeterogeneityAwareStrategy,
        LoadBalancingStrategy,
        make_strategy,
    )
    from repro.experiments.common import Testbed, quick_brisa_run  # noqa: F401
    from repro.ids import NodeId, StreamId  # noqa: F401
    from repro.membership.cyclon import CyclonNode  # noqa: F401
    from repro.membership.hyparview import HyParViewNode  # noqa: F401
    from repro.sim.engine import Simulator  # noqa: F401
    from repro.sim.latency import (  # noqa: F401
        ClusterLatency,
        ConstantLatency,
        LatencyModel,
        PlanetLabLatency,
    )
    from repro.sim.monitor import Metrics  # noqa: F401
    from repro.sim.network import Network  # noqa: F401
