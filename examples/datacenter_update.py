#!/usr/bin/env python
"""Datacenter software-update push (the paper's §I Twitter/Murder use case).

Compares pushing a multi-chunk software update to a rack of servers via
BRISA's emergent tree against plain flooding over the same overlay: the
tree delivers each chunk exactly once per server, flooding wastes an
amount of bandwidth that grows with the active-view size.

Run:  python examples/datacenter_update.py
(REPRO_EXAMPLE_TINY=1 shrinks the population for smoke tests.)
"""

import os

from repro.config import HyParViewConfig, StreamConfig
from repro.experiments.common import build_brisa_testbed, build_flood_testbed
from repro.experiments.report import banner, table
from repro.sim.latency import ClusterLatency

TINY = bool(os.environ.get("REPRO_EXAMPLE_TINY"))
SERVERS = 32 if TINY else 100
CHUNKS = 12 if TINY else 64
CHUNK_KB = 50


def run(kind: str, seed: int = 11):
    hpv = HyParViewConfig(active_size=6)
    build = build_brisa_testbed if kind == "brisa" else build_flood_testbed
    kwargs = dict(seed=seed, latency=ClusterLatency(seed=seed), hpv_config=hpv)
    bed = build(SERVERS, **kwargs)
    source = bed.choose_source()
    result = bed.run_stream(
        source,
        StreamConfig(count=CHUNKS, rate=10.0, payload_bytes=CHUNK_KB * 1024),
        drain=15.0,
    )
    total_mb = bed.metrics.total_bytes() / (1024 * 1024)
    dups = sum(result.duplicates_per_node())
    return result.delivered_fraction(), total_mb, dups


def main() -> None:
    payload_mb = CHUNKS * CHUNK_KB / 1024
    print(banner(
        f"Datacenter update push — {SERVERS} servers, "
        f"{CHUNKS} x {CHUNK_KB} KB chunks ({payload_mb:.1f} MB image)"
    ))
    rows = []
    results = {}
    for kind, label in (("brisa", "BRISA tree"), ("flood", "flooding")):
        delivered, total_mb, dups = run(kind)
        results[label] = total_mb
        rows.append([
            label,
            f"{delivered * 100:.1f}%",
            round(total_mb, 1),
            round(total_mb / payload_mb / (SERVERS - 1), 2),
            dups,
        ])
    print(table(
        ["transport", "delivered", "network traffic (MB)",
         "copies per server", "duplicate receptions"],
        rows,
    ))
    saved = results["flooding"] - results["BRISA tree"]
    print(f"\nBRISA's emergent tree saved {saved:.1f} MB "
          f"({saved / results['flooding'] * 100:.0f}% of flooding's traffic) "
          "while keeping the gossip overlay as a failure fallback.")


if __name__ == "__main__":
    main()
