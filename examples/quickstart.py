#!/usr/bin/env python
"""Quickstart: emerge a BRISA tree and disseminate a stream.

Builds a 64-node HyParView overlay, lets BRISA prune the flood of the
first messages into a spanning tree, then verifies the §II-B correctness
property (complete + acyclic) and prints what the emergence cost.

Run:  python examples/quickstart.py
(REPRO_EXAMPLE_TINY=1 shrinks the population for smoke tests.)
"""

import os

from repro import quick_brisa_run
from repro.core.structure import structure_summary
from repro.experiments.report import banner

TINY = bool(os.environ.get("REPRO_EXAMPLE_TINY"))
N = 24 if TINY else 64
MESSAGES = 12 if TINY else 50


def main() -> None:
    result = quick_brisa_run(n=N, messages=MESSAGES, seed=1)

    print(banner(f"BRISA quickstart — {N} nodes, {MESSAGES} x 1 KB messages"))
    print(result.summary())

    g = result.structure()
    stats = structure_summary(g, result.source.node_id, "tree")
    print(f"\nemerged tree: {stats['edges']} edges, "
          f"max depth {stats['max_depth']}, {stats['leaves']} leaves")

    metrics = result.metrics
    sends = sum(metrics.msg_counts["brisa_data"].values())
    deacts = sum(metrics.msg_counts["brisa_deactivate"].values())
    receivers = len(result.receivers())
    print(f"data messages sent: {sends} "
          f"(ideal tree = {receivers * MESSAGES}; the surplus is the bootstrap flood)")
    print(f"deactivations spent to prune the flood: {deacts}")
    ok, reason = result.structure_ok()
    print(f"structure complete & acyclic: {ok} ({reason})")


if __name__ == "__main__":
    main()
