#!/usr/bin/env python
"""News-feed dissemination under churn (the paper's §I motivation).

A publisher pushes a news feed to subscribers that continuously come and
go (5%/min churn, Listing-1 style).  A 2-parent BRISA DAG keeps delivery
uninterrupted: parent failures are masked by the second parent, repairs
are almost always soft, and missed items are recovered from the new
parent's buffer.

Run:  python examples/news_feed_churn.py
(REPRO_EXAMPLE_TINY=1 shrinks the population for smoke tests.)
"""

import math
import os

from repro.config import BrisaConfig, HyParViewConfig, StreamConfig
from repro.experiments.common import build_brisa_testbed
from repro.experiments.report import banner, table
from repro.metrics.stats import rate_per_minute
from repro.sim.churn import ChurnDriver
from repro.sim.trace import ConstChurn, SetReplacementRatio, Stop, Trace

TINY = bool(os.environ.get("REPRO_EXAMPLE_TINY"))
N = 32 if TINY else 96
CHURN_PCT_PER_MIN = 5.0
CHURN_SECONDS = 30.0 if TINY else 120.0
RATE = 5.0  # news items per second


def main() -> None:
    cfg = BrisaConfig(mode="dag", num_parents=2)
    bed = build_brisa_testbed(
        N, seed=7, config=cfg, hpv_config=HyParViewConfig(active_size=4)
    )
    publisher = bed.choose_source()

    # Publish continuously across the churn window.
    lead, drain = 10.0, 15.0
    items = int(math.ceil(RATE * (lead + CHURN_SECONDS + drain)))
    bed.start_stream(publisher, StreamConfig(count=items, rate=RATE, payload_bytes=2048))
    bed.sim.run(until=bed.sim.now + lead)

    start = bed.sim.now
    end = start + CHURN_SECONDS
    per_period = CHURN_PCT_PER_MIN * 30.0 / 60.0
    trace = Trace((
        SetReplacementRatio(start, 1.0),
        ConstChurn(start, end, per_period, 30.0),
        Stop(end),
    ))
    driver = ChurnDriver(
        bed.sim, bed.network, trace, bed.spawn_joiner,
        protected={publisher.node_id},
    )
    driver.apply()
    bed.sim.run(until=end + drain)

    m = bed.metrics
    lost = rate_per_minute((t for t, _ in m.parent_losses), (start, end))
    orphans = rate_per_minute((t for t, _ in m.orphan_events), (start, end))
    soft = sum(1 for r in m.repair_events if r.kind == "soft")
    hard = sum(1 for r in m.repair_events if r.kind == "hard")

    # Did the survivors get the news?  Check the subscribers that lived
    # through the whole run.
    survivors = [
        n for n in bed.alive_nodes()
        if n is not publisher and n.birth_time < start
    ]
    complete = sum(
        1 for n in survivors if len(n.streams[0].delivered) >= items - 1
    )

    print(banner("News feed under churn — 2-parent BRISA DAG"))
    print(table(
        ["metric", "value"],
        [
            ["subscribers (initial)", N - 1],
            ["churn", f"{CHURN_PCT_PER_MIN:g}%/min for {CHURN_SECONDS:.0f}s"],
            ["failures applied", driver.stats.kills],
            ["fresh joins", driver.stats.joins],
            ["parents lost / min", round(lost, 2)],
            ["orphans / min (full disconnections)", round(orphans, 2)],
            ["soft repairs", soft],
            ["hard repairs", hard],
            ["long-lived subscribers with a complete feed",
             f"{complete}/{len(survivors)}"],
        ],
    ))


if __name__ == "__main__":
    main()
