#!/usr/bin/env python
"""Stream splitting over DAG parents (§IV extension).

With a 2-parent DAG, a node can fetch alternating stripes of the stream
from each parent instead of full copies from both — SplitStream's idea
without its all-nodes-in-all-trees rigidity.  This example emerges a DAG,
then simulates the stripe assignment over the real parent sets: inbound
bandwidth halves while a parent failure still leaves every stripe
recoverable through reassignment.

Run:  python examples/stream_splitting.py
(REPRO_EXAMPLE_TINY=1 shrinks the population for smoke tests.)
"""

import os

from repro.config import BrisaConfig, StreamConfig
from repro.core.splitting import (
    StripeAssignment,
    StripeReassembler,
    split_bandwidth_share,
)
from repro.experiments.common import build_brisa_testbed
from repro.experiments.report import banner, table

TINY = bool(os.environ.get("REPRO_EXAMPLE_TINY"))
N = 24 if TINY else 64
MESSAGES = 200
PAYLOAD = 4096


def main() -> None:
    cfg = BrisaConfig(mode="dag", num_parents=2)
    bed = build_brisa_testbed(N, seed=5, config=cfg)
    source = bed.choose_source()
    bed.run_stream(
        source,
        StreamConfig(count=15 if TINY else 40, rate=5.0, payload_bytes=PAYLOAD),
    )

    two_parent_nodes = [
        n for n in bed.alive_nodes()
        if n is not source and len(n.parents_of(0)) == 2
    ]
    print(banner("Stream splitting over an emerged 2-parent DAG"))
    print(f"nodes with two parents: {len(two_parent_nodes)}/{N - 1}")

    node = two_parent_nodes[0]
    parents = tuple(node.parents_of(0))
    assignment = StripeAssignment(parents)
    share = split_bandwidth_share(assignment, PAYLOAD, MESSAGES)
    full_copy = MESSAGES * PAYLOAD

    rows = [
        ["full duplication (plain DAG)", 2 * full_copy // 1024, "2 copies of everything"],
        ["split stripes", sum(share.values()) // 1024,
         f"parent {parents[0]}: {share[parents[0]] // 1024} KB, "
         f"parent {parents[1]}: {share[parents[1]] // 1024} KB"],
    ]
    print(table(["inbound strategy", "bytes received (KB)", "breakdown"], rows))

    # Parent failure: stripes reassign to the survivor; the reassembler
    # reports which sequence numbers must be re-fetched.
    failed = parents[0]
    survivor_assignment = assignment.without_parent(failed)
    reassembler = StripeReassembler()
    # Everything the failed parent already shipped was consumed in order;
    # simulate the moment of failure at message 100.
    for seq in range(100):
        reassembler.offer(seq)
    missing = assignment.sequences_for_parent(failed, MESSAGES)
    still_needed = [s for s in missing if s >= 100]
    print(f"\nparent {failed} fails at message 100:")
    print(f"  stripes reassigned to: {sorted(set(survivor_assignment.parents))}")
    print(f"  sequence numbers the survivor must now also serve: "
          f"{len(still_needed)} (e.g. {still_needed[:6]}...)")
    print(f"  in-order delivery resumed at seq {reassembler.next_seq}")


if __name__ == "__main__":
    main()
