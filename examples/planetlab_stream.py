#!/usr/bin/env python
"""Wide-area media stream: parent-selection strategies on PlanetLab.

A 60-node stream on the synthetic PlanetLab substrate, comparing the
first-come and delay-aware strategies (§II-E) plus the §IV perspectives
(gerontocratic / load-balancing / heterogeneity-aware).  Prints per-node
routing-delay summaries and what each strategy optimized for.

Run:  python examples/planetlab_stream.py
(REPRO_EXAMPLE_TINY=1 shrinks the population for smoke tests.)
"""

import os

from repro.config import BrisaConfig, HyParViewConfig, StreamConfig
from repro.core.structure import extract_structure, tree_depths
from repro.experiments.common import build_brisa_testbed
from repro.experiments.report import banner, cdf_rows
from repro.metrics.stats import CDF
from repro.sim.latency import PlanetLabLatency

TINY = bool(os.environ.get("REPRO_EXAMPLE_TINY"))
N = 24 if TINY else 60
COUNT = 30 if TINY else 100
STRATEGIES = (
    "first-come",
    "delay-aware",
    "gerontocratic",
    "load-balancing",
    "heterogeneity",
)


def run(strategy: str, seed: int = 24):
    bed = build_brisa_testbed(
        N,
        seed=seed,
        config=BrisaConfig(strategy=strategy),
        hpv_config=HyParViewConfig(active_size=4),
        latency=PlanetLabLatency(seed=seed),
    )
    source = bed.choose_source()
    stream = StreamConfig(count=COUNT, rate=5.0, payload_bytes=1024)
    bed.run_stream(source, stream, drain=30.0)
    delays = [
        rec.path_delay
        for seq in range(stream.count)
        for nid, rec in bed.metrics.deliveries.get((0, seq), {}).items()
        if nid != source.node_id
    ]
    g = extract_structure(bed.alive_nodes(), 0)
    depth = tree_depths(g, source.node_id)
    max_depth = max(depth.values()) if depth else 0
    return CDF.of(delays), max_depth


def main() -> None:
    print(banner(f"PlanetLab stream — {N} nodes, {COUNT} x 1 KB, five strategies"))
    series = {}
    depths = {}
    for strategy in STRATEGIES:
        cdf, max_depth = run(strategy)
        series[strategy] = cdf
        depths[strategy] = max_depth
    print(cdf_rows(series))
    print("\nmax tree depth per strategy:",
          {k: v for k, v in depths.items()})
    print(
        "\nReading the table: delay-aware trades tree depth for faster"
        "\nlinks; gerontocratic prefers long-lived parents (fewer future"
        "\nrepairs); load-balancing flattens relay effort; heterogeneity"
        "\nconcentrates load on high-capacity nodes (§II-E, §IV)."
    )


if __name__ == "__main__":
    main()
