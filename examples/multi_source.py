#!/usr/bin/env python
"""Multiple trees over one overlay (§IV *Multiple Trees and Multiple
Parents*).

BRISA keys all per-stream state by stream id, so several publishers can
emerge independent dissemination trees over a single HyParView overlay
"with little to no overhead to support multiple trees/sources": the
overlay is shared, only the per-stream activation state multiplies.
The relay-load analysis lives in
:func:`repro.experiments.structural.relay_load_spread` (shared with the
scale runner, which drives the same workload at 10k+ nodes via
``repro scale --streams K``).

Run:  python examples/multi_source.py
(REPRO_EXAMPLE_TINY=1 shrinks the population for smoke tests.)
"""

import os

from repro.config import StreamConfig
from repro.core.structure import extract_structure, is_complete_structure
from repro.experiments.common import build_brisa_testbed
from repro.experiments.report import banner, table
from repro.experiments.structural import relay_load_spread

TINY = bool(os.environ.get("REPRO_EXAMPLE_TINY"))
N = 32 if TINY else 64
SOURCES = 4
MESSAGES = 15 if TINY else 60


def main() -> None:
    bed = build_brisa_testbed(N, seed=17)
    nodes = bed.alive_nodes()
    publishers = nodes[:SOURCES]

    for i, publisher in enumerate(publishers):
        bed.start_stream(
            publisher,
            StreamConfig(count=MESSAGES, rate=5.0, payload_bytes=512, stream_id=i),
        )
    bed.sim.run(until=bed.sim.now + MESSAGES / 5.0 + 20.0)

    print(banner(f"{SOURCES} publishers, one overlay — independent trees"))
    rows = []
    for i, publisher in enumerate(publishers):
        g = extract_structure(bed.alive_nodes(), stream=i)
        ok, reason = is_complete_structure(
            g, publisher.node_id, set(bed.alive_ids())
        )
        receivers = [nid for nid in bed.alive_ids() if nid != publisher.node_id]
        delivered = bed.metrics.delivered_fraction(i, receivers, window=(0, MESSAGES))
        rows.append([
            f"stream {i} (source {publisher.node_id})",
            "complete/acyclic" if ok else reason,
            g.number_of_edges(),
            f"{delivered * 100:.1f}%",
        ])
    print(table(["stream", "invariant", "edges", "delivered"], rows))

    # The trees differ: a node that is interior in one tree is often a
    # leaf in another (SplitStream's load-balancing goal, §IV).
    spread = relay_load_spread(bed.alive_nodes(), range(SOURCES))
    print()
    print(spread.summary())
    print("The relay load spreads across the population because every "
          "stream emerges its own structure from its own flood.")


if __name__ == "__main__":
    main()
