#!/usr/bin/env python
"""Multiple trees over one overlay (§IV *Multiple Trees and Multiple
Parents*).

BRISA keys all per-stream state by stream id, so several publishers can
emerge independent dissemination trees over a single HyParView overlay
"with little to no overhead to support multiple trees/sources": the
overlay is shared, only the per-stream activation state multiplies.

Run:  python examples/multi_source.py
"""

from repro.config import StreamConfig
from repro.core.structure import extract_structure, is_complete_structure, out_degrees
from repro.experiments.common import build_brisa_testbed
from repro.experiments.report import banner, table

N = 64
SOURCES = 4
MESSAGES = 60


def main() -> None:
    bed = build_brisa_testbed(N, seed=17)
    nodes = bed.alive_nodes()
    publishers = nodes[:SOURCES]

    for i, publisher in enumerate(publishers):
        bed.start_stream(
            publisher,
            StreamConfig(count=MESSAGES, rate=5.0, payload_bytes=512, stream_id=i),
        )
    bed.sim.run(until=bed.sim.now + MESSAGES / 5.0 + 20.0)

    print(banner(f"{SOURCES} publishers, one overlay — independent trees"))
    rows = []
    interior_sets = []
    for i, publisher in enumerate(publishers):
        g = extract_structure(bed.alive_nodes(), stream=i)
        ok, reason = is_complete_structure(
            g, publisher.node_id, set(bed.alive_ids())
        )
        interior = {n for n, d in out_degrees(g).items() if d > 0}
        interior_sets.append(interior)
        rows.append([
            f"stream {i} (source {publisher.node_id})",
            "complete/acyclic" if ok else reason,
            g.number_of_edges(),
            len(interior),
        ])
    print(table(["stream", "invariant", "edges", "interior nodes"], rows))

    # The trees differ: a node that is interior in one tree is often a
    # leaf in another (SplitStream's load-balancing goal, §IV).
    union = set().union(*interior_sets)
    always_interior = set.intersection(*interior_sets)
    print(f"\nnodes interior in at least one tree: {len(union)}/{N}")
    print(f"nodes interior in every tree: {len(always_interior)}")
    print("The relay load spreads across the population because every "
          "stream emerges its own structure from its own flood.")


if __name__ == "__main__":
    main()
