"""Ablation — all five parent-selection strategies (§II-E + §IV).

Runs the same PlanetLab stream under each strategy and reports what each
one optimizes: routing delay (delay-aware), parent uptime (gerontocratic),
relay-load spread (load-balancing) and parent capacity (heterogeneity) —
the §IV perspectives implemented as first-class strategies.
"""

import statistics

from repro.config import BrisaConfig, HyParViewConfig, StreamConfig
from repro.experiments.common import build_brisa_testbed
from repro.experiments.report import banner, table
from repro.sim.latency import PlanetLabLatency

STRATEGIES = (
    "first-come",
    "delay-aware",
    "gerontocratic",
    "load-balancing",
    "heterogeneity",
)


def run_strategy(strategy, scale, seed=24):
    n = scale.planetlab_nodes
    bed = build_brisa_testbed(
        n,
        seed=seed,
        config=BrisaConfig(strategy=strategy),
        hpv_config=HyParViewConfig(active_size=4),
        latency=PlanetLabLatency(seed=seed),
    )
    source = bed.choose_source()
    stream = StreamConfig(count=60, rate=5.0, payload_bytes=1024)
    result = bed.run_stream(source, stream, drain=40.0)
    delays = [
        rec.path_delay
        for seq in range(stream.count)
        for nid, rec in bed.metrics.deliveries.get((0, seq), {}).items()
        if nid != source.node_id
    ]
    parents = [
        state.parents
        for node in bed.alive_nodes()
        if node is not source
        for state in [node.streams.get(0)]
        if state is not None and state.parents
    ]
    parent_uptime = statistics.mean(
        c.uptime for ps in parents for c in ps.values()
    )
    parent_capacity = statistics.mean(
        c.capacity for ps in parents for c in ps.values()
    )
    loads = [len(node.children_of(0)) for node in bed.alive_nodes()]
    return {
        "median_delay": statistics.median(delays) if delays else float("inf"),
        "delivered": result.delivered_fraction(),
        "parent_uptime": parent_uptime,
        "parent_capacity": parent_capacity,
        "load_stdev": statistics.pstdev(loads),
    }


def test_ablation_strategies(benchmark, scale, emit):
    results = benchmark.pedantic(
        lambda: {s: run_strategy(s, scale) for s in STRATEGIES},
        rounds=1,
        iterations=1,
    )
    rows = [
        [s, round(r["median_delay"], 3), f"{r['delivered'] * 100:.1f}%",
         round(r["parent_uptime"], 1), round(r["parent_capacity"], 2),
         round(r["load_stdev"], 2)]
        for s, r in results.items()
    ]
    text = banner("Ablation — parent-selection strategies (PlanetLab)") + "\n"
    text += table(
        ["strategy", "median delay (s)", "delivered", "mean parent uptime (s)",
         "mean parent capacity", "relay-load stdev"],
        rows,
    )
    emit("ablation_strategies", text)

    # Stable strategies must deliver everything; the dynamic §IV
    # perspectives (hysteresis-damped) may trail marginally.
    for s in ("first-come", "delay-aware"):
        assert results[s]["delivered"] == 1.0, s
    for s in ("gerontocratic", "load-balancing", "heterogeneity"):
        assert results[s]["delivered"] > 0.9, (s, results[s]["delivered"])
    # Each perspective optimizes its own objective vs first-come.
    fc = results["first-come"]
    assert results["gerontocratic"]["parent_uptime"] >= fc["parent_uptime"] * 0.95
    assert results["heterogeneity"]["parent_capacity"] >= fc["parent_capacity"] * 1.1
    assert results["delay-aware"]["median_delay"] <= fc["median_delay"] * 1.1
