"""Table I — impact of churn on BRISA trees vs 2-parent DAGs.

Paper anchors (active view 4, 3%/5% churn per minute, Listing 1):
- DAGs lose parents at a *higher* rate than trees (more parents to lose)
  but orphan far more rarely (a single surviving parent keeps service);
- soft repairs dominate everywhere (87–94% in the paper);
- every tree parent loss is an orphan event (one parent per node).
"""

from repro.experiments.paperdata import (
    TABLE1,
    TABLE1_DAG_ORPHAN_REDUCTION_MIN,
    TABLE1_SOFT_REPAIR_MIN,
)
from repro.experiments.report import banner, table
from repro.experiments.scenarios import table1_churn


def test_table1_churn(benchmark, scale, emit):
    result = benchmark.pedantic(
        lambda: table1_churn(scale), rounds=1, iterations=1
    )
    headers = [
        "nodes", "churn", "structure",
        "parents lost/min", "orphans/min", "% soft", "% hard",
        "paper lost/min", "paper orphans/min", "paper % soft",
    ]
    rows = []
    for (n, pct, mode), row in sorted(result.rows.items()):
        paper_key = (512 if n >= 256 else 128, pct, mode)
        paper = TABLE1.get(paper_key, ("-", "-", "-", "-"))
        rows.append(
            [
                n, f"{pct:g}%", mode,
                row.parents_lost_per_min, row.orphans_per_min,
                row.soft_repair_pct, row.hard_repair_pct,
                paper[0], paper[1], paper[2],
            ]
        )
    text = banner(
        f"Table I — impact of churn (view 4, {result.churn_window:.0f}s windows)"
    ) + "\n" + table(headers, rows)
    emit("table1_churn", text)

    for n in {k[0] for k in result.rows}:
        for pct in {k[1] for k in result.rows}:
            tree = result.rows[(n, pct, "tree")]
            dag = result.rows[(n, pct, "dag")]
            assert tree.kills > 0 and dag.kills > 0, "churn never applied"
            # Trees: every parent loss is a disconnection.
            assert tree.orphans_per_min >= tree.parents_lost_per_min * 0.9
            # DAGs lose parents more often but orphan much more rarely.
            assert dag.parents_lost_per_min >= tree.parents_lost_per_min * 0.9
            if tree.orphans_per_min > 0:
                assert (
                    dag.orphans_per_min
                    <= tree.orphans_per_min / TABLE1_DAG_ORPHAN_REDUCTION_MIN
                    or dag.orphans_per_min < 0.5
                )
            # Soft repairs dominate (paper: 79-94%).
            total_repairs = tree.soft_repair_pct + tree.hard_repair_pct
            if total_repairs:
                assert tree.soft_repair_pct >= TABLE1_SOFT_REPAIR_MIN
