"""Table II — dissemination latency for 1 KB streams, four protocols.

Paper: SimpleTree 100.025 s (the 500-message stream spans 99.8 s, so the
ideal span is ~100 s), BRISA +6%, SimpleGossip +28%, TAG +100% (the pull
period + bounded batch cannot sustain the injection rate, so the backlog
drains after injection stops).
"""

from repro.experiments.paperdata import TABLE2
from repro.experiments.report import banner, table
from repro.experiments.scenarios import table2_latency


def test_table2_latency(benchmark, scale, emit):
    result = benchmark.pedantic(
        lambda: table2_latency(scale), rounds=1, iterations=1
    )
    rows = []
    for proto in ("SimpleTree", "BRISA", "SimpleGossip", "TAG"):
        paper_lat, paper_over = TABLE2[proto]
        rows.append(
            [
                proto,
                result.latency[proto],
                f"+{result.overhead(proto) * 100:.0f}%",
                f"{result.delivered[proto] * 100:.1f}%",
                paper_lat,
                f"+{paper_over * 100:.0f}%",
            ]
        )
    text = banner(
        f"Table II — dissemination latency (ideal span {result.ideal:.1f}s)"
    ) + "\n" + table(
        ["protocol", "latency (s)", "overhead", "delivered", "paper (s)", "paper overhead"],
        rows,
    )
    emit("table2_latency", text)

    lat = result.latency
    # SimpleTree sits at the ideal span.
    assert lat["SimpleTree"] <= result.ideal * 1.1
    # BRISA within a few percent of SimpleTree (paper: +6%).
    assert lat["BRISA"] <= lat["SimpleTree"] * 1.15
    # SimpleGossip pays the anti-entropy recovery tail (paper: +28%).
    assert lat["SimpleGossip"] >= lat["BRISA"]
    # TAG's pull throttling roughly doubles the span (paper: +100%).
    assert lat["TAG"] >= lat["SimpleTree"] * 1.5
    # Everything was actually delivered.
    for proto, frac in result.delivered.items():
        assert frac > 0.999, (proto, frac)
