"""Ablation — HyParView expansion factor (§II-A).

The expansion factor damps the eviction chain reactions of bootstrap
joins: with factor 1 every join into a full view evicts somebody, whose
replacement evicts somebody else, and so on.  Factor 2 absorbs joins into
the slack.  Measured: eviction (Disconnect) traffic and the degree
spread, plus the §II-A claim that "the impact on the actual view sizes is
limited" (Fig. 7's small tail above the target size).
"""

from repro.config import HyParViewConfig, StreamConfig
from repro.experiments.common import build_brisa_testbed
from repro.experiments.report import banner, table
from repro.metrics.stats import CDF


def run_factor(factor, scale, seed=33):
    hpv = HyParViewConfig(active_size=4, expansion_factor=factor)
    n = max(48, scale.cluster_nodes // 2)
    bed = build_brisa_testbed(n, seed=seed, hpv_config=hpv)
    source = bed.choose_source()
    result = bed.run_stream(source, StreamConfig(count=20, rate=5.0, payload_bytes=256))
    disconnects = sum(bed.metrics.msg_counts.get("hpv_disconnect", {}).values())
    degrees = CDF.of(float(len(x.active)) for x in bed.alive_nodes())
    return {
        "disconnects": disconnects,
        "degrees": degrees,
        "delivered": result.delivered_fraction(),
        "n": n,
    }


def test_ablation_expansion_factor(benchmark, scale, emit):
    results = benchmark.pedantic(
        lambda: {f: run_factor(f, scale) for f in (1.0, 2.0)},
        rounds=1,
        iterations=1,
    )
    rows = []
    for factor, r in results.items():
        s = r["degrees"].summary()
        rows.append(
            [f"factor {factor:g}", r["disconnects"], s["median"], s["p90"],
             s["max"], f"{r['delivered'] * 100:.1f}%"]
        )
    text = banner("Ablation — expansion factor (§II-A join-storm damping)") + "\n"
    text += table(
        ["config", "evictions (Disconnects)", "median degree", "p90 degree",
         "max degree", "delivered"],
        rows,
    )
    emit("ablation_expansion_factor", text)

    # Factor 2 absorbs join storms: substantially fewer eviction chains.
    # (The margin shrank once eviction-for-insertion stopped triggering
    # replacements — that fix damps factor-1 chains too.)
    assert results[2.0]["disconnects"] < results[1.0]["disconnects"] * 0.75
    # The headroom is used (degrees spread between target and 2x target —
    # exactly the 4..8 spread the paper's own Fig. 7 shows for view 4)
    # but never exceeded.
    assert results[2.0]["degrees"].max <= 8
    assert results[1.0]["degrees"].max <= 4
    # Both configurations still disseminate completely.
    for r in results.values():
        assert r["delivered"] == 1.0
