"""Scale flood — the 10k/100k dissemination rungs of the perf trajectory.

Not a paper artifact: this is the performance baseline every later
scaling PR is measured against (DESIGN.md §6, §8).  It floods a stream
over an ``xl``-scale (10k-node) static overlay, measures engine
throughput, runs the legacy-vs-fused engine microbenchmark and the
per-message-vs-fused *occupancy* microbenchmark on the same machine,
and persists everything to ``benchmarks/out/BENCH_scale.json``.

Acceptance gates:

- the 10k-node dissemination completes with every receiver served;
- the fused hot path sustains >= 2x the pre-overhaul engine's delivery
  throughput (``microbench.speedup``);
- the fused occupancy fan-out sustains >= 2x the per-message occupancy
  path (``occupancy_microbench.speedup``);
- the vectorized batch-drain kernel sustains >= 3x the slotted kernel's
  per-reception throughput (``vectorized_microbench.speedup``,
  DESIGN.md §12).

The ``xxl`` (100k-node) rung opened by the array-backed bootstrap runs
behind ``REPRO_XXL=1``; the ``xxxl`` (1M-node) rung opened by the
vectorized kernel runs behind ``REPRO_XXXL=1`` — both are exercised by
the nightly CI workflow and by driver acceptance runs, not by per-push
CI.  A 2k-node smoke variant (``-k smoke``) covers CI pushes where even
the 10k run would be heavy.
"""

import os

import pytest

from repro.experiments.report import banner
from repro.experiments.scale import LARGE, XL, XXL, XXXL
from repro.experiments.scale_flood import (
    engine_microbench,
    multistream_microbench,
    occupancy_microbench,
    run_scale_flood,
    slotted_microbench,
    vectorized_microbench,
)

from benchmarks.conftest import OUT_DIR, merge_bench_json

#: Stream length for the benchmark runs: long enough to overlap many
#: messages in flight (peak-heap pressure), short enough for CI.
MESSAGES = 20


def test_scale_flood_10k(benchmark, emit):
    result = benchmark.pedantic(
        lambda: run_scale_flood(XL.cluster_nodes, MESSAGES, rate=20.0, seed=3),
        rounds=1,
        iterations=1,
    )
    micro = engine_microbench()
    occ = occupancy_microbench()
    text = (
        banner(f"Scale flood — {result.nodes} nodes (xl)")
        + "\n" + result.summary()
        + "\n" + banner("Engine microbenchmark — legacy vs fused hot path")
        + "\n" + micro.summary()
        + "\n" + banner("Occupancy microbenchmark — per-message vs fused fan-out")
        + "\n" + occ.summary()
    )
    emit("scale_flood", text)

    OUT_DIR.mkdir(exist_ok=True)
    merge_bench_json(
        OUT_DIR / "BENCH_scale.json",
        {
            "scale_run": result.to_dict(),
            "microbench": micro.to_dict(),
            "occupancy_microbench": occ.to_dict(),
        },
    )

    # The dissemination completed: every live receiver got every message.
    assert result.nodes == XL.cluster_nodes
    assert result.delivered_fraction == 1.0
    # Engine acceptance: the fused hot path clears 2x the pre-overhaul
    # delivery throughput on this machine (measured ~3x locally).  Shared
    # CI runners can throttle unevenly, so the gate is relaxable via env
    # (ci.yml sets 1.3) without weakening the local/driver acceptance.
    gate = float(os.environ.get("BENCH_SPEEDUP_GATE", "2.0"))
    assert micro.speedup >= gate, micro.summary()
    # Occupancy acceptance (DESIGN.md §8): the fused fan-out clears 2x
    # the per-message occupancy path (measured ~3x locally); same CI
    # relaxation story via BENCH_OCC_SPEEDUP_GATE.
    occ_gate = float(os.environ.get("BENCH_OCC_SPEEDUP_GATE", "2.0"))
    assert occ.speedup >= occ_gate, occ.summary()
    # Telemetry sanity: the run actually stressed the engine.
    assert result.events > result.nodes * MESSAGES
    assert result.peak_pending > 0
    assert result.handle_pool_size > 0


@pytest.mark.xl
def test_slotted_kernel_xl(emit):
    """The slotted-kernel gate (DESIGN.md §9): flat-array delivery state
    must clear 2x the object kernel's per-delivery throughput on the xl
    run, with bit-identical simulation outcomes (the reception counts are
    cross-checked inside slotted_microbench; the full parity surface is
    pinned by tests/test_slotted_parity.py)."""
    mb = slotted_microbench(XL.cluster_nodes, MESSAGES, seed=3, repeats=3)
    emit(
        "scale_flood_slotted",
        banner("Slotted microbenchmark — object vs slotted flood kernel")
        + "\n" + mb.summary(),
    )
    OUT_DIR.mkdir(exist_ok=True)
    merge_bench_json(OUT_DIR / "BENCH_scale.json", {"slotted_microbench": mb.to_dict()})

    # Same CI-relaxation story as the other speedup gates: the strict 2x
    # applies on dedicated hardware, shared runners set the env override.
    gate = float(os.environ.get("BENCH_SLOTTED_SPEEDUP_GATE", "2.0"))
    assert mb.speedup >= gate, mb.summary()
    assert mb.receptions > 0


@pytest.mark.xl
def test_vectorized_kernel_xl(emit):
    """The vectorized-kernel gate (DESIGN.md §12): numpy batch-drain
    delivery must clear 3x the slotted kernel's per-reception throughput
    on the xl run (measured ~3.2-4x locally), with identical reception
    counts (cross-checked inside vectorized_microbench; the full parity
    surface is pinned by tests/test_slotted_parity.py)."""
    pytest.importorskip("numpy")
    mb = vectorized_microbench(XL.cluster_nodes, MESSAGES, seed=3, repeats=3)
    emit(
        "scale_flood_vectorized",
        banner("Vectorized microbenchmark — slotted vs numpy batch-drain kernel")
        + "\n" + mb.summary(),
    )
    OUT_DIR.mkdir(exist_ok=True)
    merge_bench_json(
        OUT_DIR / "BENCH_scale.json", {"vectorized_microbench": mb.to_dict()}
    )

    # Same CI-relaxation story as the other speedup gates: the strict 3x
    # applies on dedicated hardware, shared runners set the env override.
    gate = float(os.environ.get("BENCH_VECTORIZED_GATE", "3.0"))
    assert mb.speedup >= gate, mb.summary()
    assert mb.receptions > 0


@pytest.mark.xl
def test_multistream_xl(emit):
    """Multi-stream at scale (DESIGN.md §10): 8 concurrent publishers
    over the xl slotted overlay must deliver every stream fully, and the
    aggregate receptions/s must hold >= 0.5x the single-stream rate (the
    per-stream-efficiency gate: slot planes keep K streams on the array
    path, so per-reception cost must not scale with K)."""
    mb = multistream_microbench(XL.cluster_nodes, 10, streams=8, seed=3)
    multi = mb.multi_result
    emit(
        "scale_flood_multistream",
        banner(f"Scale flood multi-stream — {multi.nodes} nodes (xl), 8 streams")
        + "\n" + multi.summary()
        + "\n" + banner("Multistream microbenchmark — K=8 vs K=1 (slotted)")
        + "\n" + mb.summary(),
    )
    OUT_DIR.mkdir(exist_ok=True)
    merge_bench_json(
        OUT_DIR / "BENCH_scale.json",
        {
            "multistream": multi.to_dict(),
            "multistream_microbench": mb.to_dict(),
        },
    )

    assert multi.streams == 8 and len(multi.per_stream) == 8
    assert multi.delivered_fraction == 1.0
    for row in multi.per_stream:
        assert row["delivered_fraction"] == 1.0, row
    # Same CI-relaxation story as the other throughput gates.
    gate = float(os.environ.get("BENCH_MULTISTREAM_GATE", "0.5"))
    assert mb.efficiency >= gate, mb.summary()


@pytest.mark.xl
def test_scale_flood_churn_xl(emit):
    """Churn at scale (DESIGN.md §9): the xl flood run loses 1% of its
    population mid-stream and must still deliver >=99% of the stream to
    the surviving initial receivers, on both kernels, with identical
    outcomes.  This is the CI churn smoke."""
    results = {
        kernel: run_scale_flood(
            XL.cluster_nodes, 10, rate=20.0, seed=3,
            kernel=kernel, churn_percent=1.0,
        )
        for kernel in ("slotted", "object")
    }
    slotted = results["slotted"]
    emit(
        "scale_flood_churn",
        banner(f"Scale flood churn — {slotted.nodes} nodes (xl), 1% churn")
        + "\n" + slotted.summary(),
    )
    OUT_DIR.mkdir(exist_ok=True)
    merge_bench_json(OUT_DIR / "BENCH_scale.json", {"churn": slotted.to_dict()})

    for kernel, result in results.items():
        assert result.kills > 0, kernel
        assert result.survivors < XL.cluster_nodes - 1, kernel
        assert result.delivered_fraction >= 0.99, (kernel, result.summary())
    # Kernel parity holds under churn too (slot recycling included).
    for field in ("deliveries", "receptions", "events", "kills", "joins",
                  "survivors", "sim_time"):
        assert getattr(slotted, field) == getattr(results["object"], field), field


@pytest.mark.xl
def test_topology_loss_matrix_xl(emit):
    """The scenario-diversity family (DESIGN.md §14): delivery fraction,
    duplicate overhead and relay-load spread per topology class × loss
    rate over the xl overlay (slotted kernel — parity with the object and
    vectorized kernels under loss is pinned in tests/test_slotted_parity.py).
    Persists the gated ``topology.*`` / ``loss.*`` entries of
    BENCH_scale.json."""
    from repro.config import HyParViewConfig
    from repro.experiments.bootstrap import TOPOLOGY_BUILDERS
    from repro.sim.rng import derive

    # Mirror build_static_flood_overlay's overlay parameters (degree 5)
    # so the rebuilt CSR arrays are the run's actual topology: same
    # builder, same derived RNG stream, same cap.
    degree, seed = 5, 3
    cap = HyParViewConfig(active_size=max(4, degree), passive_size=16).max_active
    topo_entries: dict = {}
    loss_entries: dict = {}
    report: list[str] = []
    for name in sorted(TOPOLOGY_BUILDERS):
        arrays = TOPOLOGY_BUILDERS[name](
            XL.cluster_nodes, degree=degree, max_degree=cap,
            rng=derive(seed, "static-overlay"),
        )
        # Relay load in a flood is proportional to degree; the spread is
        # its coefficient of variation (the cap clamps the *maximum*, so
        # max/mean cannot tell a heavy tail from a lucky uniform draw).
        degrees = arrays.degrees
        mean = sum(degrees) / len(degrees)
        relay_spread = (
            sum((d - mean) ** 2 for d in degrees) / len(degrees)
        ) ** 0.5 / mean
        for loss in (0.0, 2.0):
            result = run_scale_flood(
                XL.cluster_nodes, 10, rate=20.0, seed=seed,
                kernel="slotted", topology=name, loss_percent=loss,
            )
            entry = {
                "delivered_fraction": result.delivered_fraction,
                "duplicate_overhead": result.receptions / result.deliveries - 1.0,
                "relay_spread": relay_spread,
                "events": result.events,
                "dropped_loss": result.dropped_loss,
            }
            if loss:
                loss_entries[f"{name}_l{loss:g}"] = entry
            else:
                topo_entries[name] = entry
            report.append(
                banner(f"Scale flood — {result.nodes} nodes (xl, {name}, "
                       f"{loss:g}% loss)")
                + "\n" + result.summary()
            )
            # Flood redundancy must absorb 2% per-link loss on every
            # topology class: a node misses a message only when *all* its
            # inbound copies are dropped.
            assert result.delivered_fraction >= 0.995, (name, loss, result.summary())
            assert (result.dropped_loss > 0) == bool(loss), (name, loss)
    emit("scale_flood_topology_loss", "\n\n".join(report))

    OUT_DIR.mkdir(exist_ok=True)
    merge_bench_json(
        OUT_DIR / "BENCH_scale.json",
        {"topology": topo_entries, "loss": loss_entries},
    )

    # Preferential attachment concentrates relay load on hubs; the
    # cap-clamped power-law overlay must still show a visibly heavier
    # spread than the uniform one, and the lattice-like small-world
    # overlay a flatter or equal one.
    assert topo_entries["powerlaw"]["relay_spread"] > topo_entries["uniform"]["relay_spread"]
    assert topo_entries["smallworld"]["relay_spread"] <= topo_entries["powerlaw"]["relay_spread"]


@pytest.mark.skipif(
    not os.environ.get("REPRO_XXL"),
    reason="100k rung runs nightly / on demand (set REPRO_XXL=1)",
)
@pytest.mark.xxl
def test_scale_flood_xxl_100k(emit):
    """The 100k rung: array-backed bootstrap + fused delivery end to end."""
    result = run_scale_flood(XXL.cluster_nodes, XXL.messages, rate=20.0, seed=3)
    emit(
        "scale_flood_xxl",
        banner(f"Scale flood — {result.nodes} nodes (xxl)") + "\n" + result.summary(),
    )
    OUT_DIR.mkdir(exist_ok=True)
    merge_bench_json(OUT_DIR / "BENCH_scale.json", {"xxl": result.to_dict()})

    assert result.nodes == XXL.cluster_nodes
    assert result.delivered_fraction == 1.0
    assert result.deliveries == (XXL.cluster_nodes - 1) * XXL.messages


@pytest.mark.skipif(
    not os.environ.get("REPRO_XXL"),
    reason="100k rung runs nightly / on demand (set REPRO_XXL=1)",
)
@pytest.mark.xxl
def test_scale_flood_xxl_slotted_churn(emit):
    """The 100k rung on the slotted kernel, with 1% churn mid-stream:
    slot recycling and CSR-link purging at full scale (DESIGN.md §9)."""
    result = run_scale_flood(
        XXL.cluster_nodes, XXL.messages, rate=20.0, seed=3,
        kernel="slotted", churn_percent=1.0,
    )
    emit(
        "scale_flood_xxl_churn",
        banner(f"Scale flood churn — {result.nodes} nodes (xxl, slotted, 1% churn)")
        + "\n" + result.summary(),
    )
    OUT_DIR.mkdir(exist_ok=True)
    merge_bench_json(OUT_DIR / "BENCH_scale.json", {"xxl_churn": result.to_dict()})

    assert result.kills > 0
    assert result.delivered_fraction >= 0.99


@pytest.mark.skipif(
    not os.environ.get("REPRO_XXXL"),
    reason="1M rung runs nightly / on demand (set REPRO_XXXL=1)",
)
@pytest.mark.xxxl
def test_scale_flood_xxxl_1m(emit):
    """The 1M rung (DESIGN.md §12): CSR bootstrap + vectorized batch
    drains end to end — only the numpy kernel makes this population
    tractable, so it is the rung's sole configuration."""
    pytest.importorskip("numpy")
    result = run_scale_flood(
        XXXL.cluster_nodes, XXXL.messages, rate=20.0, seed=3,
        kernel="vectorized",
    )
    emit(
        "scale_flood_xxxl",
        banner(f"Scale flood — {result.nodes} nodes (xxxl, vectorized)")
        + "\n" + result.summary(),
    )
    OUT_DIR.mkdir(exist_ok=True)
    merge_bench_json(OUT_DIR / "BENCH_scale.json", {"xxxl": result.to_dict()})

    assert result.nodes == XXXL.cluster_nodes
    assert result.delivered_fraction == 1.0
    assert result.deliveries == (XXXL.cluster_nodes - 1) * XXXL.messages


def test_scale_flood_smoke_2k(emit):
    """CI smoke: the large (2k) scenario end-to-end, no benchmark fixture."""
    result = run_scale_flood(LARGE.cluster_nodes, 10, rate=20.0, seed=4)
    emit("scale_flood_smoke", banner("Scale flood smoke — 2k nodes") + "\n" + result.summary())
    assert result.delivered_fraction == 1.0
    assert result.deliveries == (LARGE.cluster_nodes - 1) * 10
