"""Ablation — BRISA vs PlumTree: the §V control-overhead trade-off.

Both protocols prune duplicate-free trees out of a gossip overlay; they
differ in what keeps the pruned links useful.  PlumTree advertises every
message id over every lazy link (``IHave``) so missing-payload timers can
repair the tree; BRISA keeps the links silent and repairs through the
PSS's failure detector.  §V: the advertisement scheme "imposes a constant
management overhead in the system" — this bench measures it.
"""

from repro.baselines.plumtree import PlumTreeNode
from repro.config import BrisaConfig, HyParViewConfig, StreamConfig
from repro.experiments.common import Testbed as _Testbed
from repro.experiments.common import build_brisa_testbed
from repro.experiments.report import banner, table

CONTROL_KINDS_BRISA = (
    "brisa_deactivate", "brisa_activate", "brisa_activate_ack",
    "brisa_reactivate_order", "brisa_depth_update", "brisa_retransmit",
)
CONTROL_KINDS_PT = ("pt_ihave", "pt_prune", "pt_graft")


def run_brisa(n, messages, seed):
    bed = build_brisa_testbed(
        n, seed=seed, config=BrisaConfig(), hpv_config=HyParViewConfig(active_size=4)
    )
    source = bed.choose_source()
    result = bed.run_stream(
        source, StreamConfig(count=messages, rate=5.0, payload_bytes=1024)
    )
    control = sum(
        sum(bed.metrics.msg_counts.get(k, {}).values()) for k in CONTROL_KINDS_BRISA
    )
    data = sum(bed.metrics.msg_counts["brisa_data"].values())
    return result.delivered_fraction(), data, control


def run_plumtree(n, messages, seed):
    hpv = HyParViewConfig(active_size=4)
    bed = _Testbed(seed=seed)
    bed.populate(n, lambda network, nid: PlumTreeNode(network, nid, hpv))
    source = bed.choose_source()
    result = bed.run_stream(
        source, StreamConfig(count=messages, rate=5.0, payload_bytes=1024)
    )
    control = sum(
        sum(bed.metrics.msg_counts.get(k, {}).values()) for k in CONTROL_KINDS_PT
    )
    data = sum(bed.metrics.msg_counts["pt_gossip"].values())
    return result.delivered_fraction(), data, control


def test_ablation_plumtree(benchmark, scale, emit):
    n = max(48, scale.cluster_nodes // 2)
    messages = max(60, scale.messages // 2)

    def run_both():
        return {
            "BRISA": run_brisa(n, messages, seed=41),
            "PlumTree": run_plumtree(n, messages, seed=41),
        }

    results = benchmark.pedantic(run_both, rounds=1, iterations=1)
    rows = []
    for proto, (delivered, data, control) in results.items():
        rows.append([
            proto, f"{delivered * 100:.1f}%", data, control,
            round(control / messages, 1), round(data / (messages * (n - 1)), 3),
        ])
    text = banner(
        f"Ablation — BRISA vs PlumTree control overhead "
        f"({n} nodes, {messages} x 1 KB)"
    ) + "\n" + table(
        ["protocol", "delivered", "payload msgs", "control msgs",
         "control msgs/stream msg", "payload msgs per (msg x node)"],
        rows,
    )
    emit("ablation_plumtree", text)

    for proto, (delivered, _, _) in results.items():
        assert delivered == 1.0, proto
    # Both prune to ~1 payload per node per message...
    for proto, (_, data, _) in results.items():
        assert data < messages * (n - 1) * 1.5, proto
    # ...but PlumTree pays a constant advertisement tax per message while
    # BRISA's control traffic is a one-off emergence cost (§V).
    brisa_control = results["BRISA"][2]
    pt_control = results["PlumTree"][2]
    assert pt_control > brisa_control * 3
    assert pt_control / messages > 5  # IHaves scale with the stream
