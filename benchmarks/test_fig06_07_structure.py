"""Figs. 6 & 7 — depth and degree distributions of emerged structures.

One scenario run produces both figures (they inspect the same stabilized
structures); the Fig. 6 bench times the emergence, the Fig. 7 bench the
degree analysis over the cached result.

Paper anchors: larger views build shallower trees; DAG depth (longest
path) exceeds tree depth; DAGs leave fewer leaves (more nodes relay);
curves are steep — structures stay balanced, no chain degeneration.
"""

from repro.experiments.report import banner, cdf_rows
from repro.experiments.scenarios import fig6_fig7_structure


def _structure(scale, shared_cache):
    key = ("fig6_7", scale.name)
    if key not in shared_cache:
        shared_cache[key] = fig6_fig7_structure(scale)
    return shared_cache[key]


def test_fig06_depth(benchmark, scale, emit, shared_cache):
    dists = benchmark.pedantic(
        lambda: _structure(scale, shared_cache), rounds=1, iterations=1
    )
    text = banner(
        f"Fig. 6 — depth distribution ({dists.nodes} nodes, first-come)"
    ) + "\n" + cdf_rows(dists.depth)
    emit("fig06_depth", text)

    # Larger views allow more children -> shallower trees.
    assert (
        dists.depth["tree, view=8"].mean <= dists.depth["tree, view=4"].mean + 0.25
    )
    # DAG depth measures the longest path: at least the tree's depth.
    assert (
        dists.depth["DAG 2 parents, view=4"].max
        >= dists.depth["tree, view=4"].max - 1
    )
    # Balanced structures: the deepest node sits within a small factor of
    # the mean (no chain degeneration, §III-A).
    for label, cdf in dists.depth.items():
        assert cdf.max <= cdf.mean * 4 + 3, (label, cdf.summary())


def test_fig07_degree(benchmark, scale, emit, shared_cache):
    dists = benchmark.pedantic(
        lambda: _structure(scale, shared_cache), rounds=1, iterations=1
    )
    text = banner(
        f"Fig. 7 — degree distribution ({dists.nodes} nodes, first-come)"
    ) + "\n" + cdf_rows(dists.degree)
    emit("fig07_degree", text)

    # DAGs engage a greater share of nodes in relaying (fewer leaves).
    assert dists.degree["DAG 2 parents, view=4"].fraction_at_most(0) <= (
        dists.degree["tree, view=4"].fraction_at_most(0)
    )
    # Degree stays bounded by the expanded view cap.
    assert dists.degree["tree, view=4"].max <= 8 + 1
    assert dists.degree["tree, view=8"].max <= 16 + 1
    # Larger views -> shallower trees -> more leaves (§III-A).
    assert dists.degree["tree, view=8"].fraction_at_most(0) >= (
        dists.degree["tree, view=4"].fraction_at_most(0) - 0.05
    )
