"""Fig. 9 — routing delays on PlanetLab: strategies vs ideal vs flood.

Paper shape: point-to-point (ideal) fastest, then delay-aware, then
first-pick, with flooding worst "due mainly to the heavy load imposed on
the network".  Our synthetic PlanetLab substrate reproduces the ordering
at the documented seed; EXPERIMENTS.md discusses the seed sensitivity of
the strategy gap at reduced populations.

Flooding's *median* can dip below the tree strategies at the reduced CI
population: with the membership layer keeping views properly topped up,
flooding rides many redundant paths and its first copies arrive fast —
the load penalty the paper describes is a queueing effect and lives in
the upper half of the CDF (p90/mean), which is where it is asserted.
"""

from repro.experiments.report import banner, cdf_rows
from repro.experiments.scenarios import fig9_routing_delays

#: Documented seed: orderings validated for this substrate configuration.
SEED = 24


def test_fig09_routing_delays(benchmark, scale, emit):
    result = benchmark.pedantic(
        lambda: fig9_routing_delays(scale, seed=SEED), rounds=1, iterations=1
    )
    text = banner(
        f"Fig. 9 — routing delay CDFs, PlanetLab model ({result.nodes} nodes, "
        "tree view 4, 1 KB messages)"
    ) + "\n" + cdf_rows(result.series)
    emit("fig09_routing_delays", text)

    s = result.series
    # Ideal direct communication is the fastest series.
    assert s["point-to-point"].median <= s["delay-aware"].median
    assert s["point-to-point"].median <= s["first-pick"].median
    # Delay-aware improves on first-pick (the Fig. 9 headline).
    assert s["delay-aware"].median <= s["first-pick"].median * 1.05
    # Flooding pays the load penalty: queueing delay dominates the upper
    # half of its CDF (mean and p90), even where redundant paths keep
    # the median copy fast.
    assert s["flood"].mean >= 2.0 * s["delay-aware"].mean
    assert s["flood"].percentile(90) >= s["delay-aware"].percentile(90)
