"""Fig. 9 — routing delays on PlanetLab: strategies vs ideal vs flood.

Paper shape: point-to-point (ideal) fastest, then delay-aware, then
first-pick, with flooding worst "due mainly to the heavy load imposed on
the network".  Our synthetic PlanetLab substrate reproduces the ordering
at the documented seed; EXPERIMENTS.md discusses the seed sensitivity of
the strategy gap at reduced populations.
"""

from repro.experiments.report import banner, cdf_rows
from repro.experiments.scenarios import fig9_routing_delays

#: Documented seed: orderings validated for this substrate configuration.
SEED = 24


def test_fig09_routing_delays(benchmark, scale, emit):
    result = benchmark.pedantic(
        lambda: fig9_routing_delays(scale, seed=SEED), rounds=1, iterations=1
    )
    text = banner(
        f"Fig. 9 — routing delay CDFs, PlanetLab model ({result.nodes} nodes, "
        "tree view 4, 1 KB messages)"
    ) + "\n" + cdf_rows(result.series)
    emit("fig09_routing_delays", text)

    s = result.series
    # Ideal direct communication is the fastest series.
    assert s["point-to-point"].median <= s["delay-aware"].median
    assert s["point-to-point"].median <= s["first-pick"].median
    # Delay-aware improves on first-pick (the Fig. 9 headline).
    assert s["delay-aware"].median <= s["first-pick"].median * 1.05
    # Flooding pays the load penalty.
    assert s["flood"].median >= s["delay-aware"].median
