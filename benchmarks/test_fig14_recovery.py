"""Fig. 14 — parent recovery delay under 3% churn, BRISA vs TAG.

Paper anchors (128 nodes, view 4): BRISA's hard-repair recovery is about
twice as fast as TAG's list re-insertion, and TAG needs hard repairs
about twice as often.
"""

from repro.experiments.paperdata import FIG14_TAG_OVER_BRISA_MIN
from repro.experiments.report import banner, cdf_rows, table
from repro.experiments.scenarios import fig14_recovery


def test_fig14_recovery(benchmark, scale, emit):
    # The fast scale shortens the churn window; raise the churn rate so
    # enough hard repairs occur to estimate the CDFs.
    churn = 3.0 if scale.name == "paper" else 6.0
    result = benchmark.pedantic(
        lambda: fig14_recovery(scale, churn_percent=churn), rounds=1, iterations=1
    )
    text = banner(
        f"Fig. 14 — parent recovery delays under {churn:g}% churn (seconds)"
    )
    text += "\nHard repairs:\n" + cdf_rows(result.hard)
    text += "\nSoft repairs:\n" + cdf_rows(result.soft)
    text += "\n" + table(
        ["protocol", "hard repairs observed"],
        [[k, v] for k, v in result.hard_repair_counts.items()],
    )
    emit("fig14_recovery", text)

    brisa_hard = result.hard["BRISA tree"]
    tag_hard = result.hard["TAG"]
    # Soft repairs must exist for BRISA (they dominate per Table I).
    assert not result.soft["BRISA tree"].empty
    if not brisa_hard.empty and not tag_hard.empty:
        # The Fig. 14 headline: TAG recovery is slower by ~2x.
        assert tag_hard.median >= brisa_hard.median
    if not brisa_hard.empty:
        # BRISA hard repairs complete quickly (ms-scale on the cluster).
        assert brisa_hard.median < 1.0
