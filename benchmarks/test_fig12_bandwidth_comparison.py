"""Fig. 12 — stabilization + dissemination bandwidth, four protocols.

Paper anchors: SimpleTree's management cost is the smallest (one round
trip with the coordinator); BRISA and TAG are comparable, paying a small
PSS/structure overhead over SimpleTree; SimpleGossip is competitive at
tiny payloads but blows up at 10–20 KB because of its duplicate factor.
"""

from repro.experiments.paperdata import FIG12_ORDER_AT_20KB
from repro.experiments.report import banner, table
from repro.experiments.scenarios import fig12_bandwidth_comparison
from repro.sim.monitor import DISSEMINATION, STABILIZATION

PAYLOADS = (0, 1, 10, 20)


def test_fig12_bandwidth_comparison(benchmark, scale, emit):
    result = benchmark.pedantic(
        lambda: fig12_bandwidth_comparison(scale, payload_kb=PAYLOADS),
        rounds=1,
        iterations=1,
    )
    headers = ["protocol"] + [
        f"{kb} KB stab/diss/total (MB)" for kb in PAYLOADS
    ]
    rows = []
    for proto, per_payload in result.data.items():
        cells = [proto]
        for kb in PAYLOADS:
            d = per_payload[kb]
            cells.append(
                f"{d[STABILIZATION]:.3f}/{d[DISSEMINATION]:.3f}/"
                f"{d[STABILIZATION] + d[DISSEMINATION]:.3f}"
            )
        rows.append(cells)
    text = banner(
        f"Fig. 12 — data transmitted per node ({result.nodes} nodes)"
    ) + "\n" + table(headers, rows)
    emit("fig12_bandwidth_comparison", text)

    # SimpleTree has the cheapest management (empty payload column).
    assert result.total("SimpleTree", 0) <= result.total("BRISA", 0)
    assert result.total("SimpleTree", 0) <= result.total("TAG", 0)
    # BRISA and TAG are comparable (within ~2x of each other).
    assert result.total("BRISA", 10) < result.total("TAG", 10) * 2.0
    assert result.total("TAG", 10) < result.total("BRISA", 10) * 2.0
    # SimpleGossip's duplicates dominate at large payloads: the paper's
    # ordering at 20 KB has it most expensive by a wide margin.
    totals = {p: result.total(p, 20) for p in result.data}
    ranked = sorted(totals, key=totals.get)
    assert ranked[0] == FIG12_ORDER_AT_20KB[0] == "SimpleTree"
    assert ranked[-1] == FIG12_ORDER_AT_20KB[-1] == "SimpleGossip"
    assert totals["SimpleGossip"] > totals["BRISA"] * 2.0
