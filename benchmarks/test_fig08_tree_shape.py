"""Fig. 8 — sample tree shapes, 100 nodes, view 4 vs 8, expansion 1.

The paper shows the two trees visually; we emit DOT files plus shape
summaries and assert the visual takeaways: the view-8 tree is shallower
and bushier than the view-4 tree, and both are spanning trees.
"""

import pathlib

from repro.experiments.report import banner, table
from repro.experiments.scenarios import fig8_tree_shape

OUT = pathlib.Path(__file__).parent / "out"


def test_fig08_tree_shape(benchmark, emit):
    result = benchmark.pedantic(
        lambda: fig8_tree_shape(n=100, view_sizes=(4, 8)), rounds=1, iterations=1
    )
    OUT.mkdir(exist_ok=True)
    rows = []
    for view in (4, 8):
        s = result.summary[view]
        rows.append(
            [f"view={view}", s["nodes"], s["edges"], s["max_depth"],
             round(s["mean_depth"], 2), s["max_degree"], s["leaves"]]
        )
        (OUT / f"fig08_tree_view{view}.dot").write_text(result.dot[view])
    text = banner("Fig. 8 — sample tree shapes (100 nodes, expansion factor 1)") + "\n"
    text += table(
        ["config", "nodes", "edges", "max depth", "mean depth", "max degree", "leaves"],
        rows,
    )
    text += "\nDOT exports: benchmarks/out/fig08_tree_view{4,8}.dot"
    emit("fig08_tree_shape", text)

    for view in (4, 8):
        s = result.summary[view]
        assert s["nodes"] == 100
        assert s["edges"] == 99, "must be a spanning tree"
    # The visual takeaway: view 8 is shallower and bushier than view 4.
    assert result.summary[8]["max_depth"] <= result.summary[4]["max_depth"]
    assert result.summary[8]["max_degree"] >= result.summary[4]["max_degree"]
