"""Shared fixtures for the reproduction benches.

Each bench runs one paper artifact's scenario once (``pedantic`` with a
single round — these are experiments, not microbenchmarks), prints the
paper-style rows, writes them to ``benchmarks/out/<artifact>.txt`` and
asserts the qualitative shape against the digitized paper anchors.

Scale: ``REPRO_SCALE=paper pytest benchmarks/ --benchmark-only`` runs the
published populations; the default ``fast`` scale preserves shapes at a
fraction of the runtime.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.experiments.scale import get_scale
from repro.experiments.scale_runner import merge_json

OUT_DIR = pathlib.Path(__file__).parent / "out"


def merge_bench_json(path: pathlib.Path, updates: dict) -> dict:
    """Merge ``updates`` into a BENCH_*.json file, preserving entries
    written by other runs — the xxl benchmarks (nightly CI) and the
    default-tier benchmarks update disjoint keys of the same file.
    (Thin alias over the shared :func:`merge_json` merge-write.)"""
    return merge_json(path, updates)


@pytest.fixture(scope="session")
def scale():
    return get_scale()


@pytest.fixture(scope="session")
def emit():
    """Print a report block and persist it under benchmarks/out/."""
    OUT_DIR.mkdir(exist_ok=True)

    def _emit(name: str, text: str) -> None:
        print(text)
        (OUT_DIR / f"{name}.txt").write_text(text + "\n")

    return _emit


@pytest.fixture(scope="session")
def shared_cache():
    """Session cache so artifact pairs measured by one scenario run
    (Figs. 6+7, Figs. 10+11) don't recompute the heavy simulation."""
    return {}
