"""Ablation — cycle predictors: path embedding vs depth labels vs Bloom.

Quantifies the §II-D cost argument: exact path embedding carries a few
tens of bytes (bounded by tree height × 6 B), depth labels 4 B, Bloom
filters bits/8 B regardless of depth — and only the Bloom variant rejects
valid parents through false positives.  All three must keep the structure
complete and acyclic.
"""

from repro.config import BrisaConfig, StreamConfig
from repro.experiments.common import build_brisa_testbed
from repro.experiments.report import banner, table
from repro.ids import DEPTH_BYTES, NODE_ID_BYTES


def run_predictor(mode, predictor, scale, seed=31, bloom_bits=1024):
    cfg = BrisaConfig(
        mode=mode,
        num_parents=1 if mode == "tree" else 2,
        cycle_predictor=predictor,
        bloom_bits=bloom_bits,
    )
    n = max(48, scale.cluster_nodes // 2)
    bed = build_brisa_testbed(n, seed=seed, config=cfg)
    source = bed.choose_source()
    result = bed.run_stream(source, StreamConfig(count=40, rate=5.0, payload_bytes=1024))
    ok, reason = result.structure_ok()
    g = result.structure()
    # Metadata bytes actually carried per message at the deepest node.
    import networkx as nx

    depth = nx.single_source_shortest_path_length(g, source.node_id)
    max_depth = max(depth.values()) if depth else 0
    if predictor == "path":
        meta_bytes = (max_depth + 1) * NODE_ID_BYTES
    elif predictor == "depth":
        meta_bytes = DEPTH_BYTES
    else:
        meta_bytes = bloom_bits // 8
    return {
        "complete": ok,
        "reason": reason,
        "delivered": result.delivered_fraction(),
        "max_depth": max_depth,
        "meta_bytes": meta_bytes,
        "data_mb": bed.metrics.total_bytes() / 2**20,
    }


def test_ablation_cycle_predictors(benchmark, scale, emit):
    def run_all():
        return {
            ("tree", "path"): run_predictor("tree", "path", scale),
            ("tree", "bloom"): run_predictor("tree", "bloom", scale),
            ("dag", "depth"): run_predictor("dag", "depth", scale),
            ("dag", "bloom"): run_predictor("dag", "bloom", scale),
        }

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = [
        [f"{mode}/{pred}", r["complete"], f"{r['delivered'] * 100:.1f}%",
         r["max_depth"], r["meta_bytes"], round(r["data_mb"], 2)]
        for (mode, pred), r in results.items()
    ]
    text = banner("Ablation — cycle predictors (§II-D cost comparison)") + "\n"
    text += table(
        ["config", "complete+acyclic", "delivered", "max depth",
         "worst-case metadata B/msg", "total MB"],
        rows,
    )
    emit("ablation_cycle_predictors", text)

    for key, r in results.items():
        assert r["complete"], (key, r["reason"])
        assert r["delivered"] == 1.0, key
    # §II-D: the path metadata stays tiny (bounded by tree height), the
    # depth label is constant, and the Bloom filter dwarfs both.
    assert results[("tree", "path")]["meta_bytes"] < 128
    assert results[("dag", "depth")]["meta_bytes"] == DEPTH_BYTES
    assert results[("tree", "bloom")]["meta_bytes"] >= 128
    # Bloom's fixed cost also shows in total traffic vs path embedding.
    assert (
        results[("tree", "bloom")]["data_mb"]
        > results[("tree", "path")]["data_mb"]
    )
