#!/usr/bin/env python3
"""Diff BENCH_*.json artifacts against the committed baselines.

The scale benchmarks persist their results to
``benchmarks/out/BENCH_*.json``; the committed copies are the
performance baselines the ROADMAP's perf trajectory is measured
against.  This script fails (exit 1) when any *gated* metric of a
candidate run regresses by more than the tolerance against its
baseline — the ``bench-compare`` CI job runs it on every PR with the
job's freshly produced artifacts, and it is equally runnable locally:

    python benchmarks/compare_bench.py --candidate benchmarks/out
    python benchmarks/compare_bench.py --candidate ./artifacts --tolerance 0.30

Gated metrics are deliberately machine-portable: deterministic
simulation outputs (event counts, delivery counts/fractions, duplicate
rates, structure completeness) at the default 30% tolerance, and
same-machine throughput *ratios* (microbench speedups — both sides of a
ratio share the run's throttling) at a wider tolerance for shared CI
runners.  Absolute wall-clock and events/s numbers are intentionally
not gated: they compare machines, not code.

Stdlib-only on purpose — CI runs it without installing anything.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

#: Tolerance for same-machine throughput ratios on shared/throttled CI
#: runners (the deterministic metrics keep the strict default).
RATIO_TOLERANCE = 0.60

#: file -> (dotted metric path, direction, tolerance override or None).
#: Direction 'higher' means bigger is better; 'lower' the opposite.
GATED_METRICS: dict[str, list[tuple[str, str, float | None]]] = {
    "BENCH_scale.json": [
        ("scale_run.delivered_fraction", "higher", None),
        ("scale_run.deliveries", "higher", None),
        ("scale_run.events", "lower", None),
        ("microbench.speedup", "higher", RATIO_TOLERANCE),
        ("occupancy_microbench.speedup", "higher", RATIO_TOLERANCE),
        ("slotted_microbench.speedup", "higher", RATIO_TOLERANCE),
        ("vectorized_microbench.speedup", "higher", RATIO_TOLERANCE),
        ("multistream_microbench.efficiency", "higher", RATIO_TOLERANCE),
        ("multistream.delivered_fraction", "higher", None),
        ("multistream.deliveries", "higher", None),
        ("churn.delivered_fraction", "higher", None),
        ("churn.deliveries", "higher", None),
        ("churn.events", "lower", None),
        ("xxl.delivered_fraction", "higher", None),
        ("xxl.events", "lower", None),
        ("xxl_churn.delivered_fraction", "higher", None),
        ("xxxl.delivered_fraction", "higher", None),
        ("xxxl.events", "lower", None),
        # Scenario-diversity family (DESIGN.md §14): per topology class,
        # lossless delivery plus the 2%-loss response.  relay_spread is a
        # deterministic property of the synthesized overlay, gated so
        # builder drift (a flattened tail) shows up as a regression.
        ("topology.uniform.delivered_fraction", "higher", None),
        ("topology.powerlaw.delivered_fraction", "higher", None),
        ("topology.smallworld.delivered_fraction", "higher", None),
        ("topology.powerlaw.duplicate_overhead", "lower", None),
        ("topology.powerlaw.relay_spread", "lower", None),
        ("loss.uniform_l2.delivered_fraction", "higher", None),
        ("loss.powerlaw_l2.delivered_fraction", "higher", None),
        ("loss.smallworld_l2.delivered_fraction", "higher", None),
        ("loss.powerlaw_l2.dropped_loss", "lower", None),
    ],
    "BENCH_scale_brisa.json": [
        ("scale_run.delivered_fraction", "higher", None),
        ("scale_run.duplicates_per_node", "lower", None),
        ("scale_run.events", "lower", None),
        ("scale_run.structure_complete", "higher", None),
        ("bootstrap.speedup", "higher", RATIO_TOLERANCE),
        ("brisa_slotted_microbench.speedup", "higher", RATIO_TOLERANCE),
        ("multistream.delivered_fraction", "higher", None),
        ("multistream.structure_complete", "higher", None),
        ("xxl.delivered_fraction", "higher", None),
        ("xxl_slotted.delivered_fraction", "higher", None),
        ("xxl_slotted.structure_complete", "higher", None),
    ],
}


def lookup(payload: dict, dotted: str):
    """Resolve a dotted path, or None when any segment is missing."""
    value = payload
    for part in dotted.split("."):
        if not isinstance(value, dict) or part not in value:
            return None
        value = value[part]
    if isinstance(value, bool):
        return float(value)
    return value


def compare_file(
    name: str,
    baseline_path: pathlib.Path,
    candidate_path: pathlib.Path,
    tolerance: float,
) -> tuple[list[str], list[str]]:
    """Return (regressions, notes) for one benchmark file."""
    regressions: list[str] = []
    notes: list[str] = []
    if not baseline_path.exists():
        notes.append(f"{name}: no committed baseline — skipped")
        return regressions, notes
    if not candidate_path.exists():
        # A missing candidate usually means the producing job failed
        # before writing artifacts; the tier-1 job already reports that.
        notes.append(f"{name}: no candidate artifact — skipped")
        return regressions, notes
    baseline = json.loads(baseline_path.read_text())
    candidate = json.loads(candidate_path.read_text())
    for dotted, direction, override in GATED_METRICS[name]:
        base = lookup(baseline, dotted)
        cand = lookup(candidate, dotted)
        if base is None and cand is not None:
            # The metric exists only in the candidate: a PR adding a
            # bench entry its (older) committed baseline cannot know
            # about.  Informational, never a failure — the entry becomes
            # gated once the new baseline is committed.
            notes.append(f"info {name}: {dotted} candidate={cand:g} "
                         f"(new metric, no baseline — informational)")
            continue
        if base is None or cand is None:
            # e.g. the xxl entry exists only in nightly artifacts.
            notes.append(f"{name}: {dotted} absent from "
                         f"{'baseline' if base is None else 'candidate'} — skipped")
            continue
        tol = tolerance if override is None else override
        if direction == "higher":
            floor = base * (1.0 - tol)
            ok = cand >= floor
            bound = f">= {floor:g}"
        else:
            ceiling = base * (1.0 + tol)
            ok = cand <= ceiling
            bound = f"<= {ceiling:g}"
        line = (f"{name}: {dotted} baseline={base:g} candidate={cand:g} "
                f"(required {bound})")
        if ok:
            notes.append("ok   " + line)
        else:
            regressions.append("FAIL " + line)
    return regressions, notes


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="fail on >tolerance regression of any gated benchmark metric"
    )
    parser.add_argument(
        "--candidate", type=pathlib.Path,
        help="directory holding the freshly produced BENCH_*.json artifacts",
    )
    parser.add_argument(
        "--prune-xxl", type=pathlib.Path, metavar="DIR",
        help="strip the nightly-only 'xxl' entries from BENCH_*.json in DIR "
             "and exit.  Per-push CI runs this before the benchmarks so the "
             "uploaded artifacts carry only values that run measured — "
             "otherwise the merge-written files inherit the committed xxl "
             "entries and the xxl gates would compare the baseline against "
             "itself",
    )
    parser.add_argument(
        "--prune-xxxl", type=pathlib.Path, metavar="DIR",
        help="strip the nightly-only 1M-node 'xxxl' entry from BENCH_*.json "
             "in DIR and exit.  Same rationale as --prune-xxl: per-push CI "
             "never runs the xxxl rung, so the merge-written artifacts must "
             "not inherit the committed entry",
    )
    parser.add_argument(
        "--prune", nargs=2, action="append", metavar=("DIR", "KEYS"),
        help="strip the comma-separated top-level entries KEYS from "
             "BENCH_*.json in DIR and exit — the generic form of "
             "--prune-xxl for any bench family a given CI tier does not "
             "re-measure (e.g. --prune benchmarks/out topology,loss)",
    )
    parser.add_argument(
        "--baseline", type=pathlib.Path,
        default=pathlib.Path(__file__).parent / "out",
        help="directory of committed baselines (default: benchmarks/out)",
    )
    parser.add_argument(
        "--tolerance", type=float, default=0.30,
        help="allowed relative regression for deterministic metrics (default 0.30)",
    )
    args = parser.parse_args(argv)

    prune_jobs: list[tuple[pathlib.Path, tuple[str, ...]]] = []
    if args.prune_xxl is not None:
        prune_jobs.append((args.prune_xxl, ("xxl", "xxl_churn", "xxl_slotted")))
    if args.prune_xxxl is not None:
        prune_jobs.append((args.prune_xxxl, ("xxxl",)))
    for directory, keys in args.prune or ():
        prune_jobs.append((pathlib.Path(directory), tuple(keys.split(","))))
    if prune_jobs:
        for directory, keys in prune_jobs:
            for name in sorted(GATED_METRICS):
                path = directory / name
                if not path.exists():
                    continue
                data = json.loads(path.read_text())
                pruned = [key for key in keys if data.pop(key, None) is not None]
                if pruned:
                    path.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
                    print(f"{name}: pruned stale {', '.join(pruned)} entr{'y' if len(pruned) == 1 else 'ies'}")
        return 0
    if args.candidate is None:
        parser.error("--candidate is required (unless --prune-xxl/--prune-xxxl)")

    all_regressions: list[str] = []
    for name in sorted(GATED_METRICS):
        regressions, notes = compare_file(
            name, args.baseline / name, args.candidate / name, args.tolerance
        )
        for line in notes:
            print(line)
        for line in regressions:
            print(line)
        all_regressions.extend(regressions)
    if all_regressions:
        print(f"\n{len(all_regressions)} gated metric(s) regressed beyond tolerance")
        return 1
    print("\nall gated metrics within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
