"""Figs. 10 & 11 — per-node download/upload percentiles (KB/s).

One scenario run produces both figures.  Paper anchors: trees download
exactly one copy (DAGs about two); upload spreads with the degree
distribution; view-8 configurations pay slightly more PSS overhead; rates
scale with the payload size.
"""

from repro.experiments.report import banner, percentile_rows
from repro.experiments.scenarios import fig10_fig11_bandwidth

PAYLOADS = (1, 10, 50, 100)


def _bandwidth(scale, shared_cache):
    key = ("fig10_11", scale.name)
    if key not in shared_cache:
        shared_cache[key] = fig10_fig11_bandwidth(scale, payload_kb=PAYLOADS)
    return shared_cache[key]


def _rows(data):
    return {
        f"{label}, {kb} KB": percentiles
        for (label, kb), percentiles in sorted(data.items(), key=lambda kv: (kv[0][1], kv[0][0]))
    }


def test_fig10_download(benchmark, scale, emit, shared_cache):
    result = benchmark.pedantic(
        lambda: _bandwidth(scale, shared_cache), rounds=1, iterations=1
    )
    text = banner(
        f"Fig. 10 — download bandwidth percentiles ({result.nodes} nodes)"
    ) + "\n" + percentile_rows(_rows(result.download))
    emit("fig10_download", text)

    for kb in PAYLOADS:
        tree = result.download[("tree, view=4", kb)]
        dag = result.download[("DAG 2 parents, view=4", kb)]
        # DAGs receive up to one extra copy per message: median download
        # sits clearly above the tree's but below ~2.2x.  At the largest
        # payload the per-node bandwidth share saturates and compresses
        # the gap (hence the softer threshold).
        factor = 1.15 if kb < 100 else 1.05
        assert dag[50] > tree[50] * factor, (kb, tree, dag)
        assert dag[50] < tree[50] * 2.4, (kb, tree, dag)
    # Download grows with payload size.
    assert (
        result.download[("tree, view=4", 100)][50]
        > result.download[("tree, view=4", 1)][50] * 10
    )


def test_fig11_upload(benchmark, scale, emit, shared_cache):
    result = benchmark.pedantic(
        lambda: _bandwidth(scale, shared_cache), rounds=1, iterations=1
    )
    text = banner(
        f"Fig. 11 — upload bandwidth percentiles ({result.nodes} nodes)"
    ) + "\n" + percentile_rows(_rows(result.upload))
    emit("fig11_upload", text)

    for kb in (10, 100):
        tree = result.upload[("tree, view=4", kb)]
        dag = result.upload[("DAG 2 parents, view=4", kb)]
        # DAGs maintain more links -> more relaying at the upper
        # percentiles (Fig. 11's taller DAG bars).
        assert dag[90] >= tree[90] * 0.9, (kb, tree, dag)
        # The upload spread mirrors the degree distribution: the 90th
        # percentile clearly exceeds the median (leaves upload ~nothing).
        assert tree[90] > tree[50], (kb, tree)
        assert tree[25] <= tree[50]
