"""Fig. 13 — structure construction time, BRISA vs TAG, both testbeds.

Paper anchors: on the cluster the two are in the same ballpark (TAG
"marginally faster"); on PlanetLab TAG is much slower because every
traversal hop opens, uses and tears down a TCP connection, while BRISA's
construction rides on already-open HyParView connections.
"""

from repro.experiments.paperdata import FIG13_PLANETLAB_TAG_SLOWDOWN_MIN
from repro.experiments.report import banner, cdf_rows
from repro.experiments.scenarios import fig13_construction


def test_fig13_construction(benchmark, scale, emit):
    result = benchmark.pedantic(
        lambda: fig13_construction(scale), rounds=1, iterations=1
    )
    labeled = {
        f"{proto}, {env}": cdf for (proto, env), cdf in sorted(result.series.items())
    }
    text = banner("Fig. 13 — construction time (seconds)") + "\n" + cdf_rows(labeled)
    emit("fig13_construction", text)

    for key, cdf in result.series.items():
        assert not cdf.empty, f"no construction probes for {key}"

    brisa_cl = result.series[("BRISA", "cluster")]
    tag_cl = result.series[("TAG", "cluster")]
    brisa_pl = result.series[("BRISA", "PlanetLab")]
    tag_pl = result.series[("TAG", "PlanetLab")]

    # PlanetLab punishes TAG's per-hop connection setups (the paper's
    # headline): TAG's median grows by at least 2x over BRISA's.
    assert tag_pl.median >= brisa_pl.median * FIG13_PLANETLAB_TAG_SLOWDOWN_MIN
    # On the cluster both construct within the same order of magnitude
    # (the paper's log-scale Fig. 13 shows them close together there).
    assert tag_cl.median <= brisa_cl.median * 10
    assert brisa_cl.median <= tag_cl.median * 100
    # The absolute TAG-over-BRISA penalty explodes on PlanetLab: seconds
    # of extra traversal time vs milliseconds on the cluster.
    cluster_gap = tag_cl.median - brisa_cl.median
    planetlab_gap = tag_pl.median - brisa_pl.median
    assert planetlab_gap > cluster_gap * 5
