"""Scale BRISA — the full stack (membership + emergence + repair) at 10k.

Not a paper artifact: the ROADMAP rung after PR 1's flood-only scale
runs.  The synthesized-overlay bootstrap (DESIGN.md §7) replaces the
simulated HyParView join ramp, making the complete BRISA protocol
affordable at populations the paper never reached.  Results persist to
``benchmarks/out/BENCH_scale_brisa.json``.

Acceptance gates:

- the 10k-node BRISA dissemination completes with a complete/acyclic
  emerged structure and a delivered fraction at least the flood
  baseline's on the identical population/workload;
- the synthesized bootstrap is >= 10x faster wall-clock than the
  simulated join ramp it replaces, measured at 2k nodes.

The ``xxl`` (100k-node) rung opened by the array-backed bootstrap runs
behind ``REPRO_XXL=1`` (nightly CI / driver acceptance).  A 2k-node
smoke variant (``-k smoke``) covers CI pushes where the full 10k run
would be too heavy.
"""

import os

import pytest

from repro.experiments.report import banner
from repro.experiments.scale import LARGE, XL, XXL
from repro.experiments.scale_brisa import (
    bootstrap_comparison,
    brisa_slotted_microbench,
    run_scale_brisa,
)
from repro.experiments.scale_flood import run_scale_flood

from benchmarks.conftest import OUT_DIR, merge_bench_json

#: Stream length for the benchmark runs (matches test_scale_flood).
MESSAGES = 20


def test_scale_brisa_10k(emit):
    brisa = run_scale_brisa(XL.cluster_nodes, MESSAGES, rate=20.0, seed=3)
    flood = run_scale_flood(XL.cluster_nodes, MESSAGES, rate=20.0, seed=3)
    boot = bootstrap_comparison(
        LARGE.cluster_nodes,
        seed=3,
        join_spacing=LARGE.join_spacing,
        settle=LARGE.settle,
    )
    text = (
        banner(f"Scale BRISA — {brisa.nodes} nodes (xl)")
        + "\n" + brisa.summary()
        + "\n" + banner("Flood baseline — same population/workload")
        + "\n" + flood.summary()
        + "\n" + banner("Bootstrap — synthesized overlay vs simulated join ramp (2k)")
        + "\n" + boot.summary()
    )
    emit("scale_brisa", text)

    OUT_DIR.mkdir(exist_ok=True)
    merge_bench_json(
        OUT_DIR / "BENCH_scale_brisa.json",
        {
            "scale_run": brisa.to_dict(),
            "flood_baseline": flood.to_dict(),
            "bootstrap": boot.to_dict(),
        },
    )

    # Structure correctness (§II-B) at a population 20x the paper's.
    assert brisa.nodes == XL.cluster_nodes
    assert brisa.structure_complete, brisa.structure_reason
    # Reliability: BRISA must not trade delivery away against flooding.
    assert brisa.delivered_fraction >= flood.delivered_fraction
    # Efficiency: once the structure emerges, duplicates stay far below
    # flooding's every-link-every-message regime (degree - 1 per message).
    assert brisa.duplicates_per_node < flood.messages * 2
    # Ramp replacement: the synthesized bootstrap must beat the simulated
    # join ramp by >= 10x wall-clock at 2k nodes.  Relaxable via env for
    # unevenly-throttled shared CI runners (ci.yml), never locally.
    gate = float(os.environ.get("BENCH_BOOTSTRAP_GATE", "10.0"))
    assert boot.speedup >= gate, boot.summary()


@pytest.mark.xl
def test_scale_brisa_multistream_xl(emit):
    """The §IV acceptance run (DESIGN.md §10): 8 publishers over one
    10k overlay emerge 8 independent complete/acyclic trees with 100%
    aggregate delivery, and the relay-load-spread report shows the
    interior-node sets differ across streams (SplitStream-style load
    spreading on shared infrastructure)."""
    result = run_scale_brisa(XL.cluster_nodes, 10, rate=20.0, seed=3, streams=8)
    emit(
        "scale_brisa_multistream",
        banner(f"Scale BRISA multi-stream — {result.nodes} nodes (xl), 8 streams")
        + "\n" + result.summary(),
    )
    OUT_DIR.mkdir(exist_ok=True)
    merge_bench_json(
        OUT_DIR / "BENCH_scale_brisa.json", {"multistream": result.to_dict()}
    )

    assert result.streams == 8 and len(result.per_stream) == 8
    assert result.structure_complete, result.structure_reason
    for row in result.per_stream:
        assert row["structure_complete"], (row["stream"], row["structure_reason"])
        assert row["delivered_fraction"] == 1.0, row
    assert result.delivered_fraction == 1.0
    rs = result.relay_spread
    assert rs is not None and rs["streams"] == 8
    # The §IV claim: every stream emerges its own relay set.
    assert rs["distinct_sets"] is True
    assert rs["interior_all"] <= min(rs["interior_per_stream"].values())


@pytest.mark.xl
def test_slotted_brisa_kernel_xl(emit):
    """The slotted BRISA kernel gate (DESIGN.md §11): flat-array tree
    state + packed Bloom rows must clear 2x the object kernel's
    steady-state per-reception throughput at xl.

    The measurement is differential (marginal rate between two stream
    lengths) so the fixed emergence transient — bootstrap flood,
    deactivation wave — that both kernels share cancels out; reception
    counts are parity-checked inside the microbench, and the full
    draw-for-draw surface is pinned by tests/test_slotted_parity.py."""
    mb = brisa_slotted_microbench(XL.cluster_nodes, 50, seed=3)
    emit(
        "scale_brisa_slotted",
        banner("Slotted BRISA microbenchmark — object vs slotted kernel (xl)")
        + "\n" + mb.summary(),
    )
    OUT_DIR.mkdir(exist_ok=True)
    merge_bench_json(
        OUT_DIR / "BENCH_scale_brisa.json",
        {"brisa_slotted_microbench": mb.to_dict()},
    )

    # Same CI-relaxation story as the other speedup gates: the strict 2x
    # applies on dedicated hardware, shared runners set the env override.
    gate = float(os.environ.get("BENCH_BRISA_SLOTTED_GATE", "2.0"))
    assert mb.speedup >= gate, mb.summary()
    assert mb.receptions > 0


@pytest.mark.skipif(
    not os.environ.get("REPRO_XXL"),
    reason="100k rung runs nightly / on demand (set REPRO_XXL=1)",
)
@pytest.mark.xxl
def test_scale_brisa_xxl_slotted_100k(emit):
    """The 100k rung on the slotted BRISA kernel: the throughput lever
    must preserve the deterministic outcomes (full delivery, complete
    structure) at the largest population."""
    result = run_scale_brisa(
        XXL.cluster_nodes, XXL.messages, rate=20.0, seed=3, kernel="slotted"
    )
    emit(
        "scale_brisa_xxl_slotted",
        banner(f"Scale BRISA slotted — {result.nodes} nodes (xxl)")
        + "\n" + result.summary(),
    )
    OUT_DIR.mkdir(exist_ok=True)
    merge_bench_json(
        OUT_DIR / "BENCH_scale_brisa.json", {"xxl_slotted": result.to_dict()}
    )

    assert result.kernel == "slotted"
    assert result.structure_complete, result.structure_reason
    assert result.delivered_fraction == 1.0


@pytest.mark.skipif(
    not os.environ.get("REPRO_XXL"),
    reason="100k rung runs nightly / on demand (set REPRO_XXL=1)",
)
@pytest.mark.xxl
def test_scale_brisa_xxl_100k(emit):
    """The 100k rung for the full BRISA stack: membership + emergence
    over an array-backed synthesized overlay."""
    result = run_scale_brisa(XXL.cluster_nodes, XXL.messages, rate=20.0, seed=3)
    emit(
        "scale_brisa_xxl",
        banner(f"Scale BRISA — {result.nodes} nodes (xxl)") + "\n" + result.summary(),
    )
    OUT_DIR.mkdir(exist_ok=True)
    merge_bench_json(OUT_DIR / "BENCH_scale_brisa.json", {"xxl": result.to_dict()})

    assert result.nodes == XXL.cluster_nodes
    assert result.structure_complete, result.structure_reason
    assert result.delivered_fraction == 1.0


def test_scale_brisa_smoke_2k(emit):
    """CI smoke: the large (2k) scenario end-to-end, full BRISA stack."""
    result = run_scale_brisa(LARGE.cluster_nodes, 10, rate=20.0, seed=4)
    emit("scale_brisa_smoke", banner("Scale BRISA smoke — 2k nodes") + "\n" + result.summary())
    assert result.delivered_fraction == 1.0
    assert result.structure_complete, result.structure_reason
    assert result.deliveries == (LARGE.cluster_nodes - 1) * 10
