"""Fig. 2 — CDF of duplicates per node under flooding, view 4/6/8/10.

Paper anchor: with 500 messages on 512 nodes, half of the nodes see more
than 1 duplicate *per message* at view 4 and more than 7 at view 10 (the
figure's x-axis is duplicates per message).
"""

from repro.experiments.paperdata import FIG2_MEDIAN_DUPLICATES
from repro.experiments.report import banner, cdf_rows
from repro.experiments.scenarios import fig2_duplicates
from repro.metrics.stats import CDF


def test_fig02_duplicates(benchmark, scale, emit):
    result = benchmark.pedantic(
        lambda: fig2_duplicates(scale), rounds=1, iterations=1
    )
    # Normalize totals to duplicates-per-message (the figure's unit).
    per_message = {
        f"view size = {v}": CDF.of(x / result.messages for x in cdf.values)
        for v, cdf in sorted(result.by_view.items())
    }
    text = banner(
        f"Fig. 2 — duplicates per message per node "
        f"({result.nodes} nodes, {result.messages} msgs, flooding)"
    ) + "\n" + cdf_rows(per_message)
    emit("fig02_duplicates", text)

    # Shape: duplicates grow monotonically with the view size...
    medians = [per_message[f"view size = {v}"].median for v in sorted(result.by_view)]
    assert all(a <= b * 1.05 for a, b in zip(medians, medians[1:])), medians
    # ...and the view-10 median is several times the view-4 median
    # (paper: >1 at view 4 vs >7 at view 10).
    assert medians[-1] > medians[0] * 1.8
    # Flooding keeps producing duplicates for the typical node (a rare
    # degree-1 node may legitimately see none).
    assert per_message["view size = 4"].mean >= 0.5
