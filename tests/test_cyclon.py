"""Tests for the Cyclon peer sampling service."""

import networkx as nx

from repro.config import CyclonConfig
from repro.membership.cyclon import CyclonNode
from repro.sim.engine import Simulator
from repro.sim.latency import ConstantLatency
from repro.sim.monitor import Metrics
from repro.sim.network import Network


def build_cyclon(n, *, cfg=None, seed=1, settle=120.0):
    cfg = cfg or CyclonConfig()
    sim = Simulator(seed=seed)
    net = Network(sim, ConstantLatency(0.001), Metrics(record_deliveries=False))
    nodes = [net.spawn(lambda network, nid: CyclonNode(network, nid, cfg))]
    rng = sim.rng("bootstrap")

    def add_one():
        node = net.spawn(lambda network, nid: CyclonNode(network, nid, cfg))
        node.join(rng.choice([x.node_id for x in nodes]))
        nodes.append(node)

    for i in range(1, n):
        sim.schedule(i * 0.05, add_one)
    sim.run(until=n * 0.05 + settle)
    return sim, net, nodes


def test_views_fill_to_capacity():
    cfg = CyclonConfig(view_size=6)
    sim, net, nodes = build_cyclon(48, cfg=cfg)
    sizes = [len(n.view) for n in nodes]
    assert sum(sizes) / len(sizes) >= 4.0
    assert all(s <= 6 for s in sizes)


def test_view_never_contains_self():
    sim, net, nodes = build_cyclon(32)
    assert all(n.node_id not in n.view for n in nodes)


def test_directed_view_graph_weakly_connected():
    sim, net, nodes = build_cyclon(48)
    g = nx.DiGraph()
    for n in nodes:
        g.add_node(n.node_id)
        for peer in n.view:
            g.add_edge(n.node_id, peer)
    assert nx.is_weakly_connected(g)


def test_shuffles_rotate_view_content():
    sim, net, nodes = build_cyclon(48, settle=30.0)
    before = {n.node_id: set(n.view) for n in nodes}
    sim.run(until=sim.now + 60.0)
    changed = sum(1 for n in nodes if set(n.view) != before[n.node_id])
    assert changed > len(nodes) * 0.5


def test_dead_entries_age_out_without_failure_detector():
    sim, net, nodes = build_cyclon(32, settle=60.0)
    victim = nodes[7]
    net.crash(victim.node_id)
    sim.run(until=sim.now + 240.0)
    holders = [n for n in nodes if n.alive and victim.node_id in n.view]
    # The dead id disappears from (nearly) all views purely by shuffling.
    assert len(holders) <= 2


def test_ages_increase_until_shuffled():
    cfg = CyclonConfig(shuffle_period=5.0)
    sim, net, nodes = build_cyclon(16, cfg=cfg, settle=30.0)
    ages = [a for n in nodes for a in n.view.values()]
    assert ages and max(ages) >= 1


def test_crash_clears_state():
    sim, net, nodes = build_cyclon(16, settle=20.0)
    victim = nodes[3]
    net.crash(victim.node_id)
    assert victim.view == {}
