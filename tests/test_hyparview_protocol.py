"""White-box tests for HyParView protocol details (walks, priorities)."""

import pytest

from repro.config import HyParViewConfig
from repro.membership import messages as m
from repro.membership.hyparview import HyParViewNode
from repro.sim.engine import Simulator
from repro.sim.latency import ConstantLatency
from repro.sim.monitor import Metrics
from repro.sim.network import Network


def manual_nodes(count, cfg=None, seed=1):
    sim = Simulator(seed=seed)
    net = Network(sim, ConstantLatency(0.001), Metrics())
    cfg = cfg or HyParViewConfig()
    nodes = [net.spawn(lambda n, i: HyParViewNode(n, i, cfg)) for _ in range(count)]
    return sim, net, nodes


class TestNeighborHandshake:
    def test_priority_request_accepted_even_when_full(self):
        cfg = HyParViewConfig(active_size=1, expansion_factor=1.0)
        sim, net, (a, b, c) = manual_nodes(3, cfg)
        b.join(a.node_id)
        sim.run(until=1.0)
        assert len(a.active) == 1
        # c forces itself in with priority (it is isolated): deliver the
        # request and assert the immediate acceptance.  (At capacity 1
        # with three nodes the slot keeps rotating afterwards — the
        # displaced node's own priority request takes it back — which is
        # inherent to the protocol at degenerate view sizes.)
        a.handle_message(c.node_id, m.Neighbor(priority=True))
        assert c.node_id in a.active
        assert len(a.active) <= cfg.max_active
        sim.run(until=2.0)
        # The cap survives the ensuing rotation.
        assert len(a.active) <= cfg.max_active

    def test_normal_request_rejected_when_full(self):
        cfg = HyParViewConfig(active_size=1, expansion_factor=1.0)
        sim, net, (a, b, c) = manual_nodes(3, cfg)
        b.join(a.node_id)
        sim.run(until=1.0)
        c._request_neighbor(a.node_id, priority=False)
        sim.run(until=2.0)
        assert c.node_id not in a.active
        assert a.node_id not in c._pending_neighbor  # reject clears pending

    def test_reject_triggers_next_replacement_attempt(self):
        cfg = HyParViewConfig(active_size=2, expansion_factor=1.0)
        sim, net, nodes = manual_nodes(4, cfg)
        a = nodes[0]
        # Seed a's passive view with two candidates; one will be tried.
        a.passive.update({nodes[2].node_id, nodes[3].node_id})
        a._maybe_replace()
        sim.run(until=2.0)
        assert len(a.active) >= 1


class TestForwardJoinWalk:
    def test_walk_terminates_at_ttl_zero(self):
        sim, net, nodes = manual_nodes(3)
        a, b, c = nodes
        # Hand-build a line a-b so the walk from b can reach c directly.
        a.active[b.node_id] = None
        b.active[a.node_id] = None
        net.register_link(a.node_id, b.node_id)
        b.handle_message(a.node_id, m.ForwardJoin(c.node_id, ttl=0))
        sim.run(until=1.0)
        assert c.node_id in b.active
        assert b.node_id in c.active  # mutual via Neighbor handshake

    def test_walk_records_passive_at_prwl(self):
        cfg = HyParViewConfig(arwl=6, prwl=3)
        sim, net, nodes = manual_nodes(4, cfg)
        a, b, c, joiner = nodes
        for x, y in [(a, b), (b, c)]:
            x.active[y.node_id] = None
            y.active[x.node_id] = None
            net.register_link(x.node_id, y.node_id)
        b.handle_message(a.node_id, m.ForwardJoin(joiner.node_id, ttl=cfg.prwl))
        assert joiner.node_id in b.passive

    def test_own_id_in_walk_ignored(self):
        sim, net, nodes = manual_nodes(2)
        a, b = nodes
        a.handle_message(b.node_id, m.ForwardJoin(a.node_id, ttl=2))
        assert a.node_id not in a.active


class TestShuffleMechanics:
    def test_shuffle_reply_integrates_entries(self):
        sim, net, nodes = manual_nodes(3)
        a, b, c = nodes
        a.handle_message(b.node_id, m.ShuffleReply((c.node_id,)))
        assert c.node_id in a.passive

    def test_integration_skips_self_and_active(self):
        sim, net, nodes = manual_nodes(3)
        a, b, c = nodes
        a.active[b.node_id] = None
        a.handle_message(c.node_id, m.ShuffleReply((a.node_id, b.node_id)))
        assert a.node_id not in a.passive
        assert b.node_id not in a.passive

    def test_passive_eviction_prefers_sent_entries(self):
        cfg = HyParViewConfig(passive_size=2)
        sim, net, nodes = manual_nodes(1, cfg)
        (a,) = nodes
        a.passive.update({100, 101})
        a._add_passive(102, sent_away={100})
        assert 100 not in a.passive
        assert {101, 102} <= a.passive

    def test_shuffle_walk_forwards_with_decremented_ttl(self):
        sim, net, nodes = manual_nodes(4)
        a, b, c, d = nodes
        # b has two neighbours, so a walk arriving with ttl>0 is relayed.
        for x in (a, c):
            b.active[x.node_id] = None
            x.active[b.node_id] = None
            net.register_link(b.node_id, x.node_id)
        b.handle_message(a.node_id, m.Shuffle(a.node_id, (d.node_id,), ttl=2))
        sim.run(until=1.0)
        # The walk ended at c (only candidate), which integrated the
        # entry — still passive, or already promoted by the under-full
        # view's reservoir-refresh retry.
        assert d.node_id in (c.passive | set(c.active))

    def test_shuffle_at_walk_end_replies_to_origin(self):
        sim, net, nodes = manual_nodes(3)
        a, b, c = nodes
        b.handle_message(a.node_id, m.Shuffle(a.node_id, (c.node_id,), ttl=0))
        sim.run(until=1.0)
        assert c.node_id in (b.passive | set(b.active))
        # a received b's reply sample (contains b itself).
        assert b.node_id in (a.passive | set(a.active))

    def test_unreachable_shuffle_entries_scrubbed_by_promotion(self):
        # A stale id integrated from a shuffle is probed by the under-full
        # view and, never answering, leaves the passive view instead of
        # pinning a pending slot forever.
        sim, net, nodes = manual_nodes(2)
        a, b = nodes
        a.handle_message(b.node_id, m.ShuffleReply((77,)))
        assert 77 in a.passive
        sim.run(until=5.0)
        assert 77 not in a.passive
        assert 77 not in a._pending_neighbor
