"""Tests for the command-line interface."""

import pytest

from repro.cli import EXPERIMENTS, main, make_parser


def test_list_prints_all_experiments(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for name in EXPERIMENTS:
        assert name in out


def test_run_single_experiment(capsys, monkeypatch):
    monkeypatch.setenv("REPRO_SCALE", "tiny")
    assert main(["run", "fig8"]) == 0
    out = capsys.readouterr().out
    assert "Fig. 8" in out and "max depth" in out


def test_run_with_explicit_scale(capsys):
    assert main(["run", "fig2", "--scale", "tiny"]) == 0
    out = capsys.readouterr().out
    assert "view size = 4" in out


def test_quickstart_command(capsys):
    assert main(["quickstart"]) == 0
    out = capsys.readouterr().out
    assert "delivered" in out


def test_unknown_experiment_rejected():
    with pytest.raises(SystemExit):
        make_parser().parse_args(["run", "fig99"])


def test_command_required():
    with pytest.raises(SystemExit):
        make_parser().parse_args([])
