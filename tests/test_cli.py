"""Tests for the command-line interface."""

import pytest

from repro.cli import EXPERIMENTS, main, make_parser


def test_list_prints_all_experiments(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for name in EXPERIMENTS:
        assert name in out


def test_run_single_experiment(capsys, monkeypatch):
    monkeypatch.setenv("REPRO_SCALE", "tiny")
    assert main(["run", "fig8"]) == 0
    out = capsys.readouterr().out
    assert "Fig. 8" in out and "max depth" in out


def test_run_with_explicit_scale(capsys):
    assert main(["run", "fig2", "--scale", "tiny"]) == 0
    out = capsys.readouterr().out
    assert "view size = 4" in out


def test_quickstart_command(capsys):
    assert main(["quickstart"]) == 0
    out = capsys.readouterr().out
    assert "delivered" in out


def test_scale_command_runs_and_writes_json(capsys, tmp_path):
    out = tmp_path / "bench.json"
    assert main([
        "scale", "--nodes", "64", "--messages", "5",
        "--no-microbench", "--json", str(out),
    ]) == 0
    printed = capsys.readouterr().out
    assert "Scale flood" in printed and "delivered: 100.00%" in printed
    import json

    data = json.loads(out.read_text())
    assert data["scale_run"]["nodes"] == 64
    assert data["scale_run"]["delivered_fraction"] == 1.0
    assert "microbench" not in data


def test_scale_command_rejects_degenerate_input(capsys):
    assert main(["scale", "--nodes", "64", "--messages", "0", "--no-microbench"]) == 2
    assert "error:" in capsys.readouterr().err
    assert main(["scale", "--scale", "bogus", "--no-microbench"]) == 2
    assert "unknown scale" in capsys.readouterr().err
    assert main(["scale", "--nodes", "64", "--rate", "0", "--no-microbench"]) == 2
    assert "rate" in capsys.readouterr().err
    assert main(["scale", "--nodes", "64", "--churn", "100", "--no-microbench"]) == 2
    assert "churn" in capsys.readouterr().err


def test_scale_command_slotted_kernel(capsys, tmp_path):
    out = tmp_path / "bench.json"
    assert main([
        "scale", "--nodes", "64", "--messages", "5", "--kernel", "slotted",
        "--no-microbench", "--json", str(out),
    ]) == 0
    assert "kernel: slotted" in capsys.readouterr().out
    import json

    data = json.loads(out.read_text())
    assert data["scale_run"]["kernel"] == "slotted"
    assert data["scale_run"]["delivered_fraction"] == 1.0
    assert data["scale_run"]["receptions"] > data["scale_run"]["deliveries"]


def test_scale_command_churn(capsys, tmp_path):
    out = tmp_path / "bench.json"
    assert main([
        "scale", "--nodes", "256", "--messages", "5", "--churn", "8",
        "--no-microbench", "--json", str(out),
    ]) == 0
    printed = capsys.readouterr().out
    assert "churn: 8%" in printed and "survivors" in printed
    import json

    data = json.loads(out.read_text())
    assert data["scale_run"]["churn_percent"] == 8.0
    assert data["scale_run"]["kills"] > 0
    assert data["scale_run"]["survivors"] < 255


def test_scale_command_multistream_flood(capsys, tmp_path):
    out = tmp_path / "bench.json"
    assert main([
        "scale", "--nodes", "96", "--messages", "4", "--streams", "3",
        "--kernel", "slotted", "--no-microbench", "--json", str(out),
    ]) == 0
    printed = capsys.readouterr().out
    assert "3 stream(s)" in printed and "per-stream delivery" in printed
    import json

    data = json.loads(out.read_text())
    assert data["scale_run"]["streams"] == 3
    assert len(data["scale_run"]["per_stream"]) == 3
    for row in data["scale_run"]["per_stream"]:
        assert row["delivered_fraction"] == 1.0


def test_scale_command_multistream_brisa(capsys, tmp_path):
    out = tmp_path / "bench.json"
    assert main([
        "scale", "--stack", "brisa", "--nodes", "96", "--messages", "4",
        "--streams", "3", "--no-microbench", "--json", str(out),
    ]) == 0
    printed = capsys.readouterr().out
    assert "per-stream delivery + structure" in printed
    assert "relay-load spread" in printed
    import json

    data = json.loads(out.read_text())
    assert data["scale_run"]["streams"] == 3
    assert data["scale_run"]["structure_complete"] is True
    assert data["scale_run"]["relay_spread"]["streams"] == 3


def test_scale_command_rejects_bad_streams(capsys):
    assert main(["scale", "--nodes", "32", "--streams", "0", "--no-microbench"]) == 2
    assert "streams" in capsys.readouterr().err
    assert main(["scale", "--nodes", "8", "--streams", "9", "--no-microbench"]) == 2
    assert "spread" in capsys.readouterr().err


def test_scale_churn_rejected_on_brisa_stack(capsys):
    """--kernel works on both stacks since the slotted BRISA kernel
    landed (DESIGN.md §11); --churn stays flood-only."""
    assert main([
        "scale", "--stack", "brisa", "--nodes", "32", "--churn", "5",
        "--no-microbench",
    ]) == 2
    assert "flood stack only" in capsys.readouterr().err


def test_scale_command_slotted_brisa_kernel(capsys, tmp_path):
    out = tmp_path / "bench.json"
    assert main([
        "scale", "--stack", "brisa", "--nodes", "96", "--messages", "4",
        "--streams", "2", "--kernel", "slotted", "--no-microbench",
        "--json", str(out),
    ]) == 0
    printed = capsys.readouterr().out
    assert "slotted kernel" in printed
    assert "delivered: 100.00%" in printed
    assert "complete/acyclic" in printed
    import json

    data = json.loads(out.read_text())
    assert data["scale_run"]["kernel"] == "slotted"
    assert data["scale_run"]["structure_complete"] is True
    assert data["scale_run"]["delivered_fraction"] == 1.0
    assert len(data["scale_run"]["per_stream"]) == 2


def test_scale_command_uses_scale_population(capsys):
    assert main(["scale", "--scale", "tiny", "--messages", "3", "--no-microbench"]) == 0
    printed = capsys.readouterr().out
    assert "nodes: 32" in printed  # tiny.cluster_nodes


def test_scale_command_size_alias(capsys):
    assert main(["scale", "--size", "tiny", "--messages", "3", "--no-microbench"]) == 0
    printed = capsys.readouterr().out
    assert "nodes: 32" in printed


def test_scale_brisa_stack_runs_and_writes_json(capsys, tmp_path):
    out = tmp_path / "bench.json"
    assert main([
        "scale", "--stack", "brisa", "--nodes", "64", "--messages", "3",
        "--no-microbench", "--json", str(out),
    ]) == 0
    printed = capsys.readouterr().out
    assert "Scale brisa" in printed
    assert "delivered: 100.00%" in printed
    assert "complete/acyclic" in printed
    import json

    data = json.loads(out.read_text())
    assert data["scale_run"]["nodes"] == 64
    assert data["scale_run"]["structure_complete"] is True
    assert data["scale_run"]["bootstrap"] == "synthesized"


def test_scale_brisa_stack_rejects_bad_checkpoint(capsys, tmp_path):
    missing = tmp_path / "nope.json"
    assert main([
        "scale", "--stack", "brisa", "--nodes", "32", "--messages", "2",
        "--bootstrap", str(missing), "--no-microbench",
    ]) == 2
    assert "error:" in capsys.readouterr().err


def test_scale_brisa_flags_rejected_on_flood_stack(capsys):
    assert main(["scale", "--nodes", "32", "--mode", "dag", "--no-microbench"]) == 2
    assert "--stack brisa" in capsys.readouterr().err
    assert main([
        "scale", "--nodes", "32", "--bootstrap", "simulated", "--no-microbench",
    ]) == 2
    assert "--stack brisa" in capsys.readouterr().err


def test_unknown_experiment_rejected():
    with pytest.raises(SystemExit):
        make_parser().parse_args(["run", "fig99"])


def test_command_required():
    with pytest.raises(SystemExit):
        make_parser().parse_args([])
