"""Tests for the PlumTree baseline (§V's closest BRISA relative)."""

import pytest

from repro.config import HyParViewConfig, StreamConfig
from repro.baselines.plumtree import PlumTreeNode
from repro.experiments.common import Testbed as _Testbed  # alias: avoid pytest collection


def build_plumtree(n, *, seed=3, settle=30.0, missing_timeout=0.3):
    hpv = HyParViewConfig(active_size=4)
    bed = _Testbed(seed=seed)
    bed.populate(
        n,
        lambda network, nid: PlumTreeNode(
            network, nid, hpv, missing_timeout=missing_timeout
        ),
        settle=settle,
    )
    return bed


def run_stream(bed, count=30, rate=5.0, payload=128, drain=15.0):
    source = bed.choose_source()
    result = bed.run_stream(
        source, StreamConfig(count=count, rate=rate, payload_bytes=payload), drain=drain
    )
    return source, result


class TestDissemination:
    def test_all_messages_delivered(self):
        bed = build_plumtree(48)
        source, result = run_stream(bed)
        assert result.delivered_fraction() == 1.0

    def test_duplicates_pruned_into_tree(self):
        """After the first messages, PRUNEs turn the flood into a spanning
        tree: payload duplicates approach zero, like BRISA."""
        bed = build_plumtree(48, seed=4)
        source, result = run_stream(bed, count=40)
        receivers = len(result.receivers())
        gossip_sends = sum(bed.metrics.msg_counts["pt_gossip"].values())
        # Bounded by flood(first msgs) + ~1 payload per receiver afterwards.
        assert gossip_sends < receivers * 40 * 1.4

    def test_lazy_links_formed(self):
        bed = build_plumtree(48, seed=5)
        source, result = run_stream(bed, count=40)
        with_lazy = [
            n for n in bed.alive_nodes() if n.lazy.get(0) and len(n.lazy[0]) > 0
        ]
        assert len(with_lazy) > len(bed.alive_nodes()) * 0.5

    def test_constant_ihave_overhead(self):
        """The §V trade-off: every pruned link keeps carrying one IHave per
        message, forever — control overhead proportional to the stream."""
        bed = build_plumtree(48, seed=6)
        source, result = run_stream(bed, count=40)
        ihaves = sum(bed.metrics.msg_counts["pt_ihave"].values())
        # At least ~one advertisement per lazy link per late message.
        assert ihaves > 40 * 10


class TestGraftRepair:
    def test_failure_recovers_through_graft(self):
        bed = build_plumtree(48, seed=7, missing_timeout=0.2)
        source = bed.choose_source()
        bed.start_stream(source, StreamConfig(count=120, rate=5.0, payload_bytes=128))
        bed.sim.run(until=bed.sim.now + 5.0)
        # Kill a relay that serves someone eagerly.
        victim = next(
            n for n in bed.alive_nodes()
            if n is not source and any(
                n.node_id not in m.lazy.get(0, set())
                for m in bed.alive_nodes() if m is not n
            )
        )
        bed.network.crash(victim.node_id)
        bed.sim.run(until=bed.sim.now + 30.0)
        injected = {seq for (s, seq) in bed.metrics.injections if s == 0}
        for node in bed.alive_nodes():
            if node is source:
                continue
            missing = injected - set(node.store.get(0, {}))
            assert not missing, f"node {node.node_id} missing {sorted(missing)[:5]}"
        grafts = sum(bed.metrics.msg_counts.get("pt_graft", {}).values())
        assert grafts > 0

    def test_graft_timer_noop_when_payload_arrived(self):
        bed = build_plumtree(16, seed=8)
        source, result = run_stream(bed, count=10)
        node = next(n for n in bed.alive_nodes() if n is not source)
        # Arm a timer for a message that is already present: no graft sent.
        before = sum(bed.metrics.msg_counts.get("pt_graft", {}).values())
        node._graft_timer(0, 0)
        bed.sim.run(until=bed.sim.now + 1.0)
        after = sum(bed.metrics.msg_counts.get("pt_graft", {}).values())
        assert after == before
