"""Tests for the large-scale BRISA scenario (small populations here;
the 2k/10k runs live in benchmarks/test_scale_brisa.py)."""

import pytest

from repro.experiments.scale_brisa import bootstrap_comparison, run_scale_brisa


class TestRunScaleBrisa:
    def test_full_delivery_and_structure_on_small_population(self):
        result = run_scale_brisa(96, 10, seed=6)
        assert result.delivered_fraction == 1.0
        assert result.structure_complete, result.structure_reason
        assert result.deliveries == 95 * 10
        assert result.bootstrap == "synthesized"
        assert result.bootstrap_wall > 0
        assert result.events > 0
        assert result.wall_time > 0

    def test_dag_mode(self):
        result = run_scale_brisa(64, 8, mode="dag", seed=7)
        assert result.mode == "dag"
        assert result.delivered_fraction == 1.0
        assert result.structure_complete, result.structure_reason

    def test_simulated_bootstrap_also_works(self):
        result = run_scale_brisa(
            48, 5, seed=8, bootstrap="simulated", join_spacing=0.05, settle=10.0
        )
        assert result.bootstrap == "simulated"
        assert result.delivered_fraction == 1.0
        assert result.structure_complete, result.structure_reason

    def test_result_serializes_for_bench_json(self):
        result = run_scale_brisa(48, 3, seed=9)
        d = result.to_dict()
        for key in (
            "nodes", "messages", "bootstrap", "bootstrap_wall",
            "delivered_fraction", "structure_complete", "duplicates_per_node",
            "events_per_sec", "deliveries_per_sec",
        ):
            assert key in d
        assert "delivered: 100.00%" in result.summary()
        assert "complete/acyclic" in result.summary()

    def test_deterministic_for_fixed_seed(self):
        a = run_scale_brisa(48, 4, seed=10)
        b = run_scale_brisa(48, 4, seed=10)
        assert a.events == b.events
        assert a.deliveries == b.deliveries
        assert a.sim_time == b.sim_time

    def test_rejects_degenerate_input(self):
        with pytest.raises(ValueError):
            run_scale_brisa(64, 0)
        with pytest.raises(ValueError):
            run_scale_brisa(64, 5, rate=0.0)


class TestBootstrapComparison:
    def test_synthesized_beats_simulated_ramp(self):
        comp = bootstrap_comparison(128, seed=3, join_spacing=0.05, settle=15.0)
        assert comp.simulated_events > 0
        assert comp.synthesized_wall > 0
        # The strict 10x gate lives in benchmarks/test_scale_brisa.py at
        # 2k nodes; at this toy size just require a real win.
        assert comp.speedup > 1.0

    def test_serializes(self):
        comp = bootstrap_comparison(64, seed=4, settle=5.0)
        d = comp.to_dict()
        assert d["speedup"] == comp.speedup
        assert "speedup" in comp.summary()
