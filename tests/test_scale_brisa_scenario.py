"""Tests for the large-scale BRISA scenario (small populations here;
the 2k/10k runs live in benchmarks/test_scale_brisa.py)."""

import pytest

from repro.experiments.scale_brisa import (
    bootstrap_comparison,
    brisa_slotted_microbench,
    run_scale_brisa,
)


class TestRunScaleBrisa:
    def test_full_delivery_and_structure_on_small_population(self):
        result = run_scale_brisa(96, 10, seed=6)
        assert result.delivered_fraction == 1.0
        assert result.structure_complete, result.structure_reason
        assert result.deliveries == 95 * 10
        assert result.bootstrap == "synthesized"
        assert result.bootstrap_wall > 0
        assert result.events > 0
        assert result.wall_time > 0

    def test_dag_mode(self):
        result = run_scale_brisa(64, 8, mode="dag", seed=7)
        assert result.mode == "dag"
        assert result.delivered_fraction == 1.0
        assert result.structure_complete, result.structure_reason

    def test_simulated_bootstrap_also_works(self):
        result = run_scale_brisa(
            48, 5, seed=8, bootstrap="simulated", join_spacing=0.05, settle=10.0
        )
        assert result.bootstrap == "simulated"
        assert result.delivered_fraction == 1.0
        assert result.structure_complete, result.structure_reason

    def test_result_serializes_for_bench_json(self):
        result = run_scale_brisa(48, 3, seed=9)
        d = result.to_dict()
        for key in (
            "nodes", "messages", "bootstrap", "bootstrap_wall",
            "delivered_fraction", "structure_complete", "duplicates_per_node",
            "events_per_sec", "deliveries_per_sec",
        ):
            assert key in d
        assert "delivered: 100.00%" in result.summary()
        assert "complete/acyclic" in result.summary()

    def test_deterministic_for_fixed_seed(self):
        a = run_scale_brisa(48, 4, seed=10)
        b = run_scale_brisa(48, 4, seed=10)
        assert a.events == b.events
        assert a.deliveries == b.deliveries
        assert a.sim_time == b.sim_time

    def test_rejects_degenerate_input(self):
        with pytest.raises(ValueError):
            run_scale_brisa(64, 0)
        with pytest.raises(ValueError):
            run_scale_brisa(64, 5, rate=0.0)
        with pytest.raises(ValueError):
            run_scale_brisa(64, 5, kernel="vectorized")

    def test_slotted_kernel_matches_object_outcome(self):
        """The kernel switch is a pure throughput lever (DESIGN.md §11):
        the slotted run reports the identical deterministic outcome."""
        results = {
            kernel: run_scale_brisa(96, 6, seed=6, streams=2, kernel=kernel)
            for kernel in ("object", "slotted")
        }
        a, b = results["object"], results["slotted"]
        assert b.kernel == "slotted" and "slotted kernel" in b.summary()
        for field in (
            "deliveries", "delivered_fraction", "receptions", "events",
            "sim_time", "duplicates_per_node", "structure_complete",
            "per_stream", "relay_spread",
        ):
            assert getattr(a, field) == getattr(b, field), field
        assert b.delivered_fraction == 1.0
        assert b.structure_complete, b.structure_reason


class TestTailProbeRecovery:
    """Lossy links expose §II-F's blind spot: gap recovery needs a later
    seq to arrive, so a lost *final* message orphans its whole subtree
    silently.  The quiescence tail probe (BrisaConfig.tail_probe, on by
    default for lossy runs) closes it."""

    def test_tail_probe_recovers_tail_losses(self):
        from repro.config import BrisaConfig

        blind = run_scale_brisa(
            128, 8, seed=3, loss_percent=10.0,
            config=BrisaConfig(mode="tree", tail_probe=False),
        )
        probed = run_scale_brisa(128, 8, seed=3, loss_percent=10.0)
        # Same seed, same losses: without the probe, orphaned subtrees
        # never learn what they missed; with it, delivery is complete.
        assert blind.dropped_loss > 0
        assert blind.delivered_fraction < 1.0
        assert probed.delivered_fraction == 1.0

    def test_lossless_runs_skip_the_probe(self):
        """No loss -> no probe traffic: the lossless event count is
        byte-identical to what it was before the probe existed."""
        plain = run_scale_brisa(96, 6, seed=6)
        assert plain.delivered_fraction == 1.0
        assert plain.dropped_loss == 0


class TestBrisaSlottedMicrobench:
    def test_differential_measurement_shape(self):
        mb = brisa_slotted_microbench(
            96, 6, messages_lo=2, seed=3, repeats=1
        )
        # Marginal receptions: 4 extra messages to 95 receivers per kernel
        # (parity between kernels is asserted inside the microbench).
        assert mb.receptions == 95 * 4
        assert mb.messages_lo == 2 and mb.messages_hi == 6
        assert mb.object_receptions_per_sec > 0
        assert mb.slotted_receptions_per_sec > 0
        assert mb.speedup == mb.to_dict()["speedup"] > 0
        assert "speedup" in mb.summary()

    def test_rejects_degenerate_window(self):
        with pytest.raises(ValueError):
            brisa_slotted_microbench(64, 5, messages_lo=5)


class TestBootstrapComparison:
    def test_synthesized_beats_simulated_ramp(self):
        comp = bootstrap_comparison(128, seed=3, join_spacing=0.05, settle=15.0)
        assert comp.simulated_events > 0
        assert comp.synthesized_wall > 0
        # The strict 10x gate lives in benchmarks/test_scale_brisa.py at
        # 2k nodes; at this toy size just require a real win.
        assert comp.speedup > 1.0

    def test_serializes(self):
        comp = bootstrap_comparison(64, seed=4, settle=5.0)
        d = comp.to_dict()
        assert d["speedup"] == comp.speedup
        assert "speedup" in comp.summary()
