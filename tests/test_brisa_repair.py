"""Integration tests: dynamism handling — joins, soft/hard repairs,
message recovery (§II-F)."""

import pytest

from repro.config import BrisaConfig, StreamConfig
from repro.core.structure import is_complete_structure, extract_structure
from repro.experiments.common import build_brisa_testbed


def run_stream_with(bed, source, count=30, rate=5.0, payload=256):
    return bed.run_stream(source, StreamConfig(count=count, rate=rate, payload_bytes=payload))


class TestJoins:
    def test_new_node_integrates_into_structure(self):
        bed = build_brisa_testbed(32, seed=31)
        source = bed.choose_source()
        # Start the stream, then add a node mid-stream.
        bed.start_stream(source, StreamConfig(count=60, rate=5.0, payload_bytes=128))
        bed.sim.run(until=bed.sim.now + 3.0)
        joiner = bed.spawn_joiner()
        bed.sim.run(until=bed.sim.now + 20.0)
        state = joiner.streams.get(0)
        assert state is not None
        assert state.delivered, "joiner never received stream data"
        assert state.parents, "joiner never selected a parent"

    def test_joiner_links_start_active_then_get_pruned(self):
        bed = build_brisa_testbed(32, seed=32)
        source = bed.choose_source()
        bed.start_stream(source, StreamConfig(count=80, rate=5.0, payload_bytes=128))
        bed.sim.run(until=bed.sim.now + 3.0)
        joiner = bed.spawn_joiner()
        bed.sim.run(until=bed.sim.now + 25.0)
        state = joiner.streams.get(0)
        # §II-F: inbound links start active, then pruning (the joiner's
        # own Deactivates plus the neighbours' symmetric marking) leaves a
        # single effective provider: count peers that would still relay.
        effective = [
            peer
            for peer, active in state.in_active.items()
            if active
            and joiner.node_id
            not in bed.node(peer).streams[0].out_deactivated
        ]
        assert len(effective) <= 1
        assert state.parents and set(state.parents) <= set(effective)


class TestParentFailure:
    def _orphan_one(self, seed=41, mode="tree", num_parents=1):
        cfg = BrisaConfig(mode=mode, num_parents=num_parents)
        bed = build_brisa_testbed(48, seed=seed, config=cfg)
        source = bed.choose_source()
        bed.start_stream(source, StreamConfig(count=120, rate=5.0, payload_bytes=128))
        bed.sim.run(until=bed.sim.now + 5.0)
        # Pick a node whose parent is not the source and kill the parent.
        victim_parent = None
        child = None
        for node in bed.alive_nodes():
            if node is source:
                continue
            parents = node.parents_of(0)
            if parents and parents[0] != source.node_id:
                child = node
                victim_parent = parents[0]
                break
        assert victim_parent is not None
        bed.network.crash(victim_parent)
        bed.sim.run(until=bed.sim.now + 25.0)
        return bed, source, child, victim_parent

    def test_orphan_recovers_parent(self):
        bed, source, child, dead = self._orphan_one()
        assert child.alive
        state = child.streams[0]
        assert state.parents, "orphan failed to find a replacement parent"
        assert dead not in state.parents

    def test_orphan_event_and_repair_recorded(self):
        bed, source, child, dead = self._orphan_one(seed=42)
        assert any(n == child.node_id for _, n in bed.metrics.parent_losses)
        assert any(n == child.node_id for _, n in bed.metrics.orphan_events)
        repairs = [r for r in bed.metrics.repair_events if r.node == child.node_id]
        assert repairs, "no repair event recorded"
        assert repairs[0].kind in ("soft", "hard")
        assert repairs[0].duration >= 0.0

    def test_structure_complete_after_repair(self):
        bed, source, child, dead = self._orphan_one(seed=43)
        g = extract_structure(bed.alive_nodes(), 0)
        ok, reason = is_complete_structure(g, source.node_id, set(bed.alive_ids()))
        assert ok, reason

    def test_stream_continuity_after_repair(self):
        """All injected messages eventually reach the orphan (§II-F message
        recovery from the new parent's buffer)."""
        bed, source, child, dead = self._orphan_one(seed=44)
        state = child.streams[0]
        injected = {seq for (s, seq) in bed.metrics.injections if s == 0}
        missing = injected - state.delivered
        assert not missing, f"orphan missed messages: {sorted(missing)[:10]}"

    def test_dag_parent_loss_rarely_orphans(self):
        """§III-C: with 2 parents a single failure leaves service intact."""
        cfg = BrisaConfig(mode="dag", num_parents=2)
        bed = build_brisa_testbed(48, seed=45, config=cfg)
        source = bed.choose_source()
        bed.start_stream(source, StreamConfig(count=120, rate=5.0, payload_bytes=128))
        bed.sim.run(until=bed.sim.now + 5.0)
        child = next(
            n for n in bed.alive_nodes()
            if n is not source and len(n.parents_of(0)) == 2
        )
        dead = child.parents_of(0)[0]
        orphans_before = len(bed.metrics.orphan_events)
        bed.network.crash(dead)
        bed.sim.run(until=bed.sim.now + 20.0)
        # The child kept its other parent: it never became an orphan.
        child_orphans = [
            n for _, n in bed.metrics.orphan_events[orphans_before:]
            if n == child.node_id
        ]
        assert not child_orphans
        assert child.parents_of(0), "child lost all parents unexpectedly"


class TestHardRepair:
    def test_hard_repair_when_no_eligible_neighbor(self):
        """Force a hard repair by making every neighbour a descendant:
        use a 3-node chain source -> a -> b where b's only other links go
        through its own subtree (none)."""
        from repro.config import HyParViewConfig

        # Tiny overlay: with 4 nodes and active_size 2 chains are likely;
        # search seeds until we find a node whose only non-parent
        # neighbours are its descendants.
        for seed in range(50, 70):
            hpv = HyParViewConfig(active_size=2, expansion_factor=1.0)
            bed = build_brisa_testbed(8, seed=seed, hpv_config=hpv)
            source = bed.choose_source()
            bed.start_stream(source, StreamConfig(count=100, rate=10.0, payload_bytes=32))
            bed.sim.run(until=bed.sim.now + 4.0)
            for node in bed.alive_nodes():
                if node is source:
                    continue
                state = node.streams.get(0)
                if not state or not state.parents:
                    continue
                parent = next(iter(state.parents))
                if parent == source.node_id:
                    continue
                # Check all other neighbours are descendants (their paths
                # contain this node).
                others = [p for p in node.active if p != parent]
                if not others:
                    continue
                descendants = all(
                    node.node_id in (bed.node(p).streams.get(0).position or ())
                    for p in others
                    if bed.node(p).streams.get(0) is not None
                )
                if descendants and others:
                    bed.network.crash(parent)
                    bed.sim.run(until=bed.sim.now + 30.0)
                    hard = [
                        r for r in bed.metrics.repair_events if r.kind == "hard"
                    ]
                    if hard:
                        assert hard[0].duration >= 0
                        return
        pytest.skip("no hard-repair topology found in seed range (soft repairs sufficed)")

    def test_reactivate_order_wave_converges(self):
        """After any repair storm the structure must re-stabilize into a
        complete, acyclic tree."""
        bed = build_brisa_testbed(48, seed=61)
        source = bed.choose_source()
        bed.start_stream(source, StreamConfig(count=200, rate=10.0, payload_bytes=64))
        bed.sim.run(until=bed.sim.now + 4.0)
        rng = bed.sim.rng("chaos")
        victims = [
            n.node_id for n in rng.sample(
                [x for x in bed.alive_nodes() if x is not source], 8
            )
        ]
        for i, v in enumerate(victims):
            bed.sim.schedule(i * 0.8, bed.network.crash, v)
        bed.sim.run(until=bed.sim.now + 40.0)
        g = extract_structure(bed.alive_nodes(), 0)
        ok, reason = is_complete_structure(g, source.node_id, set(bed.alive_ids()))
        assert ok, reason


class TestRetransmission:
    def test_retransmit_fills_gaps_from_buffer(self):
        """A node disconnected mid-stream recovers the missed interval."""
        cfg = BrisaConfig(buffer_size=256)
        bed = build_brisa_testbed(32, seed=71, config=cfg)
        source = bed.choose_source()
        bed.start_stream(source, StreamConfig(count=150, rate=10.0, payload_bytes=64))
        bed.sim.run(until=bed.sim.now + 4.0)
        child = next(
            n for n in bed.alive_nodes()
            if n is not source and n.parents_of(0) and n.parents_of(0)[0] != source.node_id
        )
        parent = child.parents_of(0)[0]
        bed.network.crash(parent)
        bed.sim.run(until=bed.sim.now + 30.0)
        state = child.streams[0]
        injected = {seq for (s, seq) in bed.metrics.injections if s == 0}
        assert injected <= state.delivered
        assert bed.metrics.msg_counts.get("brisa_retransmit", {})
