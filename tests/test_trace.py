"""Tests for the Listing-1 churn trace DSL."""

import pytest

from repro.errors import TraceParseError
from repro.sim.trace import (
    ConstChurn,
    JoinRamp,
    SetReplacementRatio,
    Stop,
    churn_trace,
    parse_trace,
)

LISTING_1 = """
from 1 s to 512 s join 512
at 1000 s set replacement ratio to 100%
from 1000 s to 1600 s const churn 5% each 60 s
at 1600 s stop
"""


def test_parse_listing_1():
    trace = parse_trace(LISTING_1)
    assert trace.ops == (
        JoinRamp(1.0, 512.0, 512),
        SetReplacementRatio(1000.0, 1.0),
        ConstChurn(1000.0, 1600.0, 5.0, 60.0),
        Stop(1600.0),
    )


def test_trace_properties():
    trace = parse_trace(LISTING_1)
    assert trace.stop_time == 1600.0
    assert trace.end_time == 1600.0
    assert trace.total_joins == 512
    assert len(trace.churn_ops()) == 1


def test_case_and_whitespace_insensitive():
    trace = parse_trace("FROM  1 S TO 10 S   JOIN 4")
    assert trace.ops == (JoinRamp(1.0, 10.0, 4),)


def test_comments_and_blank_lines_ignored():
    trace = parse_trace("\n# setup\nfrom 0 s to 1 s join 2  # inline\n\n")
    assert trace.ops == (JoinRamp(0.0, 1.0, 2),)


def test_fractional_numbers():
    trace = parse_trace("from 0.5 s to 1.5 s const churn 2.5% each 0.25 s")
    op = trace.ops[0]
    assert op == ConstChurn(0.5, 1.5, 2.5, 0.25)


def test_unknown_statement_raises_with_location():
    with pytest.raises(TraceParseError) as exc:
        parse_trace("from 0 s to 1 s join 2\nfrobnicate the overlay")
    assert exc.value.line_no == 2


@pytest.mark.parametrize(
    "bad",
    [
        "from 10 s to 1 s join 5",  # ramp ends before start
        "from 10 s to 1 s const churn 5% each 60 s",  # window reversed
        "from 1 s to 10 s const churn 5% each 0 s",  # zero period
        "from 1 s to 10 s const churn 150% each 60 s",  # >100%
        "at 0 s set replacement ratio to 120%",  # >100%
    ],
)
def test_semantic_validation(bad):
    with pytest.raises(TraceParseError):
        parse_trace(bad)


def test_stop_time_defaults_to_end_time_without_stop():
    trace = parse_trace("from 0 s to 100 s join 10")
    assert trace.stop_time == 100.0


def test_churn_trace_builder_matches_paper_shape():
    trace = churn_trace(128, 3.0)
    assert trace.total_joins == 128
    op = trace.churn_ops()[0]
    assert (op.start, op.end, op.percent, op.period) == (1000.0, 1600.0, 3.0, 60.0)
    assert trace.stop_time == 1600.0


def test_churn_trace_builder_custom_windows():
    trace = churn_trace(64, 5.0, bootstrap_end=32.0, churn_start=50.0, churn_end=110.0, period=10.0)
    op = trace.churn_ops()[0]
    assert (op.start, op.end, op.period) == (50.0, 110.0, 10.0)
    ramp = trace.ops[0]
    assert isinstance(ramp, JoinRamp) and ramp.end == 32.0
