"""Examples smoke: every ``examples/*.py`` must run end to end.

Each example honours the ``REPRO_EXAMPLE_TINY`` env hook (a reduced
population/stream so the whole sweep stays test-suite cheap); this smoke
runs them all as real subprocesses so ``multi_source.py`` and friends
cannot rot silently when the library underneath them moves.
"""

from __future__ import annotations

import os
import pathlib
import subprocess
import sys

import pytest

ROOT = pathlib.Path(__file__).resolve().parent.parent
EXAMPLES = sorted((ROOT / "examples").glob("*.py"))


def test_examples_directory_found():
    assert EXAMPLES, "no examples found — did the directory move?"


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_runs_tiny(path):
    env = dict(os.environ)
    env["REPRO_EXAMPLE_TINY"] = "1"
    env["PYTHONPATH"] = str(ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    proc = subprocess.run(
        [sys.executable, str(path)],
        capture_output=True,
        text=True,
        env=env,
        timeout=300,
        cwd=ROOT,
    )
    assert proc.returncode == 0, (
        f"{path.name} failed\n--- stdout ---\n{proc.stdout}\n"
        f"--- stderr ---\n{proc.stderr}"
    )
    assert proc.stdout.strip(), f"{path.name} printed nothing"
