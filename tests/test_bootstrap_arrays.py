"""Tests for the array-backed overlay construction (DESIGN.md §8).

The property suite pins the contract the 100k rung rests on: the
array-backed synthesizer and the dict-based reference implementation
consume the RNG identically, so for any size and seed they produce the
*same* overlay — same edge set, same degree vector, same passive views —
and that overlay satisfies every settled-HyParView invariant
(bidirectionality, connectivity, degree bounds).
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import HyParViewConfig
from repro.errors import SimulationError
from repro.experiments.bootstrap import (
    CSRTopology,
    assert_valid_overlay,
    synthesize_passive,
    synthesize_passive_arrays,
    synthesize_topology,
    synthesize_topology_arrays,
)
from repro.experiments.common import Testbed as _Testbed, brisa_factory
from repro.sim.rng import derive


def csr_edge_set(topo: CSRTopology) -> set[tuple[int, int]]:
    edges = set()
    for i in range(topo.n):
        for j in topo.neighbors[topo.offsets[i] : topo.offsets[i + 1]]:
            edges.add((i, j) if i < j else (j, i))
    return edges


def csr_connected(topo: CSRTopology) -> bool:
    seen = bytearray(topo.n)
    seen[0] = 1
    frontier = [0]
    offsets, neighbors = topo.offsets, topo.neighbors
    count = 1
    while frontier:
        nxt = []
        for i in frontier:
            for j in neighbors[offsets[i] : offsets[i + 1]]:
                if not seen[j]:
                    seen[j] = 1
                    count += 1
                    nxt.append(j)
        frontier = nxt
    return count == topo.n


# ----------------------------------------------------------------------
# Property: the two synthesizers are draw-for-draw equivalent
# ----------------------------------------------------------------------
class TestSynthesizerEquivalence:
    @settings(max_examples=25, deadline=None)
    @given(
        n=st.integers(min_value=16, max_value=512),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        degree=st.integers(min_value=3, max_value=7),
    )
    def test_same_topology_for_same_seed(self, n, seed, degree):
        max_degree = degree + 1
        adj = synthesize_topology(
            n, degree=degree, max_degree=max_degree, rng=derive(seed, "topo")
        )
        topo = synthesize_topology_arrays(
            n, degree=degree, max_degree=max_degree, rng=derive(seed, "topo")
        )
        assert csr_edge_set(topo) == {
            (a, b) for a in range(n) for b in adj[a] if a < b
        }
        assert list(topo.degrees) == [len(adj[i]) for i in range(n)]
        assert list(topo.offsets) == [
            sum(topo.degrees[:i]) for i in range(n + 1)
        ]

    @settings(max_examples=25, deadline=None)
    @given(
        n=st.integers(min_value=16, max_value=512),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
    )
    def test_invariants_hold_on_csr_overlay(self, n, seed):
        topo = synthesize_topology_arrays(
            n, degree=7, max_degree=8, rng=derive(seed, "topo")
        )
        degrees = list(topo.degrees)
        # Degree bounds: ring minimum to the expanded cap.
        assert min(degrees) >= 2
        assert max(degrees) <= 8
        # Bidirectionality: CSR rows are symmetric.
        edges = csr_edge_set(topo)
        assert 2 * len(edges) == len(topo.neighbors)
        for a, b in edges:
            row_a = topo.neighbors[topo.offsets[a] : topo.offsets[a + 1]]
            row_b = topo.neighbors[topo.offsets[b] : topo.offsets[b + 1]]
            assert b in row_a and a in row_b
        # Connectivity (the Hamiltonian ring guarantee).
        assert csr_connected(topo)

    @settings(max_examples=15, deadline=None)
    @given(
        n=st.integers(min_value=16, max_value=256),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
    )
    def test_same_passive_views_for_same_seed(self, n, seed):
        adj = synthesize_topology(n, degree=5, max_degree=8, rng=derive(seed, "t"))
        topo = synthesize_topology_arrays(n, degree=5, max_degree=8, rng=derive(seed, "t"))
        views = synthesize_passive(n, adj, size=16, rng=derive(seed, "p"))
        offsets, entries = synthesize_passive_arrays(
            n, topo, size=16, rng=derive(seed, "p")
        )
        assert [
            set(entries[offsets[i] : offsets[i + 1]]) for i in range(n)
        ] == views
        # Exclusion rules hold on the flat layout too.
        for i in range(n):
            view = set(entries[offsets[i] : offsets[i + 1]])
            assert i not in view
            assert not view & adj[i]

    def test_rejects_degenerate_input_like_reference(self):
        rng = derive(4, "t")
        with pytest.raises(ValueError):
            synthesize_topology_arrays(2, degree=2, max_degree=4, rng=rng)
        with pytest.raises(ValueError):
            synthesize_topology_arrays(10, degree=1, max_degree=4, rng=rng)
        with pytest.raises(ValueError):
            synthesize_topology_arrays(10, degree=6, max_degree=4, rng=rng)


# ----------------------------------------------------------------------
# Bulk wiring: register_links_csr, install_overlay fast path, spawn_many
# ----------------------------------------------------------------------
class TestBulkWiring:
    def test_populate_synthesized_registers_every_link(self):
        bed = _Testbed(seed=41)
        bed.populate(64, brisa_factory(), bootstrap="synthesized", validate=True)
        for node in bed.nodes:
            for peer in node.active:
                assert bed.network.linked(node.node_id, peer)

    def test_register_links_csr_matches_per_edge_registration(self):
        from repro.sim.engine import Simulator
        from repro.sim.network import Network

        topo = synthesize_topology_arrays(50, degree=5, max_degree=8, rng=derive(9, "t"))
        ids = list(range(100, 150))
        net_a = Network(Simulator(seed=1))
        count = net_a.register_links_csr(ids, topo.offsets, topo.neighbors)
        net_b = Network(Simulator(seed=1))
        for a, b in csr_edge_set(topo):
            net_b.register_link(ids[a], ids[b])
        assert net_a.links == net_b.links
        assert count == len(csr_edge_set(topo))

    def test_register_links_csr_rejects_self_links(self):
        from array import array

        from repro.sim.engine import Simulator
        from repro.sim.network import Network

        net = Network(Simulator(seed=1))
        with pytest.raises(SimulationError, match="itself"):
            net.register_links_csr(
                [5, 6], array("q", [0, 1, 2]), array("i", [0, 1])
            )

    def test_register_links_csr_rejects_asymmetry_before_mutating(self):
        from array import array

        from repro.sim.engine import Simulator
        from repro.sim.network import Network

        net = Network(Simulator(seed=1))
        # Even edge count, but (0,1) and (2,3) have no reverse entries.
        with pytest.raises(SimulationError, match="symmetric"):
            net.register_links_csr(
                [5, 6, 7, 8],
                array("q", [0, 1, 1, 2, 2]),
                array("i", [1, 3]),
            )
        # Validation happens before any mutation: no half-registered links.
        assert net.links == {}

    def test_install_overlay_bulk_path_filters_self_and_overlap(self):
        bed = _Testbed(seed=42)
        node = bed.network.spawn(brisa_factory())
        peer = bed.network.spawn(brisa_factory())
        other = bed.network.spawn(brisa_factory())
        node.install_overlay(
            [peer.node_id, node.node_id],  # self entry must be dropped
            [peer.node_id, other.node_id, node.node_id],  # active/self excluded
        )
        assert list(node.active) == [peer.node_id]
        assert node.passive == {other.node_id}
        assert bed.network.linked(node.node_id, peer.node_id)
        # §II-C hook fired for the installed neighbour.
        assert node.stream_state(0).in_active == {peer.node_id: True}

    def test_spawn_many_matches_sequential_spawns(self):
        bed_a, bed_b = _Testbed(seed=43), _Testbed(seed=43)
        many = bed_a.network.spawn_many(brisa_factory(), 5)
        each = [bed_b.network.spawn(brisa_factory()) for _ in range(5)]
        assert [n.node_id for n in many] == [n.node_id for n in each]
        assert bed_a.network._next_id == bed_b.network._next_id

    def test_defer_timers_schedules_no_shuffles(self):
        bed = _Testbed(seed=44)
        bed.populate(
            32, brisa_factory(), bootstrap="synthesized", defer_timers=True
        )
        assert bed.sim.pending == 0
        assert all(not n._shuffle_task.running for n in bed.nodes)
        # start_timers() arms them on demand (idempotently).
        bed.start_timers()
        assert all(n._shuffle_task.running for n in bed.nodes)
        assert bed.sim.pending == len(bed.nodes)
        bed.start_timers()
        assert bed.sim.pending == len(bed.nodes)

    def test_defer_timers_rejected_on_simulated_ramp(self):
        bed = _Testbed(seed=45)
        with pytest.raises(ValueError, match="defer_timers"):
            bed.populate(8, brisa_factory(), defer_timers=True)

    def test_deferred_overlay_still_disseminates(self):
        from repro.config import StreamConfig

        bed = _Testbed(seed=46)
        bed.populate(
            64, brisa_factory(), bootstrap="synthesized", defer_timers=True,
            validate=True,
        )
        result = bed.run_stream(bed.nodes[0], StreamConfig(count=10, rate=10.0))
        assert result.delivered_fraction() == 1.0
        ok, reason = result.structure_ok()
        assert ok, reason

    def test_lazy_rng_not_materialized_by_deferred_spawn(self):
        bed = _Testbed(seed=47)
        bed.populate(
            16, brisa_factory(), bootstrap="synthesized", defer_timers=True
        )
        assert all("_rng" not in vars(n) for n in bed.nodes)
        # First use derives the same stream eager construction would have.
        expected = bed.sim.rng("node", bed.nodes[0].node_id, "BrisaNode").random()
        assert bed.nodes[0]._rng.random() == expected

    def test_synthesized_overlay_passes_settled_invariants(self):
        hpv = HyParViewConfig()
        bed = _Testbed(seed=48)
        bed.populate(128, brisa_factory(), bootstrap="synthesized")
        audit = assert_valid_overlay(bed.nodes, hpv)
        assert audit.connected and audit.bidirectional
