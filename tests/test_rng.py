"""Tests for deterministic seed derivation."""

from repro.sim.rng import derive, derive_seed


def test_same_labels_same_stream():
    assert derive(1, "a", 2).random() == derive(1, "a", 2).random()


def test_different_labels_differ():
    seeds = {derive_seed(1, label) for label in ["a", "b", "c", 1, 2, (1, 2)]}
    assert len(seeds) == 6


def test_different_roots_differ():
    assert derive_seed(1, "x") != derive_seed(2, "x")


def test_label_order_matters():
    assert derive_seed(1, "a", "b") != derive_seed(1, "b", "a")


def test_no_concatenation_collisions():
    # ("ab",) must differ from ("a", "b") — the separator prevents it.
    assert derive_seed(1, "ab") != derive_seed(1, "a", "b")


def test_seed_is_64_bit():
    s = derive_seed(123, "component")
    assert 0 <= s < 2**64
