"""Tests for the SimpleTree baseline (§III-D)."""

import networkx as nx
import pytest

from repro.config import SimpleTreeConfig, StreamConfig
from repro.experiments.common import build_simpletree_testbed


def tree_graph(bed, coordinator):
    g = nx.DiGraph()
    for node in bed.alive_nodes():
        g.add_node(node.node_id)
        if node.parent is not None:
            g.add_edge(node.parent, node.node_id)
    return g


class TestConstruction:
    def test_every_node_gets_parent_that_joined_earlier(self):
        bed, coord = build_simpletree_testbed(32, seed=3)
        join_order = {nid: i for i, nid in enumerate(coord.members)}
        for node in bed.alive_nodes():
            if node.parent is not None:
                assert join_order[node.parent] < join_order[node.node_id]

    def test_structure_is_a_tree(self):
        bed, coord = build_simpletree_testbed(32, seed=4)
        g = tree_graph(bed, coord)
        root = coord.members[0]
        assert nx.is_directed_acyclic_graph(g)
        reachable = set(nx.descendants(g, root)) | {root}
        assert reachable == set(g.nodes)

    def test_children_lists_match_parents(self):
        bed, coord = build_simpletree_testbed(24, seed=5)
        by_id = {n.node_id: n for n in bed.alive_nodes()}
        for node in bed.alive_nodes():
            if node.parent is not None:
                assert node.node_id in by_id[node.parent].children

    def test_max_children_respected(self):
        cfg = SimpleTreeConfig(max_children=2)
        bed, coord = build_simpletree_testbed(40, seed=6, tree_config=cfg)
        for node in bed.alive_nodes():
            assert len(node.children) <= 2

    def test_single_join_message_per_node(self):
        """§III-D: 'only a single communication step with the centralized
        node is needed' — join traffic is one round trip per node."""
        bed, coord = build_simpletree_testbed(32, seed=7)
        joins = sum(bed.metrics.msg_counts["st_join"].values())
        assert joins == 32


class TestDissemination:
    def test_root_source_reaches_all(self):
        bed, coord = build_simpletree_testbed(32, seed=8)
        root = bed.node(coord.members[0])
        result = bed.run_stream(root, StreamConfig(count=20, rate=5.0, payload_bytes=128))
        assert result.delivered_fraction() == 1.0

    def test_non_root_source_reaches_all(self):
        """The paper picks random sources; pushes travel both down the
        children links and up to the parent."""
        bed, coord = build_simpletree_testbed(32, seed=9)
        source = bed.choose_source()
        result = bed.run_stream(source, StreamConfig(count=20, rate=5.0, payload_bytes=128))
        assert result.delivered_fraction() == 1.0

    def test_zero_duplicates(self):
        """A tree delivers exactly one copy per node per message."""
        bed, coord = build_simpletree_testbed(32, seed=10)
        source = bed.choose_source()
        result = bed.run_stream(source, StreamConfig(count=20, rate=5.0, payload_bytes=128))
        assert sum(result.duplicates_per_node()) == 0

    def test_latency_is_near_ideal(self):
        """Table II: SimpleTree's dissemination span ~= injection span."""
        bed, coord = build_simpletree_testbed(32, seed=11)
        source = bed.choose_source()
        stream = StreamConfig(count=50, rate=10.0, payload_bytes=128)
        result = bed.run_stream(source, stream)
        spans = []
        for node in bed.alive_nodes():
            if node is source:
                continue
            times = [
                bed.metrics.deliveries[(0, seq)][node.node_id].time
                for seq in range(stream.count)
            ]
            spans.append(max(times) - min(times))
        mean_span = sum(spans) / len(spans)
        assert mean_span == pytest.approx(stream.duration, rel=0.05)
