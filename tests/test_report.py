"""Tests for the ASCII report rendering."""

from repro.experiments.report import (
    ascii_cdf,
    banner,
    cdf_rows,
    comparison_rows,
    percentile_rows,
    table,
)
from repro.metrics.stats import cdf_of


def test_table_alignment_and_content():
    out = table(["a", "bb"], [[1, 2.5], ["x", 0.001]])
    lines = out.splitlines()
    assert len(lines) == 4
    assert "a" in lines[0] and "bb" in lines[0]
    assert "2.50" in out and "0.0010" in out


def test_cdf_rows_with_data_and_empty():
    out = cdf_rows({"full": cdf_of([1, 2, 3]), "none": cdf_of([])})
    assert "full" in out and "none" in out
    assert "median" in out


def test_percentile_rows():
    out = percentile_rows({"cfg": {5: 1.0, 50: 2.0, 90: 3.0}}, unit="KB/s")
    assert "p50 (KB/s)" in out
    assert "cfg" in out


def test_comparison_rows_ratio():
    out = comparison_rows({"x": 2.0}, {"x": 1.0}, label="proto", unit="s")
    assert "2.00" in out and "1.00" in out
    assert "ratio" in out


def test_comparison_rows_missing_paper_value():
    out = comparison_rows({"y": 2.0}, {}, label="proto")
    assert "-" in out


def test_banner():
    out = banner("Fig. 2")
    assert "Fig. 2" in out and out.count("=") >= 120


def test_ascii_cdf_plot():
    out = ascii_cdf(cdf_of([1, 2, 3, 4, 5]), width=20, height=4, label="demo")
    assert "demo" in out
    assert "#" in out
    assert "100%" in out


def test_ascii_cdf_empty():
    assert "(empty)" in ascii_cdf(cdf_of([]), label="e")
