"""Tests for the retransmission buffer (§II-F)."""

import pytest

from repro.core.recovery import MessageBuffer


def test_store_and_lookup():
    buf = MessageBuffer(capacity=4)
    buf.store(1, 100)
    assert 1 in buf
    assert buf.get(1) == 100
    assert len(buf) == 1


def test_capacity_evicts_oldest_insertion():
    buf = MessageBuffer(capacity=3)
    for seq in range(5):
        buf.store(seq, seq * 10)
    assert 0 not in buf and 1 not in buf
    assert all(s in buf for s in (2, 3, 4))


def test_after_returns_sorted_gap_fill():
    buf = MessageBuffer(capacity=10)
    for seq in (5, 3, 9, 7):
        buf.store(seq, seq)
    assert list(buf.after(4)) == [(5, 5), (7, 7), (9, 9)]
    assert list(buf.after(9)) == []


def test_latest():
    buf = MessageBuffer(capacity=4)
    assert buf.latest is None
    buf.store(2, 1)
    buf.store(7, 1)
    assert buf.latest == 7


def test_duplicate_store_keeps_single_entry():
    buf = MessageBuffer(capacity=2)
    buf.store(1, 10)
    buf.store(1, 10)
    assert len(buf) == 1


def test_duplicate_store_refreshes_recency():
    buf = MessageBuffer(capacity=2)
    buf.store(1, 10)
    buf.store(2, 20)
    buf.store(1, 10)  # refresh: now 2 is the oldest
    buf.store(3, 30)  # evicts 2
    assert 1 in buf and 3 in buf and 2 not in buf


def test_zero_capacity_buffers_nothing():
    buf = MessageBuffer(capacity=0)
    buf.store(1, 10)
    assert len(buf) == 0
    assert list(buf.after(0)) == []


def test_negative_capacity_rejected():
    with pytest.raises(ValueError):
        MessageBuffer(capacity=-1)


def test_clear():
    buf = MessageBuffer(capacity=4)
    buf.store(1, 1)
    buf.clear()
    assert len(buf) == 0
