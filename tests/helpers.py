"""Shared test helpers: tiny recording nodes and network builders."""

from __future__ import annotations

from repro.sim.engine import Simulator
from repro.sim.latency import ConstantLatency
from repro.sim.message import Message
from repro.sim.monitor import Metrics
from repro.sim.network import Network
from repro.sim.node import ProtocolNode


class Ping(Message):
    kind = "ping"
    __slots__ = ("payload",)

    def __init__(self, payload: int = 0) -> None:
        self.payload = payload

    def body_bytes(self) -> int:
        return 8


class RecorderNode(ProtocolNode):
    """Records every message and link-failure notification it receives."""

    def __init__(self, network, node_id) -> None:
        super().__init__(network, node_id)
        self.received: list[tuple[float, int, Message]] = []
        self.link_failures: list[tuple[float, int]] = []

    def on_ping(self, src, msg) -> None:
        self.received.append((self.sim.now, src, msg))

    def on_link_failed(self, peer) -> None:
        self.link_failures.append((self.sim.now, peer))


def make_network(
    n: int = 0,
    *,
    seed: int = 42,
    delay: float = 0.001,
    node_cls=RecorderNode,
    record_deliveries: bool = True,
):
    """Build a simulator + network with ``n`` recorder nodes."""
    sim = Simulator(seed=seed)
    net = Network(
        sim,
        ConstantLatency(delay),
        Metrics(record_deliveries=record_deliveries),
    )
    nodes = [net.spawn(node_cls) for _ in range(n)]
    return sim, net, nodes
