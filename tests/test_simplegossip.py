"""Tests for the SimpleGossip baseline (§III-D)."""

import pytest

from repro.config import GossipConfig, StreamConfig
from repro.experiments.common import build_gossip_testbed


def gossip_run(n=48, msgs=20, seed=3, fanout=0, drain=20.0):
    cfg = GossipConfig(fanout=fanout)
    bed = build_gossip_testbed(n, seed=seed, gossip_config=cfg)
    source = bed.choose_source()
    result = bed.run_stream(
        source,
        StreamConfig(count=msgs, rate=5.0, payload_bytes=128),
        drain=drain,
    )
    return bed, source, result


class TestCompleteness:
    def test_push_plus_anti_entropy_reaches_everyone(self):
        bed, source, result = gossip_run()
        assert result.delivered_fraction() == 1.0

    def test_low_fanout_still_complete_thanks_to_anti_entropy(self):
        """With fanout 2 the push phase misses many nodes; the pull phase
        must fill the gaps (the Demers completeness argument)."""
        bed, source, result = gossip_run(fanout=2, drain=40.0)
        assert result.delivered_fraction() == 1.0


class TestDuplicates:
    def test_gossip_generates_many_duplicates(self):
        """§I: 'The cost is increased bandwidth and processor usage due to
        duplicates' — fanout ln(N) pushes several copies to every node."""
        bed, source, result = gossip_run()
        dups = result.duplicates_per_node()
        assert sum(dups) / len(dups) > 20  # >1 duplicate per message

    def test_anti_entropy_repairs_are_not_repushed(self):
        """Infect-and-die: cold (anti-entropy) rumors must not re-trigger
        fanout pushes, otherwise old messages circulate forever."""
        bed, source, result = gossip_run(n=24, msgs=10, seed=4, drain=30.0)
        # After the drain, no rumor traffic should remain in flight: the
        # pending event queue contains only periodic timers.
        sends_a = sum(bed.metrics.msg_counts["sg_rumor"].values())
        bed.sim.run(until=bed.sim.now + 10.0)
        sends_b = sum(bed.metrics.msg_counts["sg_rumor"].values())
        assert sends_b == sends_a


class TestStoreConsistency:
    def test_store_matches_recorded_deliveries(self):
        bed, source, result = gossip_run(n=24, msgs=10, seed=5)
        for node in bed.alive_nodes():
            if node is source:
                continue
            assert node.delivered_count(0) == 10

    def test_high_water_mark_tracks_contiguous_prefix(self):
        bed, source, result = gossip_run(n=24, msgs=10, seed=6)
        for node in bed.alive_nodes():
            per = node.store.get(0, {})
            hwm = node.max_contig.get(0, -1)
            assert all(s in per for s in range(hwm + 1))


class TestDigestAccounting:
    def test_digest_traffic_present_and_bounded(self):
        bed, source, result = gossip_run(n=24, msgs=10, seed=7)
        digests = sum(bed.metrics.msg_counts["sg_digest"].values())
        assert digests > 0
        # Anti-entropy runs at 10 Hz per node: digest count is bounded by
        # nodes * rate * runtime (plus joins), not quadratic.
        runtime = bed.sim.now
        assert digests <= 24 * (runtime / 0.1) * 1.2
