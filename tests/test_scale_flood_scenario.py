"""Tests for the large-scale flood scenario (small populations here;
the 2k/10k runs live in benchmarks/test_scale_flood.py)."""

import pytest

from repro.experiments.scale import SCALES, get_scale
from repro.experiments.scale_flood import (
    build_static_flood_overlay,
    engine_microbench,
    run_scale_flood,
)


class TestStaticOverlay:
    def test_views_are_symmetric_and_linked(self):
        sim, net, nodes = build_static_flood_overlay(64, degree=5, seed=2)
        for node in nodes:
            assert node.degree >= 2  # ring minimum
            for peer in node.active:
                assert node.node_id in nodes[peer].active
                assert net.linked(node.node_id, peer)

    def test_overlay_is_connected(self):
        sim, net, nodes = build_static_flood_overlay(97, degree=4, seed=3)
        seen = {0}
        frontier = [0]
        while frontier:
            nxt = []
            for nid in frontier:
                for peer in nodes[nid].active:
                    if peer not in seen:
                        seen.add(peer)
                        nxt.append(peer)
            frontier = nxt
        assert len(seen) == 97

    def test_average_degree_close_to_target(self):
        _, _, nodes = build_static_flood_overlay(200, degree=6, seed=4)
        avg = sum(n.degree for n in nodes) / len(nodes)
        assert 5.0 <= avg <= 6.5

    def test_shuffle_timers_stopped_by_default(self):
        _, _, nodes = build_static_flood_overlay(8, seed=5)
        assert all(not n._shuffle_task.running for n in nodes)
        _, _, nodes = build_static_flood_overlay(8, seed=5, shuffles=True)
        assert all(n._shuffle_task.running for n in nodes)

    def test_too_small_population_rejected(self):
        with pytest.raises(ValueError):
            build_static_flood_overlay(2)
        with pytest.raises(ValueError):
            build_static_flood_overlay(16, degree=1)


class TestRunScaleFlood:
    def test_full_delivery_on_small_population(self):
        result = run_scale_flood(64, 5, seed=6)
        assert result.delivered_fraction == 1.0
        assert result.deliveries == 63 * 5
        assert result.events > 0
        assert result.events_per_sec > 0
        assert result.peak_pending > 0
        assert result.wall_time > 0
        assert result.kernel == "object"
        assert result.receptions > result.deliveries  # flooding duplicates
        assert result.survivors == 63

    def test_slotted_kernel_full_delivery(self):
        result = run_scale_flood(64, 5, seed=6, kernel="slotted")
        assert result.kernel == "slotted"
        assert result.delivered_fraction == 1.0
        assert result.deliveries == 63 * 5
        # Same simulation as the object kernel, draw for draw.
        reference = run_scale_flood(64, 5, seed=6)
        assert result.receptions == reference.receptions
        assert result.events == reference.events
        assert result.sim_time == reference.sim_time

    def test_result_serializes_for_bench_json(self):
        result = run_scale_flood(32, 3, seed=7)
        d = result.to_dict()
        for key in (
            "nodes", "messages", "events_per_sec", "deliveries_per_sec",
            "delivered_fraction", "peak_pending", "handle_pool_size",
        ):
            assert key in d
        assert d["nodes"] == 32
        # Human summary mentions the headline numbers.
        assert "delivered: 100.00%" in result.summary()

    def test_deterministic_for_fixed_seed(self):
        a = run_scale_flood(48, 4, seed=8)
        b = run_scale_flood(48, 4, seed=8)
        assert a.events == b.events
        assert a.deliveries == b.deliveries
        assert a.sim_time == b.sim_time


class TestEngineMicrobench:
    def test_reports_positive_rates(self):
        mb = engine_microbench(rounds=300, fanout=4, nodes=64, repeats=1)
        assert mb.legacy_deliveries_per_sec > 0
        assert mb.fast_deliveries_per_sec > 0
        assert mb.speedup > 0
        d = mb.to_dict()
        assert d["speedup"] == mb.speedup
        assert "speedup" in mb.summary()


class TestNewScales:
    def test_large_and_xl_registered(self):
        assert get_scale("large").cluster_nodes == 2048
        assert get_scale("xl").cluster_nodes == 10_000
        assert set(SCALES) >= {"tiny", "fast", "paper", "large", "xl"}
