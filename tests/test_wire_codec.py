"""Wire-codec properties (DESIGN.md §13).

Every message class registered in :mod:`repro.runtime.wire` must
round-trip encode -> decode to an identical message — same type, same
wire fields (Bloom ancestor filters included: arbitrary-precision ints
up to 1024 bits), same byte accounting.  The strategies below are
coverage-checked against the registry so a new message class cannot
land without a round-trip property.

Malformed frames are the other half of the contract: truncation, junk,
oversize declarations, unknown kinds and field mismatches must all
raise :class:`WireCodecError` — a datagram transport drops such packets
instead of half-building messages from them.
"""

import json
import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import messages as cm
from repro.membership import messages as mm
from repro.runtime.wire import (
    MAX_FRAME_BYTES,
    REGISTRY,
    WireCodecError,
    decode_frame,
    decode_message,
    encode_frame,
    encode_message,
    wire_fields,
)

node_ids = st.integers(min_value=0, max_value=2**31 - 1)
streams = st.integers(min_value=0, max_value=2**15 - 1)
seqs = st.integers(min_value=0, max_value=2**31 - 1)
#: Python floats round-trip exactly through JSON's repr-based encoding;
#: only NaN/Inf are excluded (not strict JSON).
times = st.floats(allow_nan=False, allow_infinity=False)
#: Up to the full 1024-bit Bloom filter of the §II-D comparison baseline.
blooms = st.integers(min_value=0, max_value=2**1024 - 1)
bloom_bits = st.integers(min_value=0, max_value=1024)
paths = st.tuples() | st.lists(node_ids, max_size=8).map(tuple)
hpv_entries = st.lists(node_ids, max_size=8).map(tuple)
aged_entries = st.lists(
    st.tuples(node_ids, st.integers(min_value=0, max_value=255)), max_size=8
).map(tuple)

#: One strategy per registered message class (coverage-checked below).
MESSAGE_STRATEGIES: dict[type, st.SearchStrategy] = {
    cm.Data: st.builds(
        cm.Data,
        stream=streams,
        seq=seqs,
        payload_bytes=st.integers(min_value=0, max_value=1 << 20),
        path=st.none() | paths,
        depth=st.none() | st.integers(min_value=0, max_value=2**16),
        bloom=st.none() | blooms,
        bloom_bits=bloom_bits,
        hops=st.integers(min_value=0, max_value=64),
        path_delay=times,
        sent_at=times,
        recovered=st.booleans(),
    ),
    cm.Deactivate: st.builds(cm.Deactivate, stream=streams),
    cm.Activate: st.builds(cm.Activate, stream=streams, adopt=st.booleans()),
    cm.ActivateAck: st.builds(
        cm.ActivateAck,
        stream=streams,
        path=st.none() | paths,
        depth=st.none() | st.integers(min_value=0, max_value=2**16),
        bloom=st.none() | blooms,
        bloom_bits=bloom_bits,
    ),
    cm.ReactivateOrder: st.builds(cm.ReactivateOrder, stream=streams),
    cm.DepthUpdate: st.builds(
        cm.DepthUpdate, stream=streams, depth=st.integers(min_value=0, max_value=2**16)
    ),
    cm.BloomUpdate: st.builds(
        cm.BloomUpdate, stream=streams, bloom=blooms, bloom_bits=bloom_bits
    ),
    cm.RetransmitRequest: st.builds(
        cm.RetransmitRequest, stream=streams, have_up_to=seqs
    ),
    mm.Join: st.builds(mm.Join),
    mm.ForwardJoin: st.builds(
        mm.ForwardJoin, joiner=node_ids, ttl=st.integers(min_value=0, max_value=16)
    ),
    mm.Neighbor: st.builds(mm.Neighbor, priority=st.booleans()),
    mm.NeighborAccept: st.builds(mm.NeighborAccept),
    mm.NeighborReject: st.builds(mm.NeighborReject),
    mm.Disconnect: st.builds(mm.Disconnect),
    mm.Shuffle: st.builds(
        mm.Shuffle,
        origin=node_ids,
        entries=hpv_entries,
        ttl=st.integers(min_value=0, max_value=16),
    ),
    mm.ShuffleReply: st.builds(mm.ShuffleReply, entries=hpv_entries),
    mm.CyclonShuffle: st.builds(mm.CyclonShuffle, entries=aged_entries),
    mm.CyclonShuffleReply: st.builds(mm.CyclonShuffleReply, entries=aged_entries),
    mm.CyclonJoin: st.builds(mm.CyclonJoin),
    mm.CyclonJoinReply: st.builds(mm.CyclonJoinReply, entries=aged_entries),
}


def test_strategies_cover_registry():
    """A message class added to either module lands in the registry at
    import time; this pins that it also gets a round-trip strategy."""
    assert {cls for cls, _ in REGISTRY.values()} == set(MESSAGE_STRATEGIES)


def assert_identical(original, decoded):
    assert type(decoded) is type(original)
    for name in wire_fields(type(original)):
        assert getattr(decoded, name) == getattr(original, name), name
    assert decoded.size_bytes() == original.size_bytes()


@settings(max_examples=50)
@given(data=st.data())
@pytest.mark.parametrize("cls", sorted(MESSAGE_STRATEGIES, key=lambda c: c.kind))
def test_roundtrip_identity(cls, data):
    msg = data.draw(MESSAGE_STRATEGIES[cls])
    assert_identical(msg, decode_message(encode_message(msg)))
    decoded, end = decode_frame(encode_frame(msg))
    assert_identical(msg, decoded)
    assert end == len(encode_frame(msg))


@settings(max_examples=50)
@given(data=st.data())
def test_roundtrip_back_to_back_frames(data):
    """Frames are self-delimiting: a concatenation decodes message by
    message with no separator."""
    strategies = list(MESSAGE_STRATEGIES.values())
    msgs = data.draw(st.lists(st.sampled_from(strategies).flatmap(lambda s: s),
                              min_size=1, max_size=4))
    blob = b"".join(encode_frame(m) for m in msgs)
    offset = 0
    for original in msgs:
        decoded, offset = decode_frame(blob, offset)
        assert_identical(original, decoded)
    assert offset == len(blob)


@settings(max_examples=50)
@given(data=st.data())
def test_truncated_frames_rejected(data):
    """Any strict prefix of a frame is rejected, never mis-decoded."""
    msg = data.draw(MESSAGE_STRATEGIES[cm.Data])
    frame = encode_frame(msg)
    cut = data.draw(st.integers(min_value=0, max_value=len(frame) - 1))
    with pytest.raises(WireCodecError):
        decode_frame(frame[:cut])


def test_unknown_kind_rejected():
    payload = json.dumps({"k": "no_such_kind", "f": {}}).encode()
    with pytest.raises(WireCodecError, match="unknown message kind"):
        decode_message(payload)


def test_junk_payload_rejected():
    with pytest.raises(WireCodecError):
        decode_message(b"\xff\xfe not json")
    with pytest.raises(WireCodecError):
        decode_message(b"[1, 2, 3]")  # JSON, wrong shape


def test_field_mismatch_rejected():
    """Missing and extra fields both fail: the decoder rebuilds via
    ``__slots__`` and a partial object must never escape."""
    good = json.loads(encode_message(cm.Deactivate(3)))
    missing = dict(good, f={})
    with pytest.raises(WireCodecError, match="field mismatch"):
        decode_message(json.dumps(missing).encode())
    extra = dict(good, f=dict(good["f"], bogus=1))
    with pytest.raises(WireCodecError, match="field mismatch"):
        decode_message(json.dumps(extra).encode())


def test_oversize_declaration_rejected():
    """A hostile length prefix must not trigger a giant allocation."""
    header = struct.pack("!I", MAX_FRAME_BYTES + 1)
    with pytest.raises(WireCodecError, match="exceeds cap"):
        decode_frame(header + b"x")


def test_oversize_frame_rejected_on_encode():
    big = cm.Data(0, 0, 0, path=tuple(range(400_000)))
    with pytest.raises(WireCodecError, match="too large"):
        encode_frame(big)
