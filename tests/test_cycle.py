"""Tests for the cycle predictors (§II-D, §II-G)."""

import pytest

from repro.config import BrisaConfig
from repro.core.cycle import (
    PARENT_CYCLE,
    PARENT_DEMOTE,
    PARENT_OK,
    BloomFilterPredictor,
    DepthLabelPredictor,
    PathEmbeddingPredictor,
    extract_meta,
    make_predictor,
)
from repro.core.messages import Data


class TestPathEmbedding:
    def setup_method(self):
        self.p = PathEmbeddingPredictor()

    def test_source_position_is_own_path(self):
        assert self.p.source_position(7) == (7,)

    def test_adopt_appends_self(self):
        assert self.p.adopt(3, (0, 1, 2)) == (0, 1, 2, 3)

    def test_candidate_containing_self_ineligible(self):
        # Fig. 4: grey nodes (paths through N) are not eligible parents of N.
        assert not self.p.eligible(5, (9, 5), (1, 5, 2))
        assert self.p.eligible(5, (9, 5), (1, 2, 3))

    def test_none_meta_ineligible(self):
        assert not self.p.eligible(5, None, None)

    def test_fresh_position_still_checks_path(self):
        # Hard-repaired node (position None): eligible unless in the path.
        assert self.p.eligible(5, None, (1, 2))
        assert not self.p.eligible(5, None, (1, 5))

    def test_check_parent_detects_cycle(self):
        assert self.p.check_parent(5, (0, 5), (0, 3, 5)) == PARENT_CYCLE
        assert self.p.check_parent(5, (0, 5), (0, 3)) == PARENT_OK

    def test_exactness_no_false_negatives(self):
        # Any candidate whose path avoids the node is accepted.
        for path in [(0,), (1, 2, 3), tuple(range(100))]:
            assert self.p.eligible(1000, (0, 1000), path)

    def test_message_fields(self):
        assert self.p.message_fields((0, 1)) == {"path": (0, 1)}


class TestDepthLabels:
    def setup_method(self):
        self.p = DepthLabelPredictor()

    def test_source_depth_zero(self):
        assert self.p.source_position(7) == 0

    def test_adopt_increments(self):
        assert self.p.adopt(3, 4) == 5

    def test_depth_not_greater_than_own_required(self):
        # §II-G: parents may sit at "any depth not greater than i"; an
        # equal-depth adoption demotes the adopter to i+1 afterwards.
        assert self.p.eligible(1, position=3, meta=2)
        assert self.p.eligible(1, position=3, meta=3)
        assert not self.p.eligible(1, position=3, meta=4)

    def test_fresh_node_accepts_anyone(self):
        assert self.p.eligible(1, position=None, meta=17)

    def test_false_negative_possible(self):
        # Fig. 5: a causally-unrelated node that happens to carry a deeper
        # label is rejected — the price of the approximate predictor.
        assert not self.p.eligible(1, position=2, meta=3)

    def test_check_parent_demotes_on_equal_or_deeper(self):
        assert self.p.check_parent(1, position=3, meta=3) == PARENT_DEMOTE
        assert self.p.check_parent(1, position=3, meta=5) == PARENT_DEMOTE
        assert self.p.check_parent(1, position=3, meta=2) == PARENT_OK

    def test_message_fields(self):
        assert self.p.message_fields(4) == {"depth": 4}


class TestBloomFilter:
    def setup_method(self):
        self.p = BloomFilterPredictor(bits=256, hashes=4)

    def test_source_contains_self(self):
        pos = self.p.source_position(9)
        assert self.p.contains(pos, 9)

    def test_adopt_adds_self_to_ancestors(self):
        pos = self.p.source_position(0)
        child = self.p.adopt(1, pos)
        assert self.p.contains(child, 0)
        assert self.p.contains(child, 1)

    def test_descendant_filter_blocks_ancestor(self):
        pos = self.p.source_position(0)
        for nid in range(1, 6):
            pos = self.p.adopt(nid, pos)
        # Node 3 is an ancestor in this chain: ineligible as parent target.
        assert not self.p.eligible(3, None, pos)

    def test_unrelated_candidate_usually_eligible(self):
        pos = self.p.adopt(1, self.p.source_position(0))
        eligible = sum(1 for nid in range(100, 200) if self.p.eligible(nid, None, pos))
        # A few false positives are possible, but the vast majority pass.
        assert eligible >= 95

    def test_small_filter_has_false_positives(self):
        tiny = BloomFilterPredictor(bits=8, hashes=4)
        pos = tiny.source_position(0)
        for nid in range(1, 10):
            pos = tiny.adopt(nid, pos)
        rejected = sum(1 for nid in range(100, 300) if not tiny.eligible(nid, None, pos))
        assert rejected > 50  # saturated filter rejects aggressively

    def test_check_parent_cycle(self):
        pos = self.p.adopt(2, self.p.source_position(0))
        assert self.p.check_parent(2, None, pos) == PARENT_CYCLE

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            BloomFilterPredictor(bits=0)


class TestFactoryAndMeta:
    def test_make_predictor_dispatch(self):
        assert make_predictor(BrisaConfig()).name == "path"
        assert make_predictor(BrisaConfig(mode="dag", num_parents=2)).name == "depth"
        cfg = BrisaConfig(cycle_predictor="bloom", bloom_bits=128, bloom_hashes=2)
        pred = make_predictor(cfg)
        assert pred.name == "bloom" and pred.bits == 128

    def test_extract_meta_prefers_path(self):
        msg = Data(0, 1, 10, path=(1, 2))
        assert extract_meta(msg) == (1, 2)

    def test_extract_meta_depth_and_bloom(self):
        assert extract_meta(Data(0, 1, 10, depth=3)) == 3
        assert extract_meta(Data(0, 1, 10, bloom=0b101, bloom_bits=8)) == 0b101

    def test_metadata_size_accounting(self):
        # §II-D: path costs 6 B/hop; depth 4 B; bloom bits/8.
        base = Data(0, 1, 0).size_bytes()
        assert Data(0, 1, 0, path=(1, 2, 3)).size_bytes() == base + 18
        assert Data(0, 1, 0, depth=5).size_bytes() == base + 4
        assert Data(0, 1, 0, bloom=1, bloom_bits=1024).size_bytes() == base + 128
