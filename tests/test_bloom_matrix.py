"""BloomBitMatrix unit tests (§II-F / DESIGN.md §11).

The packed bit-matrix must be an exact drop-in for the object kernel's
per-node int-mask Bloom filters: same membership answers as
``BloomFilterPredictor`` for any insertion history, growth-push row ORs
equivalent to mask unions, and a crash release that zeroes exactly the
victim's row.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bloom_matrix import BloomBitMatrix
from repro.core.cycle import BloomFilterPredictor


def test_rejects_nonpositive_bits():
    with pytest.raises(ValueError):
        BloomBitMatrix(0)
    with pytest.raises(ValueError):
        BloomBitMatrix(-8)


def test_grow_is_monotone_and_zero_filled():
    m = BloomBitMatrix(16, capacity=2)
    m.set_row(1, 0xBEEF & 0xFFFF)
    m.grow(5)
    assert m.capacity == 5
    assert m.as_int(1) == 0xBEEF & 0xFFFF  # existing rows untouched
    assert all(m.as_int(slot) == 0 for slot in (2, 3, 4))
    m.grow(3)  # never shrinks
    assert m.capacity == 5


@settings(max_examples=50, deadline=None)
@given(
    bits=st.integers(min_value=8, max_value=512),
    hashes=st.integers(min_value=1, max_value=6),
    ancestors=st.lists(st.integers(min_value=0, max_value=10_000), max_size=12),
    probe=st.integers(min_value=0, max_value=10_000),
)
def test_membership_matches_object_predictor(bits, hashes, ancestors, probe):
    """Insert/contains parity against the reference predictor: building
    a row by per-ancestor inserts answers exactly like the int mask the
    object kernel accumulates with ``adopt`` unions."""
    pred = BloomFilterPredictor(bits, hashes)
    m = BloomBitMatrix(bits, capacity=1)
    mask = 0
    for nid in ancestors:
        node_mask = pred._node_mask(nid)
        m.insert(0, node_mask)
        mask |= node_mask
    assert m.as_int(0) == mask
    assert m.contains(0, pred._node_mask(probe)) == pred.contains(mask, probe)


@settings(max_examples=30, deadline=None)
@given(
    bits=st.integers(min_value=8, max_value=256),
    masks=st.lists(st.integers(min_value=0, max_value=2**256 - 1), max_size=8),
)
def test_growth_push_or_equals_mask_union(bits, masks):
    """§II-G growth pushes: a sequence of row ORs equals the union of
    the pushed masks, and ``or_row`` reports growth iff new bits landed."""
    limit = (1 << bits) - 1
    m = BloomBitMatrix(bits, capacity=3)
    acc = 0
    for raw in masks:
        mask = raw & limit
        grew = m.or_row(2, mask)
        assert grew == bool(mask & ~acc)
        acc |= mask
    assert m.as_int(2) == acc
    # Re-pushing the accumulated filter is the no-op BloomUpdate dedups on.
    assert m.or_row(2, acc) is False


def test_set_row_overwrites_for_adoption_resync():
    m = BloomBitMatrix(32, capacity=2)
    m.or_row(0, 0xFFFF)
    m.set_row(0, 0b1010)
    assert m.as_int(0) == 0b1010  # overwrite, not union


def test_clear_row_zeroes_exactly_the_released_slot():
    """Crash release: the victim's filter row is zeroed; every other
    row's bytes are untouched (slot recycling starts from a fresh row)."""
    rng = random.Random(7)
    m = BloomBitMatrix(64, capacity=6)
    rows = {slot: rng.getrandbits(64) for slot in range(6)}
    for slot, mask in rows.items():
        m.set_row(slot, mask)
    m.clear_row(3)
    for slot, mask in rows.items():
        assert m.as_int(slot) == (0 if slot == 3 else mask)
    # The recycled slot accepts a fresh filter without residue.
    m.insert(3, 0b110)
    assert m.as_int(3) == 0b110


def test_row_isolation_at_non_byte_aligned_widths():
    """Widths that are not byte multiples still round to whole row
    bytes — neighbouring rows must never alias."""
    m = BloomBitMatrix(13, capacity=3)  # row_bytes = 2
    full = (1 << 13) - 1
    m.set_row(1, full)
    assert m.as_int(0) == 0 and m.as_int(2) == 0
    m.clear_row(1)
    assert m.as_int(1) == 0
