"""Property-based tests (hypothesis) on core data structures & invariants."""

import heapq

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cycle import (
    BloomFilterPredictor,
    DepthLabelPredictor,
    PathEmbeddingPredictor,
)
from repro.core.recovery import MessageBuffer
from repro.core.splitting import StripeAssignment, StripeReassembler
from repro.metrics.stats import CDF, percentile_summary, rate_per_minute
from repro.sim.engine import Simulator
from repro.sim.rng import derive_seed
from repro.sim.trace import churn_trace, parse_trace


# ----------------------------------------------------------------------
# Event engine
# ----------------------------------------------------------------------
@given(st.lists(st.floats(min_value=0.0, max_value=1e6, allow_nan=False), max_size=60))
def test_engine_processes_events_in_time_order(delays):
    sim = Simulator()
    fired = []
    for d in delays:
        sim.schedule(d, lambda d=d: fired.append(sim.now))
    sim.run()
    assert fired == sorted(fired)
    assert len(fired) == len(delays)


@given(
    st.lists(st.floats(min_value=0.0, max_value=100.0, allow_nan=False), min_size=1, max_size=40),
    st.data(),
)
def test_engine_cancellation_never_fires(delays, data):
    sim = Simulator()
    fired = []
    handles = [sim.schedule(d, lambda i=i: fired.append(i)) for i, d in enumerate(delays)]
    to_cancel = data.draw(
        st.sets(st.integers(min_value=0, max_value=len(delays) - 1))
    )
    for i in to_cancel:
        handles[i].cancel()
    sim.run()
    assert set(fired) == set(range(len(delays))) - to_cancel


# ----------------------------------------------------------------------
# CDF / stats
# ----------------------------------------------------------------------
@given(st.lists(st.floats(min_value=-1e9, max_value=1e9, allow_nan=False), min_size=1))
def test_cdf_fraction_is_monotone_and_bounded(sample):
    cdf = CDF.of(sample)
    xs = sorted({cdf.min, cdf.median, cdf.max, 0.0})
    fractions = [cdf.fraction_at_most(x) for x in xs]
    assert fractions == sorted(fractions)
    assert all(0.0 <= f <= 1.0 for f in fractions)
    assert cdf.fraction_at_most(cdf.max) == 1.0


@given(st.lists(st.floats(min_value=-1e6, max_value=1e6, allow_nan=False), min_size=1))
def test_cdf_percentiles_within_range(sample):
    cdf = CDF.of(sample)
    for q in (0, 25, 50, 75, 100):
        assert cdf.min - 1e-9 <= cdf.percentile(q) <= cdf.max + 1e-9


@given(st.lists(st.floats(min_value=0, max_value=1e6, allow_nan=False), min_size=1))
def test_percentile_summary_is_sorted(sample):
    s = percentile_summary(sample)
    values = [s[p] for p in sorted(s)]
    assert values == sorted(values)


@given(
    st.lists(st.floats(min_value=0, max_value=1000, allow_nan=False)),
    st.floats(min_value=0, max_value=500, allow_nan=False),
    st.floats(min_value=0.1, max_value=500, allow_nan=False),
)
def test_rate_per_minute_counts_only_window(times, start, width):
    # Half-open [start, end): boundary events belong to the next window.
    rate = rate_per_minute(times, (start, start + width))
    inside = sum(1 for t in times if start <= t < start + width)
    assert rate * (width / 60.0) == inside or abs(rate * width / 60.0 - inside) < 1e-6


# ----------------------------------------------------------------------
# Message buffer
# ----------------------------------------------------------------------
@given(
    st.integers(min_value=0, max_value=32),
    st.lists(st.tuples(st.integers(min_value=0, max_value=500), st.integers(min_value=0, max_value=10_000))),
)
def test_buffer_never_exceeds_capacity(capacity, ops):
    buf = MessageBuffer(capacity)
    for seq, size in ops:
        buf.store(seq, size)
        assert len(buf) <= capacity
    out = list(buf.after(-1))
    assert [s for s, _ in out] == sorted(s for s, _ in out)


@given(
    st.lists(st.integers(min_value=0, max_value=100), min_size=1),
    st.integers(min_value=-1, max_value=100),
)
def test_buffer_after_returns_only_newer(seqs, threshold):
    buf = MessageBuffer(capacity=200)
    for s in seqs:
        buf.store(s, 1)
    assert all(s > threshold for s, _ in buf.after(threshold))


# ----------------------------------------------------------------------
# Stream splitting
# ----------------------------------------------------------------------
@given(
    st.lists(st.integers(min_value=0, max_value=50), min_size=1, max_size=6, unique=True),
    st.integers(min_value=0, max_value=1000),
)
def test_stripes_cover_every_sequence(parents, seq):
    a = StripeAssignment(tuple(parents))
    assert a.parent_for(seq) in parents


@given(
    st.lists(st.integers(min_value=0, max_value=50), min_size=2, max_size=6, unique=True),
    st.data(),
)
def test_stripe_failover_covers_all(parents, data):
    a = StripeAssignment(tuple(parents))
    failed = data.draw(st.sampled_from(parents))
    b = a.without_parent(failed)
    assert b is not None
    for seq in range(3 * len(parents)):
        assert b.parent_for(seq) != failed


@given(st.permutations(list(range(25))))
def test_reassembler_releases_in_order(order):
    r = StripeReassembler()
    released = []
    for seq in order:
        released.extend(r.offer(seq))
    assert released == list(range(25))


# ----------------------------------------------------------------------
# Churn trace DSL
# ----------------------------------------------------------------------
@given(
    st.integers(min_value=1, max_value=10_000),
    st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
)
def test_churn_trace_builder_always_parses(n, pct):
    trace = churn_trace(n, round(pct, 3))
    assert trace.total_joins == n
    assert trace.stop_time >= trace.churn_ops()[0].start


@given(
    st.floats(min_value=0, max_value=1e4, allow_nan=False),
    st.floats(min_value=0, max_value=1e4, allow_nan=False),
    st.integers(min_value=0, max_value=100_000),
)
def test_join_ramp_roundtrip(a, b, count):
    # The DSL takes plain decimals (no scientific notation), as in the
    # paper's Listing 1 — format accordingly.
    start, end = (f"{min(a, b):.3f}", f"{max(a, b):.3f}")
    trace = parse_trace(f"from {start} s to {end} s join {count}")
    op = trace.ops[0]
    assert (op.start, op.end, op.count) == (float(start), float(end), count)


# ----------------------------------------------------------------------
# Cycle predictors
# ----------------------------------------------------------------------
@given(
    st.integers(min_value=0, max_value=10_000),
    st.lists(st.integers(min_value=0, max_value=10_000), max_size=20),
)
def test_path_embedding_is_exact(node, path):
    p = PathEmbeddingPredictor()
    meta = tuple(path)
    assert p.eligible(node, None, meta) == (node not in meta)


@given(
    st.integers(min_value=0, max_value=1000),
    st.lists(st.integers(min_value=0, max_value=10_000), min_size=1, max_size=12),
)
def test_path_adopt_appends_exactly_self(node, path):
    p = PathEmbeddingPredictor()
    new = p.adopt(node, tuple(path))
    assert new[:-1] == tuple(path) and new[-1] == node


@given(st.integers(min_value=0, max_value=10**6), st.integers(min_value=0, max_value=10**6))
def test_depth_adopt_strictly_below_parent(node, meta):
    p = DepthLabelPredictor()
    assert p.adopt(node, meta) == meta + 1 > meta


@given(
    st.lists(st.integers(min_value=0, max_value=100_000), min_size=1, max_size=15, unique=True)
)
def test_bloom_never_misses_real_ancestors(chain):
    """A Bloom filter may reject valid parents (false positives) but must
    NEVER miss a real ancestor — that is what makes it cycle-safe."""
    p = BloomFilterPredictor(bits=512, hashes=4)
    pos = p.source_position(chain[0])
    for nid in chain[1:]:
        pos = p.adopt(nid, pos)
    for ancestor in chain:
        assert p.contains(pos, ancestor)
        assert not p.eligible(ancestor, None, pos)


# ----------------------------------------------------------------------
# Seed derivation
# ----------------------------------------------------------------------
@given(st.integers(min_value=0, max_value=2**62), st.text(max_size=30))
def test_derive_seed_is_pure(root, label):
    assert derive_seed(root, label) == derive_seed(root, label)
    assert 0 <= derive_seed(root, label) < 2**64
