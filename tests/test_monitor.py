"""Tests for metric collection and phase accounting."""

import pytest

from repro.sim.monitor import DISSEMINATION, STABILIZATION, Metrics


def test_initial_phase_is_stabilization():
    m = Metrics()
    assert m.phase == STABILIZATION


def test_phase_transition_records_boundaries():
    m = Metrics()
    m.set_phase(DISSEMINATION, now=100.0)
    m.close(now=250.0)
    assert m.phase_duration(STABILIZATION) == 100.0
    assert m.phase_duration(DISSEMINATION) == 150.0


def test_set_same_phase_is_noop():
    m = Metrics()
    m.set_phase(STABILIZATION, now=50.0)
    assert m.phase_starts[STABILIZATION] == 0.0
    assert STABILIZATION not in m.phase_ends


def test_phase_reentry_accumulates_closed_intervals():
    # Two run_stream calls on one testbed: only in-phase time counts, not
    # the interleaved gap between close() and the next set_phase().
    m = Metrics()
    m.set_phase(DISSEMINATION, now=10.0)
    m.close(now=25.0)  # first stream: 15 s
    m.set_phase(DISSEMINATION, now=100.0)  # re-enter after a 75 s gap
    m.close(now=130.0)  # second stream: 30 s
    assert m.phase_duration(DISSEMINATION) == pytest.approx(45.0)
    assert m.phase_duration(STABILIZATION) == pytest.approx(10.0)


def test_close_is_idempotent():
    m = Metrics()
    m.set_phase(DISSEMINATION, now=10.0)
    m.close(now=20.0)
    m.close(now=50.0)  # no intervening set_phase: adds nothing
    assert m.phase_duration(DISSEMINATION) == pytest.approx(10.0)


def test_bytes_tagged_with_current_phase():
    m = Metrics()
    m.account_send(1, "data", 100)
    m.set_phase(DISSEMINATION, now=10.0)
    m.account_send(1, "data", 900)
    assert m.bytes_sent[1][STABILIZATION] == 100
    assert m.bytes_sent[1][DISSEMINATION] == 900
    assert m.node_bytes(1, DISSEMINATION) == 900
    assert m.total_bytes() == 1000
    assert m.total_bytes(DISSEMINATION) == 900


def test_msg_counts_by_kind():
    m = Metrics()
    m.account_send(1, "data", 10)
    m.account_send(2, "data", 10)
    m.account_send(1, "deactivate", 5)
    assert m.msg_counts["data"][STABILIZATION] == 2
    assert m.msg_counts["deactivate"][STABILIZATION] == 1


def test_first_delivery_vs_duplicates():
    m = Metrics()
    assert m.record_delivery(5, 0, 1, 1.0, sender=2, hops=3, path_delay=0.1)
    assert not m.record_delivery(5, 0, 1, 1.5, sender=3, hops=4, path_delay=0.2)
    assert m.duplicates[5] == 1
    rec = m.deliveries[(0, 1)][5]
    assert rec.time == 1.0 and rec.sender == 2 and rec.hops == 3


def test_duplicates_per_node_includes_zero_for_clean_nodes():
    m = Metrics()
    m.record_delivery(1, 0, 0, 1.0, 0, 1, 0.0)
    m.record_delivery(1, 0, 0, 1.1, 2, 1, 0.0)
    assert m.duplicates_per_node([1, 2]) == [1, 0]


def test_delivery_times_query():
    m = Metrics()
    m.record_delivery(1, 0, 3, 2.5, 0, 1, 0.0)
    m.record_delivery(2, 0, 3, 2.7, 0, 1, 0.0)
    assert m.delivery_times(0, 3) == {1: 2.5, 2: 2.7}


def test_record_deliveries_disabled_still_counts_duplicates():
    m = Metrics(record_deliveries=False)
    assert m.record_delivery(1, 0, 0, 1.0, 0, 1, 0.0)
    assert not m.record_delivery(1, 0, 0, 1.2, 9, 2, 0.0)
    assert m.duplicates[1] == 1
    assert m.delivery_times(0, 0) == {}


def test_repair_and_probe_records():
    m = Metrics()
    m.record_parent_loss(5.0, 3)
    m.record_orphan(5.1, 3)
    m.record_repair(5.2, 3, "soft", duration=0.1)
    m.record_construction(3, start=1.0, end=1.5)
    assert m.parent_losses == [(5.0, 3)]
    assert m.orphan_events == [(5.1, 3)]
    assert m.repair_events[0].kind == "soft"
    assert m.construction_probes[0].duration == pytest.approx(0.5)


def test_injection_record():
    m = Metrics()
    m.record_injection(0, 7, 12.0)
    assert m.injections[(0, 7)] == 12.0


def test_counters():
    m = Metrics()
    m.incr("x")
    m.incr("x", 4)
    assert m.counters["x"] == 5


# ----------------------------------------------------------------------
# Per-stream shards + delivered_fraction (DESIGN.md §10)
# ----------------------------------------------------------------------
def test_streams_sharded_per_stream():
    m = Metrics()
    m.record_injection(0, 0, 1.0)
    m.record_delivery(1, 0, 0, 1.5, 9, 1, 0.0, payload_bytes=100)
    m.record_delivery(1, 0, 0, 1.6, 8, 2, 0.0, payload_bytes=100)  # dup
    m.record_delivery(1, 7, 0, 2.0, 9, 1, 0.0, payload_bytes=30)
    assert set(m.streams) == {0, 7}
    assert m.streams[0].first_deliveries == 1
    assert m.streams[0].duplicate_receptions == 1
    assert m.streams[0].payload_bytes == 100  # dup did not accrue
    assert m.streams[7].first_deliveries == 1
    assert m.streams[7].payload_bytes == 30
    # Cross-stream compatibility views still answer the old surface.
    assert m.deliveries[(0, 0)][1].sender == 9
    assert m.duplicates[1] == 1  # aggregated across streams
    assert m.injections[(0, 0)] == 1.0
    assert (7, 0) in m.deliveries and (3, 0) not in m.deliveries
    assert m.duplicates_per_node([1, 2]) == [1, 0]


def test_delivered_fraction_half_open_window():
    m = Metrics()
    # Stream 0: receivers {1, 2}; seqs 0 and 1 delivered to both, seq 2
    # delivered to node 1 only.
    for seq, nodes in ((0, (1, 2)), (1, (1, 2)), (2, (1,))):
        for node in nodes:
            m.record_delivery(node, 0, seq, 1.0, 0, 1, 0.0)
    # Half-open [0, 2): seq 2 excluded — both receivers fully served.
    assert m.delivered_fraction(0, [1, 2], window=(0, 2)) == 1.0
    # Half-open [0, 3): seq 2 missing at node 2 — 5 of 6 pairs.
    assert m.delivered_fraction(0, [1, 2], window=(0, 3)) == pytest.approx(5 / 6)
    # [2, 3): exactly the boundary seq — the windows partition cleanly.
    assert m.delivered_fraction(0, [1, 2], window=(2, 3)) == pytest.approx(1 / 2)
    assert m.stream_delivery_count(0, [1, 2], window=(0, 2)) + m.stream_delivery_count(
        0, [1, 2], window=(2, 3)
    ) == m.stream_delivery_count(0, [1, 2], window=(0, 3))


def test_delivered_fraction_default_window_spans_injections():
    m = Metrics()
    m.record_injection(0, 0, 1.0)
    m.record_injection(0, 1, 2.0)
    m.record_delivery(1, 0, 0, 1.5, 9, 1, 0.0)
    # Default window = [0, 2): node 1 got 1 of 2.
    assert m.delivered_fraction(0, [1]) == pytest.approx(1 / 2)
    # Deliveries beyond the injected window don't inflate the default.
    m.record_delivery(1, 0, 1, 2.5, 9, 1, 0.0)
    assert m.delivered_fraction(0, [1]) == 1.0


def test_delivered_fraction_degenerate_cases():
    m = Metrics()
    assert m.delivered_fraction(0, []) == 1.0  # empty audience: vacuous
    assert m.delivered_fraction(0, [1]) == 0.0  # nothing injected
    assert m.delivered_fraction(0, [1], window=(3, 3)) == 1.0  # empty window
    assert m.stream_delivery_count(5, [1], window=(0, 4)) == 0  # unknown stream
