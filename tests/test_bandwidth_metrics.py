"""Tests for bandwidth aggregation."""

import pytest

from repro.metrics.bandwidth import (
    bandwidth_kbps,
    phase_bandwidth_summary,
    stacked_phases_mb,
    total_transmitted_mb,
)
from repro.sim.monitor import DISSEMINATION, STABILIZATION, Metrics


def make_metrics():
    m = Metrics()
    m.account_send(1, "data", 10 * 1024)
    m.account_receive(1, 20 * 1024)
    m.set_phase(DISSEMINATION, now=100.0)
    m.account_send(1, "data", 100 * 1024)
    m.account_receive(1, 50 * 1024)
    m.account_receive(2, 200 * 1024)
    m.close(now=200.0)
    return m


def test_bandwidth_kbps_received():
    m = make_metrics()
    rates = bandwidth_kbps(m, [1, 2], DISSEMINATION, "received")
    assert rates[0] == pytest.approx(50 / 100)
    assert rates[1] == pytest.approx(200 / 100)


def test_bandwidth_kbps_sent_and_missing_node():
    m = make_metrics()
    rates = bandwidth_kbps(m, [1, 99], DISSEMINATION, "sent")
    assert rates[0] == pytest.approx(100 / 100)
    assert rates[1] == 0.0


def test_bandwidth_zero_duration_phase():
    m = Metrics()
    assert bandwidth_kbps(m, [1], DISSEMINATION) == [0.0]


def test_explicit_duration_override():
    m = make_metrics()
    rates = bandwidth_kbps(m, [1], DISSEMINATION, "received", duration=50.0)
    assert rates[0] == pytest.approx(1.0)


def test_phase_bandwidth_summary_has_paper_percentiles():
    m = make_metrics()
    s = phase_bandwidth_summary(m, [1, 2], DISSEMINATION, "received")
    assert set(s) == {5, 25, 50, 75, 90}
    assert s[90] >= s[5]


def test_total_transmitted_mb():
    m = make_metrics()
    mb = total_transmitted_mb(m, [1], DISSEMINATION)
    assert mb == pytest.approx(100 / 1024)


def test_stacked_phases():
    m = make_metrics()
    stacked = stacked_phases_mb(m, [1])
    assert stacked[STABILIZATION] == pytest.approx(10 / 1024)
    assert stacked[DISSEMINATION] == pytest.approx(100 / 1024)


def test_total_transmitted_empty_nodes():
    assert total_transmitted_mb(Metrics(), [], DISSEMINATION) == 0.0
