"""Smoke + shape tests for the per-figure scenarios (tiny scale).

These verify the scenario plumbing end to end and the qualitative shapes
the benches assert at larger scale.
"""

import pytest

from repro.experiments.scale import TINY, get_scale
from repro.experiments.scenarios import (
    fig2_duplicates,
    fig6_fig7_structure,
    fig8_tree_shape,
    fig9_routing_delays,
    fig12_bandwidth_comparison,
    fig13_construction,
    fig14_recovery,
    table1_churn,
    table2_latency,
)
from repro.sim.monitor import DISSEMINATION, STABILIZATION


class TestScale:
    def test_get_scale_known(self):
        assert get_scale("tiny").name == "tiny"
        assert get_scale("paper").cluster_nodes == 512

    def test_get_scale_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "tiny")
        assert get_scale().name == "tiny"

    def test_get_scale_unknown(self):
        with pytest.raises(ValueError):
            get_scale("galactic")


class TestFig2:
    def test_larger_views_more_duplicates(self):
        # At 32 nodes the medians of nearby view sizes can tie (views
        # saturate against the small population); compare means and leave
        # the strong median anchor to the full-scale Fig. 2 bench.
        res = fig2_duplicates(TINY, view_sizes=(4, 8), seed=1)
        assert res.by_view[8].mean > res.by_view[4].mean
        assert res.by_view[4].min >= 0


class TestFig6Fig7:
    @pytest.fixture(scope="class")
    def dists(self):
        return fig6_fig7_structure(TINY, seed=2)

    def test_all_configs_present(self, dists):
        assert len(dists.depth) == 4 and len(dists.degree) == 4

    def test_larger_view_shallower_tree(self, dists):
        # At 32 nodes both trees are shallow; compare means with slack
        # (the full-scale trend is asserted by the Fig. 6 bench).
        assert (
            dists.depth["tree, view=8"].mean
            <= dists.depth["tree, view=4"].mean + 0.5
        )

    def test_dag_at_least_as_deep_as_tree(self, dists):
        assert dists.depth["DAG 2 parents, view=4"].max >= dists.depth["tree, view=4"].max - 1

    def test_dags_have_fewer_leaves(self, dists):
        """Fig. 7: DAGs engage more nodes in relaying (fewer degree-0)."""
        tree_leaves = dists.degree["tree, view=4"].fraction_at_most(0)
        dag_leaves = dists.degree["DAG 2 parents, view=4"].fraction_at_most(0)
        assert dag_leaves <= tree_leaves


class TestFig8:
    def test_dot_and_summary(self):
        res = fig8_tree_shape(n=40, view_sizes=(4,), seed=3)
        assert "digraph" in res.dot[4]
        s = res.summary[4]
        assert s["nodes"] == 40
        assert s["edges"] == 39  # spanning tree


class TestFig9:
    def test_series_and_ordering(self):
        # Note: at tiny scale (24 nodes, ~2 tree levels) the strategy
        # effect is mostly noise; the ordering assertion uses the
        # documented seed.  The Fig. 9 bench re-validates at full scale.
        res = fig9_routing_delays(TINY, seed=24)
        assert set(res.series) == {"point-to-point", "delay-aware", "first-pick", "flood"}
        assert res.series["point-to-point"].median <= res.series["delay-aware"].median
        assert res.series["delay-aware"].median <= res.series["first-pick"].median * 1.3
        assert res.series["flood"].median >= res.series["delay-aware"].median * 0.9


class TestTable1:
    @pytest.fixture(scope="class")
    def table(self):
        # Tiny populations need a higher nominal rate for churn to show up
        # at all (expected kills scale with n * pct * duration).
        return table1_churn(TINY, seed=6, populations=(24,), churn_rates=(20.0,))

    def test_rows_present(self, table):
        assert (24, 20.0, "tree") in table.rows
        assert (24, 20.0, "dag") in table.rows

    def test_churn_applied(self, table):
        assert table.rows[(24, 20.0, "tree")].kills > 0

    def test_dag_orphans_below_tree(self, table):
        tree = table.rows[(24, 20.0, "tree")]
        dag = table.rows[(24, 20.0, "dag")]
        assert dag.orphans_per_min <= tree.orphans_per_min

    def test_repair_percentages_sum(self, table):
        for row in table.rows.values():
            assert row.soft_repair_pct + row.hard_repair_pct == pytest.approx(100.0)


class TestFig12:
    @pytest.fixture(scope="class")
    def res(self):
        return fig12_bandwidth_comparison(TINY, payload_kb=(0, 10), seed=8)

    def test_all_protocols(self, res):
        assert set(res.data) == {"SimpleTree", "BRISA", "SimpleGossip", "TAG"}

    def test_gossip_has_no_stabilization_share(self, res):
        assert res.data["SimpleGossip"][10][STABILIZATION] == 0.0

    def test_gossip_most_expensive_at_large_payloads(self, res):
        """Fig. 12: duplicates make SimpleGossip dominate at 10-20 KB."""
        assert res.total("SimpleGossip", 10) > res.total("BRISA", 10)
        assert res.total("SimpleGossip", 10) > res.total("SimpleTree", 10)

    def test_simpletree_cheapest_management(self, res):
        assert res.data["SimpleTree"][0][STABILIZATION] <= res.data["BRISA"][0][STABILIZATION]


class TestFig13:
    def test_planetlab_hurts_tag_more(self):
        res = fig13_construction(TINY, seed=9)
        brisa_pl = res.series[("BRISA", "PlanetLab")]
        tag_pl = res.series[("TAG", "PlanetLab")]
        assert not brisa_pl.empty and not tag_pl.empty
        # §III-D: TAG's per-hop connection setup dominates on wide-area RTTs.
        assert tag_pl.median > brisa_pl.median


class TestTable2:
    def test_latency_ordering(self):
        res = table2_latency(TINY, seed=10)
        lat = res.latency
        assert lat["SimpleTree"] <= lat["BRISA"] * 1.05
        assert lat["TAG"] > lat["SimpleTree"] * 1.4
        assert res.delivered["BRISA"] == pytest.approx(1.0)
        assert res.overhead("TAG") > 0.3


class TestFig14:
    def test_recovery_delays_collected(self):
        res = fig14_recovery(TINY, seed=7, churn_percent=8.0)
        assert "BRISA tree" in res.hard and "TAG" in res.hard
        # Churn at 8%/min over 60 s should produce at least some repairs.
        total_events = sum(len(c) for c in res.hard.values()) + sum(
            len(c) for c in res.soft.values()
        )
        assert total_events > 0
