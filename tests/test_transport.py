"""Tests for the transient-connection cost helper (TAG's cost model)."""

import pytest

from repro.sim.transport import TransientConnCost

from tests.helpers import make_network


def test_setup_delay_is_rtts_times_factor():
    sim, net, (a, b) = make_network(2, delay=0.01)
    t = TransientConnCost(net, a.node_id, setup_rtts=1.5)
    assert t.setup_delay(b.node_id) == pytest.approx(1.5 * 0.02)


def test_connect_fires_on_ready_after_delay():
    sim, net, (a, b) = make_network(2, delay=0.01)
    t = TransientConnCost(net, a.node_id, setup_rtts=1.5)
    fired = []
    t.connect(b.node_id, on_ready=lambda: fired.append(sim.now))
    sim.run()
    assert fired == [pytest.approx(0.03)]


def test_connect_to_dead_peer_fires_on_fail():
    sim, net, (a, b) = make_network(2)
    net.crash(b.node_id)
    t = TransientConnCost(net, a.node_id)
    outcome = []
    t.connect(b.node_id, on_ready=lambda: outcome.append("ready"),
              on_fail=lambda: outcome.append("fail"))
    sim.run()
    assert outcome == ["fail"]


def test_peer_dying_during_handshake_fails():
    sim, net, (a, b) = make_network(2, delay=1.0)
    t = TransientConnCost(net, a.node_id, setup_rtts=1.0)  # 2 s handshake
    outcome = []
    t.connect(b.node_id, on_ready=lambda: outcome.append("ready"),
              on_fail=lambda: outcome.append("fail"))
    sim.schedule(1.0, net.crash, b.node_id)
    sim.run()
    assert outcome == ["fail"]


def test_failure_without_handler_is_silent():
    sim, net, (a, b) = make_network(2)
    net.crash(b.node_id)
    TransientConnCost(net, a.node_id).connect(b.node_id, on_ready=lambda: (_ for _ in ()).throw(AssertionError))
    sim.run()  # must not raise


def test_zero_setup_cost():
    sim, net, (a, b) = make_network(2, delay=0.01)
    t = TransientConnCost(net, a.node_id, setup_rtts=0.0)
    fired = []
    t.connect(b.node_id, on_ready=lambda: fired.append(sim.now))
    sim.run()
    assert fired == [0.0]


def test_deprecated_transport_alias():
    from repro.sim.transport import Transport

    assert Transport is TransientConnCost
