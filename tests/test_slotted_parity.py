"""Differential harness: slotted vs object flood kernels (DESIGN.md §9).

The slotted kernel's contract is *draw-for-draw equivalence* with the
reference object implementation: for one seed, both kernels must produce
identical delivery sets (with timestamps, senders, hops and path
delays), duplicate counts, per-node byte totals and engine schedules —
under the zero-cost fused path and under occupancy-charging latency
models, with and without churn.  These property tests pin that contract
over random populations (16–512 nodes), stream lengths and seeds; any
divergence is a kernel bug by definition.
"""

from __future__ import annotations

import dataclasses

import pytest
from hypothesis import HealthCheck, example, given, settings
from hypothesis import strategies as st

from repro.baselines.flood import SlottedFloodKernel
from repro.experiments.scale_flood import build_static_flood_overlay, run_scale_flood
from repro.sim.latency import ConstantLatency, OccupancyLatency

#: Latency regimes the kernels must agree under: the uniform zero-cost
#: fused path (fan sink engaged) and deterministic occupancy charging
#: (per-message queueing chain, no fan sink).
LATENCIES = {
    "zero-cost": lambda seed: ConstantLatency(0.001, seed=seed),
    "occupancy": lambda seed: OccupancyLatency(
        0.001, tx_overhead=0.0001, rx_overhead=0.0005, seed=seed
    ),
}


def flood_run(kernel: str, n: int, messages: int, seed: int, latency_kind: str,
              streams: int = 1, topology: str = "uniform",
              loss_percent: float = 0.0):
    """One recorded flood run; returns (sim, net, nodes).

    ``streams`` > 1 drives K concurrent publishers spread over the
    population (the DESIGN.md §10 workload) through the same injection
    window."""
    from repro.experiments.scale_runner import spread_sources

    sim, net, nodes = build_static_flood_overlay(
        n,
        degree=5,
        seed=seed,
        latency=LATENCIES[latency_kind](seed),
        record_deliveries=True,
        kernel=kernel,
        topology=topology,
        loss_percent=loss_percent,
    )
    start = sim.now
    for stream, source in enumerate(spread_sources(nodes, streams)):
        for seq in range(messages):
            sim.call_at(start + seq / 50.0, source.inject, stream, seq, 64)
    sim.run_until_idle()
    return sim, net, nodes


def snapshot(sim, net, nodes) -> dict:
    """Everything the parity contract covers, as comparable plain data."""
    m = net.metrics
    return {
        "now": sim.now,
        "events": sim.events_processed,
        "peak_pending": sim.peak_pending,
        "deliveries": {
            key: {
                nid: (rec.time, rec.sender, rec.hops, rec.path_delay)
                for nid, rec in per_node.items()
            }
            for key, per_node in m.deliveries.items()
        },
        "duplicates": dict(m.duplicates),
        "bytes_sent": {nid: dict(per) for nid, per in m.bytes_sent.items()},
        "bytes_received": {nid: dict(per) for nid, per in m.bytes_received.items()},
        "msg_counts": {kind: dict(per) for kind, per in m.msg_counts.items()},
        "delivered_counts": {
            node.node_id: {
                stream: node.delivered_count(stream) for stream in m.streams
            }
            for node in nodes
        },
        "stream_shards": {
            stream: (
                shard.first_deliveries,
                shard.duplicate_receptions,
                shard.payload_bytes,
            )
            for stream, shard in m.streams.items()
        },
        "dropped": m.counters.get("dropped", 0),
        "dropped_crash": m.counters.get("dropped_crash", 0),
        "dropped_loss": m.counters.get("dropped_loss", 0),
    }


def assert_kernel_arrays_match_metrics(net, nodes, latency_kind: str) -> None:
    """The slotted arrays must agree with the mirrored Metrics records."""
    kernel: SlottedFloodKernel = nodes[0].kernel
    m = net.metrics
    for node in nodes:
        if not node.alive:
            continue
        slot = node.slot
        assert kernel.slot_duplicates(slot) == m.duplicates.get(node.node_id, 0)
        if latency_kind == "zero-cost":
            # The fan sink owns receive accounting on this path; in
            # mirror mode it feeds Metrics too, so both must agree.
            assert kernel.rx_bytes[slot] == sum(
                m.bytes_received.get(node.node_id, {}).values()
            )


@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(
    n=st.integers(min_value=16, max_value=512),
    messages=st.integers(min_value=1, max_value=3),
    seed=st.integers(min_value=0, max_value=2**20),
    latency_kind=st.sampled_from(sorted(LATENCIES)),
)
@example(n=16, messages=1, seed=0, latency_kind="zero-cost")
@example(n=512, messages=3, seed=1, latency_kind="zero-cost")
@example(n=512, messages=3, seed=1, latency_kind="occupancy")
@example(n=257, messages=2, seed=99, latency_kind="occupancy")
def test_slotted_kernel_matches_object_kernel(n, messages, seed, latency_kind):
    sim_o, net_o, nodes_o = flood_run("object", n, messages, seed, latency_kind)
    sim_s, net_s, nodes_s = flood_run("slotted", n, messages, seed, latency_kind)
    assert snapshot(sim_o, net_o, nodes_o) == snapshot(sim_s, net_s, nodes_s)
    assert_kernel_arrays_match_metrics(net_s, nodes_s, latency_kind)


@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(
    n=st.integers(min_value=16, max_value=256),
    messages=st.integers(min_value=1, max_value=3),
    streams=st.integers(min_value=2, max_value=4),
    seed=st.integers(min_value=0, max_value=2**20),
    latency_kind=st.sampled_from(sorted(LATENCIES)),
)
@example(n=64, messages=2, streams=4, seed=0, latency_kind="zero-cost")
@example(n=256, messages=3, streams=3, seed=7, latency_kind="occupancy")
def test_multistream_parity(n, messages, streams, seed, latency_kind):
    """K concurrent streams must stay draw-for-draw equivalent across
    kernels (DESIGN.md §10): per-stream slot planes vs per-node dicts,
    including the per-stream Metrics shards."""
    sim_o, net_o, nodes_o = flood_run(
        "object", n, messages, seed, latency_kind, streams=streams
    )
    sim_s, net_s, nodes_s = flood_run(
        "slotted", n, messages, seed, latency_kind, streams=streams
    )
    assert len(net_o.metrics.streams) == streams
    assert snapshot(sim_o, net_o, nodes_o) == snapshot(sim_s, net_s, nodes_s)
    assert_kernel_arrays_match_metrics(net_s, nodes_s, latency_kind)
    # The slotted planes' per-stream counters agree with the object
    # path's sharded Metrics, stream by stream.
    kernel = nodes_s[0].kernel
    assert set(kernel.plane_of) == set(net_s.metrics.streams)
    for stream, shard in net_o.metrics.streams.items():
        plane = kernel.plane(stream)
        assert sum(plane.duplicates) == shard.duplicate_receptions


@settings(max_examples=8, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    n=st.integers(min_value=64, max_value=256),
    churn=st.floats(min_value=1.0, max_value=12.0),
    seed=st.integers(min_value=0, max_value=2**20),
)
@example(n=256, churn=8.0, seed=11)
def test_kernels_agree_under_churn(n, churn, seed):
    """Churn exercises slot recycling, CSR-link purging and the full
    HyParView repair machinery — both kernels must still walk the exact
    same simulation (delivered counts, receptions, kills, joins, events,
    clock)."""
    results = [
        run_scale_flood(n, 8, seed=seed, kernel=kernel, churn_percent=churn)
        for kernel in ("object", "slotted")
    ]
    a, b = (r.to_dict() for r in results)
    for field in (
        "deliveries", "receptions", "events", "sim_time", "delivered_fraction",
        "kills", "joins", "survivors", "peak_pending",
    ):
        assert a[field] == b[field], field


def test_kernels_agree_under_multistream_churn():
    """Concurrent streams + churn: slot-plane recycling across every
    plane must keep the two kernels on the same simulation, stream by
    stream."""
    results = [
        run_scale_flood(192, 6, seed=9, kernel=kernel, churn_percent=6.0, streams=3)
        for kernel in ("object", "slotted")
    ]
    a, b = (r.to_dict() for r in results)
    for field in (
        "deliveries", "receptions", "events", "sim_time", "delivered_fraction",
        "kills", "joins", "survivors", "peak_pending", "per_stream",
    ):
        assert a[field] == b[field], field
    assert a["streams"] == 3 and len(a["per_stream"]) == 3
    assert results[0].kills > 0


def test_slotted_source_echo_matches_object_semantics():
    """The source hearing its own message back is a recorded first
    delivery but not a re-flood — the subtlest corner of the object
    path's record/seen split.  On a static uniform-delay overlay every
    neighbour's first copy comes from the source itself (so the exclusion
    rule suppresses the echo); churn reordering makes it reachable, so it
    is triggered here explicitly on both kernels."""
    from repro.baselines.flood import FloodData

    runs = {}
    for kernel in ("object", "slotted"):
        sim, net, nodes = flood_run(kernel, 16, 1, 3, "zero-cost")
        source = nodes[0]
        echoer = next(iter(source.active))
        assert source.node_id not in net.metrics.deliveries[(0, 0)]
        events_before = sim.events_processed
        # A late echo of the source's own message, as a repaired overlay
        # path would produce it.
        net.send(echoer, source.node_id,
                 FloodData(0, 0, 64, hops=3, path_delay=0.01, sent_at=sim.now))
        sim.run_until_idle()
        runs[kernel] = (sim, net, nodes, sim.events_processed - events_before)

    for kernel, (sim, net, nodes, events) in runs.items():
        source = nodes[0]
        rec = net.metrics.deliveries[(0, 0)][source.node_id]
        assert rec.hops == 4, kernel  # recorded as a first delivery...
        assert source.delivered_count(0) == 1, kernel  # ...counted once...
        assert net.metrics.duplicates.get(source.node_id, 0) == 0, kernel
        assert events == 1, kernel  # ...and not re-flooded (delivery only)
    assert snapshot(*runs["object"][:3]) == snapshot(*runs["slotted"][:3])


def test_unknown_kernel_rejected():
    with pytest.raises(ValueError):
        build_static_flood_overlay(16, kernel="compiled")
    with pytest.raises(ValueError):
        run_scale_flood(16, 1, kernel="bogus")


# ======================================================================
# Vectorized flood kernel (DESIGN.md §12)
# ======================================================================
#
# The vectorized kernel consumes whole waves through the engine's
# batch-drain tier and executes them as masked numpy array ops; its
# contract is the same draw-for-draw equivalence the slotted kernel
# pins against the object path — including ``peak_pending``: batch
# claiming pops a wave's events off the heap before scheduling its
# forwards, so the engine carries a ``pending_bias`` for the claimed-
# but-unprocessed remainder and the kernel replays the per-event push
# sequence over the wave to land the exact per-event high-water mark.

try:
    import numpy as _np
except ImportError:  # pragma: no cover - CI always installs numpy
    _np = None

requires_numpy = pytest.mark.skipif(
    _np is None, reason="the vectorized kernel needs numpy"
)

#: Scalar-result fields every kernel must agree on.
VECTOR_PARITY_FIELDS = (
    "deliveries", "receptions", "events", "sim_time", "delivered_fraction",
    "kills", "joins", "survivors", "peak_pending",
)


@requires_numpy
@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(
    n=st.integers(min_value=16, max_value=512),
    messages=st.integers(min_value=1, max_value=3),
    seed=st.integers(min_value=0, max_value=2**20),
    latency_kind=st.sampled_from(sorted(LATENCIES)),
)
@example(n=16, messages=1, seed=0, latency_kind="zero-cost")
@example(n=512, messages=3, seed=1, latency_kind="zero-cost")
@example(n=512, messages=3, seed=1, latency_kind="occupancy")
@example(n=257, messages=2, seed=99, latency_kind="occupancy")
def test_vectorized_kernel_matches_object_kernel(n, messages, seed, latency_kind):
    """Batched wave execution must reproduce the object path record for
    record: delivery tuples (time, sender, hops, path delay), duplicate
    counts, byte totals and engine schedules — under the fused zero-cost
    path (batch drains engaged) and under occupancy charging (scalar
    on_data fallback on the numpy storage)."""
    sim_o, net_o, nodes_o = flood_run("object", n, messages, seed, latency_kind)
    sim_v, net_v, nodes_v = flood_run("vectorized", n, messages, seed, latency_kind)
    assert snapshot(sim_o, net_o, nodes_o) == snapshot(sim_v, net_v, nodes_v)
    assert_kernel_arrays_match_metrics(net_v, nodes_v, latency_kind)


@requires_numpy
@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(
    n=st.integers(min_value=16, max_value=256),
    messages=st.integers(min_value=1, max_value=3),
    streams=st.integers(min_value=2, max_value=4),
    seed=st.integers(min_value=0, max_value=2**20),
    latency_kind=st.sampled_from(sorted(LATENCIES)),
)
@example(n=64, messages=2, streams=4, seed=0, latency_kind="zero-cost")
@example(n=256, messages=3, streams=3, seed=7, latency_kind="occupancy")
def test_vectorized_multistream_parity(n, messages, streams, seed, latency_kind):
    """Coinciding waves of different streams merge into multi-group
    batches; the per-group split must keep every stream's plane and
    Metrics shard identical to the object run."""
    sim_o, net_o, nodes_o = flood_run(
        "object", n, messages, seed, latency_kind, streams=streams
    )
    sim_v, net_v, nodes_v = flood_run(
        "vectorized", n, messages, seed, latency_kind, streams=streams
    )
    assert len(net_o.metrics.streams) == streams
    assert snapshot(sim_o, net_o, nodes_o) == snapshot(sim_v, net_v, nodes_v)
    assert_kernel_arrays_match_metrics(net_v, nodes_v, latency_kind)
    kernel = nodes_v[0].kernel
    assert set(kernel.plane_of) == set(net_v.metrics.streams)
    for stream, shard in net_o.metrics.streams.items():
        plane = kernel.plane(stream)
        assert int(plane.duplicates.sum()) == shard.duplicate_receptions


@requires_numpy
@settings(max_examples=8, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    n=st.integers(min_value=64, max_value=256),
    churn=st.floats(min_value=1.0, max_value=12.0),
    seed=st.integers(min_value=0, max_value=2**20),
)
@example(n=256, churn=8.0, seed=11)
def test_vectorized_kernel_agrees_under_churn(n, churn, seed):
    """Churn exercises slot release into the numpy planes, _slot_map
    invalidation (dead destinations fall back in flat order, so the
    failure-notice RNG draws line up), row-mirror invalidation and CSR
    staleness — the three kernels must still walk the same simulation."""
    results = [
        run_scale_flood(n, 8, seed=seed, kernel=kernel, churn_percent=churn)
        for kernel in ("object", "vectorized")
    ]
    a, b = (r.to_dict() for r in results)
    for field in VECTOR_PARITY_FIELDS:
        assert a[field] == b[field], field


@requires_numpy
def test_vectorized_kernel_agrees_under_multistream_churn():
    results = [
        run_scale_flood(192, 6, seed=9, kernel=kernel, churn_percent=6.0, streams=3)
        for kernel in ("slotted", "vectorized")
    ]
    a, b = (r.to_dict() for r in results)
    for field in VECTOR_PARITY_FIELDS + ("per_stream",):
        assert a[field] == b[field], field
    assert results[1].kills > 0


@requires_numpy
def test_vectorized_source_echo_matches_object_semantics():
    """The delayed source-echo corner (first delivery recorded, no
    re-flood) through the batch path's first-occurrence masks: a first
    ``_INJECTED`` cell is an echo, not a delivery and not a duplicate."""
    from repro.baselines.flood import FloodData

    runs = {}
    for kernel in ("object", "vectorized"):
        sim, net, nodes = flood_run(kernel, 16, 1, 3, "zero-cost")
        source = nodes[0]
        echoer = next(iter(source.active))
        events_before = sim.events_processed
        net.send(echoer, source.node_id,
                 FloodData(0, 0, 64, hops=3, path_delay=0.01, sent_at=sim.now))
        sim.run_until_idle()
        runs[kernel] = (sim, net, nodes, sim.events_processed - events_before)

    for kernel, (sim, net, nodes, events) in runs.items():
        source = nodes[0]
        assert source.delivered_count(0) == 1, kernel
        assert net.metrics.duplicates.get(source.node_id, 0) == 0, kernel
        assert events == 1, kernel
    assert snapshot(*runs["object"][:3]) == snapshot(*runs["vectorized"][:3])


def test_vectorized_kernel_without_numpy_is_a_clear_error(monkeypatch):
    """numpy is optional: importing the module works without it, while
    constructing the kernel names the missing dependency and the
    fallback."""
    import repro.core.flood_vectorized as fv
    from repro.errors import SimulationError

    monkeypatch.setattr(fv, "np", None)
    with pytest.raises(SimulationError, match="numpy"):
        build_static_flood_overlay(16, kernel="vectorized")


# ======================================================================
# BRISA kernels (DESIGN.md §11)
# ======================================================================
#
# The slotted BRISA kernel carries strictly more state than the flood
# one — tree-edge rows, stream levels, the packed Bloom bit-matrix and
# the maintenance cache — so its parity contract adds the structural
# plane to the flood contract: identical delivery records AND identical
# emerged structures (parent edges, levels, predictor positions),
# with the flat arrays agreeing cell-for-cell with the object-level
# StreamState they mirror.

from repro.config import BrisaConfig
from repro.core.brisa_slotted import SlottedBrisaKernel
from repro.experiments.common import Testbed as _Testbed
from repro.experiments.common import brisa_factory
from repro.experiments.scale_brisa import run_scale_brisa
from repro.experiments.scale_runner import ScaleRunner, spread_sources

#: The three predictor regimes of §II-D/§II-G; small Bloom filters keep
#: false-positive parent rejections reachable at test populations.
BRISA_CONFIGS = {
    "tree-path": lambda: BrisaConfig(mode="tree"),
    "dag-depth": lambda: BrisaConfig(mode="dag", num_parents=2),
    "dag-bloom": lambda: BrisaConfig(
        mode="dag", num_parents=2, cycle_predictor="bloom", bloom_bits=256
    ),
}


def brisa_run(kernel: str, n: int, messages: int, seed: int, config_kind: str,
              latency_kind: str = "zero-cost", streams: int = 1,
              churn: bool = False, loss_percent: float = 0.0,
              tail_probe: bool = False):
    """One recorded BRISA run; returns (testbed, sources).

    Mirrors ``run_scale_brisa``'s synthesized-bootstrap construction but
    with ``record_deliveries=True`` so the full Metrics record set is
    comparable.  ``churn=True`` schedules three mid-stream crashes plus
    two joiners (slot release + recycling on the slotted side)."""
    cfg = BRISA_CONFIGS[config_kind]()
    if tail_probe:
        cfg = dataclasses.replace(cfg, tail_probe=True)
    bed = _Testbed(
        seed=seed,
        latency=LATENCIES[latency_kind](seed),
        record_deliveries=True,
        loss_percent=loss_percent,
    )
    slot_kernel = None
    if kernel == "slotted":
        slot_kernel = SlottedBrisaKernel(bed.network, cfg)
        slot_kernel.bulk_rows = True
    try:
        bed.populate(
            n, brisa_factory(cfg, kernel=slot_kernel),
            bootstrap="synthesized", validate=True, defer_timers=True,
        )
    finally:
        if slot_kernel is not None:
            slot_kernel.bulk_rows = False
    if slot_kernel is not None:
        slot_kernel.install_rows(
            [node.node_id for node in bed.nodes], bed.last_topology
        )
    bed.stop_shuffles()
    sources = spread_sources(bed.nodes, streams)
    runner = ScaleRunner(
        bed.sim, bed.network, sources,
        messages=messages, rate=50.0, payload_bytes=64,
    )
    start = runner.schedule()
    if churn:
        _schedule_brisa_churn(bed, sources, start, span=messages / 50.0)
    runner.drain(start)
    return bed, sources


def _schedule_brisa_churn(bed, sources, start, span) -> None:
    """Three deterministic kills spread over the window + two joiners.

    Joiners arm no periodic timers (same idiom as the flood churn
    driver), so the heap still drains when the last repair settles."""
    net = bed.network
    net.autostart_timers = False
    protected = {s.node_id for s in sources}
    victims = [node for node in bed.nodes if node.node_id not in protected]
    picks = [victims[len(victims) // 4], victims[len(victims) // 2],
             victims[(3 * len(victims)) // 4]]
    for i, victim in enumerate(picks):
        bed.sim.call_at(start + span * (i + 1) / 5.0, net.crash, victim.node_id)
    for i in range(2):
        bed.sim.call_at(start + span * (i + 3) / 5.0 + 1e-4, bed.spawn_joiner)


def brisa_structure_snapshot(bed, streams: int) -> dict:
    """The §II-B structural plane, per stream: parent edges, levels and
    predictor positions of every live node — the state the slotted
    kernel re-homes into flat arrays."""
    out = {}
    for stream in range(streams):
        per = {}
        for node in bed.alive_nodes():
            state = node.streams.get(stream)
            per[node.node_id] = (
                sorted(node.tree_parents(stream)),
                None if state is None else state.hops,
                None if state is None else state.position,
            )
        out[stream] = per
    return out


def assert_brisa_arrays_consistent(bed, streams: int) -> None:
    """Every slot-plane cell must agree with the StreamState it mirrors
    (and the Bloom matrix row with the object-level int mask)."""
    kernel = bed.nodes[0].kernel
    m = bed.metrics
    for node in bed.alive_nodes():
        slot = node.slot
        assert kernel.slot_duplicates(slot) == m.duplicates.get(node.node_id, 0)
        for stream in range(streams):
            state = node.streams.get(stream)
            if state is None:
                continue
            plane = kernel.plane(stream)
            assert kernel.delivered_count(slot, stream) == len(state.delivered)
            assert plane.levels[slot] == (state.hops or 0)
            assert sorted(plane.parent_rows[slot]) == sorted(state.parents)
            assert sorted(plane.relay_rows[slot]) == sorted(
                p for p in node.active if p not in state.out_deactivated
            )
            assert plane.active_in[slot] == sum(
                1 for active in state.in_active.values() if active
            )
            if plane.matrix is not None:
                assert plane.matrix.as_int(slot) == (state.position or 0)


@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(
    n=st.integers(min_value=24, max_value=128),
    messages=st.integers(min_value=1, max_value=3),
    seed=st.integers(min_value=0, max_value=2**20),
    config_kind=st.sampled_from(sorted(BRISA_CONFIGS)),
    latency_kind=st.sampled_from(sorted(LATENCIES)),
)
@example(n=64, messages=2, seed=3, config_kind="tree-path", latency_kind="zero-cost")
@example(n=64, messages=2, seed=3, config_kind="dag-depth", latency_kind="zero-cost")
@example(n=64, messages=2, seed=3, config_kind="dag-bloom", latency_kind="zero-cost")
@example(n=48, messages=2, seed=11, config_kind="dag-depth", latency_kind="occupancy")
def test_slotted_brisa_matches_object_kernel(
    n, messages, seed, config_kind, latency_kind
):
    """Full-stack BRISA parity: delivery records, duplicates, byte
    totals, schedules AND the emerged structure, across every predictor
    and both latency regimes."""
    runs = {
        kernel: brisa_run(kernel, n, messages, seed, config_kind, latency_kind)
        for kernel in ("object", "slotted")
    }
    (bed_o, _), (bed_s, _) = runs["object"], runs["slotted"]
    assert snapshot(bed_o.sim, bed_o.network, bed_o.alive_nodes()) == snapshot(
        bed_s.sim, bed_s.network, bed_s.alive_nodes()
    )
    assert brisa_structure_snapshot(bed_o, 1) == brisa_structure_snapshot(bed_s, 1)
    assert_brisa_arrays_consistent(bed_s, 1)


def test_slotted_brisa_multistream_parity():
    """K concurrent trees over one overlay (§IV): per-plane counters,
    per-stream Metrics shards and per-stream structures all agree."""
    streams = 3
    runs = {
        kernel: brisa_run(kernel, 96, 3, seed=7, config_kind="dag-depth",
                          streams=streams)
        for kernel in ("object", "slotted")
    }
    (bed_o, _), (bed_s, _) = runs["object"], runs["slotted"]
    assert len(bed_o.metrics.streams) == streams
    assert snapshot(bed_o.sim, bed_o.network, bed_o.alive_nodes()) == snapshot(
        bed_s.sim, bed_s.network, bed_s.alive_nodes()
    )
    assert brisa_structure_snapshot(bed_o, streams) == brisa_structure_snapshot(
        bed_s, streams
    )
    assert_brisa_arrays_consistent(bed_s, streams)
    kernel = bed_s.nodes[0].kernel
    assert set(kernel.plane_of) == set(bed_s.metrics.streams)
    for stream, shard in bed_o.metrics.streams.items():
        plane = kernel.plane(stream)
        assert sum(plane.duplicates) == shard.duplicate_receptions


def test_brisa_kernels_agree_under_churn():
    """Mid-stream crashes + joiners: slot release, tree-edge-row and
    Bloom-row zeroing, slot recycling and the repair machinery must keep
    both kernels on the same simulation."""
    runs = {
        kernel: brisa_run(kernel, 96, 6, seed=5, config_kind="tree-path",
                          churn=True)
        for kernel in ("object", "slotted")
    }
    (bed_o, _), (bed_s, _) = runs["object"], runs["slotted"]
    assert len(bed_o.alive_nodes()) == 96 - 3 + 2
    assert snapshot(bed_o.sim, bed_o.network, bed_o.alive_nodes()) == snapshot(
        bed_s.sim, bed_s.network, bed_s.alive_nodes()
    )
    assert brisa_structure_snapshot(bed_o, 1) == brisa_structure_snapshot(bed_s, 1)
    assert_brisa_arrays_consistent(bed_s, 1)
    for bed in (bed_o, bed_s):
        bed.network.check_link_invariants()
    # Crashed nodes left the slot table; their recycled slots were
    # handed to the joiners (3 kills, 2 joins -> one slot still free).
    kernel = bed_s.nodes[0].kernel
    dead = [node.node_id for node in bed_s.nodes if not node.alive]
    assert len(dead) == 3
    assert not any(nid in kernel.slot_of for nid in dead)
    assert len(kernel._free) == 1
    assert kernel.capacity == 96  # joiners reused released slots


@pytest.mark.parametrize("config_kind", ["tree-path", "dag-depth"])
def test_brisa_kernels_agree_under_loss_with_tail_probe(config_kind):
    """Lossy links + the quiescence tail probe: the probe timer arms in
    the shared ``stream_state`` materialization and reads only fields the
    slotted fast path keeps current, so both kernels must stay on the
    same simulation — probes, retransmit serves and recovered-data
    cascades included."""
    runs = {
        kernel: brisa_run(kernel, 96, 4, seed=9, config_kind=config_kind,
                          loss_percent=15.0, tail_probe=True)
        for kernel in ("object", "slotted")
    }
    (bed_o, _), (bed_s, _) = runs["object"], runs["slotted"]
    snap_o = snapshot(bed_o.sim, bed_o.network, bed_o.alive_nodes())
    assert snap_o == snapshot(bed_s.sim, bed_s.network, bed_s.alive_nodes())
    assert snap_o["dropped_loss"] > 0
    assert brisa_structure_snapshot(bed_o, 1) == brisa_structure_snapshot(bed_s, 1)
    assert_brisa_arrays_consistent(bed_s, 1)


def test_brisa_kernel_rejects_predictor_mismatch():
    """One kernel serves one rule table: attaching a node whose config
    selects a different predictor is a hard error, not silent skew."""
    from repro.errors import SimulationError

    bed = _Testbed(seed=1, latency=ConstantLatency(0.001, seed=1))
    kernel = SlottedBrisaKernel(bed.network, BrisaConfig(mode="tree"))
    with pytest.raises(SimulationError):
        bed.populate(
            4,
            brisa_factory(
                BrisaConfig(mode="dag", num_parents=2), kernel=kernel
            ),
            bootstrap="synthesized",
        )


def test_unknown_brisa_kernel_rejected():
    with pytest.raises(ValueError):
        run_scale_brisa(16, 1, kernel="vectorized")


# ======================================================================
# Lossy links + non-uniform topologies (DESIGN.md §14)
# ======================================================================
#
# The loss model draws one coin per (message, destination) from its own
# ``derive(seed, "loss")`` stream, *after* the latency sample for that
# destination — so every kernel consumes the latency, protocol and loss
# streams in the identical order and the whole parity surface (delivery
# records, drop counters, schedules, peak_pending) must keep holding.
# The vectorized path masks lost destinations out of the wave arrays
# before scheduling; a fully-lost fan-out schedules no event at all on
# any kernel.

@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(
    n=st.integers(min_value=16, max_value=256),
    messages=st.integers(min_value=1, max_value=3),
    seed=st.integers(min_value=0, max_value=2**20),
    latency_kind=st.sampled_from(sorted(LATENCIES)),
    loss=st.floats(min_value=0.5, max_value=30.0),
    topology=st.sampled_from(["uniform", "powerlaw", "smallworld"]),
)
@example(n=128, messages=2, seed=1, latency_kind="zero-cost", loss=2.0,
         topology="powerlaw")
@example(n=128, messages=2, seed=1, latency_kind="occupancy", loss=10.0,
         topology="smallworld")
@example(n=64, messages=3, seed=42, latency_kind="zero-cost", loss=30.0,
         topology="uniform")
def test_slotted_kernel_matches_object_kernel_under_loss(
    n, messages, seed, latency_kind, loss, topology
):
    sim_o, net_o, nodes_o = flood_run(
        "object", n, messages, seed, latency_kind,
        topology=topology, loss_percent=loss,
    )
    sim_s, net_s, nodes_s = flood_run(
        "slotted", n, messages, seed, latency_kind,
        topology=topology, loss_percent=loss,
    )
    snap = snapshot(sim_o, net_o, nodes_o)
    assert snap == snapshot(sim_s, net_s, nodes_s)
    if loss >= 10.0 and n >= 64:
        assert snap["dropped_loss"] > 0  # the coin actually flipped
    assert snap["dropped"] == snap["dropped_loss"] + snap["dropped_crash"]
    assert_kernel_arrays_match_metrics(net_s, nodes_s, latency_kind)


@requires_numpy
@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(
    n=st.integers(min_value=16, max_value=256),
    messages=st.integers(min_value=1, max_value=3),
    seed=st.integers(min_value=0, max_value=2**20),
    latency_kind=st.sampled_from(sorted(LATENCIES)),
    loss=st.floats(min_value=0.5, max_value=30.0),
    topology=st.sampled_from(["uniform", "powerlaw", "smallworld"]),
)
@example(n=128, messages=2, seed=1, latency_kind="zero-cost", loss=2.0,
         topology="powerlaw")
@example(n=128, messages=2, seed=1, latency_kind="occupancy", loss=10.0,
         topology="smallworld")
@example(n=64, messages=3, seed=42, latency_kind="zero-cost", loss=30.0,
         topology="uniform")
def test_vectorized_kernel_matches_object_kernel_under_loss(
    n, messages, seed, latency_kind, loss, topology
):
    """The wave-array masking must keep the batched path on the object
    path's exact simulation: same lost (message, destination) pairs,
    same surviving schedules (a fully-lost fan-out schedules nothing),
    same drop counters, same peak_pending."""
    sim_o, net_o, nodes_o = flood_run(
        "object", n, messages, seed, latency_kind,
        topology=topology, loss_percent=loss,
    )
    sim_v, net_v, nodes_v = flood_run(
        "vectorized", n, messages, seed, latency_kind,
        topology=topology, loss_percent=loss,
    )
    snap = snapshot(sim_o, net_o, nodes_o)
    assert snap == snapshot(sim_v, net_v, nodes_v)
    if loss >= 10.0 and n >= 64:
        assert snap["dropped_loss"] > 0  # the coin actually flipped
    assert snap["dropped"] == snap["dropped_loss"] + snap["dropped_crash"]
    assert_kernel_arrays_match_metrics(net_v, nodes_v, latency_kind)


def test_loss_does_not_perturb_latency_or_protocol_draws():
    """RNG-stream isolation: the loss coin comes from its own
    ``derive(seed, "loss")`` stream and is flipped *after* the latency
    sample for each destination, so an identical send sequence run with
    loss on drops some arrivals but never moves the surviving ones."""
    from repro.baselines.flood import FloodData
    from repro.sim.engine import Simulator
    from repro.sim.latency import ClusterLatency
    from repro.sim.monitor import Metrics
    from repro.sim.network import Network

    def run(loss: float):
        sim = Simulator(seed=9)
        net = Network(
            sim, ClusterLatency(seed=9), Metrics(record_deliveries=False),
            loss_percent=loss,
        )
        arrivals: dict = {}

        class Recorder:
            __slots__ = ("node_id", "alive")

            def __init__(self, nid):
                self.node_id = nid
                self.alive = True

            def handle_message(self, src, msg):
                arrivals[(self.node_id, msg.seq)] = sim.now

        for i in range(33):
            net.nodes[i] = Recorder(i)
        for seq in range(4):
            msg = FloodData(0, seq, 64)
            sim.call_at(seq * 0.1, net.send_many, 0, list(range(1, 33)), msg)
        sim.run_until_idle()
        return arrivals, net.metrics.counters.get("dropped_loss", 0)

    base, dropped_base = run(0.0)
    lossy, dropped = run(40.0)
    assert dropped_base == 0 and dropped > 0
    assert set(lossy) < set(base)  # strictly fewer arrivals...
    for key, t in lossy.items():
        assert base[key] == t  # ...at byte-identical times


def test_loss_rate_validated():
    from repro.sim.engine import Simulator
    from repro.sim.monitor import Metrics
    from repro.sim.network import Network

    for bad in (-1.0, 100.0, 250.0):
        with pytest.raises(ValueError):
            Network(
                Simulator(seed=1), ConstantLatency(0.001, seed=1), Metrics(),
                loss_percent=bad,
            )
