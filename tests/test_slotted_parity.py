"""Differential harness: slotted vs object flood kernels (DESIGN.md §9).

The slotted kernel's contract is *draw-for-draw equivalence* with the
reference object implementation: for one seed, both kernels must produce
identical delivery sets (with timestamps, senders, hops and path
delays), duplicate counts, per-node byte totals and engine schedules —
under the zero-cost fused path and under occupancy-charging latency
models, with and without churn.  These property tests pin that contract
over random populations (16–512 nodes), stream lengths and seeds; any
divergence is a kernel bug by definition.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, example, given, settings
from hypothesis import strategies as st

from repro.baselines.flood import SlottedFloodKernel
from repro.experiments.scale_flood import build_static_flood_overlay, run_scale_flood
from repro.sim.latency import ConstantLatency, OccupancyLatency

#: Latency regimes the kernels must agree under: the uniform zero-cost
#: fused path (fan sink engaged) and deterministic occupancy charging
#: (per-message queueing chain, no fan sink).
LATENCIES = {
    "zero-cost": lambda seed: ConstantLatency(0.001, seed=seed),
    "occupancy": lambda seed: OccupancyLatency(
        0.001, tx_overhead=0.0001, rx_overhead=0.0005, seed=seed
    ),
}


def flood_run(kernel: str, n: int, messages: int, seed: int, latency_kind: str,
              streams: int = 1):
    """One recorded flood run; returns (sim, net, nodes).

    ``streams`` > 1 drives K concurrent publishers spread over the
    population (the DESIGN.md §10 workload) through the same injection
    window."""
    from repro.experiments.scale_runner import spread_sources

    sim, net, nodes = build_static_flood_overlay(
        n,
        degree=5,
        seed=seed,
        latency=LATENCIES[latency_kind](seed),
        record_deliveries=True,
        kernel=kernel,
    )
    start = sim.now
    for stream, source in enumerate(spread_sources(nodes, streams)):
        for seq in range(messages):
            sim.call_at(start + seq / 50.0, source.inject, stream, seq, 64)
    sim.run_until_idle()
    return sim, net, nodes


def snapshot(sim, net, nodes) -> dict:
    """Everything the parity contract covers, as comparable plain data."""
    m = net.metrics
    return {
        "now": sim.now,
        "events": sim.events_processed,
        "deliveries": {
            key: {
                nid: (rec.time, rec.sender, rec.hops, rec.path_delay)
                for nid, rec in per_node.items()
            }
            for key, per_node in m.deliveries.items()
        },
        "duplicates": dict(m.duplicates),
        "bytes_sent": {nid: dict(per) for nid, per in m.bytes_sent.items()},
        "bytes_received": {nid: dict(per) for nid, per in m.bytes_received.items()},
        "msg_counts": {kind: dict(per) for kind, per in m.msg_counts.items()},
        "delivered_counts": {
            node.node_id: {
                stream: node.delivered_count(stream) for stream in m.streams
            }
            for node in nodes
        },
        "stream_shards": {
            stream: (
                shard.first_deliveries,
                shard.duplicate_receptions,
                shard.payload_bytes,
            )
            for stream, shard in m.streams.items()
        },
        "dropped": m.counters.get("dropped", 0),
    }


def assert_kernel_arrays_match_metrics(net, nodes, latency_kind: str) -> None:
    """The slotted arrays must agree with the mirrored Metrics records."""
    kernel: SlottedFloodKernel = nodes[0].kernel
    m = net.metrics
    for node in nodes:
        if not node.alive:
            continue
        slot = node.slot
        assert kernel.slot_duplicates(slot) == m.duplicates.get(node.node_id, 0)
        if latency_kind == "zero-cost":
            # The fan sink owns receive accounting on this path; in
            # mirror mode it feeds Metrics too, so both must agree.
            assert kernel.rx_bytes[slot] == sum(
                m.bytes_received.get(node.node_id, {}).values()
            )


@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(
    n=st.integers(min_value=16, max_value=512),
    messages=st.integers(min_value=1, max_value=3),
    seed=st.integers(min_value=0, max_value=2**20),
    latency_kind=st.sampled_from(sorted(LATENCIES)),
)
@example(n=16, messages=1, seed=0, latency_kind="zero-cost")
@example(n=512, messages=3, seed=1, latency_kind="zero-cost")
@example(n=512, messages=3, seed=1, latency_kind="occupancy")
@example(n=257, messages=2, seed=99, latency_kind="occupancy")
def test_slotted_kernel_matches_object_kernel(n, messages, seed, latency_kind):
    sim_o, net_o, nodes_o = flood_run("object", n, messages, seed, latency_kind)
    sim_s, net_s, nodes_s = flood_run("slotted", n, messages, seed, latency_kind)
    assert snapshot(sim_o, net_o, nodes_o) == snapshot(sim_s, net_s, nodes_s)
    assert_kernel_arrays_match_metrics(net_s, nodes_s, latency_kind)


@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(
    n=st.integers(min_value=16, max_value=256),
    messages=st.integers(min_value=1, max_value=3),
    streams=st.integers(min_value=2, max_value=4),
    seed=st.integers(min_value=0, max_value=2**20),
    latency_kind=st.sampled_from(sorted(LATENCIES)),
)
@example(n=64, messages=2, streams=4, seed=0, latency_kind="zero-cost")
@example(n=256, messages=3, streams=3, seed=7, latency_kind="occupancy")
def test_multistream_parity(n, messages, streams, seed, latency_kind):
    """K concurrent streams must stay draw-for-draw equivalent across
    kernels (DESIGN.md §10): per-stream slot planes vs per-node dicts,
    including the per-stream Metrics shards."""
    sim_o, net_o, nodes_o = flood_run(
        "object", n, messages, seed, latency_kind, streams=streams
    )
    sim_s, net_s, nodes_s = flood_run(
        "slotted", n, messages, seed, latency_kind, streams=streams
    )
    assert len(net_o.metrics.streams) == streams
    assert snapshot(sim_o, net_o, nodes_o) == snapshot(sim_s, net_s, nodes_s)
    assert_kernel_arrays_match_metrics(net_s, nodes_s, latency_kind)
    # The slotted planes' per-stream counters agree with the object
    # path's sharded Metrics, stream by stream.
    kernel = nodes_s[0].kernel
    assert set(kernel.plane_of) == set(net_s.metrics.streams)
    for stream, shard in net_o.metrics.streams.items():
        plane = kernel.plane(stream)
        assert sum(plane.duplicates) == shard.duplicate_receptions


@settings(max_examples=8, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    n=st.integers(min_value=64, max_value=256),
    churn=st.floats(min_value=1.0, max_value=12.0),
    seed=st.integers(min_value=0, max_value=2**20),
)
@example(n=256, churn=8.0, seed=11)
def test_kernels_agree_under_churn(n, churn, seed):
    """Churn exercises slot recycling, CSR-link purging and the full
    HyParView repair machinery — both kernels must still walk the exact
    same simulation (delivered counts, receptions, kills, joins, events,
    clock)."""
    results = [
        run_scale_flood(n, 8, seed=seed, kernel=kernel, churn_percent=churn)
        for kernel in ("object", "slotted")
    ]
    a, b = (r.to_dict() for r in results)
    for field in (
        "deliveries", "receptions", "events", "sim_time", "delivered_fraction",
        "kills", "joins", "survivors", "peak_pending",
    ):
        assert a[field] == b[field], field


def test_kernels_agree_under_multistream_churn():
    """Concurrent streams + churn: slot-plane recycling across every
    plane must keep the two kernels on the same simulation, stream by
    stream."""
    results = [
        run_scale_flood(192, 6, seed=9, kernel=kernel, churn_percent=6.0, streams=3)
        for kernel in ("object", "slotted")
    ]
    a, b = (r.to_dict() for r in results)
    for field in (
        "deliveries", "receptions", "events", "sim_time", "delivered_fraction",
        "kills", "joins", "survivors", "peak_pending", "per_stream",
    ):
        assert a[field] == b[field], field
    assert a["streams"] == 3 and len(a["per_stream"]) == 3
    assert results[0].kills > 0


def test_slotted_source_echo_matches_object_semantics():
    """The source hearing its own message back is a recorded first
    delivery but not a re-flood — the subtlest corner of the object
    path's record/seen split.  On a static uniform-delay overlay every
    neighbour's first copy comes from the source itself (so the exclusion
    rule suppresses the echo); churn reordering makes it reachable, so it
    is triggered here explicitly on both kernels."""
    from repro.baselines.flood import FloodData

    runs = {}
    for kernel in ("object", "slotted"):
        sim, net, nodes = flood_run(kernel, 16, 1, 3, "zero-cost")
        source = nodes[0]
        echoer = next(iter(source.active))
        assert source.node_id not in net.metrics.deliveries[(0, 0)]
        events_before = sim.events_processed
        # A late echo of the source's own message, as a repaired overlay
        # path would produce it.
        net.send(echoer, source.node_id,
                 FloodData(0, 0, 64, hops=3, path_delay=0.01, sent_at=sim.now))
        sim.run_until_idle()
        runs[kernel] = (sim, net, nodes, sim.events_processed - events_before)

    for kernel, (sim, net, nodes, events) in runs.items():
        source = nodes[0]
        rec = net.metrics.deliveries[(0, 0)][source.node_id]
        assert rec.hops == 4, kernel  # recorded as a first delivery...
        assert source.delivered_count(0) == 1, kernel  # ...counted once...
        assert net.metrics.duplicates.get(source.node_id, 0) == 0, kernel
        assert events == 1, kernel  # ...and not re-flooded (delivery only)
    assert snapshot(*runs["object"][:3]) == snapshot(*runs["slotted"][:3])


def test_unknown_kernel_rejected():
    with pytest.raises(ValueError):
        build_static_flood_overlay(16, kernel="vectorized")
    with pytest.raises(ValueError):
        run_scale_flood(16, 1, kernel="bogus")
