"""Integration tests: DAG emergence with depth labels (§II-G)."""

import networkx as nx
import pytest

from repro.config import BrisaConfig, StreamConfig
from repro.core.structure import dag_depths, parent_counts
from repro.experiments.common import build_brisa_testbed


@pytest.fixture(scope="module")
def dag_run():
    cfg = BrisaConfig(mode="dag", num_parents=2)
    bed = build_brisa_testbed(64, seed=21, config=cfg)
    source = bed.choose_source()
    result = bed.run_stream(source, StreamConfig(count=40, rate=5.0, payload_bytes=512))
    return bed, source, result


class TestDagEmergence:
    def test_all_messages_delivered(self, dag_run):
        _, _, result = dag_run
        assert result.delivered_fraction() == 1.0

    def test_structure_is_acyclic(self, dag_run):
        _, source, result = dag_run
        g = result.structure()
        assert nx.is_directed_acyclic_graph(g)

    def test_structure_covers_all_nodes(self, dag_run):
        bed, source, result = dag_run
        ok, reason = result.structure_ok()
        assert ok, reason

    def test_nodes_obtain_two_parents(self, dag_run):
        """§II-G: 'In our experiments, nodes always obtained the desired
        number of parents' — allow a small depth-false-negative shortfall
        at nodes right below the source."""
        bed, source, result = dag_run
        g = result.structure()
        counts = parent_counts(g, source.node_id)
        assert all(1 <= c <= 2 for c in counts.values())
        two_parents = sum(1 for c in counts.values() if c == 2)
        assert two_parents >= len(counts) * 0.8

    def test_parent_depth_strictly_smaller(self, dag_run):
        """The invariant that makes depth labels cycle-safe."""
        bed, source, result = dag_run
        for node in bed.alive_nodes():
            if node is source:
                continue
            state = node.streams.get(0)
            if state is None or state.position is None:
                continue
            for parent, meta in state.parent_meta.items():
                if meta is not None:
                    assert meta < state.position

    def test_duplicates_bounded_by_parent_count(self, dag_run):
        """A 2-parent DAG delivers at most 2 copies per message in steady
        state (§II-B: 'in a DAG, it is significantly reduced')."""
        bed, source, result = dag_run
        n = len(result.receivers())
        dups = sum(result.duplicates_per_node())
        # Steady state: <= 1 duplicate per node per message, plus the
        # bootstrap flood allowance.
        assert dups <= n * 40 * 1.2 + n * 10

    def test_dag_depth_not_smaller_than_tree_depth(self, dag_run):
        """Fig. 6: DAG depths (longest path) exceed tree depths."""
        bed, source, result = dag_run
        g = result.structure()
        longest = dag_depths(g, source.node_id)
        shortest = nx.single_source_shortest_path_length(g, source.node_id)
        assert all(longest[n] >= shortest[n] for n in longest)


class TestDepthMaintenance:
    def test_depth_updates_propagate(self):
        """Demoting a node pushes DepthUpdate messages to its children."""
        cfg = BrisaConfig(mode="dag", num_parents=2)
        bed = build_brisa_testbed(48, seed=23, config=cfg)
        source = bed.choose_source()
        bed.run_stream(source, StreamConfig(count=20, rate=5.0, payload_bytes=64))
        counts = bed.metrics.msg_counts.get("brisa_depth_update", {})
        # Depth maintenance may or may not trigger depending on timing, but
        # the invariant must hold regardless (checked above); when it does
        # trigger, children must have consistent depths, which
        # test_parent_depth_strictly_smaller already verifies. Here we only
        # assert the machinery does not crash and depths are set.
        for node in bed.alive_nodes():
            state = node.streams.get(0)
            if state is not None and not state.is_source and state.delivered:
                assert state.position is not None

    def test_more_parents_more_robust_less_frugal(self):
        """3-parent DAGs deliver more copies than 2-parent DAGs."""

        def copies(num_parents):
            cfg = BrisaConfig(mode="dag", num_parents=num_parents)
            bed = build_brisa_testbed(48, seed=29, config=cfg)
            source = bed.choose_source()
            result = bed.run_stream(
                source, StreamConfig(count=20, rate=5.0, payload_bytes=64)
            )
            return sum(result.duplicates_per_node())

        assert copies(3) > copies(2) * 0.9  # weakly monotone under noise
