"""Tests for the TAG baseline (§III-D)."""

import pytest

from repro.config import StreamConfig, TagConfig
from repro.experiments.common import build_tag_testbed

FAST_TAG = TagConfig(
    pull_period=0.1, pull_batch=8, gossip_pull_period=0.5, min_parent_age=1.0
)


def tag_run(n=24, msgs=20, seed=3, cfg=FAST_TAG, drain=30.0):
    bed, tracker = build_tag_testbed(n, seed=seed, tag_config=cfg)
    root = bed.nodes[0]
    result = bed.run_stream(
        root, StreamConfig(count=msgs, rate=5.0, payload_bytes=128), drain=drain
    )
    return bed, tracker, root, result


class TestListConstruction:
    def test_list_sorted_by_join_time(self):
        bed, tracker, _, _ = tag_run(n=16)
        order = {nid: i for i, nid in enumerate(tracker.members)}
        for node in bed.alive_nodes():
            if node.pred is not None:
                assert order[node.pred] < order[node.node_id]

    def test_pred_succ_symmetry(self):
        bed, tracker, _, _ = tag_run(n=16)
        by_id = {n.node_id: n for n in bed.alive_nodes()}
        for node in bed.alive_nodes():
            if node.succ is not None and node.succ in by_id:
                assert by_id[node.succ].pred == node.node_id

    def test_every_node_settles_with_parent(self):
        bed, tracker, root, _ = tag_run(n=24)
        for node in bed.alive_nodes():
            if node is root:
                continue
            assert node.joined
            assert node.parent is not None

    def test_max_children_respected(self):
        bed, tracker, root, _ = tag_run(n=32, seed=4)
        for node in bed.alive_nodes():
            assert len(node.children) <= FAST_TAG.max_children + 1  # root slack

    def test_construction_probes_recorded(self):
        bed, tracker, _, _ = tag_run(n=24, seed=5)
        probes = bed.metrics.construction_probes
        assert len(probes) >= 20
        assert all(p.duration >= 0 for p in probes)

    def test_gossip_partners_collected(self):
        bed, tracker, _, _ = tag_run(n=32, seed=6)
        with_partners = [n for n in bed.alive_nodes() if n.partners]
        assert len(with_partners) >= len(bed.alive_nodes()) * 0.5


class TestPullDissemination:
    def test_root_stream_reaches_all(self):
        bed, tracker, root, result = tag_run(n=24, msgs=20, seed=7)
        assert result.delivered_fraction() == 1.0

    def test_pull_latency_exceeds_push(self):
        """Pull adds at least ~pull_period/2 per tree hop."""
        bed, tracker, root, result = tag_run(n=24, msgs=10, seed=8)
        delays = []
        for seq in range(10):
            inj = bed.metrics.injections[(0, seq)]
            for nid, rec in bed.metrics.deliveries[(0, seq)].items():
                delays.append(rec.time - inj)
        assert max(delays) > FAST_TAG.pull_period  # at least one pull round

    def test_bounded_batch_throttles_throughput(self):
        """With pull capacity below the injection rate, the backlog drains
        only after injections stop — TAG's Table II latency penalty."""
        slow = TagConfig(
            pull_period=0.4, pull_batch=1, gossip_pull_period=2.0, min_parent_age=1.0
        )
        bed, tracker = build_tag_testbed(8, seed=9, tag_config=slow)
        root = bed.nodes[0]
        stream = StreamConfig(count=40, rate=5.0, payload_bytes=64)
        start = bed.sim.now
        result = bed.run_stream(root, stream, drain=90.0)
        assert result.delivered_fraction() == 1.0
        last_delivery = max(
            rec.time
            for seq in range(stream.count)
            for rec in bed.metrics.deliveries[(0, seq)].values()
        )
        # Injections end after 7.8 s, but the 2.5 msg/s pull capacity needs
        # ~16 s per hop chain to drain 40 messages.
        assert last_delivery - start > stream.duration * 1.5


class TestFailureHandling:
    def test_parent_failure_soft_repair_via_list(self):
        bed, tracker, root, _ = tag_run(n=24, seed=10)
        victim_child = next(
            n for n in bed.alive_nodes()
            if n.parent is not None and n.parent != root.node_id
            and n.pred is not None and n.pred != n.parent
        )
        dead = victim_child.parent
        bed.network.crash(dead)
        bed.sim.run(until=bed.sim.now + 30.0)
        assert victim_child.parent is not None
        assert victim_child.parent != dead
        repairs = [r for r in bed.metrics.repair_events if r.node == victim_child.node_id]
        assert repairs and repairs[0].duration > 0

    def test_broken_list_forces_hard_reinsertion(self):
        bed, tracker, root, _ = tag_run(n=24, seed=11)
        # Find a node and kill parent AND its pred/pred2 simultaneously to
        # break the list around it.
        child = next(
            n for n in bed.alive_nodes()
            if n.parent is not None and n.pred is not None
        )
        victims = {child.parent, child.pred}
        if child.pred2 is not None:
            victims.add(child.pred2)
        victims.discard(child.node_id)
        victims.discard(root.node_id)
        for v in victims:
            bed.network.crash(v)
        bed.sim.run(until=bed.sim.now + 40.0)
        assert child.alive
        # The node recovered some parent eventually.
        if child.parent is not None:
            assert child.parent not in victims

    def test_stream_continues_after_churn(self):
        bed, tracker, root, _ = tag_run(n=24, msgs=40, seed=12, drain=40.0)
        rng = bed.sim.rng("kill")
        victims = rng.sample([n for n in bed.alive_nodes() if n is not root], 4)
        for v in victims:
            bed.network.crash(v.node_id)
        stream2 = StreamConfig(count=20, rate=5.0, payload_bytes=64, stream_id=1)
        result2 = bed.run_stream(root, stream2, drain=60.0)
        # All surviving nodes that are still attached eventually receive;
        # allow stragglers mid-repair.
        assert result2.delivered_fraction() > 0.9
