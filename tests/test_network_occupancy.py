"""Tests for the occupancy-fused fan-out (DESIGN.md §8).

The fused path is an exact-arithmetic reformulation of the per-message
occupancy chain: for deterministic cost models, a fan-out through
``send_many`` must produce byte/message totals, busy horizons, delivery
timestamps *and* delivery order identical to the same messages sent one
``send`` at a time — the accounting-parity requirement on
``Metrics.account_send_many``.
"""

import pytest

from repro.sim.engine import Simulator
from repro.sim.latency import ClusterLatency, OccupancyLatency
from repro.sim.message import Message
from repro.sim.monitor import Metrics
from repro.sim.network import Network


class Payload(Message):
    kind = "occ_payload"
    __slots__ = ("seq",)

    def __init__(self, seq: int = 0) -> None:
        self.seq = seq

    def body_bytes(self) -> int:
        return 512


class Recorder:
    """Minimal terminal receiver logging (time, src, seq) per delivery."""

    def __init__(self, node_id, sim, log):
        self.node_id = node_id
        self.alive = True
        self.sim = sim
        self.log = log

    def handle_message(self, src, msg):
        self.log.append((self.sim.now, self.node_id, msg.seq))


def build(model, n=10):
    sim = Simulator(seed=1)
    net = Network(sim, model, Metrics(record_deliveries=False))
    log = []
    for i in range(n):
        net.nodes[i] = Recorder(i, sim, log)
    return sim, net, log


def snapshot(net):
    m = net.metrics
    return (
        {k: dict(v) for k, v in m.bytes_sent.items()},
        {k: dict(v) for k, v in m.bytes_received.items()},
        {k: dict(v) for k, v in m.msg_counts.items()},
        dict(m.counters),
    )


MODELS = [
    dict(tx_overhead=0.0, rx_overhead=0.0005),          # receive-bound
    dict(tx_overhead=0.0003, rx_overhead=0.0005),       # both directions
    dict(tx_overhead=0.0002, rx_overhead=0.0, node_bandwidth=1e6),  # NIC-bound
]


class TestFusedOccupancyParity:
    @pytest.mark.parametrize("kw", MODELS, ids=["rx", "tx+rx", "nic"])
    def test_send_many_matches_per_message_sends(self, kw):
        def run(batched):
            sim, net, log = build(OccupancyLatency(0.001, **kw, seed=5))
            dsts = list(range(1, 10))

            def emit(seq):
                msg = Payload(seq)
                if batched:
                    net.send_many(0, dsts, msg)
                else:
                    for d in dsts:
                        net.send(0, d, msg)

            # Back-to-back bursts (backlogged horizons) and a late one
            # (drained horizons, the grouped-completion regime).
            sim.call_at(0.0, emit, 0)
            sim.call_at(0.0002, emit, 1)
            sim.call_at(0.5, emit, 2)
            sim.run_until_idle()
            return log, dict(net._busy), sim.now, snapshot(net)

        per_message = run(False)
        fused = run(True)
        # Identical delivery log: same timestamps, same order, same
        # receivers — and identical byte/message totals (the
        # account_send_many parity requirement).
        assert per_message == fused

    def test_zero_cost_fan_parity_with_per_message(self):
        # The pre-existing zero-cost fused tier obeys the same contract.
        def run(batched):
            from repro.sim.latency import ConstantLatency

            sim, net, log = build(ConstantLatency(0.001, seed=5))
            dsts = list(range(1, 10))
            msg = Payload(7)
            if batched:
                net.send_many(0, dsts, msg)
            else:
                for d in dsts:
                    net.send(0, d, msg)
            sim.run_until_idle()
            return log, snapshot(net)

        assert run(False) == run(True)

    def test_sampled_occupancy_model_keeps_full_chain_parity(self):
        # ClusterLatency samples propagation per message but its costs
        # are deterministic: the fused horizon charging must reproduce
        # the per-message accounting totals (timestamps differ by draw
        # order, so only totals are compared).
        def run(batched):
            sim, net, log = build(ClusterLatency(seed=5))
            dsts = list(range(1, 10))
            msg = Payload(7)
            if batched:
                net.send_many(0, dsts, msg)
            else:
                for d in dsts:
                    net.send(0, d, msg)
            sim.run_until_idle()
            return len(log), snapshot(net), dict(net._busy)[0]

        n_a, totals_a, busy_a = run(False)
        n_b, totals_b, busy_b = run(True)
        assert n_a == n_b == 9
        assert totals_a == totals_b
        assert busy_a == pytest.approx(busy_b)


class TestFusedOccupancyBehaviour:
    def test_free_horizon_fan_rides_two_events(self):
        # One arrival event + one grouped completion event for the whole
        # fan-out (receive-bound model, drained horizons).
        sim, net, log = build(OccupancyLatency(0.001, rx_overhead=0.0005, seed=5))
        net.send_many(0, list(range(1, 10)), Payload(0))
        events = sim.run_until_idle()
        assert events == 2
        assert len(log) == 9
        # Every completion at the same instant, FIFO order preserved.
        assert [entry[1] for entry in log] == list(range(1, 10))
        assert {entry[0] for entry in log} == {0.001 + 0.0005}

    def test_backlogged_horizons_split_completion_groups(self):
        sim, net, log = build(OccupancyLatency(0.001, rx_overhead=0.0005, seed=5))
        # Pre-charge one receiver's horizon so its completion diverges.
        net.send(5, [d for d in range(1, 10) if d != 5][0], Payload(9))
        net.send_many(0, [d for d in range(1, 10) if d != 5], Payload(0))
        sim.run_until_idle()
        times = sorted(entry[0] for entry in log)
        assert len(log) == 9
        assert times[0] < times[-1]  # the busy receiver finished later

    def test_dead_receiver_dropped_and_counted(self):
        sim, net, log = build(OccupancyLatency(0.001, rx_overhead=0.0005, seed=5))
        net.nodes[3].alive = False
        net.send_many(0, list(range(1, 6)), Payload(0))
        sim.run_until_idle()
        assert len(log) == 4
        assert net.metrics.counters["dropped"] == 1
        # The dead node's bytes were never accounted as received.
        assert 3 not in net.metrics.bytes_received

    def test_tx_charging_serializes_the_sender(self):
        sim, net, log = build(
            OccupancyLatency(0.001, tx_overhead=0.001, rx_overhead=0.0, seed=5)
        )
        net.send_many(0, [1, 2, 3], Payload(0))
        sim.run_until_idle()
        # Arrivals step by tx_overhead, FIFO in send order.
        assert [(round(t, 9), d) for t, d, _ in log] == [
            (0.002, 1), (0.003, 2), (0.004, 3),
        ]
        assert net._busy[0] == pytest.approx(0.003)


class TestOccupancyLatencyModel:
    def test_validation(self):
        with pytest.raises(ValueError):
            OccupancyLatency(-0.1)
        with pytest.raises(ValueError):
            OccupancyLatency(0.001, tx_overhead=-1.0)
        with pytest.raises(ValueError):
            OccupancyLatency(0.001, rx_overhead=-1.0)

    def test_costs_and_flags(self):
        m = OccupancyLatency(0.002, tx_overhead=0.0001, rx_overhead=0.0005,
                             node_bandwidth=1e6)
        assert m.uniform_delay == 0.002
        assert m.expected_owd(1, 2) == 0.002
        assert m.occupancy_batchable()
        assert not m.zero_cost()
        assert m.tx_cost(1, 1000) == pytest.approx(0.0001 + 0.001)
        assert m.rx_cost(1, 1000) == pytest.approx(0.0005 + 0.001)
        with pytest.raises(ValueError):
            OccupancyLatency(0.001, node_bandwidth=-1e6)
        with pytest.raises(ValueError):
            OccupancyLatency(0.001, node_bandwidth=0)

    def test_sampled_cost_override_falls_back_to_per_message_path(self):
        # A subclass overriding cost methods without declaring them
        # deterministic must not be batch-charged (conservative default,
        # same policy as zero_cost's override detection).
        class SampledCosts(OccupancyLatency):
            deterministic_occupancy = None  # back to auto-detection

            def rx_cost(self, node, size_bytes):
                return self._rng.uniform(0.0001, 0.001)

        model = SampledCosts(0.001, seed=5)
        assert not model.occupancy_batchable()
        sim, net, log = build(model)
        assert not net._batch_occupancy
        net.send_many(0, list(range(1, 6)), Payload(0))
        events = sim.run_until_idle()
        assert len(log) == 5
        # Full per-message chain: one _deliver + one _process per message.
        assert events == 10
        # The in-repo deterministic overrides keep the fused path.
        assert ClusterLatency(seed=1).occupancy_batchable()
        from repro.sim.latency import PlanetLabLatency

        assert PlanetLabLatency(seed=1).occupancy_batchable()

    def test_occupancy_microbench_smoke(self):
        from repro.experiments.scale_flood import occupancy_microbench

        res = occupancy_microbench(rounds=200, fanout=4, nodes=32, repeats=1)
        assert res.per_message_deliveries_per_sec > 0
        assert res.fused_deliveries_per_sec > 0
        assert res.speedup > 0
        assert "fused fan-out" in res.summary()
        assert res.to_dict()["speedup"] == res.speedup
