"""Tests for the synthesized-overlay bootstrap (DESIGN.md §7).

Covers the ``Testbed.populate`` clock regression, the synthesized-vs-
simulated overlay equivalence invariants, and checkpoint round-tripping
through BrisaNode state.
"""

import pytest

from repro.config import HyParViewConfig, StreamConfig
from repro.errors import SimulationError
from repro.experiments.bootstrap import (
    audit_overlay,
    assert_valid_overlay,
    default_degree,
    load_overlay,
    save_overlay,
    synthesize_passive,
    synthesize_topology,
)
from repro.experiments.common import (  # alias: avoid pytest collection
    Testbed as _Testbed,
    brisa_factory,
    build_brisa_testbed,
    build_flood_testbed,
)
from repro.sim.rng import derive


# ----------------------------------------------------------------------
# Satellite regression: populate()'s settle deadline must be clock-relative
# ----------------------------------------------------------------------
class TestPopulateTwice:
    def test_second_populate_settles_fully(self):
        # The seed bug ran the settle phase until an *absolute* deadline
        # computed as if sim.now == 0; a second populate call under-ran
        # (or no-opped) while its joins were still pending.
        bed = _Testbed(seed=11)
        bed.populate(8, brisa_factory(), join_spacing=0.1, settle=5.0)
        t1 = bed.sim.now
        assert t1 == pytest.approx(8 * 0.1 + 5.0)
        bed.populate(8, brisa_factory(), join_spacing=0.1, settle=5.0)
        assert bed.sim.now == pytest.approx(t1 + 8 * 0.1 + 5.0)
        assert len(bed.nodes) == 16
        # Every scheduled join actually ran and wired into the overlay.
        assert all(node.degree >= 1 for node in bed.nodes)

    def test_populate_after_prior_run_still_settles(self):
        bed = _Testbed(seed=12)
        bed.run(until=50.0)
        bed.populate(6, brisa_factory(), join_spacing=0.1, settle=4.0)
        assert bed.sim.now == pytest.approx(50.0 + 6 * 0.1 + 4.0)
        assert all(node.degree >= 1 for node in bed.nodes)


# ----------------------------------------------------------------------
# Topology synthesis primitives
# ----------------------------------------------------------------------
class TestSynthesizeTopology:
    def test_ring_guarantees_min_degree_two(self):
        adj = synthesize_topology(50, degree=4, max_degree=8, rng=derive(1, "t"))
        assert all(len(peers) >= 2 for peers in adj)

    def test_respects_max_degree_cap(self):
        adj = synthesize_topology(100, degree=7, max_degree=8, rng=derive(2, "t"))
        assert max(len(peers) for peers in adj) <= 8

    def test_symmetric(self):
        adj = synthesize_topology(40, degree=5, max_degree=10, rng=derive(3, "t"))
        for a, peers in enumerate(adj):
            for b in peers:
                assert a in adj[b]

    def test_rejects_degenerate_input(self):
        rng = derive(4, "t")
        with pytest.raises(ValueError):
            synthesize_topology(2, degree=2, max_degree=4, rng=rng)
        with pytest.raises(ValueError):
            synthesize_topology(10, degree=1, max_degree=4, rng=rng)
        with pytest.raises(ValueError):
            synthesize_topology(10, degree=6, max_degree=4, rng=rng)

    def test_passive_views_exclude_self_and_neighbors(self):
        adj = synthesize_topology(60, degree=4, max_degree=8, rng=derive(5, "t"))
        views = synthesize_passive(60, adj, size=8, rng=derive(5, "p"))
        for i, view in enumerate(views):
            assert i not in view
            assert not (view & adj[i])
            assert len(view) <= 8

    def test_passive_views_terminate_on_tiny_populations(self):
        adj = synthesize_topology(4, degree=2, max_degree=4, rng=derive(6, "t"))
        views = synthesize_passive(4, adj, size=16, rng=derive(6, "p"))
        assert all(len(v) <= 3 for v in views)


# ----------------------------------------------------------------------
# Synthesized vs settled-simulated equivalence
# ----------------------------------------------------------------------
class TestOverlayEquivalence:
    def test_synthesized_passes_settled_ramp_invariants(self):
        for build in (build_brisa_testbed, build_flood_testbed):
            bed = build(128, seed=7, bootstrap="synthesized")
            audit = assert_valid_overlay(bed.nodes)
            assert audit.bidirectional
            assert audit.connected
            assert audit.min_degree >= 2

    def test_degree_distribution_matches_simulated(self):
        hpv = HyParViewConfig()
        simulated = build_brisa_testbed(128, seed=7)
        synthesized = build_brisa_testbed(128, seed=7, bootstrap="synthesized")
        a = assert_valid_overlay(simulated.nodes, hpv)
        b = assert_valid_overlay(synthesized.nodes, hpv)
        # Statistically indistinguishable by the audit: same support
        # bounds, means within one link of each other.
        assert abs(a.mean_degree - b.mean_degree) <= 1.0
        assert a.max_degree <= hpv.max_active and b.max_degree <= hpv.max_active

    def test_links_registered_for_failure_detection(self):
        bed = build_brisa_testbed(64, seed=8, bootstrap="synthesized")
        for node in bed.nodes:
            for peer in node.active:
                assert bed.network.linked(node.node_id, peer)

    def test_passive_views_populated(self):
        bed = build_brisa_testbed(128, seed=9, bootstrap="synthesized")
        sizes = [len(n.passive) for n in bed.nodes]
        assert min(sizes) > 0
        assert max(sizes) <= HyParViewConfig().passive_size

    def test_validation_mode_rejects_broken_overlay(self):
        bed = build_brisa_testbed(32, seed=10, bootstrap="synthesized")
        # Break bidirectionality behind the membership layer's back.
        a, b = bed.nodes[0], bed.nodes[1]
        victim = next(iter(a.active))
        del bed.node(victim).active[a.node_id]
        with pytest.raises(SimulationError, match="mutual"):
            assert_valid_overlay(bed.nodes)

    def test_default_degree_tracks_expanded_cap(self):
        assert default_degree(HyParViewConfig()) == 7  # cap 8, settled ~7
        assert default_degree(HyParViewConfig(active_size=2, expansion_factor=1.0)) == 2

    def test_explicit_degree_above_cap_rejected_not_clamped(self):
        # Silently clamping would hand back a different topology than the
        # caller asked for.
        bed = _Testbed(seed=14)
        with pytest.raises(ValueError, match="cap"):
            bed.populate(32, brisa_factory(), bootstrap="synthesized", degree=12)

    def test_dissemination_over_synthesized_overlay(self):
        bed = build_brisa_testbed(96, seed=13, bootstrap="synthesized")
        bed.stop_shuffles()
        source = bed.choose_source()
        result = bed.run_stream(source, StreamConfig(count=20, rate=10.0))
        assert result.delivered_fraction() == 1.0
        ok, reason = result.structure_ok()
        assert ok, reason


# ----------------------------------------------------------------------
# Checkpoints
# ----------------------------------------------------------------------
class TestCheckpoints:
    def test_round_trip_through_brisa_state(self, tmp_path):
        path = tmp_path / "overlay.json"
        bed = build_brisa_testbed(64, seed=21, bootstrap="synthesized")
        bed.save_overlay(path)

        restored = build_brisa_testbed(64, seed=99, bootstrap=str(path))
        assert_valid_overlay(restored.nodes)
        for orig, fresh in zip(bed.nodes, restored.nodes):
            assert set(orig.active) == set(fresh.active)
            assert orig.passive == fresh.passive
        # §II-C: BrisaNode stream state comes up consistent — every
        # installed neighbour starts as an active inbound link, position
        # fresh so the bootstrap flood runs unchanged.
        node = restored.nodes[0]
        state = node.stream_state(0)
        assert set(state.in_active) == set(node.active)
        assert all(state.in_active.values())
        assert state.position is None

    def test_restored_overlay_disseminates(self, tmp_path):
        path = tmp_path / "overlay.json"
        build_brisa_testbed(64, seed=22, bootstrap="synthesized").save_overlay(path)
        bed = build_brisa_testbed(64, seed=23, bootstrap=str(path))
        bed.stop_shuffles()
        result = bed.run_stream(bed.choose_source(), StreamConfig(count=10, rate=10.0))
        assert result.delivered_fraction() == 1.0
        ok, reason = result.structure_ok()
        assert ok, reason

    def test_checkpoint_is_json_with_format_tag(self, tmp_path):
        import json

        path = tmp_path / "overlay.json"
        bed = build_brisa_testbed(16, seed=24, bootstrap="synthesized")
        save_overlay(bed.nodes, path)
        payload = json.loads(path.read_text())
        assert payload["format"] == "brisa-overlay/1"
        assert payload["n"] == 16
        cp = load_overlay(path)
        assert cp.n == 16

    def test_population_mismatch_rejected(self, tmp_path):
        path = tmp_path / "overlay.json"
        build_brisa_testbed(16, seed=25, bootstrap="synthesized").save_overlay(path)
        with pytest.raises(SimulationError, match="16"):
            build_brisa_testbed(8, seed=26, bootstrap=str(path))

    def test_corrupt_checkpoints_rejected(self, tmp_path):
        missing = tmp_path / "nope.json"
        with pytest.raises(SimulationError, match="cannot read"):
            load_overlay(missing)
        bad = tmp_path / "bad.json"
        bad.write_text('{"format": "something-else"}')
        with pytest.raises(SimulationError, match="unsupported"):
            load_overlay(bad)

    def test_failed_checkpoint_load_spawns_no_orphans(self, tmp_path):
        # The checkpoint is loaded before any node is spawned: a bad path
        # must not leave phantom nodes with live shuffle timers behind.
        bed = _Testbed(seed=27)
        with pytest.raises(SimulationError):
            bed.populate(8, brisa_factory(), bootstrap=str(tmp_path / "nope.json"))
        assert not bed.network.nodes
        assert bed.sim.pending == 0


# ----------------------------------------------------------------------
# Guard rails
# ----------------------------------------------------------------------
class TestGuards:
    def test_join_first_incompatible_with_synthesized(self):
        bed = _Testbed(seed=30)
        with pytest.raises(ValueError, match="join_first"):
            bed.populate(8, brisa_factory(), join_first=True, bootstrap="synthesized")

    def test_degree_incompatible_with_simulated_ramp(self):
        # The join ramp converges on HyParViewConfig alone; a degree
        # request would be silently ignored, so it is rejected instead.
        bed = _Testbed(seed=32)
        with pytest.raises(ValueError, match="degree"):
            bed.populate(8, brisa_factory(), bootstrap="simulated", degree=6)

    def test_non_hyparview_stack_rejected(self):
        from repro.sim.node import ProtocolNode

        bed = _Testbed(seed=31)
        with pytest.raises(SimulationError, match="HyParView"):
            bed.populate(
                8, lambda network, nid: ProtocolNode(network, nid),
                bootstrap="synthesized",
            )


# ----------------------------------------------------------------------
# Topology classes (DESIGN.md §14): every builder in TOPOLOGY_BUILDERS
# must stay deterministic, cap-clamped, and connected — the invariants
# that make the classes interchangeable under one HyParView config.
# ----------------------------------------------------------------------
from hypothesis import HealthCheck, example, given, settings
from hypothesis import strategies as st

from repro.config import HyParViewConfig as _HPV
from repro.experiments.bootstrap import TOPOLOGY_BUILDERS


def _csr_adjacency(topo) -> list[set[int]]:
    return [
        set(topo.neighbors[topo.offsets[i] : topo.offsets[i + 1]])
        for i in range(topo.n)
    ]


class TestTopologyClasses:
    @settings(max_examples=30, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(
        n=st.integers(min_value=16, max_value=512),
        degree=st.integers(min_value=4, max_value=7),
        seed=st.integers(min_value=0, max_value=2**16),
        topology=st.sampled_from(sorted(TOPOLOGY_BUILDERS)),
    )
    @example(n=512, degree=7, seed=1, topology="powerlaw")
    @example(n=512, degree=7, seed=1, topology="smallworld")
    @example(n=512, degree=7, seed=1, topology="uniform")
    @example(n=16, degree=4, seed=0, topology="smallworld")
    def test_deterministic_capped_connected(self, n, degree, seed, topology):
        cap = _HPV().max_active  # 8: every degree draw fits under it
        build = TOPOLOGY_BUILDERS[topology]
        topo = build(n, degree=degree, max_degree=cap, rng=derive(seed, "topo"))
        again = build(n, degree=degree, max_degree=cap, rng=derive(seed, "topo"))
        # Deterministic: same seed, same flat arrays, bit for bit.
        assert topo.offsets == again.offsets
        assert topo.neighbors == again.neighbors
        assert topo.degrees == again.degrees
        # Internally consistent CSR.
        assert len(topo.offsets) == n + 1
        assert list(topo.degrees) == [
            topo.offsets[i + 1] - topo.offsets[i] for i in range(n)
        ]
        adj = _csr_adjacency(topo)
        # No self-loops or duplicate row entries; symmetric edges.
        for i, peers in enumerate(adj):
            assert i not in peers
            assert len(peers) == topo.degrees[i]
            assert all(i in adj[j] for j in peers)
        # Cap-clamped above, ring floor below.
        assert max(topo.degrees) <= cap
        assert min(topo.degrees) >= 2
        # Connected (BFS from node 0 reaches everyone).
        seen = {0}
        frontier = [0]
        while frontier:
            frontier = [
                j for i in frontier for j in adj[i] if j not in seen and not seen.add(j)
            ]
        assert len(seen) == n

    def test_powerlaw_grows_a_heavier_tail_than_uniform(self):
        # The cap clamps hubs, so compare how much of the population the
        # cap-saturated nodes absorb: preferential attachment piles far
        # more nodes onto the cap than uniform chords do.
        import statistics

        cap = _HPV().max_active
        at_cap, spread = {}, {}
        for name in ("uniform", "powerlaw"):
            topo = TOPOLOGY_BUILDERS[name](
                512, degree=4, max_degree=cap, rng=derive(5, "tail")
            )
            at_cap[name] = sum(1 for d in topo.degrees if d >= cap)
            spread[name] = statistics.pvariance(topo.degrees)
        assert at_cap["powerlaw"] > 2 * at_cap["uniform"]
        assert spread["powerlaw"] > 1.5 * spread["uniform"]

    @pytest.mark.parametrize("topology", sorted(TOPOLOGY_BUILDERS))
    def test_checkpoint_round_trip(self, topology, tmp_path):
        # A synthesized non-uniform overlay checkpoints and restores view
        # for view — the shape survives the id remap.
        path = tmp_path / "overlay.json"
        bed = _Testbed(seed=41)
        bed.populate(64, brisa_factory(), bootstrap="synthesized",
                     topology=topology, validate=True)
        bed.save_overlay(path)
        restored = _Testbed(seed=77)
        restored.populate(64, brisa_factory(), bootstrap=str(path))
        assert_valid_overlay(restored.nodes)
        for orig, fresh in zip(bed.nodes, restored.nodes):
            assert set(orig.active) == set(fresh.active)
            assert orig.passive == fresh.passive

    def test_checkpoint_restore_rejects_topology_request(self, tmp_path):
        # A checkpoint already fixes the overlay shape; silently ignoring
        # --topology would report results for the wrong graph class.
        path = tmp_path / "overlay.json"
        bed = _Testbed(seed=42)
        bed.populate(16, brisa_factory(), bootstrap="synthesized")
        bed.save_overlay(path)
        other = _Testbed(seed=43)
        with pytest.raises(ValueError, match="checkpoint"):
            other.populate(16, brisa_factory(), bootstrap=str(path),
                           topology="powerlaw")

    def test_simulated_ramp_rejects_topology_request(self):
        bed = _Testbed(seed=44)
        with pytest.raises(ValueError, match="topology"):
            bed.populate(8, brisa_factory(), bootstrap="simulated",
                         topology="smallworld")

    @pytest.mark.parametrize("topology", ["powerlaw", "smallworld"])
    def test_dissemination_over_nonuniform_overlay(self, topology):
        bed = _Testbed(seed=45)
        bed.populate(96, brisa_factory(), bootstrap="synthesized",
                     topology=topology, validate=True)
        bed.stop_shuffles()
        result = bed.run_stream(bed.choose_source(), StreamConfig(count=10, rate=10.0))
        assert result.delivered_fraction() == 1.0
        ok, reason = result.structure_ok()
        assert ok, reason
