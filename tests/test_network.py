"""Tests for the simulated network and failure detection."""

import pytest

from repro.errors import ProtocolError, SimulationError
from repro.sim.message import Message
from repro.sim.monitor import DISSEMINATION

from tests.helpers import Ping, RecorderNode, make_network


def test_send_delivers_with_latency():
    sim, net, (a, b) = make_network(2, delay=0.01)
    net.send(a.node_id, b.node_id, Ping(7))
    sim.run()
    assert len(b.received) == 1
    t, src, msg = b.received[0]
    assert t == pytest.approx(0.01)
    assert src == a.node_id
    assert msg.payload == 7


def test_bytes_accounted_on_both_ends():
    sim, net, (a, b) = make_network(2)
    net.send(a.node_id, b.node_id, Ping())
    sim.run()
    size = Ping().size_bytes()
    assert net.metrics.bytes_sent[a.node_id]["stabilization"] == size
    assert net.metrics.bytes_received[b.node_id]["stabilization"] == size


def test_send_to_self_rejected():
    sim, net, (a,) = make_network(1)
    with pytest.raises(SimulationError):
        net.send(a.node_id, a.node_id, Ping())


def test_dead_sender_sends_nothing():
    sim, net, (a, b) = make_network(2)
    net.crash(a.node_id)
    net.send(a.node_id, b.node_id, Ping())
    sim.run()
    assert b.received == []


def test_message_to_crashed_node_dropped():
    sim, net, (a, b) = make_network(2)
    net.send(a.node_id, b.node_id, Ping())
    net.crash(b.node_id)
    sim.run()
    assert b.received == []
    # Received bytes were never accounted for the dead node.
    assert net.metrics.bytes_received.get(b.node_id, {}) in ({}, {"stabilization": 0})


def test_crash_notifies_linked_peers_after_detection_delay():
    sim, net, (a, b, c) = make_network(3)
    net.register_link(a.node_id, b.node_id)
    net.crash(b.node_id)
    sim.run()
    assert len(a.link_failures) == 1
    t, failed = a.link_failures[0]
    assert failed == b.node_id
    # Detection delay in U(0.5, 1.5) x keepalive period (default 1 s).
    assert 0.5 <= t <= 1.5
    # c was not linked to b: no notification.
    assert c.link_failures == []


def test_unregistered_link_not_notified():
    sim, net, (a, b) = make_network(2)
    net.register_link(a.node_id, b.node_id)
    net.unregister_link(a.node_id, b.node_id)
    net.crash(b.node_id)
    sim.run()
    assert a.link_failures == []


def test_send_failure_on_registered_link_triggers_notice():
    sim, net, (a, b) = make_network(2)
    net.register_link(a.node_id, b.node_id)
    net.crash(b.node_id)  # schedules one notice
    # In-flight message to the dead node must not produce a duplicate notice.
    net.send(a.node_id, b.node_id, Ping())
    sim.run()
    assert len(a.link_failures) == 1


def test_in_flight_message_to_node_that_dies_mid_flight():
    sim, net, (a, b) = make_network(2, delay=1.0)
    net.register_link(a.node_id, b.node_id)
    net.send(a.node_id, b.node_id, Ping())
    sim.schedule(0.5, net.crash, b.node_id)
    sim.run()
    assert b.received == []
    assert len(a.link_failures) == 1


def test_crash_is_idempotent():
    sim, net, (a, b) = make_network(2)
    net.register_link(a.node_id, b.node_id)
    net.crash(b.node_id)
    net.crash(b.node_id)
    sim.run()
    assert len(a.link_failures) == 1
    assert net.metrics.counters["crashes"] == 1


def test_crash_listener_invoked():
    sim, net, (a, b) = make_network(2)
    crashed = []
    net.crash_listeners.append(crashed.append)
    net.crash(a.node_id)
    assert crashed == [a.node_id]


def test_self_link_rejected():
    sim, net, (a,) = make_network(1)
    with pytest.raises(SimulationError):
        net.register_link(a.node_id, a.node_id)


def test_alive_ids_excludes_crashed():
    sim, net, nodes = make_network(4)
    net.crash(nodes[1].node_id)
    assert net.alive_ids() == [nodes[0].node_id, nodes[2].node_id, nodes[3].node_id]


def test_spawn_allocates_monotonic_ids():
    sim, net, nodes = make_network(3)
    assert [n.node_id for n in nodes] == [0, 1, 2]


def test_unknown_message_kind_raises():
    sim, net, (a, b) = make_network(2)

    class Weird(Message):
        kind = "weird"

    net.send(a.node_id, b.node_id, Weird())
    with pytest.raises(ProtocolError):
        sim.run()


def test_capacity_is_deterministic_and_positive():
    _, net1, _ = make_network(1, seed=9)
    _, net2, _ = make_network(1, seed=9)
    assert net1.capacity(0) == net2.capacity(0)
    assert net1.capacity(0) > 0
    assert net1.capacity(0) != net1.capacity(1)


def test_rtt_symmetric_for_constant_latency():
    sim, net, (a, b) = make_network(2, delay=0.004)
    assert net.rtt(a.node_id, b.node_id) == pytest.approx(0.008)


def test_keepalive_accounting_charges_linked_nodes():
    sim, net, (a, b, c) = make_network(3)
    net.register_link(a.node_id, b.node_id)
    net.account_keepalives(DISSEMINATION, duration=10.0, ka_bytes=48)
    expected = int(round(10.0 / 1.0 * 48))
    assert net.metrics.bytes_sent[a.node_id][DISSEMINATION] == expected
    assert net.metrics.bytes_received[b.node_id][DISSEMINATION] == expected
    assert net.metrics.bytes_sent.get(c.node_id, {}).get(DISSEMINATION, 0) == 0


def test_dead_nodes_send_no_keepalives():
    sim, net, (a, b) = make_network(2)
    net.register_link(a.node_id, b.node_id)
    # crash() clears the links, so no keepalive accounting either way
    net.crash(a.node_id)
    net.account_keepalives(DISSEMINATION, duration=10.0)
    assert net.metrics.bytes_sent.get(a.node_id, {}).get(DISSEMINATION, 0) == 0


# ----------------------------------------------------------------------
# Fan-out sends (send_many)
# ----------------------------------------------------------------------
class TestSendMany:
    def test_delivers_to_every_destination(self):
        sim, net, (a, b, c, d) = make_network(4, delay=0.01)
        sent = net.send_many(a.node_id, [b.node_id, c.node_id, d.node_id], Ping(5))
        assert sent == 3
        sim.run()
        for node in (b, c, d):
            assert len(node.received) == 1
            t, src, msg = node.received[0]
            assert t == pytest.approx(0.01)
            assert src == a.node_id
            assert msg.payload == 5

    def test_accounting_matches_per_send_loop(self):
        sim, net, (a, b, c) = make_network(3)
        net.send_many(a.node_id, [b.node_id, c.node_id], Ping())
        sim.run()
        size = Ping().size_bytes()
        assert net.metrics.bytes_sent[a.node_id]["stabilization"] == 2 * size
        assert net.metrics.bytes_received[b.node_id]["stabilization"] == size
        assert net.metrics.bytes_received[c.node_id]["stabilization"] == size
        assert net.metrics.msg_counts["ping"]["stabilization"] == 2

    def test_self_destination_rejected(self):
        sim, net, (a, b) = make_network(2)
        with pytest.raises(SimulationError):
            net.send_many(a.node_id, [b.node_id, a.node_id], Ping())

    def test_self_destination_rejected_before_any_side_effect(self):
        """A bad destination anywhere in the fan-out must abort the whole
        batch: nothing scheduled, nothing accounted, no occupancy taken."""
        from repro.sim.engine import Simulator
        from repro.sim.latency import ClusterLatency
        from repro.sim.monitor import Metrics
        from repro.sim.network import Network

        sim = Simulator(seed=2)
        net = Network(sim, ClusterLatency(seed=2), Metrics())
        a, b = net.spawn(RecorderNode), net.spawn(RecorderNode)
        with pytest.raises(SimulationError):
            net.send_many(a.node_id, [b.node_id, a.node_id], Ping())
        assert sim.pending == 0
        assert net._busy == {}
        assert net.metrics.msg_counts.get("ping", {}) in ({}, {"stabilization": 0})
        sim.run()
        assert b.received == []

    def test_dead_sender_sends_nothing(self):
        sim, net, (a, b) = make_network(2)
        net.crash(a.node_id)
        assert net.send_many(a.node_id, [b.node_id], Ping()) == 0
        sim.run()
        assert b.received == []

    def test_empty_fanout_is_noop(self):
        sim, net, (a,) = make_network(1)
        assert net.send_many(a.node_id, [], Ping()) == 0
        assert net.metrics.msg_counts.get("ping", {}) in ({}, {"stabilization": 0})

    def test_dead_destination_mid_fanout_is_dropped_not_fatal(self):
        sim, net, (a, b, c) = make_network(3)
        net.send_many(a.node_id, [b.node_id, c.node_id], Ping())
        net.crash(b.node_id)
        sim.run()
        assert b.received == []
        assert len(c.received) == 1
        assert net.metrics.counters["dropped"] == 1


# ----------------------------------------------------------------------
# Dropped-message accounting
# ----------------------------------------------------------------------
def test_message_to_crashed_node_counts_dropped():
    sim, net, (a, b) = make_network(2)
    net.send(a.node_id, b.node_id, Ping())
    net.crash(b.node_id)
    sim.run()
    assert net.metrics.counters["dropped"] == 1


def test_delivered_messages_are_not_counted_dropped():
    sim, net, (a, b) = make_network(2)
    net.send(a.node_id, b.node_id, Ping())
    sim.run()
    assert net.metrics.counters.get("dropped", 0) == 0


# ----------------------------------------------------------------------
# Crash-time state purging (long-churn memory bounds)
# ----------------------------------------------------------------------
class TestCrashPurgesState:
    def test_busy_and_capacity_entries_are_purged(self):
        from repro.sim.engine import Simulator
        from repro.sim.latency import ClusterLatency
        from repro.sim.monitor import Metrics
        from repro.sim.network import Network

        sim = Simulator(seed=1)
        net = Network(sim, ClusterLatency(seed=1), Metrics())
        a, b = net.spawn(RecorderNode), net.spawn(RecorderNode)
        net.capacity(a.node_id)  # materialize the lognormal draw
        net.send(a.node_id, b.node_id, Ping())  # occupies a's NIC queue
        assert a.node_id in net._busy
        assert a.node_id in net._capacities
        net.crash(a.node_id)
        assert a.node_id not in net._busy
        assert a.node_id not in net._capacities

    def test_notified_entries_drain_once_notices_fire(self):
        sim, net, (a, b) = make_network(2)
        net.register_link(a.node_id, b.node_id)
        net.crash(b.node_id)
        assert (a.node_id, b.node_id) in net._notified
        sim.run()
        assert len(a.link_failures) == 1
        assert net._notified == set()

    def test_crashed_observers_pending_entries_are_purged(self):
        sim, net, (a, b, c) = make_network(3)
        net.register_link(a.node_id, b.node_id)
        net.crash(b.node_id)  # pending notice for observer a
        net.crash(a.node_id)  # a dies before its notice fires
        assert all(obs != a.node_id for obs, _ in net._notified)
        sim.run()
        assert net._notified == set()
        assert a.link_failures == []

    def test_unlink_prunes_empty_peer_sets(self):
        sim, net, (a, b) = make_network(2)
        net.register_link(a.node_id, b.node_id)
        net.unregister_link(a.node_id, b.node_id)
        assert a.node_id not in net.links
        assert b.node_id not in net.links

    def test_repeated_crash_join_cycles_do_not_grow_state(self):
        sim, net, (anchor,) = make_network(1)
        for cycle in range(40):
            node = net.spawn(RecorderNode)
            net.register_link(anchor.node_id, node.node_id)
            net.capacity(node.node_id)
            net.send(anchor.node_id, node.node_id, Ping())
            net.crash(node.node_id)
            sim.run()
        # Forty generations of churn leave no residue beyond the anchor.
        assert net._notified == set()
        assert net._busy == {}
        assert set(net._capacities) <= {anchor.node_id}
        assert all(peers for peers in net.links.values())
        assert set(net.links) <= {anchor.node_id}
        # Every in-flight message to a dying node was accounted.
        assert net.metrics.counters["dropped"] == 40
        assert net.metrics.counters["crashes"] == 40


# ----------------------------------------------------------------------
# Fast-path selection
# ----------------------------------------------------------------------
class TestFastPathSelection:
    def test_constant_latency_is_zero_cost(self):
        from repro.sim.latency import ClusterLatency, ConstantLatency, PlanetLabLatency

        assert ConstantLatency().zero_cost()
        assert not ClusterLatency().zero_cost()
        assert not PlanetLabLatency().zero_cost()

    def test_occupancy_model_keeps_queueing_chain(self):
        """ClusterLatency charges tx/rx occupancy: the receive-processing
        event must still serialize behind the receiver's queue."""
        from repro.sim.latency import ClusterLatency
        from repro.sim.engine import Simulator
        from repro.sim.monitor import Metrics
        from repro.sim.network import Network

        sim = Simulator(seed=5)
        net = Network(sim, ClusterLatency(seed=5), Metrics())
        assert not net._fast_delivery
        a, b = net.spawn(RecorderNode), net.spawn(RecorderNode)
        net.send(a.node_id, b.node_id, Ping())
        net.send(a.node_id, b.node_id, Ping())
        sim.run()
        assert len(b.received) == 2
        t1, t2 = b.received[0][0], b.received[1][0]
        # Second message waits at least one rx_cost behind the first.
        assert t2 >= t1 + net.latency.rx_cost(b.node_id, Ping().size_bytes())
