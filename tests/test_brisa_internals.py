"""White-box tests for BrisaNode internals: link bookkeeping, depth
updates, retransmissions, repair timeouts and membership edge cases."""

import pytest

from repro.config import BrisaConfig, HyParViewConfig, StreamConfig
from repro.core import messages as bm
from repro.core.brisa import BrisaNode
from repro.experiments.common import build_brisa_testbed
from repro.sim.engine import Simulator
from repro.sim.latency import ConstantLatency
from repro.sim.monitor import Metrics
from repro.sim.network import Network


def tiny_pair(seed=1, config=None):
    """Two directly-linked BRISA nodes with manual wiring (no PSS noise)."""
    sim = Simulator(seed=seed)
    net = Network(sim, ConstantLatency(0.001), Metrics())
    cfg = config or BrisaConfig()
    a = net.spawn(lambda n, i: BrisaNode(n, i, cfg))
    b = net.spawn(lambda n, i: BrisaNode(n, i, cfg))
    b.join(a.node_id)
    sim.run(until=2.0)
    assert b.node_id in a.active and a.node_id in b.active
    return sim, net, a, b


class TestLinkBookkeeping:
    def test_deactivate_marks_both_sides(self):
        sim, net, a, b = tiny_pair()
        a.become_source(0)
        a.inject(0, 0, 100)
        sim.run(until=sim.now + 1.0)
        # b adopted a; now b deactivates a manually and a must stop relaying.
        state_b = b.stream_state(0)
        b._deactivate_link(state_b, a.node_id)
        sim.run(until=sim.now + 1.0)
        assert not state_b.in_active[a.node_id]
        assert b.node_id in a.stream_state(0).out_deactivated

    def test_activate_clears_out_deactivated(self):
        sim, net, a, b = tiny_pair()
        state_a = a.stream_state(0)
        state_a.out_deactivated.add(b.node_id)
        b.send(a.node_id, bm.Activate(0, adopt=False))
        sim.run(until=sim.now + 1.0)
        assert b.node_id not in state_a.out_deactivated

    def test_adopt_ack_carries_position(self):
        sim, net, a, b = tiny_pair()
        a.become_source(0)
        a.inject(0, 0, 10)
        sim.run(until=sim.now + 1.0)
        state_b = b.stream_state(0)
        state_b.repairing = True
        state_b.repair_pending = a.node_id
        b.send(a.node_id, bm.Activate(0, adopt=True))
        sim.run(until=sim.now + 1.0)
        # The ack re-validated and finished the repair.
        assert not state_b.repairing
        assert a.node_id in state_b.parents


class TestRetransmission:
    def test_retransmit_serves_only_buffered_gap(self):
        sim, net, a, b = tiny_pair()
        a.become_source(0)
        for seq in range(5):
            a.inject(0, seq, 64)
        sim.run(until=sim.now + 1.0)
        before = b.delivered_count(0)
        assert before == 5
        b.send(a.node_id, bm.RetransmitRequest(0, 2))
        sim.run(until=sim.now + 1.0)
        # seqs 3..4 re-sent as recovered data; b treats them as duplicates.
        assert b.delivered_count(0) == 5
        assert net.metrics.duplicates[b.node_id] >= 2

    def test_recovered_messages_marked(self):
        sim, net, a, b = tiny_pair()
        a.become_source(0)
        a.inject(0, 0, 64)
        sim.run(until=sim.now + 1.0)
        sent = []
        original_send = a.send
        a.send = lambda dst, msg: (sent.append(msg), original_send(dst, msg))
        a.on_brisa_retransmit(b.node_id, bm.RetransmitRequest(0, -1))
        data = [m for m in sent if isinstance(m, bm.Data)]
        assert data and all(m.recovered for m in data)


class TestRepairTimeout:
    def test_timeout_advances_to_next_candidate(self):
        sim, net, a, b = tiny_pair()
        state = b.stream_state(0)
        state.position = (99, b.node_id)  # engaged
        state.repairing = True
        state.repair_allow_hard = False
        state.repair_pending = 12345  # a candidate that will never answer
        state.repair_attempt = 1
        b._repair_timeout(0, 1)
        # Queue empty + no hard allowed -> repair ends quietly.
        assert not state.repairing

    def test_stale_timeout_ignored(self):
        sim, net, a, b = tiny_pair()
        state = b.stream_state(0)
        state.position = (99, b.node_id)
        state.repairing = True
        state.repair_pending = a.node_id
        state.repair_attempt = 5
        b._repair_timeout(0, attempt=3)  # stale
        assert state.repairing and state.repair_pending == a.node_id


class TestMembershipEdges:
    def test_neighbor_up_marks_link_active(self):
        sim, net, a, b = tiny_pair()
        state = a.stream_state(0)
        state.in_active.pop(b.node_id, None)
        a.neighbor_up(b.node_id)
        assert state.in_active[b.node_id] is True

    def test_neighbor_down_of_pending_repair_candidate(self):
        sim, net, a, b = tiny_pair()
        state = b.stream_state(0)
        state.position = (99, b.node_id)
        state.repairing = True
        state.repair_allow_hard = False
        state.repair_pending = a.node_id
        b.neighbor_down(a.node_id, failure=True)
        # Pending candidate died: repair moved on (and ended quietly).
        assert state.repair_pending != a.node_id

    def test_source_never_repairs(self):
        sim, net, a, b = tiny_pair()
        a.become_source(0)
        state = a.stream_state(0)
        a._begin_repair(state, record=True)
        assert not state.repairing


class TestDataEdgeCases:
    def test_data_from_non_neighbor_still_delivers(self):
        sim, net, a, b = tiny_pair()
        stranger_msg = bm.Data(0, 7, 32, path=(99,), sent_at=sim.now)
        b.handle_message(99, stranger_msg)
        assert 7 in b.stream_state(0).delivered
        # But a non-neighbour is never adopted as parent.
        assert 99 not in b.stream_state(0).parents

    def test_duplicate_from_parent_is_maintenance_not_deactivation(self):
        sim, net, a, b = tiny_pair()
        a.become_source(0)
        a.inject(0, 0, 32)
        sim.run(until=sim.now + 1.0)
        state = b.stream_state(0)
        assert a.node_id in state.parents
        dup = bm.Data(0, 0, 32, path=(a.node_id,), sent_at=sim.now)
        b.handle_message(a.node_id, dup)
        assert a.node_id in state.parents
        assert state.in_active[a.node_id]

    def test_gap_triggers_rate_limited_retransmit(self):
        sim, net, a, b = tiny_pair()
        a.become_source(0)
        a.inject(0, 0, 32)
        sim.run(until=sim.now + 1.0)
        sent_before = net.metrics.msg_counts.get("brisa_retransmit", {}).get(
            "dissemination", 0
        ) + net.metrics.msg_counts.get("brisa_retransmit", {}).get("stabilization", 0)
        # Deliver seq 5 directly from the parent: gap 1..4.
        gap = bm.Data(0, 5, 32, path=(a.node_id,), sent_at=sim.now)
        b.handle_message(a.node_id, gap)
        sim.run(until=sim.now + 1.0)
        total = sum(net.metrics.msg_counts.get("brisa_retransmit", {}).values())
        assert total > sent_before


class TestDepthMode:
    def test_depth_update_from_parent_demotes_child(self):
        cfg = BrisaConfig(mode="dag", num_parents=2)
        sim, net, a, b = tiny_pair(config=cfg)
        a.become_source(0)
        a.inject(0, 0, 32)
        sim.run(until=sim.now + 1.0)
        state = b.stream_state(0)
        assert state.position == 1
        b.handle_message(a.node_id, bm.DepthUpdate(0, 1))
        assert state.position == 2

    def test_sources_cannot_be_demoted(self):
        cfg = BrisaConfig(mode="dag", num_parents=2)
        sim, net, a, b = tiny_pair(config=cfg)
        a.become_source(0)
        assert a.stream_state(0).position == 0
        a.handle_message(b.node_id, bm.DepthUpdate(0, 5))
        assert a.stream_state(0).position == 0


class TestConstructionProbeSemantics:
    def test_probe_recorded_once(self):
        bed = build_brisa_testbed(24, seed=3)
        source = bed.choose_source()
        bed.run_stream(source, StreamConfig(count=30, rate=5.0, payload_bytes=64))
        nodes_with_probe = [p.node for p in bed.metrics.construction_probes]
        assert len(nodes_with_probe) == len(set(nodes_with_probe))
